//! The mobile scenario (paper §4.2/§5.1): sweep the receive buffer over
//! WiFi + 3G and watch the mechanisms earn their keep.
//!
//! ```sh
//! cargo run --release --example wifi_3g
//! ```

use mptcp_harness::experiments::common::{run_bulk, wifi_3g_paths, Variant};
use mptcp_netsim::{Duration, LinkCfg, Path};

fn main() {
    println!("Receive-buffer sweep over WiFi 8 Mbps/20 ms + 3G 2 Mbps/150 ms");
    println!("(goodput in Mbps; compare with the paper's Figure 4)\n");
    let warm = Duration::from_secs(2);
    let meas = Duration::from_secs(12);
    println!(
        "{:>8} {:>14} {:>16} {:>12} {:>12}",
        "buf KB", "TCP (WiFi)", "regular MPTCP", "MPTCP+M1", "MPTCP+M1,2"
    );
    for buf in [100_000usize, 200_000, 400_000, 800_000] {
        let tcp = run_bulk(
            Variant::Tcp,
            buf,
            vec![Path::symmetric(LinkCfg::wifi())],
            warm,
            meas,
            1,
        );
        let reg = run_bulk(Variant::MptcpRegular, buf, wifi_3g_paths(), warm, meas, 1);
        let m1 = run_bulk(Variant::MptcpM1, buf, wifi_3g_paths(), warm, meas, 1);
        let m12 = run_bulk(Variant::MptcpM12, buf, wifi_3g_paths(), warm, meas, 1);
        println!(
            "{:>8} {:>14.2} {:>16.2} {:>12.2} {:>12.2}",
            buf / 1000,
            tcp.goodput_mbps,
            reg.goodput_mbps,
            m1.goodput_mbps,
            m12.goodput_mbps
        );
    }
    println!("\nExpected shape: regular MPTCP trails TCP when underbuffered;");
    println!("M1 recovers most of it; M1+M2 matches or beats TCP.");
}
