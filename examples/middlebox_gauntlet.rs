//! Run MPTCP, the strawman striped-TCP design, and plain TCP through the
//! §4.1 middlebox gauntlet and print the survival matrix.
//!
//! ```sh
//! cargo run --release --example middlebox_gauntlet
//! ```

use mptcp_harness::experiments::mbox::{matrix, Outcome};

fn main() {
    println!("Middlebox gauntlet: 200 KB transfer per cell\n");
    println!(
        "{:>20}  {:>20}  {:>20}  {:>20}",
        "middlebox", "MPTCP", "strawman", "TCP"
    );
    for chunk in matrix(11).chunks(3) {
        print!("{:>20}", chunk[0].mbox.label());
        for cell in chunk {
            let txt = match cell.outcome {
                Outcome::Ok => "ok".to_string(),
                Outcome::FellBack => "ok (fell back)".to_string(),
                Outcome::Stalled(p) => format!("STALLED {p:.0}%"),
            };
            print!("  {txt:>20}");
        }
        println!();
    }
    println!("\nThe strawman (one sequence space striped across paths) dies");
    println!("behind hole-droppers and ACK-policing proxies; MPTCP survives");
    println!("everything, falling back to TCP where negotiation is impossible.");
}
