//! Closed-loop HTTP serving over two parallel links (paper §5.3): the
//! apachebench comparison between regular TCP, round-robin bonding and
//! MPTCP, at one small and one large transfer size.
//!
//! ```sh
//! cargo run --release --example datacenter_http
//! ```

use mptcp_harness::experiments::fig11_http::{sweep, Config};
use mptcp_netsim::Duration;

fn main() {
    let cfg = Config {
        clients: 6,
        link_mbps: 100,
        duration: Duration::from_secs(3),
    };
    println!(
        "Closed-loop HTTP: {} clients, 2 x {} Mbps links, {}s per point\n",
        cfg.clients,
        cfg.link_mbps,
        cfg.duration.as_secs()
    );
    let sizes = [8_192usize, 30_000, 100_000, 300_000];
    let rows = sweep(cfg, &sizes, 2);
    println!(
        "{:>9} {:>12} {:>14} {:>14}",
        "size KB", "MPTCP", "bonding TCP", "regular TCP"
    );
    for row in rows {
        print!("{:>9}", row.file_size / 1000);
        for (_, rps) in &row.results {
            print!(" {:>11.0}/s", rps);
        }
        println!();
    }
    println!("\nExpected shape: TCP wins tiny files (no extra handshake),");
    println!("MPTCP pulls ahead as transfers grow past ~100 KB.");
}
