//! Quickstart: an MPTCP bulk transfer over emulated WiFi + 3G, compared
//! with plain TCP on each interface.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mptcp::{Mechanisms, MptcpConfig};
use mptcp_harness::experiments::common::{run_bulk, Variant};
use mptcp_harness::hosts::{ClientApp, ServerApp};
use mptcp_harness::scenario::{Scenario, TransportKind};
use mptcp_netsim::{Duration, LinkCfg, Path};

fn main() {
    println!("MPTCP quickstart: 10 MB over WiFi (8 Mbps) + 3G (2 Mbps)\n");

    // --- The level-of-detail view: build a scenario by hand. -----------
    let cfg = MptcpConfig::default()
        .with_buffers(512 * 1024)
        .with_mechanisms(Mechanisms::M1_2);
    let mut sc = Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total: 10_000_000,
            written: 0,
            close_when_done: true,
        },
        ServerApp::Sink,
        vec![
            Path::symmetric(LinkCfg::wifi()),
            Path::symmetric(LinkCfg::threeg()),
        ],
        42,
    );
    let t0 = sc.sim.now;
    sc.run_for(Duration::from_secs(60));
    let bytes = sc.server().app_bytes_received;
    let secs = (sc.sim.now - t0).as_secs_f64();
    println!(
        "MPTCP (M1,2):   {:>6.2} Mbps   ({} bytes in {:.1} s)",
        bytes as f64 * 8.0 / secs / 1e6,
        bytes,
        secs
    );
    if let mptcp_harness::transport::Transport::Mptcp(conn) = &sc.client().transport {
        for (i, sf) in conn.subflows().iter().enumerate() {
            println!(
                "  subflow {i}: {} bytes acked, srtt {:?}",
                sf.sock.stats.bytes_acked,
                sf.sock.srtt()
            );
        }
    }

    // --- The one-liner view: the harness's bulk runner. ----------------
    for (label, variant, paths) in [
        (
            "TCP over WiFi",
            Variant::Tcp,
            vec![Path::symmetric(LinkCfg::wifi())],
        ),
        (
            "TCP over 3G  ",
            Variant::Tcp,
            vec![Path::symmetric(LinkCfg::threeg())],
        ),
    ] {
        let r = run_bulk(
            variant,
            512 * 1024,
            paths,
            Duration::from_secs(2),
            Duration::from_secs(15),
            42,
        );
        println!("{label}:  {:>6.2} Mbps", r.goodput_mbps);
    }
}
