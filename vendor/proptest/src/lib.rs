//! Minimal, offline stand-in for `proptest`.
//!
//! Reproduces the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_flat_map` and `prop_shuffle`, [`arbitrary::any`], tuple and range
//! strategies, `collection::vec`, `option::of`, `sample::Index`, the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros
//! and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, by design:
//! * **No shrinking.** A failing case reports its case number and seed; the
//!   whole run is deterministic, so re-running reproduces it exactly.
//! * **Deterministic seeding.** Each test derives its sequence from the
//!   test body's source position, so failures are stable across runs and
//!   machines. Set `PROPTEST_SEED=<u64>` to try a different universe.

pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 128 }
        }
    }

    /// Deterministic generator state handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed through SplitMix64 (xoshiro256++ core).
        pub fn seed_from_u64(seed: u64) -> TestRng {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Resolve the base seed: `PROPTEST_SEED` env override or the given
    /// per-test default.
    pub fn base_seed(default: u64) -> u64 {
        match std::env::var("PROPTEST_SEED") {
            Ok(v) => v.parse().unwrap_or(default),
            Err(_) => default,
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values (no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy it selects.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Shuffle the generated collection.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
            Self::Value: Shuffleable,
        {
            Shuffle { inner: self }
        }

        /// Erase the concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Collections that `prop_shuffle` can permute.
    pub trait Shuffleable {
        fn shuffle(&mut self, rng: &mut TestRng);
    }

    impl<T> Shuffleable for Vec<T> {
        fn shuffle(&mut self, rng: &mut TestRng) {
            for i in (1..self.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    /// See [`Strategy::prop_shuffle`].
    pub struct Shuffle<S> {
        pub(crate) inner: S,
    }

    impl<S> Strategy for Shuffle<S>
    where
        S: Strategy,
        S::Value: Shuffleable,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let mut v = self.inner.generate(rng);
            v.shuffle(rng);
            v
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary_value(rng: &mut TestRng) -> Option<T> {
            if rng.next_u64() & 1 == 1 {
                Some(T::arbitrary_value(rng))
            } else {
                None
            }
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary_value(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::new(rng.unit_f64())
        }
    }

    /// The canonical strategy for `T` (`any::<T>()`).
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Uniformly random values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Sizes acceptable to [`vec`]: a fixed count or a half-open range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// `size`-many values drawn from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A vector of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Some` from the inner strategy three times out of four, else `None`
    /// (matching real proptest's default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// An optional value drawn from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) < 3 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    /// A position into a not-yet-known-length collection: generated as a
    /// fraction, resolved against a concrete length with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(f64);

    impl Index {
        pub(crate) fn new(unit: f64) -> Index {
            Index(unit)
        }

        /// Resolve against a collection of `len` elements; `len` must be
        /// nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 * len as f64) as usize).min(len - 1)
        }
    }
}

pub mod prelude {
    /// The `prop::` module alias the real prelude exports.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// Re-export under the paths the prelude alias exposes (`prop::sample`, …).
pub use crate as prop;

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!("assertion failed: `{:?}` != `{:?}`", l, r));
        }
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<$crate::strategy::BoxedStrategy<_>> =
            vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::Union::new(arms)
    }};
}

/// Define `#[test]` functions that run their body over many generated
/// inputs. Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config = $cfg;
                // Per-test deterministic seed: stable across runs/machines.
                let seed = $crate::test_runner::base_seed(
                    {
                        let mut h = 0xcbf29ce484222325u64; // FNV-1a
                        for b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                            h ^= b as u64;
                            h = h.wrapping_mul(0x100000001b3);
                        }
                        h
                    }
                );
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::seed_from_u64(
                        seed.wrapping_add(case as u64),
                    );
                    $(let $arg = ($strat).generate(&mut rng);)+
                    let result = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = result {
                        panic!(
                            "proptest case {}/{} failed (seed {}): {}",
                            case + 1, config.cases, seed, msg
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(x in 0usize..10, y in (0u8..4).prop_map(|v| v * 2)) {
            prop_assert!(x < 10);
            prop_assert!(y % 2 == 0 && y < 8);
        }

        #[test]
        fn flat_map_and_shuffle(v in (1usize..6).prop_flat_map(|n| {
            Just((0..n as u64).collect::<Vec<u64>>()).prop_shuffle()
        })) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..v.len() as u64).collect::<Vec<u64>>());
        }

        #[test]
        fn oneof_collections_options(
            xs in prop::collection::vec(any::<u8>(), 0..8),
            o in prop::option::of(any::<u32>()),
            pick in prop_oneof![Just(1u8), Just(2u8), 5u8..7],
            at in any::<prop::sample::Index>(),
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert!(o.is_none() || o.is_some());
            prop_assert!(pick == 1 || pick == 2 || (5..7).contains(&pick));
            if !xs.is_empty() {
                prop_assert!(at.index(xs.len()) < xs.len());
            }
        }
    }
}
