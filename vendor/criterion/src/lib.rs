//! Minimal, offline stand-in for `criterion`.
//!
//! Implements the group/bench_function/bench_with_input/iter API used by
//! this workspace's benches, with a simple measurement loop: warm up,
//! auto-scale the iteration count to ~50 ms of work, take the median of
//! several samples, and print one line per benchmark. No statistics
//! engine, no HTML reports, no command-line filtering beyond a substring
//! match on the benchmark id.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: turns per-iteration time into a rate line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical items processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// Just the parameter value (the group supplies the name).
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Runs one sample of `routine` with `iters` iterations and reports the
/// elapsed wall-clock time.
fn run_sample<F: FnMut(&mut Bencher)>(routine: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    b.elapsed
}

fn measure<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut routine: F) {
    // Warm up and find an iteration count worth ~50 ms.
    let mut iters = 1u64;
    loop {
        let t = run_sample(&mut routine, iters);
        if t > Duration::from_millis(10) || iters > (1 << 30) {
            let per_iter = t.as_secs_f64() / iters as f64;
            iters = ((0.05 / per_iter.max(1e-12)) as u64).max(1);
            break;
        }
        iters *= 4;
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| run_sample(&mut routine, iters).as_secs_f64() / iters as f64)
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let line = match throughput {
        Some(Throughput::Bytes(n)) => format!(
            "{label:<40} {:>12.1} ns/iter  {:>10.2} MiB/s",
            median * 1e9,
            n as f64 / median / (1024.0 * 1024.0)
        ),
        Some(Throughput::Elements(n)) => format!(
            "{label:<40} {:>12.1} ns/iter  {:>10.2} Melem/s",
            median * 1e9,
            n as f64 / median / 1e6
        ),
        None => format!("{label:<40} {:>12.1} ns/iter", median * 1e9),
    };
    println!("{line}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        if self.criterion.matches(&label) {
            measure(&label, self.throughput, &mut f);
        }
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        if self.criterion.matches(&label) {
            measure(&label, self.throughput, |b| f(b, input));
        }
        self
    }

    /// End the group (prints nothing; provided for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmark a closure under a bare name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(name) {
            measure(name, None, &mut f);
        }
        self
    }

    /// Parse a substring filter from the command line (`cargo bench -- foo`).
    pub fn configure_from_args(mut self) -> Criterion {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args
            .into_iter()
            .find(|a| !a.starts_with('-') && a != "bench");
        self
    }
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
