//! Minimal, offline stand-in for `rand` 0.10.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and an `RngExt`
//! with `random()` / `random_range()` — the exact surface `mptcp-netsim`
//! uses. The generator is xoshiro256++ seeded through SplitMix64, which is
//! deterministic, fast, and good enough for simulation workloads; it makes
//! no cryptographic claims (neither do the call sites).

/// Construct a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The uniform-sampling extension trait (rand 0.10 spelling).
pub trait RngExt {
    /// Next raw 64 bits.
    fn next_u64_raw(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value in the given range. Panics on an empty range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Types producible uniformly from raw generator output.
pub trait FromRng {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64_raw()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64_raw() >> 32) as u32
    }
}

impl FromRng for u16 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64_raw() >> 48) as u16
    }
}

impl FromRng for u8 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64_raw() >> 56) as u8
    }
}

impl FromRng for usize {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64_raw() as usize
    }
}

impl FromRng for bool {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64_raw() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by `random_range`.
pub trait SampleRange {
    type Output;
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the modulo bias
                // of a plain `%` would be invisible at simulation scale, but
                // this is just as cheap.
                let hi = ((rng.next_u64_raw() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi - lo;
                if span == <$t>::MAX {
                    return <$t as FromRng>::from_rng(rng);
                }
                lo + (0..span + 1).sample(rng)
            }
        }
    )*};
}

impl_sample_range_uint!(u64, u32, u16, u8, usize);

pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand through SplitMix64 as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64_raw(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }
}
