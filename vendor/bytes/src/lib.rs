//! Minimal, offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset this workspace uses: an immutable,
//! cheaply-clonable byte buffer with zero-copy `slice()`. Backed by shared
//! storage plus a window, so clones and sub-slices share storage just like
//! the real crate. No `BytesMut`, no `Buf`/`BufMut` traits.
//!
//! Storage comes in two flavors: a plain `Arc<[u8]>` (the classic backing)
//! and an `Arc<dyn AsRef<[u8]>>` *owner* ([`Bytes::from_shared`]) so a
//! buffer pool can hand out views into pooled storage without copying and
//! observe, via the Arc strong count, when every view has died.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Shared storage behind a [`Bytes`] view.
#[derive(Clone)]
enum Data {
    /// An owned, immutable slice (the classic `Arc<[u8]>` backing).
    Slice(Arc<[u8]>),
    /// Arbitrary shared storage viewed through `AsRef<[u8]>`. Constructed
    /// without copying; the allocation is whatever the owner already holds.
    Owner(Arc<dyn AsRef<[u8]> + Send + Sync>),
}

impl Data {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Data::Slice(s) => s,
            Data::Owner(o) => (**o).as_ref(),
        }
    }
}

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes {
    data: Data,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer. Allocation-free: every empty `Bytes` shares one
    /// static storage object.
    pub fn new() -> Bytes {
        static EMPTY: std::sync::OnceLock<Arc<[u8]>> = std::sync::OnceLock::new();
        Bytes {
            data: Data::Slice(Arc::clone(EMPTY.get_or_init(|| Arc::from(&[][..])))),
            start: 0,
            end: 0,
        }
    }

    /// View the full contents of already-shared storage without copying.
    ///
    /// The returned `Bytes` (and everything sliced from it) holds a strong
    /// reference to `owner`; the caller can keep its own `Arc` and use
    /// `Arc::strong_count` to learn when all views have been dropped —
    /// the contract a recycling buffer pool needs.
    ///
    /// The storage must be immutable while any view exists: the view
    /// captures `owner.as_ref().len()` at construction time.
    pub fn from_shared(owner: Arc<dyn AsRef<[u8]> + Send + Sync>) -> Bytes {
        let end = (*owner).as_ref().len();
        Bytes {
            data: Data::Owner(owner),
            start: 0,
            end,
        }
    }

    /// Wrap a value implementing `AsRef<[u8]>` as shared storage.
    ///
    /// Allocates one `Arc` for the owner; the byte contents are not copied.
    pub fn from_owner<T: AsRef<[u8]> + Send + Sync + 'static>(owner: T) -> Bytes {
        Bytes::from_shared(Arc::new(owner))
    }

    /// Wrap a static slice (copies into shared storage; the real crate is
    /// zero-copy here, which only matters for allocation counts).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Data::Slice(Arc::from(data)),
            start: 0,
            end: data.len(),
        }
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-slice sharing the same storage.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice out of bounds: {begin}..{end} of {len}"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy the view into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Data::Slice(Arc::from(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if b == b'"' {
                write!(f, "\\\"")?;
            } else if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage_and_windows() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[1, 2, 3]);
        let tail = mid.slice(2..);
        assert_eq!(&tail[..], &[3]);
        let head = mid.slice(..1);
        assert_eq!(&head[..], &[1]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(vec![9u8, 9]);
        let b = Bytes::from_static(&[9, 9]);
        assert_eq!(a, b);
        assert_eq!(a, vec![9u8, 9]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        let b = Bytes::from(vec![1u8]);
        let _ = b.slice(0..2);
    }

    #[test]
    fn from_shared_views_without_copying() {
        let owner: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::new(vec![1u8, 2, 3, 4]);
        assert_eq!(Arc::strong_count(&owner), 1);
        let b = Bytes::from_shared(Arc::clone(&owner));
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        // The view (and any slice of it) pins the owner.
        let tail = b.slice(2..);
        assert_eq!(Arc::strong_count(&owner), 3);
        assert_eq!(&tail[..], &[3, 4]);
        drop(b);
        drop(tail);
        assert_eq!(Arc::strong_count(&owner), 1, "all views released");
    }

    #[test]
    fn from_owner_equals_by_content() {
        let b = Bytes::from_owner(vec![9u8, 9]);
        assert_eq!(b, Bytes::copy_from_slice(&[9, 9]));
        assert_eq!(b.slice(1..).len(), 1);
    }
}
