//! Property tests: receive-queue reassembly is lossless and duplicate-
//! proof for arbitrary out-of-order, overlapping delivery patterns.

use bytes::Bytes;
use mptcp_tcpstack::recvbuf::RecvQueue;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn reassembly_reproduces_the_stream(
        len in 1usize..400,
        pieces in proptest::collection::vec((any::<u16>(), 1u16..60), 1..60),
        seed_order in any::<u64>(),
    ) {
        // The ground-truth stream.
        let stream: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        // Random (offset, len) pieces, possibly overlapping, clipped to
        // the stream; plus a final full copy so every byte arrives.
        let mut deliveries: Vec<(usize, usize)> = pieces
            .into_iter()
            .map(|(off, l)| {
                let off = off as usize % len;
                let l = (l as usize).min(len - off);
                (off, l.max(1))
            })
            .collect();
        // Deterministic shuffle from the seed.
        let mut s = seed_order;
        for i in (1..deliveries.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            deliveries.swap(i, (s as usize) % (i + 1));
        }
        deliveries.push((0, len));

        let mut q = RecvQueue::new(usize::MAX / 2);
        for (off, l) in deliveries {
            q.insert(off as u64, Bytes::copy_from_slice(&stream[off..off + l]));
        }
        let mut got = Vec::new();
        while let Some(b) = q.read(usize::MAX) {
            got.extend_from_slice(&b);
        }
        prop_assert_eq!(got, stream);
        prop_assert_eq!(q.buffered(), 0);
        prop_assert_eq!(q.ooo_bytes(), 0);
    }

    #[test]
    fn window_never_exceeds_capacity(
        cap in 1usize..1000,
        inserts in proptest::collection::vec((0u16..50, 1u16..40), 0..30),
    ) {
        let mut q = RecvQueue::new(cap);
        for (off, l) in inserts {
            q.insert(u64::from(off) * 7, Bytes::from(vec![0u8; l as usize]));
            prop_assert!(q.window() as usize <= cap);
        }
    }
}
