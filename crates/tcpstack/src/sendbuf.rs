//! The chunked send queue.
//!
//! Data is enqueued as *chunks*: a payload plus the TCP options that must
//! accompany it on the wire. For plain TCP the options are empty and
//! adjacent chunks merge; for MPTCP each chunk carries its DSS mapping.
//! Two invariants make MPTCP's middlebox story work (§3.3.3–3.3.5):
//!
//! 1. A segment never spans two chunks that carry options, so a mapping is
//!    always transmitted with (some of) the bytes it maps.
//! 2. Retransmissions rebuild segments from the chunk queue, so a
//!    retransmitted mapping is byte-identical to the original — middleboxes
//!    that "re-assert original content" on inconsistent retransmissions
//!    (footnote 5) see nothing amiss.

use bytes::Bytes;
use mptcp_packet::{SeqNum, TcpOption};

/// One queued chunk.
#[derive(Clone, Debug)]
struct Chunk {
    /// Sequence number of the first payload byte.
    seq: SeqNum,
    payload: Bytes,
    options: Vec<TcpOption>,
}

impl Chunk {
    fn end(&self) -> SeqNum {
        self.seq + self.payload.len() as u32
    }
}

/// A segment's worth of data pulled out of the queue.
#[derive(Clone, Debug)]
pub struct SegmentData {
    /// Sequence number of the first byte.
    pub seq: SeqNum,
    /// Payload slice (zero-copy).
    pub payload: Bytes,
    /// Options of the chunk this segment was cut from.
    pub options: Vec<TcpOption>,
}

/// The send queue: a run of chunks covering `[una, end)` sequence space.
pub struct SendQueue {
    chunks: std::collections::VecDeque<Chunk>,
    /// Lowest unacknowledged sequence number.
    una: SeqNum,
    /// Next sequence number to be assigned to enqueued data.
    end: SeqNum,
    /// Cap on merging plain (option-less) chunks, to bound clone costs.
    max_merge: usize,
}

impl SendQueue {
    /// Create a queue starting at sequence `start` (typically ISS+1).
    pub fn new(start: SeqNum) -> SendQueue {
        SendQueue {
            chunks: std::collections::VecDeque::new(),
            una: start,
            end: start,
            max_merge: 64 * 1024,
        }
    }

    /// Bytes currently buffered (unacked + unsent).
    pub fn buffered(&self) -> usize {
        (self.end - self.una) as usize
    }

    /// Sequence number one past the last enqueued byte.
    pub fn end_seq(&self) -> SeqNum {
        self.end
    }

    /// Lowest unacknowledged sequence number.
    pub fn una_seq(&self) -> SeqNum {
        self.una
    }

    /// Enqueue a chunk; returns the sequence number it was assigned.
    pub fn enqueue(&mut self, payload: Bytes, options: Vec<TcpOption>) -> SeqNum {
        let seq = self.end;
        self.end += payload.len() as u32;
        // Merge option-less data into the previous option-less chunk so bulk
        // TCP traffic produces full-MSS segments.
        if options.is_empty() {
            if let Some(last) = self.chunks.back_mut() {
                if last.options.is_empty() && last.payload.len() + payload.len() <= self.max_merge {
                    let mut merged = Vec::with_capacity(last.payload.len() + payload.len());
                    merged.extend_from_slice(&last.payload);
                    merged.extend_from_slice(&payload);
                    last.payload = Bytes::from(merged);
                    return seq;
                }
            }
        }
        self.chunks.push_back(Chunk {
            seq,
            payload,
            options,
        });
        seq
    }

    /// Acknowledge everything before `ack`; returns bytes freed.
    pub fn ack_to(&mut self, ack: SeqNum) -> usize {
        if !ack.after(self.una) {
            return 0;
        }
        let ack = ack.min(self.end);
        let freed = (ack - self.una) as usize;
        self.una = ack;
        while let Some(front) = self.chunks.front() {
            if front.end().before_eq(ack) {
                self.chunks.pop_front();
            } else {
                break;
            }
        }
        // Trim a partially-acked front chunk. Its options stay attached to
        // the remainder: a duplicate DSS mapping is harmless (§3.3.4).
        if let Some(front) = self.chunks.front_mut() {
            if front.seq.before(ack) {
                let cut = (ack - front.seq) as usize;
                front.payload = front.payload.slice(cut..);
                front.seq = ack;
            }
        }
        freed
    }

    /// Extract up to `max_len` bytes starting at `from`, without crossing a
    /// chunk boundary. Returns `None` when `from` is at or past the end.
    pub fn segment_at(&self, from: SeqNum, max_len: usize) -> Option<SegmentData> {
        if !from.in_window(self.una, self.end - self.una) {
            return None;
        }
        let chunk = self
            .chunks
            .iter()
            .find(|c| from.after_eq(c.seq) && from.before(c.end()))?;
        let off = (from - chunk.seq) as usize;
        let take = (chunk.payload.len() - off).min(max_len);
        Some(SegmentData {
            seq: from,
            payload: chunk.payload.slice(off..off + take),
            options: chunk.options.clone(),
        })
    }

    /// The first unacknowledged segment (up to `max_len` bytes): what the
    /// paper's opportunistic retransmission resends on another subflow
    /// ("only considers the first unacknowledged segment", §4.2 M1).
    pub fn front_segment(&self, max_len: usize) -> Option<SegmentData> {
        self.segment_at(self.una, max_len)
    }

    /// True when `seq` still has unsent-or-unacked data after it.
    pub fn has_data_at(&self, seq: SeqNum) -> bool {
        seq.before(self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> SendQueue {
        SendQueue::new(SeqNum(1000))
    }

    fn opt() -> Vec<TcpOption> {
        vec![TcpOption::WindowScale(1)]
    }

    #[test]
    fn enqueue_assigns_sequence() {
        let mut s = q();
        assert_eq!(s.enqueue(Bytes::from_static(b"abc"), vec![]), SeqNum(1000));
        assert_eq!(s.enqueue(Bytes::from_static(b"defg"), vec![]), SeqNum(1003));
        assert_eq!(s.buffered(), 7);
        assert_eq!(s.end_seq(), SeqNum(1007));
    }

    #[test]
    fn plain_chunks_merge() {
        let mut s = q();
        s.enqueue(Bytes::from_static(b"aaa"), vec![]);
        s.enqueue(Bytes::from_static(b"bbb"), vec![]);
        // One merged chunk: a segment can span both writes.
        let seg = s.segment_at(SeqNum(1000), 100).unwrap();
        assert_eq!(&seg.payload[..], b"aaabbb");
    }

    #[test]
    fn option_chunks_do_not_merge() {
        let mut s = q();
        s.enqueue(Bytes::from_static(b"aaa"), opt());
        s.enqueue(Bytes::from_static(b"bbb"), opt());
        let seg = s.segment_at(SeqNum(1000), 100).unwrap();
        assert_eq!(&seg.payload[..], b"aaa"); // stops at chunk boundary
        let seg2 = s.segment_at(SeqNum(1003), 100).unwrap();
        assert_eq!(&seg2.payload[..], b"bbb");
    }

    #[test]
    fn segment_respects_mss() {
        let mut s = q();
        s.enqueue(Bytes::from(vec![0u8; 5000]), vec![]);
        let seg = s.segment_at(SeqNum(1000), 1460).unwrap();
        assert_eq!(seg.payload.len(), 1460);
        let seg = s.segment_at(SeqNum(1000 + 4000), 1460).unwrap();
        assert_eq!(seg.payload.len(), 1000);
    }

    #[test]
    fn split_segments_carry_chunk_options() {
        // TSO behaviour: every segment cut from a chunk carries its options.
        let mut s = q();
        s.enqueue(Bytes::from(vec![1u8; 3000]), opt());
        let a = s.segment_at(SeqNum(1000), 1460).unwrap();
        let b = s.segment_at(SeqNum(2460), 1460).unwrap();
        assert_eq!(a.options, opt());
        assert_eq!(b.options, opt());
    }

    #[test]
    fn ack_frees_and_trims() {
        let mut s = q();
        s.enqueue(Bytes::from_static(b"hello"), opt());
        s.enqueue(Bytes::from_static(b"world"), opt());
        assert_eq!(s.ack_to(SeqNum(1003)), 3);
        assert_eq!(s.buffered(), 7);
        // Partial chunk trimmed but options retained for the remainder.
        let seg = s.segment_at(SeqNum(1003), 100).unwrap();
        assert_eq!(&seg.payload[..], b"lo");
        assert_eq!(seg.options, opt());
        assert_eq!(s.ack_to(SeqNum(1010)), 7);
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn stale_and_overshooting_acks() {
        let mut s = q();
        s.enqueue(Bytes::from_static(b"abc"), vec![]);
        assert_eq!(s.ack_to(SeqNum(999)), 0); // old ack ignored
        assert_eq!(s.ack_to(SeqNum(2000)), 3); // clamped to end
        assert_eq!(s.una_seq(), SeqNum(1003));
    }

    #[test]
    fn front_segment_is_una() {
        let mut s = q();
        s.enqueue(Bytes::from_static(b"abcdef"), vec![]);
        s.ack_to(SeqNum(1002));
        let f = s.front_segment(2).unwrap();
        assert_eq!(f.seq, SeqNum(1002));
        assert_eq!(&f.payload[..], b"cd");
    }

    #[test]
    fn segment_past_end_is_none() {
        let mut s = q();
        s.enqueue(Bytes::from_static(b"ab"), vec![]);
        assert!(s.segment_at(SeqNum(1002), 10).is_none());
        assert!(s.front_segment(10).is_some());
        s.ack_to(SeqNum(1002));
        assert!(s.front_segment(10).is_none());
    }
}
