//! RTT estimation and RTO computation (RFC 6298).

use mptcp_netsim::Duration;

/// Exponentially-weighted RTT estimator with Jacobson/Karels variance.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    /// Smallest RTT ever observed — the "base RTT" used by the paper's
    /// mechanism 4 (cap cwnd when smoothed RTT is double the base RTT).
    min_rtt: Option<Duration>,
    min_rto: Duration,
    max_rto: Duration,
}

impl RttEstimator {
    /// New estimator with RTO clamped to `[min_rto, max_rto]`.
    pub fn new(min_rto: Duration, max_rto: Duration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: Duration::ZERO,
            min_rtt: None,
            min_rto,
            max_rto,
        }
    }

    /// Incorporate one RTT sample.
    pub fn on_sample(&mut self, rtt: Duration) {
        self.min_rtt = Some(match self.min_rtt {
            Some(m) if m <= rtt => m,
            _ => rtt,
        });
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = srtt.abs_diff(rtt);
                self.rttvar = (self.rttvar * 3 + delta) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
    }

    /// Smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// RTT variance estimate.
    pub fn rttvar(&self) -> Duration {
        self.rttvar
    }

    /// Minimum RTT observed (base RTT / propagation estimate).
    pub fn min_rtt(&self) -> Option<Duration> {
        self.min_rtt
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Duration {
        match self.srtt {
            None => Duration::from_secs(1).max(self.min_rto),
            Some(srtt) => {
                let var4 = self.rttvar * 4;
                let granularity = Duration::from_millis(1);
                (srtt + var4.max(granularity)).clamp(self.min_rto, self.max_rto)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(Duration::from_millis(200), Duration::from_secs(60))
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        assert_eq!(e.rto(), Duration::from_secs(1));
        e.on_sample(Duration::from_millis(100));
        assert_eq!(e.srtt(), Some(Duration::from_millis(100)));
        assert_eq!(e.rttvar(), Duration::from_millis(50));
        // RTO = srtt + 4*rttvar = 100 + 200 = 300ms.
        assert_eq!(e.rto(), Duration::from_millis(300));
    }

    #[test]
    fn converges_on_stable_rtt() {
        let mut e = est();
        for _ in 0..50 {
            e.on_sample(Duration::from_millis(80));
        }
        let srtt = e.srtt().unwrap();
        assert!(srtt >= Duration::from_millis(79) && srtt <= Duration::from_millis(81));
        // Variance decays toward zero; RTO bottoms out at min_rto.
        assert_eq!(e.rto(), Duration::from_millis(200));
    }

    #[test]
    fn min_rtt_tracks_floor() {
        let mut e = est();
        e.on_sample(Duration::from_millis(100));
        e.on_sample(Duration::from_millis(20));
        e.on_sample(Duration::from_millis(500));
        assert_eq!(e.min_rtt(), Some(Duration::from_millis(20)));
    }

    #[test]
    fn rto_clamped_to_max() {
        let mut e = RttEstimator::new(Duration::from_millis(200), Duration::from_secs(2));
        e.on_sample(Duration::from_secs(10));
        assert_eq!(e.rto(), Duration::from_secs(2));
    }

    #[test]
    fn variance_reacts_to_jitter() {
        let mut e = est();
        e.on_sample(Duration::from_millis(100));
        e.on_sample(Duration::from_millis(300));
        assert!(e.rttvar() > Duration::from_millis(50));
        assert!(e.rto() > Duration::from_millis(300));
    }
}
