//! The TCP connection state machine states (RFC 793).

/// TCP connection states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open; waiting for a SYN (used transiently — listeners in
    /// this codebase accept directly into `SynReceived`).
    Listen,
    /// Active open; SYN sent.
    SynSent,
    /// SYN received; SYN/ACK sent.
    SynReceived,
    /// Data transfer.
    Established,
    /// Our FIN sent, not yet acked; peer still open.
    FinWait1,
    /// Our FIN acked; waiting for peer's FIN.
    FinWait2,
    /// Peer's FIN received; we may still send.
    CloseWait,
    /// Both FINs in flight (simultaneous close).
    Closing,
    /// Peer's FIN received and our FIN sent, awaiting final ACK.
    LastAck,
    /// Connection done; lingering to absorb stray segments.
    TimeWait,
}

impl TcpState {
    /// May the application still enqueue data for sending?
    pub fn can_send(self) -> bool {
        matches!(self, TcpState::Established | TcpState::CloseWait)
    }

    /// May data still arrive from the peer?
    pub fn can_receive(self) -> bool {
        matches!(
            self,
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
        )
    }

    /// Is the handshake complete (data may flow in at least one direction)?
    pub fn is_synchronized(self) -> bool {
        !matches!(
            self,
            TcpState::Closed | TcpState::Listen | TcpState::SynSent | TcpState::SynReceived
        )
    }

    /// Has the connection fully terminated?
    pub fn is_closed(self) -> bool {
        matches!(self, TcpState::Closed | TcpState::TimeWait)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(TcpState::Established.can_send());
        assert!(TcpState::CloseWait.can_send());
        assert!(!TcpState::FinWait1.can_send());
        assert!(TcpState::FinWait2.can_receive());
        assert!(!TcpState::CloseWait.can_receive());
        assert!(TcpState::Established.is_synchronized());
        assert!(!TcpState::SynSent.is_synchronized());
        assert!(TcpState::TimeWait.is_closed());
        assert!(!TcpState::LastAck.is_closed());
    }
}
