//! The TCP socket state machine.
//!
//! One [`TcpSocket`] is one TCP connection end — or one MPTCP *subflow*,
//! since "subflows resemble TCP flows on the wire" (§3). The socket is
//! driven entirely by [`TcpSocket::handle_segment`] (input),
//! [`TcpSocket::poll`] (output, one segment per call), and
//! [`TcpSocket::poll_at`] (timer deadline).

use bytes::Bytes;
use mptcp_netsim::{Duration, SimTime};
use mptcp_packet::{FourTuple, MptcpOption, SeqNum, TcpFlags, TcpOption, TcpSegment};
use mptcp_telemetry::{CounterId, EventKind, Recorder, TraceRecord, Tracer};

use crate::cc::{CongestionControl, Reno};
use crate::config::TcpConfig;
use crate::recvbuf::RecvQueue;
use crate::rtt::RttEstimator;
use crate::sendbuf::{SegmentData, SendQueue};
use crate::state::TcpState;

/// Counters for instrumentation and the paper's measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct SocketStats {
    /// Segments emitted.
    pub segs_out: u64,
    /// Segments processed.
    pub segs_in: u64,
    /// Payload bytes emitted (including retransmissions).
    pub bytes_out: u64,
    /// Payload bytes cumulatively acknowledged.
    pub bytes_acked: u64,
    /// Fast retransmissions triggered.
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired.
    pub rtos: u64,
    /// SYN retransmissions.
    pub syn_retransmits: u64,
    /// Segments retransmitted (any reason).
    pub retransmitted_segs: u64,
    /// Pure window-probe segments sent.
    pub probes: u64,
}

/// A single TCP connection endpoint.
pub struct TcpSocket {
    cfg: TcpConfig,
    state: TcpState,
    tuple: FourTuple,

    iss: SeqNum,
    irs: SeqNum,
    snd_una: SeqNum,
    snd_nxt: SeqNum,
    snd_wnd: u32,
    wl1: SeqNum,
    wl2: SeqNum,
    rcv_nxt: SeqNum,

    send_q: SendQueue,
    recv_q: RecvQueue,
    sbuf_cap: usize,

    rtt: RttEstimator,
    cc: Box<dyn CongestionControl>,
    effective_mss: usize,
    peer_wscale: u8,

    // Timers.
    rto_deadline: Option<SimTime>,
    rto_backoff: u32,
    consecutive_rtos: u32,
    delack_deadline: Option<SimTime>,
    persist_deadline: Option<SimTime>,
    persist_backoff: u32,
    timewait_deadline: Option<SimTime>,
    /// Last time the bufferbloat cap (M4) was applied.
    last_cap_at: Option<SimTime>,

    // Recovery.
    dup_acks: u32,
    in_recovery: bool,
    recover: SeqNum,
    pending_retransmit: Option<SeqNum>,
    /// Post-RTO go-back-N: retransmit [snd_una, recover) paced by cwnd.
    rto_recovery: bool,
    /// Next sequence to retransmit during RTO recovery.
    retx_nxt: SeqNum,

    // Output intents.
    syn_needs_send: bool,
    synack_needs_send: bool,
    need_ack: bool,
    probe_pending: bool,
    rst_pending: bool,
    fin_queued: bool,
    fin_sent: bool,
    fin_seq: Option<SeqNum>,
    fin_received: bool,

    // Timestamps (RFC 1323) for RTT sampling.
    ts_recent: u32,
    /// Send times of timestamp values, for RTT computation: we echo the
    /// peer's clock, so we need our own epoch only.
    epoch: SimTime,

    // Advertised-window bookkeeping (window updates).
    last_adv_right_edge: SeqNum,

    // Extension points for MPTCP.
    syn_options: Vec<TcpOption>,
    carry_options: Vec<TcpOption>,
    oneshot_options: Vec<TcpOption>,
    window_override: Option<u32>,
    /// MPTCP options harvested from every incoming segment, in order.
    rx_mptcp: Vec<MptcpOption>,

    /// Set when the connection was reset or timed out.
    error: bool,
    /// Counters.
    pub stats: SocketStats,
    /// Structured telemetry: counters plus a bounded event ring. An MPTCP
    /// connection absorbs this into its own recorder per snapshot.
    pub telemetry: Recorder,
    /// Tag stamped into telemetry events (the owning subflow's index;
    /// 0 for plain TCP).
    telemetry_tag: u32,
    /// Time-series tracer: cwnd/ssthresh/srtt/in-flight samples on every
    /// congestion-control event plus the configured interval. Disabled by
    /// default (config-gated, no allocation, one branch on the hot path).
    pub tracer: Tracer,
}

impl TcpSocket {
    /// Create an active opener (client). The first [`TcpSocket::poll`]
    /// emits a SYN carrying `syn_options` (e.g. MP_CAPABLE or MP_JOIN).
    pub fn client(
        cfg: TcpConfig,
        tuple: FourTuple,
        iss: SeqNum,
        now: SimTime,
        syn_options: Vec<TcpOption>,
    ) -> TcpSocket {
        let mut s = TcpSocket::common(cfg, tuple, iss, now);
        s.state = TcpState::SynSent;
        s.syn_needs_send = true;
        s.syn_options = syn_options;
        s
    }

    /// Create a passive opener directly from a received SYN. The first
    /// [`TcpSocket::poll`] emits the SYN/ACK carrying `syn_options`.
    pub fn accept(
        cfg: TcpConfig,
        syn: &TcpSegment,
        iss: SeqNum,
        now: SimTime,
        syn_options: Vec<TcpOption>,
    ) -> TcpSocket {
        let mut s = TcpSocket::common(cfg, syn.tuple.reversed(), iss, now);
        s.state = TcpState::SynReceived;
        s.synack_needs_send = true;
        s.syn_options = syn_options;
        s.irs = syn.seq;
        s.rcv_nxt = syn.seq + 1;
        s.snd_wnd = syn.window;
        s.wl1 = syn.seq;
        s.wl2 = SeqNum(0);
        s.absorb_syn_options(syn);
        s.harvest_mptcp(syn);
        s.stats.segs_in += 1;
        s
    }

    fn common(cfg: TcpConfig, tuple: FourTuple, iss: SeqNum, now: SimTime) -> TcpSocket {
        let rtt = RttEstimator::new(cfg.min_rto, cfg.max_rto);
        let cc = Box::new(Reno::new(cfg.mss as u32, cfg.init_cwnd_segs));
        let rbuf = if cfg.autotune {
            (16 * cfg.mss).min(cfg.recv_buf)
        } else {
            cfg.recv_buf
        };
        let sbuf = if cfg.autotune {
            (16 * cfg.mss).min(cfg.send_buf)
        } else {
            cfg.send_buf
        };
        TcpSocket {
            effective_mss: cfg.mss,
            state: TcpState::Closed,
            tuple,
            iss,
            irs: SeqNum(0),
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 0,
            wl1: SeqNum(0),
            wl2: SeqNum(0),
            rcv_nxt: SeqNum(0),
            send_q: SendQueue::new(iss + 1),
            recv_q: RecvQueue::new(rbuf),
            sbuf_cap: sbuf,
            rtt,
            cc,
            peer_wscale: 0,
            rto_deadline: None,
            rto_backoff: 1,
            consecutive_rtos: 0,
            delack_deadline: None,
            persist_deadline: None,
            persist_backoff: 1,
            timewait_deadline: None,
            last_cap_at: None,
            dup_acks: 0,
            in_recovery: false,
            recover: iss,
            pending_retransmit: None,
            rto_recovery: false,
            retx_nxt: iss,
            syn_needs_send: false,
            synack_needs_send: false,
            need_ack: false,
            probe_pending: false,
            rst_pending: false,
            fin_queued: false,
            fin_sent: false,
            fin_seq: None,
            fin_received: false,
            ts_recent: 0,
            epoch: now,
            last_adv_right_edge: SeqNum(0),
            syn_options: Vec::new(),
            carry_options: Vec::new(),
            oneshot_options: Vec::new(),
            window_override: None,
            rx_mptcp: Vec::new(),
            error: false,
            stats: SocketStats::default(),
            telemetry: Recorder::new(),
            telemetry_tag: 0,
            tracer: Tracer::new(cfg.trace),
            cfg,
        }
    }

    /// Tag telemetry events emitted by this socket (the subflow index
    /// when the socket backs an MPTCP subflow).
    pub fn set_telemetry_tag(&mut self, tag: u32) {
        self.telemetry_tag = tag;
    }

    /// Replace the tracer (the MPTCP connection installs one per subflow
    /// from its own trace configuration).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Record a [`TraceRecord::SubflowSample`] of the congestion and
    /// sequence state. Called internally on every congestion-control
    /// event; the owning connection also calls it on the sampling
    /// interval. One branch and no work when tracing is disabled.
    pub fn trace_sample(&mut self, now: SimTime) {
        if !self.tracer.is_enabled() {
            return;
        }
        let rec = TraceRecord::SubflowSample {
            at_ns: now.0,
            subflow: self.telemetry_tag,
            cwnd: self.cc.cwnd(),
            ssthresh: self.cc.ssthresh(),
            srtt_us: self.rtt.srtt().map_or(0, |d| d.as_nanos() as u64 / 1000),
            in_flight: self.bytes_in_flight(),
            snd_nxt: self.snd_nxt.0,
            rcv_nxt: self.rcv_nxt.0,
        };
        self.tracer.record(rec);
    }

    /// Record a span event against this subflow's trace series.
    fn trace_span(&mut self, now: SimTime, kind: EventKind) {
        if self.tracer.is_enabled() {
            self.tracer.record(TraceRecord::Span {
                at_ns: now.0,
                subflow: self.telemetry_tag,
                kind,
            });
        }
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// Connection state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// The socket's four-tuple (local = src).
    pub fn tuple(&self) -> FourTuple {
        self.tuple
    }

    /// Has the handshake completed?
    pub fn is_established(&self) -> bool {
        self.state.is_synchronized() && !self.error
    }

    /// Did the connection fail (RST or persistent timeout)?
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// Initial send sequence number.
    pub fn iss(&self) -> SeqNum {
        self.iss
    }

    /// Initial receive sequence number.
    pub fn irs(&self) -> SeqNum {
        self.irs
    }

    /// Smoothed RTT.
    pub fn srtt(&self) -> Option<Duration> {
        self.rtt.srtt()
    }

    /// Base (minimum observed) RTT.
    pub fn base_rtt(&self) -> Option<Duration> {
        self.rtt.min_rtt()
    }

    /// Current retransmission timeout. The exponential backoff multiplier
    /// is applied after the estimator's clamp, so cap the product too —
    /// otherwise a dead path's RTO walks out to `max_rto * 512`.
    pub fn rto(&self) -> Duration {
        (self.rtt.rto() * self.rto_backoff).min(self.cfg.max_rto)
    }

    /// Consecutive RTO fires without an intervening new ACK. Path-failure
    /// detection at the MPTCP layer reads this to demote a subflow before
    /// the socket itself gives up.
    pub fn consecutive_rtos(&self) -> u32 {
        self.consecutive_rtos
    }

    /// Congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cc.cwnd()
    }

    /// Mutable access to the congestion controller (penalization, capping,
    /// algorithm swaps).
    pub fn cc_mut(&mut self) -> &mut dyn CongestionControl {
        &mut *self.cc
    }

    /// Replace the congestion control algorithm (e.g. install [`crate::Lia`]).
    pub fn set_cc(&mut self, cc: Box<dyn CongestionControl>) {
        self.cc = cc;
    }

    /// Is the socket currently in fast or RTO loss recovery?
    pub fn in_loss_recovery(&self) -> bool {
        self.in_recovery || self.rto_recovery
    }

    /// Bytes in flight (sent, not yet cumulatively acked).
    pub fn bytes_in_flight(&self) -> u32 {
        self.snd_nxt - self.snd_una
    }

    /// Peer's advertised window in bytes.
    pub fn peer_window(&self) -> u32 {
        self.snd_wnd
    }

    /// Effective MSS after negotiation.
    pub fn mss(&self) -> usize {
        self.effective_mss
    }

    /// Bytes queued in the send buffer (unacked + unsent).
    pub fn bytes_queued(&self) -> usize {
        self.send_q.buffered()
    }

    /// Free space in the send buffer.
    pub fn send_space(&self) -> usize {
        self.sbuf_cap.saturating_sub(self.send_q.buffered())
    }

    /// Current send buffer capacity (autotuned).
    pub fn send_capacity(&self) -> usize {
        self.sbuf_cap
    }

    /// Current receive buffer capacity (autotuned).
    pub fn recv_capacity(&self) -> usize {
        self.recv_q.capacity()
    }

    /// Bytes held in the receive buffer (for memory accounting).
    pub fn recv_buffered(&self) -> usize {
        self.recv_q.buffered()
    }

    /// Has the peer's FIN been received (stream EOF)?
    pub fn stream_fin(&self) -> bool {
        self.fin_received
    }

    /// Has our FIN been sent and acknowledged?
    pub fn fin_acked(&self) -> bool {
        match self.fin_seq {
            Some(fs) => self.snd_una.after(fs),
            None => false,
        }
    }

    /// 1-based relative offset the next enqueued byte will get on this
    /// subflow (the DSS `subflow_seq` for a mapping starting there).
    pub fn next_tx_offset(&self) -> u64 {
        u64::from(self.send_q.end_seq() - self.iss)
    }

    /// Drain MPTCP options harvested from incoming segments.
    pub fn take_rx_mptcp(&mut self) -> Vec<MptcpOption> {
        std::mem::take(&mut self.rx_mptcp)
    }

    /// Read in-order payload with its 0-based stream offset.
    pub fn read_stream(&mut self, max: usize) -> Option<(u64, Bytes)> {
        self.recv_q.read_with_offset(max)
    }

    /// Read in-order payload (plain TCP application API).
    pub fn read(&mut self, max: usize) -> Option<Bytes> {
        self.recv_q.read(max)
    }

    /// Set options attached to every outgoing segment (e.g. the DATA_ACK).
    pub fn set_carry_options(&mut self, opts: Vec<TcpOption>) {
        self.carry_options = opts;
    }

    /// Queue options to ride on the *next* outgoing segment only
    /// (ADD_ADDR, REMOVE_ADDR, DATA_FIN, MP_FAIL). Also schedules a pure
    /// ACK so they go out promptly even with no data pending.
    pub fn queue_oneshot_options(&mut self, opts: Vec<TcpOption>) {
        self.oneshot_options.extend(opts);
        self.need_ack = true;
    }

    /// Are one-shot options still waiting for a carrier segment?
    pub fn oneshot_pending(&self) -> bool {
        !self.oneshot_options.is_empty()
    }

    /// Override the advertised receive window (MPTCP shared buffer pool).
    pub fn set_window_override(&mut self, window: Option<u32>) {
        self.window_override = window;
    }

    /// Ask the socket to emit a pure ACK at the next poll (window updates
    /// driven by connection-level buffer changes).
    pub fn request_ack(&mut self) {
        self.need_ack = true;
    }

    /// Probe a possibly-dead path right now instead of waiting for the
    /// backed-off RTO: schedule an immediate retransmission of the first
    /// unacked segment (which elicits an ACK if the path works again), or
    /// a pure ACK when nothing is outstanding. Used by MPTCP path-failure
    /// recovery to re-test Suspect/Failed subflows.
    pub fn probe_path(&mut self, now: SimTime) {
        if !self.state.is_synchronized() || self.error {
            return;
        }
        if self.snd_una.before(self.snd_nxt) {
            self.pending_retransmit = Some(self.snd_una);
            if self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
        } else {
            self.need_ack = true;
        }
    }

    /// First unacknowledged segment's data, for opportunistic
    /// retransmission on another subflow (M1).
    pub fn front_unacked(&self) -> Option<SegmentData> {
        if self.snd_nxt == self.snd_una {
            return None;
        }
        self.send_q.front_segment(self.effective_mss)
    }

    // ------------------------------------------------------------------
    // Application API.
    // ------------------------------------------------------------------

    /// Enqueue payload with per-chunk options (the MPTCP mapping path).
    ///
    /// Returns `false` (and enqueues nothing) if the send buffer lacks
    /// space or the state forbids sending.
    pub fn send_chunk(&mut self, payload: Bytes, options: Vec<TcpOption>) -> bool {
        if !self.state.can_send() && self.state != TcpState::SynSent {
            return false;
        }
        if self.fin_queued || payload.len() > self.send_space() {
            return false;
        }
        self.maybe_grow_sbuf(payload.len());
        self.send_q.enqueue(payload, options);
        true
    }

    /// The sending direction can accept no more data, ever: the state is
    /// past the sending states or a FIN has been queued via
    /// [`TcpSocket::close`]. Distinguishes a `send` that returned 0 for
    /// lack of buffer space (retry later) from one that will return 0
    /// forever.
    pub fn send_closed(&self) -> bool {
        (!self.state.can_send() && self.state != TcpState::SynSent) || self.fin_queued
    }

    /// Enqueue plain payload (TCP application write). Returns bytes taken.
    pub fn send(&mut self, payload: &[u8]) -> usize {
        if self.send_closed() {
            return 0;
        }
        let take = payload.len().min(self.send_space());
        if take > 0 {
            self.maybe_grow_sbuf(take);
            self.send_q
                .enqueue(Bytes::copy_from_slice(&payload[..take]), Vec::new());
        }
        take
    }

    fn maybe_grow_sbuf(&mut self, incoming: usize) {
        if !self.cfg.autotune {
            return;
        }
        while self.send_q.buffered() + incoming > self.sbuf_cap / 2
            && self.sbuf_cap < self.cfg.send_buf
        {
            self.sbuf_cap = (self.sbuf_cap * 2).min(self.cfg.send_buf);
        }
    }

    /// Close the send direction: a FIN goes out once the queue drains.
    pub fn close(&mut self) {
        if matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::SynSent | TcpState::SynReceived
        ) {
            self.fin_queued = true;
        }
    }

    /// Abort: emit RST and drop to `Closed`.
    pub fn abort(&mut self) {
        if self.state.is_synchronized() || self.state == TcpState::SynReceived {
            self.rst_pending = true;
        }
        self.state = TcpState::Closed;
        self.error = true;
        self.clear_timers();
    }

    fn clear_timers(&mut self) {
        self.rto_deadline = None;
        self.delack_deadline = None;
        self.persist_deadline = None;
        self.timewait_deadline = None;
    }

    // ------------------------------------------------------------------
    // Input.
    // ------------------------------------------------------------------

    /// Process an incoming segment addressed to this socket.
    pub fn handle_segment(&mut self, now: SimTime, seg: &TcpSegment) {
        self.stats.segs_in += 1;
        match self.state {
            TcpState::Closed | TcpState::Listen => {}
            TcpState::SynSent => self.handle_syn_sent(now, seg),
            _ => self.handle_synchronized(now, seg),
        }
    }

    fn handle_syn_sent(&mut self, now: SimTime, seg: &TcpSegment) {
        if seg.flags.rst {
            if seg.flags.ack && seg.ack == self.iss + 1 {
                self.enter_error();
            }
            return;
        }
        if seg.flags.syn && seg.flags.ack {
            if seg.ack != self.iss + 1 {
                return; // bogus ack; a real stack would RST
            }
            self.irs = seg.seq;
            self.rcv_nxt = seg.seq + 1;
            self.snd_una = seg.ack;
            self.snd_wnd = seg.window;
            self.wl1 = seg.seq;
            self.wl2 = seg.ack;
            self.absorb_syn_options(seg);
            self.harvest_mptcp(seg);
            self.sample_rtt_from_ts(now, seg);
            self.state = TcpState::Established;
            self.rto_deadline = None;
            self.rto_backoff = 1;
            self.consecutive_rtos = 0;
            self.need_ack = true;
        } else if seg.flags.syn {
            // Simultaneous open.
            self.irs = seg.seq;
            self.rcv_nxt = seg.seq + 1;
            self.absorb_syn_options(seg);
            self.harvest_mptcp(seg);
            self.state = TcpState::SynReceived;
            self.synack_needs_send = true;
        }
    }

    fn handle_synchronized(&mut self, now: SimTime, seg: &TcpSegment) {
        if seg.flags.rst {
            // Accept an in-window RST.
            if self.seq_acceptable(seg) {
                self.enter_error();
            }
            return;
        }
        if seg.flags.syn {
            // Duplicate SYN (our SYN/ACK was lost): re-ack.
            if seg.seq == self.irs {
                self.synack_needs_send = self.state == TcpState::SynReceived;
                self.need_ack = true;
            }
            if self.state == TcpState::SynReceived {
                return;
            }
        }

        // Harvest MPTCP options from anything plausibly belonging to the
        // connection, including out-of-window duplicates: the DSS mapping
        // is position-independent (§3.3.4).
        self.harvest_mptcp(seg);

        if seg.flags.ack {
            self.process_ack(now, seg);
        }

        if !seg.payload.is_empty() {
            self.process_payload(now, seg);
        }

        if seg.flags.fin {
            self.process_fin(seg);
        }

        // Timestamp echo bookkeeping.
        if let Some(TcpOption::Timestamps { val, .. }) = seg
            .options
            .iter()
            .find(|o| matches!(o, TcpOption::Timestamps { .. }))
        {
            if seg.seq.before_eq(self.rcv_nxt) {
                self.ts_recent = *val;
            }
        }
    }

    fn seq_acceptable(&self, seg: &TcpSegment) -> bool {
        let wnd = self.adv_window().max(1);
        seg.seq_end().after_eq(self.rcv_nxt) && seg.seq.before(self.rcv_nxt + wnd)
    }

    fn process_ack(&mut self, now: SimTime, seg: &TcpSegment) {
        let ack = seg.ack;
        let flight_before = self.bytes_in_flight();
        let window_changed = seg.window != self.snd_wnd;

        // SYN/ACK completion on the passive side.
        if self.state == TcpState::SynReceived {
            if ack == self.iss + 1 {
                self.state = TcpState::Established;
                self.snd_una = ack;
                self.snd_wnd = seg.window;
                self.wl1 = seg.seq;
                self.wl2 = seg.ack;
                self.rto_deadline = None;
                self.rto_backoff = 1;
                self.consecutive_rtos = 0;
                self.sample_rtt_from_ts(now, seg);
            }
            if !self.state.is_synchronized() {
                return;
            }
        }

        if ack.after(self.snd_nxt_with_fin()) {
            // Acks data we never sent; ignore (a defensive stack ACKs).
            self.need_ack = true;
            return;
        }

        // Window update (RFC 793 WL1/WL2 test).
        if self.wl1.before(seg.seq) || (self.wl1 == seg.seq && self.wl2.before_eq(ack)) {
            self.snd_wnd = seg.window;
            self.wl1 = seg.seq;
            self.wl2 = ack;
        }

        if ack.after(self.snd_una) {
            let mut newly = ack - self.snd_una;
            // A FIN occupies sequence space but is not buffer data.
            if let Some(fs) = self.fin_seq {
                if ack.after(fs) {
                    newly = newly.saturating_sub(1);
                }
            }
            self.send_q.ack_to(ack);
            self.snd_una = ack;
            self.stats.bytes_acked += u64::from(newly);
            let rtt_sample = self.sample_rtt_from_ts(now, seg);
            self.rto_backoff = 1;
            self.consecutive_rtos = 0;
            self.dup_acks = 0;

            if self.rto_recovery {
                self.retx_nxt = self.retx_nxt.max(self.snd_una);
                if ack.after_eq(self.recover) {
                    self.rto_recovery = false;
                }
                self.cc.on_ack(now, newly, rtt_sample);
            } else if self.in_recovery {
                if ack.after_eq(self.recover) {
                    self.in_recovery = false;
                    self.cc.on_recovery_exit();
                } else {
                    // NewReno partial ACK: retransmit the next hole. The
                    // send window during recovery is computed from
                    // ssthresh + dup_acks (see `effective_cwnd`), so the
                    // reset of `dup_acks` above deflates it automatically.
                    self.pending_retransmit = Some(self.snd_una);
                }
            } else {
                // Congestion-window validation: only grow when the flow
                // was actually cwnd-limited, else an application- or
                // receive-window-limited flow inflates cwnd without bound
                // (catastrophic on bufferbloated paths).
                let cwnd_limited = flight_before + 2 * self.effective_mss as u32 >= self.cc.cwnd();
                if cwnd_limited {
                    self.cc.on_ack(now, newly, rtt_sample);
                }
            }

            // M4 / FreeBSD inflight: cap cwnd when the path is bufferbloated.
            if self.cfg.cap_cwnd_on_bufferbloat {
                self.apply_bufferbloat_cap(now);
            }

            // Trace the post-ACK congestion state (ACKs that advance
            // snd_una are the congestion-control events of interest).
            self.trace_sample(now);

            if self.snd_una == self.snd_nxt_with_fin() {
                self.rto_deadline = None;
            } else {
                self.rto_deadline = Some(now + self.rto());
            }

            // FIN acknowledged?
            if self.fin_acked() {
                match self.state {
                    TcpState::FinWait1 => self.state = TcpState::FinWait2,
                    TcpState::Closing => self.enter_timewait(now),
                    TcpState::LastAck => {
                        self.state = TcpState::Closed;
                        self.clear_timers();
                    }
                    _ => {}
                }
            }
        } else if ack == self.snd_una
            && seg.payload.is_empty()
            && !seg.flags.syn
            && !seg.flags.fin
            // A genuine duplicate ACK either leaves the window unchanged or
            // carries a SACK block (the receiver is holding out-of-order
            // data). Window-only updates — e.g. MPTCP's shared-pool window
            // moving because the *other* subflow delivered — must not
            // trigger spurious fast retransmits.
            && (!window_changed
                || seg.options.iter().any(|o| matches!(o, TcpOption::Sack(_))))
            && self.snd_nxt.after(self.snd_una)
        {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery {
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                // Clamp the flight estimate to cwnd: data sent beyond the
                // (since-collapsed) window is mostly sitting in drop-tail
                // queues or lost, and must not inflate ssthresh.
                self.cc
                    .on_fast_retransmit(now, self.bytes_in_flight().min(self.cc.cwnd()));
                self.pending_retransmit = Some(self.snd_una);
                self.stats.fast_retransmits += 1;
                self.telemetry.count(CounterId::TcpFastRetransmits);
                self.telemetry.event(
                    now.0,
                    EventKind::TcpFastRetransmit {
                        subflow: self.telemetry_tag,
                        seq: self.snd_una.0,
                    },
                );
                self.trace_span(
                    now,
                    EventKind::TcpFastRetransmit {
                        subflow: self.telemetry_tag,
                        seq: self.snd_una.0,
                    },
                );
                self.trace_sample(now);
            }
            // Window inflation during recovery is handled by
            // `effective_cwnd` (pipe conservation: each duplicate ACK
            // means one segment left the network).
        }

        // Zero-window handling: arm/disarm the persist timer.
        if self.snd_wnd == 0 && self.send_q.has_data_at(self.snd_nxt) {
            if self.persist_deadline.is_none() {
                self.persist_backoff = 1;
                self.persist_deadline = Some(now + self.persist_interval());
            }
        } else {
            self.persist_deadline = None;
            self.persist_backoff = 1;
        }
    }

    fn apply_bufferbloat_cap(&mut self, now: SimTime) {
        let (Some(base), Some(srtt)) = (self.rtt.min_rtt(), self.rtt.srtt()) else {
            return;
        };
        // At most one reduction per base RTT, like the paper's penalization
        // cadence — re-capping on every ACK spirals the window down.
        if self.last_cap_at.is_some_and(|t| now.since(t) < srtt) {
            return;
        }
        if srtt > base * 2 {
            // One BDP worth of data, measured at base RTT.
            let rate = f64::from(self.cc.cwnd()) / srtt.as_secs_f64().max(1e-9);
            let cap = (rate * base.as_secs_f64() * 2.0) as u32;
            if cap < self.cc.cwnd() {
                self.cc.set_cwnd(cap.max(2 * self.effective_mss as u32));
                self.last_cap_at = Some(now);
                self.telemetry.count(CounterId::M4CwndCaps);
                self.telemetry.event(
                    now.0,
                    EventKind::M4Cap {
                        subflow: self.telemetry_tag,
                        cap: self.cc.cwnd(),
                    },
                );
                self.trace_span(
                    now,
                    EventKind::M4Cap {
                        subflow: self.telemetry_tag,
                        cap: self.cc.cwnd(),
                    },
                );
            }
        }
    }

    fn snd_nxt_with_fin(&self) -> SeqNum {
        self.snd_nxt
    }

    fn process_payload(&mut self, now: SimTime, seg: &TcpSegment) {
        if !self.state.can_receive() {
            self.need_ack = true;
            return;
        }
        // Stream offset of the segment's first byte (0-based, first data
        // byte after the SYN is offset 0).
        let first_data = self.irs + 1;
        let rel = i64::from(seg.seq.dist_from(first_data) as i32);
        let (off, payload) = if rel < 0 {
            // Overlaps the SYN (shouldn't happen); clip.
            let cut = (-rel) as usize;
            if cut >= seg.payload.len() {
                self.need_ack = true;
                return;
            }
            (0u64, seg.payload.slice(cut..))
        } else {
            (seg.seq.dist_from(first_data) as u64, seg.payload.clone())
        };

        // Clip to the advertised window's right edge (connection-level
        // clipping — data in-window at subflow level but out-of-window at
        // data level is dropped by the MPTCP layer above, §3.3.5).
        let window_right =
            u64::from(self.rcv_nxt.dist_from(first_data)) + u64::from(self.adv_window());
        let payload = if off + payload.len() as u64 > window_right {
            if off >= window_right {
                self.need_ack = true;
                return;
            }
            payload.slice(..(window_right - off) as usize)
        } else {
            payload
        };

        let advanced = self.recv_q.insert(off, payload);
        self.rcv_nxt += advanced as u32;
        self.maybe_grow_rbuf();

        if advanced > 0 {
            match self.cfg.delayed_ack {
                None => self.need_ack = true,
                Some(d) => {
                    if self.delack_deadline.is_some() {
                        // Second segment: ack immediately (ack every other).
                        self.need_ack = true;
                        self.delack_deadline = None;
                    } else {
                        self.delack_deadline = Some(now + d);
                    }
                }
            }
        } else {
            // Out-of-order or duplicate: immediate (dup) ACK.
            self.need_ack = true;
        }
    }

    fn maybe_grow_rbuf(&mut self) {
        if !self.cfg.autotune {
            return;
        }
        while self.recv_q.buffered() > self.recv_q.capacity() / 2
            && self.recv_q.capacity() < self.cfg.recv_buf
        {
            let next = (self.recv_q.capacity() * 2).min(self.cfg.recv_buf);
            self.recv_q.set_capacity(next);
        }
    }

    fn process_fin(&mut self, seg: &TcpSegment) {
        let fin_seq = seg.seq + seg.payload.len() as u32;
        if fin_seq != self.rcv_nxt {
            // FIN beyond a hole: ack what we have; peer retransmits.
            self.need_ack = true;
            return;
        }
        if self.fin_received {
            self.need_ack = true;
            return;
        }
        self.fin_received = true;
        self.rcv_nxt += 1;
        self.need_ack = true;
        match self.state {
            TcpState::Established => self.state = TcpState::CloseWait,
            TcpState::FinWait1 => {
                if self.fin_acked() {
                    self.enter_timewait_pending();
                } else {
                    self.state = TcpState::Closing;
                }
            }
            TcpState::FinWait2 => self.enter_timewait_pending(),
            _ => {}
        }
    }

    fn enter_timewait_pending(&mut self) {
        // The actual timer is armed at the next poll (we need `now`).
        self.state = TcpState::TimeWait;
        self.timewait_deadline = None;
    }

    fn enter_timewait(&mut self, now: SimTime) {
        self.state = TcpState::TimeWait;
        self.timewait_deadline = Some(now + Duration::from_secs(8));
    }

    fn enter_error(&mut self) {
        self.state = TcpState::Closed;
        self.error = true;
        self.clear_timers();
    }

    fn absorb_syn_options(&mut self, seg: &TcpSegment) {
        for o in &seg.options {
            match o {
                TcpOption::Mss(m) => {
                    self.effective_mss = self.effective_mss.min(*m as usize);
                }
                TcpOption::WindowScale(s) => {
                    self.peer_wscale = *s;
                }
                _ => {}
            }
        }
    }

    fn harvest_mptcp(&mut self, seg: &TcpSegment) {
        for m in seg.mptcp_options() {
            self.rx_mptcp.push(m.clone());
        }
    }

    fn sample_rtt_from_ts(&mut self, now: SimTime, seg: &TcpSegment) -> Option<Duration> {
        let ecr = seg.options.iter().find_map(|o| match o {
            TcpOption::Timestamps { ecr, .. } if *ecr != 0 => Some(*ecr),
            _ => None,
        })?;
        let now_us = self.ts_now(now);
        let delta = now_us.wrapping_sub(ecr);
        // Reject absurd samples (clock skew after wrap).
        if delta > 120_000_000 {
            return None;
        }
        let rtt = Duration::from_micros(u64::from(delta));
        self.rtt.on_sample(rtt);
        Some(rtt)
    }

    fn ts_now(&self, now: SimTime) -> u32 {
        (now.since(self.epoch).as_micros() as u64 % u64::from(u32::MAX)).max(1) as u32
    }

    // ------------------------------------------------------------------
    // Output.
    // ------------------------------------------------------------------

    /// Next instant this socket needs a poll (earliest timer).
    pub fn poll_at(&self, _now: SimTime) -> Option<SimTime> {
        if self.has_immediate_output() {
            return Some(SimTime::ZERO); // poll me right now
        }
        let mut t = self.rto_deadline;
        t = opt_min(t, self.delack_deadline);
        t = opt_min(t, self.persist_deadline);
        t = opt_min(t, self.timewait_deadline);
        t
    }

    fn has_immediate_output(&self) -> bool {
        // A closed socket emits nothing but a pending RST; stale intents
        // (need_ack set just before an error) must not promise output.
        if self.state == TcpState::Closed || self.state == TcpState::Listen {
            return self.rst_pending;
        }
        self.rst_pending
            || self.syn_needs_send
            || self.synack_needs_send
            || self.need_ack
            || self.probe_pending
            || self.pending_retransmit.is_some()
            || self.can_rto_retransmit()
            || self.can_send_new()
            || self.can_send_fin()
    }

    fn can_rto_retransmit(&self) -> bool {
        self.rto_recovery
            && self.retx_nxt.before(self.recover)
            && (self.retx_nxt.max(self.snd_una) - self.snd_una) < self.cc.cwnd()
    }

    /// Send window: cwnd normally; during fast recovery, pipe
    /// conservation — ssthresh plus one MSS per duplicate ACK (each
    /// dupack signals a segment that left the network).
    fn effective_cwnd(&self) -> u32 {
        if self.in_recovery {
            self.cc
                .ssthresh()
                .saturating_add(self.dup_acks * self.effective_mss as u32)
        } else {
            self.cc.cwnd()
        }
    }

    fn can_send_new(&self) -> bool {
        if !self.state.is_synchronized() || self.error {
            return false;
        }
        if !self.send_q.has_data_at(self.snd_nxt) {
            return false;
        }
        let wnd = self.effective_cwnd().min(self.snd_wnd);
        self.bytes_in_flight() < wnd
    }

    fn can_send_fin(&self) -> bool {
        self.fin_queued
            && !self.fin_sent
            && self.state.is_synchronized()
            && !self.send_q.has_data_at(self.snd_nxt)
    }

    /// Process timers, then emit at most one segment. Call repeatedly
    /// until `None`.
    pub fn poll(&mut self, now: SimTime) -> Option<TcpSegment> {
        self.process_timers(now);

        if self.rst_pending {
            self.rst_pending = false;
            let mut seg = TcpSegment::new(self.tuple, self.snd_nxt, self.rcv_nxt, TcpFlags::RST);
            seg.flags.ack = self.irs != SeqNum(0) || self.rcv_nxt != SeqNum(0);
            self.stats.segs_out += 1;
            return Some(seg);
        }

        match self.state {
            TcpState::Closed | TcpState::Listen => None,
            TcpState::SynSent => {
                if self.syn_needs_send {
                    self.syn_needs_send = false;
                    self.arm_rto(now);
                    Some(self.build_syn(now, false))
                } else {
                    None
                }
            }
            TcpState::SynReceived => {
                if self.synack_needs_send {
                    self.synack_needs_send = false;
                    self.arm_rto(now);
                    Some(self.build_syn(now, true))
                } else {
                    None
                }
            }
            TcpState::TimeWait => {
                if self.timewait_deadline.is_none() {
                    self.timewait_deadline = Some(now + Duration::from_secs(8));
                }
                self.poll_transfer(now)
            }
            _ => self.poll_transfer(now),
        }
    }

    fn process_timers(&mut self, now: SimTime) {
        if let Some(t) = self.timewait_deadline {
            if t <= now {
                self.state = TcpState::Closed;
                self.clear_timers();
                return;
            }
        }
        if let Some(t) = self.delack_deadline {
            if t <= now {
                self.delack_deadline = None;
                self.need_ack = true;
            }
        }
        if let Some(t) = self.persist_deadline {
            if t <= now {
                self.probe_pending = true;
                self.persist_backoff = (self.persist_backoff * 2).min(64);
                self.persist_deadline = Some(now + self.persist_interval());
            }
        }
        if let Some(t) = self.rto_deadline {
            if t <= now {
                self.on_rto(now);
            }
        }
    }

    fn persist_interval(&self) -> Duration {
        (self.rtt.rto() * self.persist_backoff).min(Duration::from_secs(60))
    }

    fn on_rto(&mut self, now: SimTime) {
        self.consecutive_rtos += 1;
        self.stats.rtos += 1;
        self.telemetry.count(CounterId::TcpRtos);
        self.telemetry.event(
            now.0,
            EventKind::TcpRto {
                subflow: self.telemetry_tag,
                backoff: self.rto_backoff,
            },
        );
        self.trace_span(
            now,
            EventKind::TcpRto {
                subflow: self.telemetry_tag,
                backoff: self.rto_backoff,
            },
        );
        self.trace_sample(now);
        if self.consecutive_rtos > 15 {
            self.enter_error();
            return;
        }
        self.rto_backoff = (self.rto_backoff * 2).min(512);
        match self.state {
            TcpState::SynSent => {
                self.stats.syn_retransmits += 1;
                if self.cfg.plain_syn_on_retry {
                    // §3.1: retry without the extension option in case a
                    // middlebox is silently dropping option-bearing SYNs.
                    self.syn_options.clear();
                }
                self.syn_needs_send = true;
            }
            TcpState::SynReceived => {
                self.synack_needs_send = true;
            }
            _ => {
                if self.snd_una.before(self.snd_nxt_with_fin()) || self.fin_sent {
                    self.cc
                        .on_retransmit_timeout(now, self.bytes_in_flight().min(self.cc.cwnd()));
                    self.in_recovery = false;
                    self.dup_acks = 0;
                    // Go-back-N: retransmit the whole outstanding window,
                    // paced by the (collapsed) congestion window, instead
                    // of one segment per timeout.
                    self.rto_recovery = true;
                    self.recover = self.snd_nxt;
                    self.retx_nxt = self.snd_una;
                    self.pending_retransmit = None;
                }
            }
        }
        self.rto_deadline = Some(now + self.rto());
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = Some(now + self.rto());
    }

    fn poll_transfer(&mut self, now: SimTime) -> Option<TcpSegment> {
        // 1. Retransmission.
        if let Some(seq) = self.pending_retransmit.take() {
            if let Some(seg) = self.build_data_segment(now, seq, true) {
                return Some(seg);
            }
            // FIN-only retransmission.
            if self.fin_sent && self.fin_seq == Some(seq) {
                return Some(self.build_fin(now, seq));
            }
        }

        // 1b. Post-RTO go-back-N retransmission, paced by cwnd.
        if self.rto_recovery {
            if self.snd_una.after_eq(self.recover) {
                self.rto_recovery = false;
            } else if self.can_rto_retransmit() {
                let seq = self.retx_nxt.max(self.snd_una);
                if let Some(seg) = self.build_data_segment(now, seq, true) {
                    self.retx_nxt = seg.seq_end();
                    if self.rto_deadline.is_none() {
                        self.arm_rto(now);
                    }
                    return Some(seg);
                }
                if self.fin_sent && self.fin_seq == Some(seq) {
                    self.retx_nxt = seq + 1;
                    return Some(self.build_fin(now, seq));
                }
                self.rto_recovery = false;
            }
        }

        // 2. New data.
        if self.can_send_new() {
            let wnd = self.effective_cwnd().min(self.snd_wnd);
            let room = (wnd - self.bytes_in_flight()) as usize;
            let seq = self.snd_nxt;
            if let Some(seg) = self.build_data_segment_limited(now, seq, room, false) {
                self.snd_nxt = seg.seq_end();
                if self.rto_deadline.is_none() {
                    self.arm_rto(now);
                }
                return Some(seg);
            }
        }

        // 3. FIN.
        if self.can_send_fin() {
            let seq = self.snd_nxt;
            self.fin_sent = true;
            self.fin_seq = Some(seq);
            self.snd_nxt = seq + 1;
            match self.state {
                TcpState::Established => self.state = TcpState::FinWait1,
                TcpState::CloseWait => self.state = TcpState::LastAck,
                _ => {}
            }
            if self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
            return Some(self.build_fin(now, seq));
        }

        // 4. Zero-window probe.
        if self.probe_pending {
            self.probe_pending = false;
            self.stats.probes += 1;
            self.telemetry.count(CounterId::TcpZeroWindowProbes);
            if let Some(seg) = self.build_probe(now) {
                return Some(seg);
            }
        }

        // 5. Window update: the right edge moved substantially while we had
        // nothing else to say (the classic SWS-avoidance threshold: two
        // segments or half the buffer, whichever is smaller).
        if self.state.is_synchronized() {
            let right = self.rcv_nxt + self.adv_window();
            let threshold = (2 * self.effective_mss)
                .min(self.recv_q.capacity() / 2)
                .max(1) as u32;
            if right.after_eq(self.last_adv_right_edge + threshold) {
                self.need_ack = true;
            }
        }

        // 6. Pure ACK.
        if self.need_ack && self.state.is_synchronized() {
            return Some(self.build_ack(now));
        }
        self.need_ack = false;
        None
    }

    fn adv_window(&self) -> u32 {
        self.window_override.unwrap_or_else(|| self.recv_q.window())
    }

    fn ts_option(&self, now: SimTime) -> Vec<TcpOption> {
        if self.cfg.timestamps {
            vec![TcpOption::Timestamps {
                val: self.ts_now(now),
                ecr: self.ts_recent,
            }]
        } else {
            Vec::new()
        }
    }

    fn base_options(&mut self, now: SimTime) -> Vec<TcpOption> {
        let mut opts = self.ts_option(now);
        opts.extend(self.carry_options.iter().cloned());
        opts
    }

    fn finish_segment(&mut self, mut seg: TcpSegment) -> TcpSegment {
        if self.state.is_synchronized() || self.state == TcpState::SynReceived {
            seg.flags.ack = true;
            seg.ack = self.rcv_nxt;
        }
        seg.options.append(&mut self.oneshot_options);
        // Option-space discipline: options are ordered by importance
        // (timestamps, per-chunk mappings, then carried/one-shot extras), so
        // trimming from the tail sacrifices the most expendable first.
        while mptcp_packet::options::options_wire_len(&seg.options)
            > mptcp_packet::options::MAX_OPTIONS_LEN
        {
            seg.options.pop();
        }
        seg.window = self.adv_window();
        self.last_adv_right_edge = self.rcv_nxt + seg.window;
        self.need_ack = false;
        self.delack_deadline = None;
        self.stats.segs_out += 1;
        seg
    }

    fn build_syn(&mut self, now: SimTime, is_synack: bool) -> TcpSegment {
        let flags = if is_synack {
            TcpFlags::SYN_ACK
        } else {
            TcpFlags::SYN
        };
        // The SYN occupies one sequence number.
        self.snd_nxt = self.iss + 1;
        let mut seg = TcpSegment::new(self.tuple, self.iss, self.rcv_nxt, flags);
        seg.options.push(TcpOption::Mss(self.cfg.mss as u16));
        seg.options.push(TcpOption::WindowScale(self.cfg.wscale));
        seg.options.push(TcpOption::SackPermitted);
        if self.cfg.timestamps {
            seg.options.push(TcpOption::Timestamps {
                val: self.ts_now(now),
                ecr: if is_synack { self.ts_recent } else { 0 },
            });
        }
        seg.options.extend(self.syn_options.iter().cloned());
        seg.window = self.adv_window();
        self.stats.segs_out += 1;
        seg
    }

    fn build_data_segment(&mut self, now: SimTime, seq: SeqNum, retx: bool) -> Option<TcpSegment> {
        self.build_data_segment_limited(now, seq, self.effective_mss, retx)
    }

    fn build_data_segment_limited(
        &mut self,
        now: SimTime,
        seq: SeqNum,
        room: usize,
        retx: bool,
    ) -> Option<TcpSegment> {
        let max = self.effective_mss.min(room.max(1));
        let data = self.send_q.segment_at(seq, max)?;
        let mut seg = TcpSegment::new(self.tuple, data.seq, self.rcv_nxt, TcpFlags::ACK);
        seg.payload = data.payload;
        seg.flags.psh = true;
        seg.options = self.ts_option(now);
        seg.options.extend(data.options);
        seg.options.extend(self.carry_options.iter().cloned());
        if retx {
            self.stats.retransmitted_segs += 1;
            self.telemetry.count(CounterId::TcpRetransmittedSegs);
        }
        self.stats.bytes_out += seg.payload.len() as u64;
        Some(self.finish_segment(seg))
    }

    fn build_fin(&mut self, now: SimTime, seq: SeqNum) -> TcpSegment {
        let mut seg = TcpSegment::new(self.tuple, seq, self.rcv_nxt, TcpFlags::ACK);
        seg.flags.fin = true;
        seg.options = self.base_options(now);
        Some(()).map(|_| self.finish_segment(seg)).unwrap()
    }

    fn build_probe(&mut self, now: SimTime) -> Option<TcpSegment> {
        // Send one byte from snd_una to elicit a window update.
        let data = self.send_q.segment_at(self.snd_una, 1)?;
        let mut seg = TcpSegment::new(self.tuple, data.seq, self.rcv_nxt, TcpFlags::ACK);
        seg.payload = data.payload;
        seg.options = self.base_options(now);
        seg.options.extend(data.options);
        Some(self.finish_segment(seg))
    }

    fn build_ack(&mut self, now: SimTime) -> TcpSegment {
        let mut seg = TcpSegment::new(self.tuple, self.snd_nxt, self.rcv_nxt, TcpFlags::ACK);
        seg.options = self.base_options(now);
        // SACK the first out-of-order block so the peer sees reordering.
        if let Some((start, end)) = self.recv_q.first_sack_block() {
            let first_data = self.irs + 1;
            seg.options.push(TcpOption::Sack(vec![(
                (first_data + start as u32).0,
                (first_data + end as u32).0,
            )]));
        }
        self.finish_segment(seg)
    }
}

fn opt_min(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp_packet::Endpoint;

    fn tuple() -> FourTuple {
        FourTuple {
            src: Endpoint::new(0x0a000001, 1000),
            dst: Endpoint::new(0x0a000002, 80),
        }
    }

    fn pair() -> (TcpSocket, Option<TcpSocket>) {
        let cfg = TcpConfig::default();
        let c = TcpSocket::client(cfg, tuple(), SeqNum(1000), SimTime::ZERO, vec![]);
        (c, None)
    }

    /// Drive two sockets against each other until both go quiet.
    /// Returns the number of segments exchanged.
    fn pump(now: SimTime, a: &mut TcpSocket, b: &mut TcpSocket) -> usize {
        let mut n = 0;
        loop {
            let mut progressed = false;
            while let Some(seg) = a.poll(now) {
                b.handle_segment(now, &seg);
                n += 1;
                progressed = true;
                assert!(n < 100_000, "pump livelock: a->b {seg:?}");
            }
            while let Some(seg) = b.poll(now) {
                a.handle_segment(now, &seg);
                n += 1;
                progressed = true;
                assert!(n < 100_000, "pump livelock: b->a {seg:?}");
            }
            if !progressed {
                return n;
            }
        }
    }

    fn established_pair() -> (TcpSocket, TcpSocket) {
        let (mut c, _) = pair();
        let now = SimTime::ZERO;
        let syn = c.poll(now).expect("SYN");
        assert!(syn.flags.syn && !syn.flags.ack);
        let mut s = TcpSocket::accept(TcpConfig::default(), &syn, SeqNum(9000), now, vec![]);
        pump(now, &mut c, &mut s);
        assert_eq!(c.state(), TcpState::Established);
        assert_eq!(s.state(), TcpState::Established);
        (c, s)
    }

    #[test]
    fn three_way_handshake() {
        let (c, s) = established_pair();
        assert_eq!(c.irs(), SeqNum(9000));
        assert_eq!(s.irs(), SeqNum(1000));
    }

    #[test]
    fn data_transfer_and_ack() {
        let (mut c, mut s) = established_pair();
        assert_eq!(c.send(b"hello world"), 11);
        pump(SimTime::from_millis(1), &mut c, &mut s);
        let got = s.read(100).unwrap();
        assert_eq!(&got[..], b"hello world");
        assert_eq!(c.bytes_in_flight(), 0); // acked
        assert_eq!(c.stats.bytes_acked, 11);
    }

    #[test]
    fn mss_respected() {
        let (mut c, mut s) = established_pair();
        let data = vec![7u8; 5000];
        assert_eq!(c.send(&data), 5000);
        let mut sizes = Vec::new();
        let now = SimTime::from_millis(1);
        while let Some(seg) = c.poll(now) {
            sizes.push(seg.payload.len());
            s.handle_segment(now, &seg);
        }
        assert!(sizes.iter().all(|&l| l <= 1460));
        assert_eq!(sizes.iter().sum::<usize>(), 5000);
    }

    #[test]
    fn retransmit_on_rto() {
        let (mut c, mut s) = established_pair();
        c.send(b"lost data");
        let seg = c.poll(SimTime::from_millis(1)).unwrap(); // dropped!
        assert_eq!(&seg.payload[..], b"lost data");
        assert!(c.poll(SimTime::from_millis(2)).is_none());
        // Fire the RTO.
        let rto_at = c.poll_at(SimTime::from_millis(2)).unwrap();
        let retx = c.poll(rto_at).expect("retransmission");
        assert_eq!(&retx.payload[..], b"lost data");
        assert_eq!(c.stats.rtos, 1);
        s.handle_segment(rto_at, &retx);
        pump(rto_at, &mut c, &mut s);
        assert_eq!(&s.read(100).unwrap()[..], b"lost data");
    }

    #[test]
    fn rto_backoff_doubles() {
        let (mut c, _s) = established_pair();
        c.send(b"x");
        let _ = c.poll(SimTime::from_millis(1)).unwrap();
        let t1 = c.poll_at(SimTime::from_millis(1)).unwrap();
        let _ = c.poll(t1).unwrap(); // first RTO retransmission
        let t2 = c.poll_at(t1).unwrap();
        assert!(t2 - t1 >= (t1 - SimTime::from_millis(1)), "backoff grew");
        assert_eq!(c.stats.rtos, 1);
    }

    #[test]
    fn rto_backoff_capped_at_max_rto() {
        let max_rto = Duration::from_secs(5);
        let cfg = TcpConfig {
            max_rto,
            ..TcpConfig::default()
        };
        let now = SimTime::ZERO;
        let mut c = TcpSocket::client(cfg.clone(), tuple(), SeqNum(1), now, vec![]);
        let syn = c.poll(now).unwrap();
        let mut s = TcpSocket::accept(cfg, &syn, SeqNum(500), now, vec![]);
        pump(now, &mut c, &mut s);

        c.send(b"x");
        let _ = c.poll(SimTime::from_millis(1)).unwrap();
        // Fire RTO after RTO without ever delivering the retransmission:
        // the backoff multiplier climbs, but rto() must stay clamped.
        let mut t = SimTime::from_millis(1);
        for _ in 0..12 {
            t = c.poll_at(t).unwrap();
            while c.poll(t).is_some() {}
            assert!(c.rto() <= max_rto, "rto {:?} exploded past cap", c.rto());
        }
        // Deep in backoff the product would be min_rto << 12 ≈ 819 s
        // without the clamp; pin the cap exactly.
        assert_eq!(c.rto(), max_rto);
        assert!(c.consecutive_rtos() >= 10);
    }

    #[test]
    fn fast_retransmit_on_triple_dupack() {
        let (mut c, mut s) = established_pair();
        let now = SimTime::from_millis(1);
        c.send(&vec![1u8; 1460 * 5]);
        let mut segs = Vec::new();
        while let Some(seg) = c.poll(now) {
            segs.push(seg);
        }
        assert_eq!(segs.len(), 5);
        // Deliver all but the first: three dup ACKs come back.
        let mut dups = Vec::new();
        for seg in &segs[1..] {
            s.handle_segment(now, seg);
            while let Some(a) = s.poll(now) {
                dups.push(a);
            }
        }
        assert!(dups.len() >= 3);
        for d in &dups {
            c.handle_segment(now, d);
        }
        let retx = c.poll(now).expect("fast retransmit");
        assert_eq!(retx.seq, segs[0].seq);
        assert_eq!(c.stats.fast_retransmits, 1);
        assert_eq!(c.stats.rtos, 0);
    }

    #[test]
    fn flow_control_blocks_sender() {
        let cfg = TcpConfig {
            recv_buf: 2000, // tiny receive buffer
            ..TcpConfig::default()
        };
        let now = SimTime::ZERO;
        let mut c = TcpSocket::client(TcpConfig::default(), tuple(), SeqNum(1), now, vec![]);
        let syn = c.poll(now).unwrap();
        let mut s = TcpSocket::accept(cfg, &syn, SeqNum(500), now, vec![]);
        pump(now, &mut c, &mut s);

        c.send(&vec![9u8; 10_000]);
        pump(SimTime::from_millis(1), &mut c, &mut s);
        // Receiver buffer is full; sender must stop at the window.
        assert!(s.recv_buffered() <= 2000);
        assert!(c.bytes_in_flight() == 0);
        assert!(c.bytes_queued() > 0, "unsent data remains queued");
        // Application reads; window reopens; transfer completes.
        let mut total = 0;
        for _ in 0..20 {
            while let Some(b) = s.read(10_000) {
                total += b.len();
            }
            // Window-update ACK flows back.
            pump(SimTime::from_millis(2), &mut c, &mut s);
        }
        while let Some(b) = s.read(10_000) {
            total += b.len();
        }
        assert_eq!(total, 10_000);
    }

    #[test]
    fn zero_window_probe_reopens() {
        let cfg = TcpConfig {
            recv_buf: 1000,
            ..TcpConfig::default()
        };
        let now = SimTime::ZERO;
        let mut c = TcpSocket::client(TcpConfig::default(), tuple(), SeqNum(1), now, vec![]);
        let syn = c.poll(now).unwrap();
        let mut s = TcpSocket::accept(cfg, &syn, SeqNum(500), now, vec![]);
        pump(now, &mut c, &mut s);

        c.send(&vec![1u8; 3000]);
        pump(SimTime::from_millis(1), &mut c, &mut s);
        assert_eq!(s.recv_buffered(), 1000);
        assert!(c.bytes_queued() > 0);
        // Reader drains while the sender sees a zero window; without the
        // persist timer this would deadlock if the window update is lost.
        s.read(10_000);
        // Drop the window update on the floor (simulate loss).
        while s.poll(SimTime::from_millis(2)).is_some() {}
        // The persist timer eventually probes and discovers the open window.
        let probe_at = c.poll_at(SimTime::from_millis(3)).expect("persist armed");
        let probe = c.poll(probe_at).expect("probe segment");
        s.handle_segment(probe_at, &probe);
        pump(probe_at, &mut c, &mut s);
        assert!(s.recv_buffered() > 0, "transfer resumed after probe");
        assert!(c.stats.probes >= 1);
    }

    #[test]
    fn graceful_close_both_sides() {
        let (mut c, mut s) = established_pair();
        let now = SimTime::from_millis(1);
        c.send(b"bye");
        c.close();
        pump(now, &mut c, &mut s);
        assert_eq!(&s.read(10).unwrap()[..], b"bye");
        assert!(s.stream_fin());
        assert_eq!(s.state(), TcpState::CloseWait);
        assert_eq!(c.state(), TcpState::FinWait2);
        s.close();
        pump(now, &mut c, &mut s);
        assert_eq!(s.state(), TcpState::Closed);
        assert_eq!(c.state(), TcpState::TimeWait);
        // TIME_WAIT expires.
        let tw = c.poll_at(now).unwrap();
        c.poll(tw);
        assert_eq!(c.state(), TcpState::Closed);
    }

    #[test]
    fn rst_tears_down() {
        let (mut c, mut s) = established_pair();
        c.abort();
        let rst = c.poll(SimTime::from_millis(1)).expect("RST out");
        assert!(rst.flags.rst);
        s.handle_segment(SimTime::from_millis(1), &rst);
        assert!(s.is_error());
        assert_eq!(s.state(), TcpState::Closed);
    }

    #[test]
    fn syn_retry_drops_extension_options() {
        use mptcp_packet::MptcpOption;
        let cfg = TcpConfig::default();
        let mp = TcpOption::Mptcp(MptcpOption::MpCapable {
            version: 0,
            checksum_required: true,
            sender_key: 42,
            receiver_key: None,
        });
        let mut c = TcpSocket::client(cfg, tuple(), SeqNum(1), SimTime::ZERO, vec![mp]);
        let syn1 = c.poll(SimTime::ZERO).unwrap();
        assert!(syn1.mptcp_option().is_some());
        // SYN lost; RTO fires; the retry must omit MP_CAPABLE (§3.1).
        let t = c.poll_at(SimTime::ZERO).unwrap();
        let syn2 = c.poll(t).expect("SYN retransmission");
        assert!(syn2.flags.syn);
        assert!(syn2.mptcp_option().is_none());
        assert_eq!(c.stats.syn_retransmits, 1);
    }

    #[test]
    fn carry_options_ride_every_segment() {
        use mptcp_packet::MptcpOption;
        let (mut c, mut s) = established_pair();
        let dack = TcpOption::Mptcp(MptcpOption::Dss {
            data_ack: Some(777),
            mapping: None,
            data_fin: false,
        });
        s.set_carry_options(vec![dack.clone()]);
        c.send(b"ping");
        let now = SimTime::from_millis(1);
        let seg = c.poll(now).unwrap();
        s.handle_segment(now, &seg);
        let ack = s.poll(now).expect("ACK");
        assert!(ack.payload.is_empty());
        assert!(ack.options.contains(&dack), "pure ACK carries the DATA_ACK");
    }

    #[test]
    fn window_override_advertised() {
        let (mut c, mut s) = established_pair();
        s.set_window_override(Some(12345));
        s.request_ack();
        let ack = s.poll(SimTime::from_millis(1)).unwrap();
        assert_eq!(ack.window, 12345);
        c.handle_segment(SimTime::from_millis(1), &ack);
        assert_eq!(c.peer_window(), 12345);
    }

    #[test]
    fn chunk_options_attached_and_retransmitted() {
        use mptcp_packet::{DssMapping, MptcpOption};
        let (mut c, mut _s) = established_pair();
        let dss = TcpOption::Mptcp(MptcpOption::Dss {
            data_ack: None,
            mapping: Some(DssMapping {
                dsn: 1,
                subflow_seq: 1,
                len: 4,
                checksum: None,
            }),
            data_fin: false,
        });
        assert!(c.send_chunk(Bytes::from_static(b"data"), vec![dss.clone()]));
        let now = SimTime::from_millis(1);
        let seg = c.poll(now).unwrap();
        assert!(seg.options.contains(&dss));
        // Lost: the RTO retransmission must carry the same mapping.
        let t = c.poll_at(now).unwrap();
        let retx = c.poll(t).expect("retransmission");
        assert!(retx.options.contains(&dss));
        assert_eq!(retx.payload, seg.payload);
    }

    #[test]
    fn out_of_order_generates_dupacks_and_sack() {
        let (mut c, mut s) = established_pair();
        let now = SimTime::from_millis(1);
        c.send(&vec![3u8; 1460 * 3]);
        let s1 = c.poll(now).unwrap();
        let s2 = c.poll(now).unwrap();
        let s3 = c.poll(now).unwrap();
        s.handle_segment(now, &s2); // out of order
        let dup = s.poll(now).expect("dup ACK");
        assert_eq!(dup.ack, s1.seq);
        assert!(dup.options.iter().any(|o| matches!(o, TcpOption::Sack(_))));
        s.handle_segment(now, &s1);
        s.handle_segment(now, &s3);
        let cum = s.poll(now).expect("cumulative ACK");
        assert_eq!(cum.ack, s3.seq_end());
    }

    #[test]
    fn rtt_estimated_from_timestamps() {
        let (mut c, mut s) = established_pair();
        c.send(b"sample");
        let t0 = SimTime::from_millis(10);
        let seg = c.poll(t0).unwrap();
        let t1 = t0 + Duration::from_millis(30);
        s.handle_segment(t1, &seg);
        let ack = s.poll(t1).unwrap();
        c.handle_segment(t1 + Duration::from_millis(30), &ack);
        let srtt = c.srtt().expect("rtt sampled");
        assert!(
            srtt >= Duration::from_millis(59) && srtt <= Duration::from_millis(62),
            "srtt = {srtt:?}"
        );
    }

    #[test]
    fn next_tx_offset_is_one_based() {
        let (mut c, _s) = established_pair();
        assert_eq!(c.next_tx_offset(), 1);
        c.send(b"abcde");
        assert_eq!(c.next_tx_offset(), 6);
    }

    #[test]
    fn autotuned_buffers_grow_on_demand() {
        let cfg = TcpConfig {
            autotune: true,
            recv_buf: 1 << 20,
            send_buf: 1 << 20,
            ..TcpConfig::default()
        };
        let now = SimTime::ZERO;
        let mut c = TcpSocket::client(cfg.clone(), tuple(), SeqNum(1), now, vec![]);
        let syn = c.poll(now).unwrap();
        let mut s = TcpSocket::accept(cfg, &syn, SeqNum(500), now, vec![]);
        pump(now, &mut c, &mut s);
        let initial_r = s.recv_capacity();
        let initial_s = c.send_capacity();
        c.send(&vec![1u8; 400_000]);
        assert!(c.send_capacity() > initial_s, "send buffer autotuned up");
        for _ in 0..50 {
            pump(SimTime::from_millis(1), &mut c, &mut s);
        }
        // Receiver app never reads: buffer pressure grows capacity.
        assert!(s.recv_capacity() >= initial_r);
        assert!(s.recv_buffered() > 0);
    }

    #[test]
    fn mptcp_options_harvested_from_segments() {
        use mptcp_packet::MptcpOption;
        let (mut c, mut s) = established_pair();
        let now = SimTime::from_millis(1);
        s.set_carry_options(vec![TcpOption::Mptcp(MptcpOption::Dss {
            data_ack: Some(55),
            mapping: None,
            data_fin: false,
        })]);
        c.send(b"x");
        let seg = c.poll(now).unwrap();
        s.handle_segment(now, &seg);
        let ack = s.poll(now).unwrap();
        c.handle_segment(now, &ack);
        let opts = c.take_rx_mptcp();
        assert_eq!(opts.len(), 1);
        assert!(matches!(
            opts[0],
            MptcpOption::Dss {
                data_ack: Some(55),
                ..
            }
        ));
        assert!(c.take_rx_mptcp().is_empty(), "drained");
    }

    #[test]
    fn connection_times_out_after_max_rtos() {
        let (mut c, _s) = established_pair();
        c.send(b"into the void");
        let mut now = SimTime::from_millis(1);
        let _ = c.poll(now);
        for _ in 0..40 {
            match c.poll_at(now) {
                Some(t) => {
                    now = now.max(t);
                    while c.poll(now).is_some() {}
                }
                None => break,
            }
            if c.is_error() {
                break;
            }
        }
        assert!(c.is_error(), "connection should give up after ~15 RTOs");
    }
}
