//! Socket configuration.

use mptcp_netsim::Duration;
use mptcp_telemetry::TraceConfig;

/// Tunables for a [`crate::TcpSocket`].
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: usize,
    /// Maximum send buffer in bytes (autotuning grows toward this).
    pub send_buf: usize,
    /// Maximum receive buffer in bytes (autotuning grows toward this).
    pub recv_buf: usize,
    /// Window-scale shift we advertise (RFC 1323).
    pub wscale: u8,
    /// Initial congestion window in segments.
    pub init_cwnd_segs: u32,
    /// Delayed-ACK timer; `None` acks every data segment immediately.
    pub delayed_ack: Option<Duration>,
    /// Enable send/receive buffer autotuning (start small, grow on demand).
    pub autotune: bool,
    /// Cap cwnd when smoothed RTT exceeds twice the base RTT (the paper's
    /// mechanism 4 / FreeBSD's `net.inet.tcp.inflight`).
    pub cap_cwnd_on_bufferbloat: bool,
    /// Minimum retransmission timeout.
    pub min_rto: Duration,
    /// Maximum retransmission timeout.
    pub max_rto: Duration,
    /// Carry RFC 1323 timestamps (used for RTT sampling).
    pub timestamps: bool,
    /// After a SYN retransmission, drop unacknowledged extension options
    /// from the retried SYN (§3.1: "follow the retransmitted SYN with one
    /// that omits the MP_CAPABLE option").
    pub plain_syn_on_retry: bool,
    /// Time-series tracing of cwnd/ssthresh/srtt/in-flight on congestion
    /// events and a periodic interval. Disabled by default (zero-cost).
    pub trace: TraceConfig,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            send_buf: 2 * 1024 * 1024,
            recv_buf: 2 * 1024 * 1024,
            wscale: 14,
            init_cwnd_segs: 10,
            delayed_ack: None,
            autotune: false,
            cap_cwnd_on_bufferbloat: false,
            min_rto: Duration::from_millis(200),
            max_rto: Duration::from_secs(60),
            timestamps: true,
            plain_syn_on_retry: true,
            trace: TraceConfig::disabled(),
        }
    }
}

impl TcpConfig {
    /// Config with symmetric send/receive buffers of `bytes` — how the
    /// paper's buffer-sweep experiments (Figs 4–6, 9) set both sysctls.
    pub fn with_buffers(bytes: usize) -> TcpConfig {
        TcpConfig {
            send_buf: bytes,
            recv_buf: bytes,
            ..TcpConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = TcpConfig::default();
        assert_eq!(c.mss, 1460);
        assert!(c.min_rto < c.max_rto);
        assert!(c.init_cwnd_segs >= 1);
    }

    #[test]
    fn buffer_helper() {
        let c = TcpConfig::with_buffers(100_000);
        assert_eq!(c.send_buf, 100_000);
        assert_eq!(c.recv_buf, 100_000);
    }
}
