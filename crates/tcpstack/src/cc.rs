//! Congestion control: Reno/NewReno and the coupled LIA algorithm.
//!
//! The paper defers congestion control to [23] (Wischik et al., NSDI 2011)
//! but the evaluation depends on it: MPTCP subflows run the *Linked
//! Increases Algorithm* so that a multipath connection takes no more
//! capacity than a single TCP on its best path. [`Lia`] implements the
//! per-subflow half; the connection computes the coupling factor `alpha`
//! across subflows and pushes it down via
//! [`CongestionControl::set_coupled`].

use mptcp_netsim::Duration;

/// Per-flow congestion control state machine, driven by the socket.
///
/// All window quantities are in **bytes**.
pub trait CongestionControl: Send {
    /// Current congestion window.
    fn cwnd(&self) -> u32;

    /// Current slow-start threshold.
    fn ssthresh(&self) -> u32;

    /// A cumulative ACK advanced `snd_una` by `bytes_acked`.
    fn on_ack(&mut self, bytes_acked: u32, rtt: Option<Duration>);

    /// A duplicate ACK arrived while in fast recovery (window inflation).
    fn on_dup_ack(&mut self);

    /// Entering fast retransmit; `in_flight` is the outstanding byte count.
    fn on_fast_retransmit(&mut self, in_flight: u32);

    /// A retransmission timeout fired.
    fn on_retransmit_timeout(&mut self, in_flight: u32);

    /// Fast recovery completed (full ACK received): deflate the window.
    fn on_recovery_exit(&mut self);

    /// Force the congestion window (mechanism 2 penalization, mechanism 4
    /// capping).
    fn set_cwnd(&mut self, bytes: u32);

    /// Force the slow-start threshold.
    fn set_ssthresh(&mut self, bytes: u32);

    /// Update coupling parameters (`alpha`, total cwnd across subflows).
    /// No-op for uncoupled algorithms.
    fn set_coupled(&mut self, _alpha: f64, _total_cwnd: u32) {}

    /// Are we below ssthresh (exponential growth)?
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

const INIT_SSTHRESH: u32 = u32::MAX / 2;

/// Classic Reno with NewReno recovery hooks.
pub struct Reno {
    cwnd: u32,
    ssthresh: u32,
    mss: u32,
    /// Fractional congestion-avoidance accumulator (bytes acked since the
    /// last full-MSS increase).
    acked_accum: u32,
}

impl Reno {
    /// New Reno instance with `init_segs * mss` initial window.
    pub fn new(mss: u32, init_segs: u32) -> Reno {
        Reno {
            cwnd: mss * init_segs,
            ssthresh: INIT_SSTHRESH,
            mss,
            acked_accum: 0,
        }
    }

    fn halve(&mut self, in_flight: u32) {
        self.ssthresh = (in_flight / 2).max(2 * self.mss);
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, bytes_acked: u32, _rtt: Option<Duration>) {
        if self.in_slow_start() {
            self.cwnd = self
                .cwnd
                .saturating_add(bytes_acked.min(self.mss))
                .min(INIT_SSTHRESH);
        } else {
            // cwnd += mss per cwnd bytes acked.
            self.acked_accum += bytes_acked;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd = self.cwnd.saturating_add(self.mss).min(INIT_SSTHRESH);
            }
        }
    }

    fn on_dup_ack(&mut self) {
        // Window inflation during fast recovery.
        self.cwnd = self.cwnd.saturating_add(self.mss);
    }

    fn on_fast_retransmit(&mut self, in_flight: u32) {
        self.halve(in_flight);
        self.cwnd = self.ssthresh + 3 * self.mss;
    }

    fn on_retransmit_timeout(&mut self, in_flight: u32) {
        self.halve(in_flight);
        self.cwnd = self.mss;
        self.acked_accum = 0;
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn set_cwnd(&mut self, bytes: u32) {
        self.cwnd = bytes.max(self.mss);
    }

    fn set_ssthresh(&mut self, bytes: u32) {
        self.ssthresh = bytes.max(2 * self.mss);
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

/// Linked Increases Algorithm (coupled MPTCP congestion control).
///
/// Identical to Reno in slow start and on loss; in congestion avoidance the
/// per-ACK increase is `min(alpha * acked * mss / cwnd_total,
/// acked * mss / cwnd_i)` so the aggregate is no more aggressive than one
/// TCP on the best path, while still shifting traffic toward less congested
/// subflows. The connection recomputes `alpha` (RFC 6356 formula) and calls
/// [`CongestionControl::set_coupled`].
pub struct Lia {
    cwnd: u32,
    ssthresh: u32,
    mss: u32,
    alpha: f64,
    total_cwnd: u32,
    increase_accum: f64,
}

impl Lia {
    /// New LIA instance.
    pub fn new(mss: u32, init_segs: u32) -> Lia {
        Lia {
            cwnd: mss * init_segs,
            ssthresh: INIT_SSTHRESH,
            mss,
            alpha: 1.0,
            total_cwnd: mss * init_segs,
            increase_accum: 0.0,
        }
    }

    fn halve(&mut self, in_flight: u32) {
        self.ssthresh = (in_flight / 2).max(2 * self.mss);
    }
}

impl CongestionControl for Lia {
    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, bytes_acked: u32, _rtt: Option<Duration>) {
        if self.in_slow_start() {
            self.cwnd = self
                .cwnd
                .saturating_add(bytes_acked.min(self.mss))
                .min(INIT_SSTHRESH);
            return;
        }
        let total = self.total_cwnd.max(self.cwnd).max(1) as f64;
        let coupled = self.alpha * f64::from(bytes_acked) * f64::from(self.mss) / total;
        let uncoupled = f64::from(bytes_acked) * f64::from(self.mss) / f64::from(self.cwnd.max(1));
        self.increase_accum += coupled.min(uncoupled);
        if self.increase_accum >= 1.0 {
            let inc = self.increase_accum as u32;
            self.increase_accum -= f64::from(inc);
            self.cwnd = self.cwnd.saturating_add(inc).min(INIT_SSTHRESH);
        }
    }

    fn on_dup_ack(&mut self) {
        self.cwnd = self.cwnd.saturating_add(self.mss);
    }

    fn on_fast_retransmit(&mut self, in_flight: u32) {
        self.halve(in_flight);
        self.cwnd = self.ssthresh + 3 * self.mss;
    }

    fn on_retransmit_timeout(&mut self, in_flight: u32) {
        self.halve(in_flight);
        self.cwnd = self.mss;
        self.increase_accum = 0.0;
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn set_cwnd(&mut self, bytes: u32) {
        self.cwnd = bytes.max(self.mss);
    }

    fn set_ssthresh(&mut self, bytes: u32) {
        self.ssthresh = bytes.max(2 * self.mss);
    }

    fn set_coupled(&mut self, alpha: f64, total_cwnd: u32) {
        self.alpha = alpha;
        self.total_cwnd = total_cwnd;
    }

    fn name(&self) -> &'static str {
        "lia"
    }
}

/// Compute the LIA `alpha` coupling factor (RFC 6356 §4).
///
/// `subflows` yields `(cwnd_bytes, srtt)` for each active subflow.
/// Returns 1.0 when no subflow has an RTT sample yet.
pub fn lia_alpha(subflows: &[(u32, Duration)]) -> f64 {
    let mut best = 0.0f64;
    let mut denom = 0.0f64;
    let mut total = 0.0f64;
    for &(cwnd, rtt) in subflows {
        let rtt_s = rtt.as_secs_f64().max(1e-6);
        let c = f64::from(cwnd);
        best = best.max(c / (rtt_s * rtt_s));
        denom += c / rtt_s;
        total += c;
    }
    if denom <= 0.0 || best <= 0.0 {
        return 1.0;
    }
    (total * best / (denom * denom)).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut r = Reno::new(1000, 10);
        let start = r.cwnd();
        // Acking a full window in MSS-sized chunks doubles cwnd.
        for _ in 0..10 {
            r.on_ack(1000, None);
        }
        assert_eq!(r.cwnd(), 2 * start);
    }

    #[test]
    fn reno_congestion_avoidance_linear() {
        let mut r = Reno::new(1000, 10);
        r.set_ssthresh(5_000);
        r.set_cwnd(10_000); // above ssthresh: CA
        assert!(!r.in_slow_start());
        // One full window of acks adds one MSS.
        for _ in 0..10 {
            r.on_ack(1000, None);
        }
        assert_eq!(r.cwnd(), 11_000);
    }

    #[test]
    fn reno_fast_retransmit_halves() {
        let mut r = Reno::new(1000, 10);
        r.set_cwnd(20_000);
        r.on_fast_retransmit(20_000);
        assert_eq!(r.ssthresh(), 10_000);
        assert_eq!(r.cwnd(), 13_000); // ssthresh + 3 MSS
        r.on_recovery_exit();
        assert_eq!(r.cwnd(), 10_000);
    }

    #[test]
    fn reno_rto_collapses_to_one_mss() {
        let mut r = Reno::new(1000, 10);
        r.set_cwnd(20_000);
        r.on_retransmit_timeout(20_000);
        assert_eq!(r.cwnd(), 1000);
        assert_eq!(r.ssthresh(), 10_000);
    }

    #[test]
    fn reno_floors() {
        let mut r = Reno::new(1000, 10);
        r.set_cwnd(0);
        assert_eq!(r.cwnd(), 1000);
        r.set_ssthresh(0);
        assert_eq!(r.ssthresh(), 2000);
        r.on_retransmit_timeout(100); // tiny flight still floors ssthresh
        assert_eq!(r.ssthresh(), 2000);
    }

    #[test]
    fn lia_never_more_aggressive_than_reno() {
        // Single subflow with alpha=1, total=cwnd: LIA == Reno CA rate.
        let mut lia = Lia::new(1000, 10);
        let mut reno = Reno::new(1000, 10);
        for c in [&mut lia as &mut dyn CongestionControl, &mut reno] {
            c.set_ssthresh(5_000);
            c.set_cwnd(10_000);
        }
        for _ in 0..100 {
            let c = lia.cwnd();
            lia.set_coupled(1.0, c);
            lia.on_ack(1000, None);
            reno.on_ack(1000, None);
        }
        // LIA grows continuously, Reno in MSS quanta; they stay within one
        // MSS of each other over a hundred ACKs.
        let diff = i64::from(lia.cwnd()) - i64::from(reno.cwnd());
        assert!(
            diff.abs() <= 1000,
            "lia {} vs reno {}",
            lia.cwnd(),
            reno.cwnd()
        );
    }

    #[test]
    fn lia_coupling_slows_growth() {
        // Two equal subflows: alpha=1 against total 2*cwnd halves growth.
        let mut lia = Lia::new(1000, 10);
        lia.set_ssthresh(5_000);
        lia.set_cwnd(10_000);
        lia.set_coupled(1.0, 20_000);
        for _ in 0..10 {
            lia.on_ack(1000, None);
        }
        // Uncoupled would add ~1000; coupled adds ~500.
        assert!(lia.cwnd() <= 10_600, "cwnd grew to {}", lia.cwnd());
        assert!(lia.cwnd() >= 10_400);
    }

    #[test]
    fn alpha_equal_paths_is_fraction() {
        // Two identical subflows: alpha = total*best/(denom^2)
        //  = 2c * (c/r^2) / (2c/r)^2 = 1/2.
        let a = lia_alpha(&[
            (10_000, Duration::from_millis(100)),
            (10_000, Duration::from_millis(100)),
        ]);
        assert!((a - 0.5).abs() < 1e-9, "alpha = {a}");
    }

    #[test]
    fn alpha_single_path_is_one() {
        let a = lia_alpha(&[(10_000, Duration::from_millis(50))]);
        assert!((a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_no_samples_defaults() {
        assert_eq!(lia_alpha(&[]), 1.0);
        assert_eq!(lia_alpha(&[(0, Duration::from_millis(10))]), 1.0);
    }

    #[test]
    fn alpha_favors_fast_path() {
        // A fast path and a slow path: alpha > the equal-path 0.5 because
        // the best path dominates.
        let a = lia_alpha(&[
            (10_000, Duration::from_millis(20)),
            (10_000, Duration::from_millis(200)),
        ]);
        assert!(a > 0.5, "alpha = {a}");
    }
}
