//! Congestion control: the pluggable per-subflow algorithm layer.
//!
//! The paper defers congestion control to [23] (Wischik et al., NSDI 2011)
//! but the evaluation depends on it: MPTCP subflows run a *coupled*
//! congestion controller so that a multipath connection takes no more
//! capacity than a single TCP on its best path. This module provides the
//! complete policy surface:
//!
//! * [`CongestionControl`] — the per-subflow state machine the socket
//!   drives on ACKs, losses and timeouts.
//! * [`CcAlgorithm`] — the registry of built-in algorithms
//!   ([`Reno`], [`Lia`], [`Olia`], [`CoupledCubic`]) used by
//!   `MptcpConfig::builder().cc(..)`, the `repro --cc` flag and JSON
//!   reports (via [`FromStr`](core::str::FromStr)/[`Display`](core::fmt::Display)).
//! * [`CoupledState`] — the cross-subflow coupling computation. The
//!   connection owns one of these, feeds it a [`FlowView`] per usable
//!   subflow once per RTT-ish, and pushes the resulting per-flow
//!   [`CoupledSignal`]s down via [`CongestionControl::set_coupled`].
//!
//! # Contract
//!
//! The socket calls exactly one of `on_ack` / `on_dup_ack` /
//! `on_fast_retransmit` / `on_retransmit_timeout` / `on_recovery_exit`
//! per congestion event, always with the current virtual time. An
//! algorithm must keep `cwnd() >= 1 MSS` at all times and must tolerate
//! `set_cwnd`/`set_ssthresh` being forced between events (mechanism 2
//! penalization and mechanism 4 bufferbloat capping do this). Coupling is
//! advisory: `set_coupled` may never be called (single subflow, uncoupled
//! config) and algorithms must behave like a sane single-path controller
//! in that case.

use core::fmt;
use core::str::FromStr;

use mptcp_netsim::{Duration, SimTime};

/// Per-flow congestion control state machine, driven by the socket.
///
/// All window quantities are in **bytes**. Time is the simulator's
/// virtual clock; algorithms must not assume wall time.
pub trait CongestionControl: Send {
    /// Current congestion window.
    fn cwnd(&self) -> u32;

    /// Current slow-start threshold.
    fn ssthresh(&self) -> u32;

    /// A cumulative ACK advanced `snd_una` by `bytes_acked`.
    /// `rtt` carries the RTT sample of this ACK when one was taken.
    fn on_ack(&mut self, now: SimTime, bytes_acked: u32, rtt: Option<Duration>);

    /// A duplicate ACK arrived while in fast recovery (window inflation).
    fn on_dup_ack(&mut self);

    /// Entering fast retransmit; `in_flight` is the outstanding byte count.
    fn on_fast_retransmit(&mut self, now: SimTime, in_flight: u32);

    /// A retransmission timeout fired.
    fn on_retransmit_timeout(&mut self, now: SimTime, in_flight: u32);

    /// Fast recovery completed (full ACK received): deflate the window.
    fn on_recovery_exit(&mut self);

    /// Force the congestion window (mechanism 2 penalization, mechanism 4
    /// capping).
    fn set_cwnd(&mut self, bytes: u32);

    /// Force the slow-start threshold.
    fn set_ssthresh(&mut self, bytes: u32);

    /// Update coupling parameters computed by [`CoupledState`] across the
    /// connection's subflows. No-op for uncoupled algorithms.
    fn set_coupled(&mut self, _signal: CoupledSignal) {}

    /// Are we below ssthresh (exponential growth)?
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// The registry of built-in congestion-control algorithms.
///
/// Parses from and prints as the canonical lowercase names used by the
/// CLI (`repro <exp> --cc <name>`), the config builder and JSON reports:
/// `"reno"`, `"lia"`, `"olia"`, `"cubic"`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CcAlgorithm {
    /// Uncoupled NewReno on every subflow (each subflow competes like an
    /// independent TCP — unfair at shared bottlenecks, useful baseline).
    Reno,
    /// RFC 6356 Linked Increases Algorithm (the paper's default).
    #[default]
    Lia,
    /// Opportunistic LIA (Khalili et al.): per-path signed alpha terms
    /// shift window to the best paths while keeping Pareto-optimality.
    Olia,
    /// Cubic window growth per subflow, capped by the LIA aggregate bound.
    CoupledCubic,
}

impl CcAlgorithm {
    /// All algorithms, in sweep order.
    pub const ALL: [CcAlgorithm; 4] = [
        CcAlgorithm::Reno,
        CcAlgorithm::Lia,
        CcAlgorithm::Olia,
        CcAlgorithm::CoupledCubic,
    ];

    /// Canonical lowercase name (CLI flag value and report key).
    pub fn name(self) -> &'static str {
        match self {
            CcAlgorithm::Reno => "reno",
            CcAlgorithm::Lia => "lia",
            CcAlgorithm::Olia => "olia",
            CcAlgorithm::CoupledCubic => "cubic",
        }
    }

    /// Does this algorithm consume cross-subflow [`CoupledSignal`]s?
    pub fn is_coupled(self) -> bool {
        !matches!(self, CcAlgorithm::Reno)
    }

    /// Instantiate the per-subflow controller.
    pub fn build(self, mss: u32, init_segs: u32) -> Box<dyn CongestionControl> {
        match self {
            CcAlgorithm::Reno => Box::new(Reno::new(mss, init_segs)),
            CcAlgorithm::Lia => Box::new(Lia::new(mss, init_segs)),
            CcAlgorithm::Olia => Box::new(Olia::new(mss, init_segs)),
            CcAlgorithm::CoupledCubic => Box::new(CoupledCubic::new(mss, init_segs)),
        }
    }
}

impl fmt::Display for CcAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CcAlgorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reno" => Ok(CcAlgorithm::Reno),
            "lia" | "coupled" => Ok(CcAlgorithm::Lia),
            "olia" => Ok(CcAlgorithm::Olia),
            "cubic" | "coupled-cubic" => Ok(CcAlgorithm::CoupledCubic),
            other => Err(format!(
                "unknown congestion-control algorithm `{other}` \
                 (expected one of: reno, lia, olia, cubic)"
            )),
        }
    }
}

/// Cross-subflow coupling parameters for one subflow, computed by
/// [`CoupledState`] and pushed down via [`CongestionControl::set_coupled`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoupledSignal {
    /// Aggregate-increase factor. For LIA this is the RFC 6356 connection
    /// `alpha`; for OLIA it is this subflow's signed `alpha_i` term.
    pub alpha: f64,
    /// Sum of cwnd over coupled subflows (bytes).
    pub total_cwnd: u32,
    /// Sum of `cwnd_k / rtt_k` over coupled subflows (bytes/sec) — the
    /// connection's aggregate transmission rate estimate.
    pub rate_sum: f64,
    /// This subflow's smoothed RTT at computation time.
    pub srtt: Duration,
}

impl CoupledSignal {
    /// Neutral signal: behaves like a single uncoupled flow.
    pub fn uncoupled(cwnd: u32, srtt: Duration) -> CoupledSignal {
        CoupledSignal {
            alpha: 1.0,
            total_cwnd: cwnd,
            rate_sum: 0.0,
            srtt,
        }
    }
}

/// A subflow's view handed to [`CoupledState::recompute`]: the current
/// congestion window and smoothed RTT of one usable subflow.
#[derive(Clone, Copy, Debug)]
pub struct FlowView {
    /// Congestion window (bytes).
    pub cwnd: u32,
    /// Smoothed RTT.
    pub srtt: Duration,
}

/// The cross-subflow half of coupled congestion control.
///
/// Owned by the MPTCP connection (never by individual sockets): the
/// connection is the only entity that sees every subflow, so it collects
/// a [`FlowView`] per usable subflow, calls [`CoupledState::recompute`],
/// and distributes the returned per-flow [`CoupledSignal`]s — one per
/// input flow, in input order — to the subflow sockets. Algorithms never
/// reach across subflows themselves; everything they may know about their
/// siblings arrives in the signal.
#[derive(Debug)]
pub struct CoupledState {
    algo: CcAlgorithm,
    signals: Vec<CoupledSignal>,
}

impl CoupledState {
    /// Coupling state for the configured algorithm.
    pub fn new(algo: CcAlgorithm) -> CoupledState {
        CoupledState {
            algo,
            signals: Vec::new(),
        }
    }

    /// The algorithm this state couples for.
    pub fn algo(&self) -> CcAlgorithm {
        self.algo
    }

    /// Whether recomputation is worthwhile at all (false for Reno).
    pub fn is_coupled(&self) -> bool {
        self.algo.is_coupled()
    }

    /// Recompute coupling terms for the given flows. Returns one signal
    /// per flow, in input order.
    pub fn recompute(&mut self, flows: &[FlowView]) -> &[CoupledSignal] {
        self.signals.clear();
        let total: u32 = flows.iter().fold(0, |a, f| a.saturating_add(f.cwnd));
        let rate_sum: f64 = flows
            .iter()
            .map(|f| f64::from(f.cwnd) / f.srtt.as_secs_f64().max(1e-6))
            .sum();
        match self.algo {
            CcAlgorithm::Reno => {
                // Uncoupled: neutral per-flow signals (not normally pushed).
                for f in flows {
                    self.signals.push(CoupledSignal::uncoupled(f.cwnd, f.srtt));
                }
            }
            CcAlgorithm::Lia | CcAlgorithm::CoupledCubic => {
                let pairs: Vec<(u32, Duration)> = flows.iter().map(|f| (f.cwnd, f.srtt)).collect();
                let alpha = lia_alpha(&pairs);
                for f in flows {
                    self.signals.push(CoupledSignal {
                        alpha,
                        total_cwnd: total,
                        rate_sum,
                        srtt: f.srtt,
                    });
                }
            }
            CcAlgorithm::Olia => {
                for (f, alpha) in flows.iter().zip(olia_alphas(flows)) {
                    self.signals.push(CoupledSignal {
                        alpha,
                        total_cwnd: total,
                        rate_sum,
                        srtt: f.srtt,
                    });
                }
            }
        }
        &self.signals
    }
}

const INIT_SSTHRESH: u32 = u32::MAX / 2;

/// Classic Reno with NewReno recovery hooks.
pub struct Reno {
    cwnd: u32,
    ssthresh: u32,
    mss: u32,
    /// Fractional congestion-avoidance accumulator (bytes acked since the
    /// last full-MSS increase).
    acked_accum: u32,
}

impl Reno {
    /// New Reno instance with `init_segs * mss` initial window.
    pub fn new(mss: u32, init_segs: u32) -> Reno {
        Reno {
            cwnd: mss * init_segs,
            ssthresh: INIT_SSTHRESH,
            mss,
            acked_accum: 0,
        }
    }

    fn halve(&mut self, in_flight: u32) {
        self.ssthresh = (in_flight / 2).max(2 * self.mss);
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, _now: SimTime, bytes_acked: u32, _rtt: Option<Duration>) {
        if self.in_slow_start() {
            self.cwnd = self
                .cwnd
                .saturating_add(bytes_acked.min(self.mss))
                .min(INIT_SSTHRESH);
        } else {
            // cwnd += mss per cwnd bytes acked.
            self.acked_accum += bytes_acked;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd = self.cwnd.saturating_add(self.mss).min(INIT_SSTHRESH);
            }
        }
    }

    fn on_dup_ack(&mut self) {
        // Window inflation during fast recovery.
        self.cwnd = self.cwnd.saturating_add(self.mss);
    }

    fn on_fast_retransmit(&mut self, _now: SimTime, in_flight: u32) {
        self.halve(in_flight);
        self.cwnd = self.ssthresh + 3 * self.mss;
    }

    fn on_retransmit_timeout(&mut self, _now: SimTime, in_flight: u32) {
        self.halve(in_flight);
        self.cwnd = self.mss;
        self.acked_accum = 0;
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn set_cwnd(&mut self, bytes: u32) {
        self.cwnd = bytes.max(self.mss);
    }

    fn set_ssthresh(&mut self, bytes: u32) {
        self.ssthresh = bytes.max(2 * self.mss);
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

/// Linked Increases Algorithm (coupled MPTCP congestion control).
///
/// Identical to Reno in slow start and on loss; in congestion avoidance the
/// per-ACK increase is `min(alpha * acked * mss / cwnd_total,
/// acked * mss / cwnd_i)` so the aggregate is no more aggressive than one
/// TCP on the best path, while still shifting traffic toward less congested
/// subflows. The connection recomputes `alpha` (RFC 6356 formula, via
/// [`CoupledState`]) and calls [`CongestionControl::set_coupled`].
pub struct Lia {
    cwnd: u32,
    ssthresh: u32,
    mss: u32,
    alpha: f64,
    total_cwnd: u32,
    increase_accum: f64,
}

impl Lia {
    /// New LIA instance.
    pub fn new(mss: u32, init_segs: u32) -> Lia {
        Lia {
            cwnd: mss * init_segs,
            ssthresh: INIT_SSTHRESH,
            mss,
            alpha: 1.0,
            total_cwnd: mss * init_segs,
            increase_accum: 0.0,
        }
    }

    fn halve(&mut self, in_flight: u32) {
        self.ssthresh = (in_flight / 2).max(2 * self.mss);
    }
}

impl CongestionControl for Lia {
    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, _now: SimTime, bytes_acked: u32, _rtt: Option<Duration>) {
        if self.in_slow_start() {
            self.cwnd = self
                .cwnd
                .saturating_add(bytes_acked.min(self.mss))
                .min(INIT_SSTHRESH);
            return;
        }
        let total = self.total_cwnd.max(self.cwnd).max(1) as f64;
        let coupled = self.alpha * f64::from(bytes_acked) * f64::from(self.mss) / total;
        let uncoupled = f64::from(bytes_acked) * f64::from(self.mss) / f64::from(self.cwnd.max(1));
        self.increase_accum += coupled.min(uncoupled);
        if self.increase_accum >= 1.0 {
            let inc = self.increase_accum as u32;
            self.increase_accum -= f64::from(inc);
            self.cwnd = self.cwnd.saturating_add(inc).min(INIT_SSTHRESH);
        }
    }

    fn on_dup_ack(&mut self) {
        self.cwnd = self.cwnd.saturating_add(self.mss);
    }

    fn on_fast_retransmit(&mut self, _now: SimTime, in_flight: u32) {
        self.halve(in_flight);
        self.cwnd = self.ssthresh + 3 * self.mss;
    }

    fn on_retransmit_timeout(&mut self, _now: SimTime, in_flight: u32) {
        self.halve(in_flight);
        self.cwnd = self.mss;
        self.increase_accum = 0.0;
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn set_cwnd(&mut self, bytes: u32) {
        self.cwnd = bytes.max(self.mss);
    }

    fn set_ssthresh(&mut self, bytes: u32) {
        self.ssthresh = bytes.max(2 * self.mss);
    }

    fn set_coupled(&mut self, signal: CoupledSignal) {
        self.alpha = signal.alpha;
        self.total_cwnd = signal.total_cwnd;
    }

    fn name(&self) -> &'static str {
        "lia"
    }
}

/// Opportunistic Linked Increases Algorithm (Khalili et al., CoNEXT 2012).
///
/// Congestion-avoidance increase per acked byte is
/// `mss * (w/rtt^2) / rate_sum^2 + alpha_i * mss / w`, where `rate_sum`
/// is the aggregate `sum(w_k/rtt_k)` and `alpha_i` the per-path signed
/// term computed by [`olia_alphas`]: paths that look under-used relative
/// to their quality receive `+1/(n*|collected|)`, the max-window paths
/// pay `-1/(n*|M|)`, everyone else gets 0. With a single path the first
/// term reduces exactly to Reno's `mss/w` growth. Slow start and loss
/// response are Reno's.
pub struct Olia {
    cwnd: u32,
    ssthresh: u32,
    mss: u32,
    alpha: f64,
    rate_sum: f64,
    srtt: Option<Duration>,
    increase_accum: f64,
}

impl Olia {
    /// New OLIA instance.
    pub fn new(mss: u32, init_segs: u32) -> Olia {
        Olia {
            cwnd: mss * init_segs,
            ssthresh: INIT_SSTHRESH,
            mss,
            alpha: 0.0,
            rate_sum: 0.0,
            srtt: None,
            increase_accum: 0.0,
        }
    }

    fn halve(&mut self, in_flight: u32) {
        self.ssthresh = (in_flight / 2).max(2 * self.mss);
    }
}

impl CongestionControl for Olia {
    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, _now: SimTime, bytes_acked: u32, rtt: Option<Duration>) {
        if self.in_slow_start() {
            self.cwnd = self
                .cwnd
                .saturating_add(bytes_acked.min(self.mss))
                .min(INIT_SSTHRESH);
            return;
        }
        let w = f64::from(self.cwnd.max(1));
        let mss = f64::from(self.mss);
        let acked = f64::from(bytes_acked);
        let rtt_s = self
            .srtt
            .or(rtt)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
            .max(1e-6);
        let inc = if self.rate_sum > 0.0 {
            // Coupled: OLIA's rate-based first term plus the signed
            // opportunistic alpha term.
            let base = mss * (w / (rtt_s * rtt_s)) / (self.rate_sum * self.rate_sum);
            let opportunistic = self.alpha * mss / w;
            acked * (base + opportunistic)
        } else {
            // No coupling signal yet (single subflow): plain Reno CA.
            acked * mss / w
        };
        self.increase_accum += inc;
        if self.increase_accum >= 1.0 {
            let add = self.increase_accum as u32;
            self.increase_accum -= f64::from(add);
            self.cwnd = self.cwnd.saturating_add(add).min(INIT_SSTHRESH);
        } else if self.increase_accum <= -1.0 {
            let sub = (-self.increase_accum) as u32;
            self.increase_accum += f64::from(sub);
            self.cwnd = self.cwnd.saturating_sub(sub).max(self.mss);
        }
    }

    fn on_dup_ack(&mut self) {
        self.cwnd = self.cwnd.saturating_add(self.mss);
    }

    fn on_fast_retransmit(&mut self, _now: SimTime, in_flight: u32) {
        self.halve(in_flight);
        self.cwnd = self.ssthresh + 3 * self.mss;
    }

    fn on_retransmit_timeout(&mut self, _now: SimTime, in_flight: u32) {
        self.halve(in_flight);
        self.cwnd = self.mss;
        self.increase_accum = 0.0;
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn set_cwnd(&mut self, bytes: u32) {
        self.cwnd = bytes.max(self.mss);
    }

    fn set_ssthresh(&mut self, bytes: u32) {
        self.ssthresh = bytes.max(2 * self.mss);
    }

    fn set_coupled(&mut self, signal: CoupledSignal) {
        self.alpha = signal.alpha;
        self.rate_sum = signal.rate_sum;
        self.srtt = Some(signal.srtt);
    }

    fn name(&self) -> &'static str {
        "olia"
    }
}

/// Cubic parameters (RFC 8312): multiplicative decrease and the C scaling
/// constant, with windows measured in MSS for the cubic polynomial.
const CUBIC_BETA: f64 = 0.7;
const CUBIC_C: f64 = 0.4;

/// Cubic window growth per subflow, coupled via the LIA aggregate bound.
///
/// In congestion avoidance the per-ACK increase is the classic cubic
/// target chase `(target(t) - cwnd) * acked / cwnd` with
/// `target(t) = C*(t - K)^3 + w_max` (in MSS), *capped* by LIA's coupled
/// increase `alpha * acked * mss / total_cwnd` whenever a coupling signal
/// is live — so a multipath bundle of cubic subflows still takes no more
/// than one fast TCP at a shared bottleneck, while each subflow keeps
/// cubic's RTT-fairness and fast-reprobe shape on its own path. Uses
/// fast convergence (`w_max` shrinks by `(2-beta)/2` on back-to-back
/// losses). Slow start is Reno's.
pub struct CoupledCubic {
    cwnd: u32,
    ssthresh: u32,
    mss: u32,
    /// Window at the last loss event (bytes).
    w_max: f64,
    /// Epoch start: first CA ack after the last loss.
    epoch_start: Option<SimTime>,
    /// Time to reach `w_max` again (secs from epoch start).
    k: f64,
    alpha: f64,
    total_cwnd: u32,
    coupled: bool,
    increase_accum: f64,
}

impl CoupledCubic {
    /// New coupled-cubic instance.
    pub fn new(mss: u32, init_segs: u32) -> CoupledCubic {
        CoupledCubic {
            cwnd: mss * init_segs,
            ssthresh: INIT_SSTHRESH,
            mss,
            w_max: f64::from(mss * init_segs),
            epoch_start: None,
            k: 0.0,
            alpha: 1.0,
            total_cwnd: 0,
            coupled: false,
            increase_accum: 0.0,
        }
    }

    fn on_loss(&mut self, in_flight: u32) {
        let w = f64::from(self.cwnd);
        // Fast convergence: if we crashed below the previous plateau,
        // release capacity faster for newcomers.
        self.w_max = if w < self.w_max {
            w * (2.0 - CUBIC_BETA) / 2.0
        } else {
            w
        };
        let base = f64::from(in_flight.max(self.mss));
        self.ssthresh = ((base * CUBIC_BETA) as u32).max(2 * self.mss);
        self.epoch_start = None;
        self.increase_accum = 0.0;
    }

    /// Cubic target window (bytes) at `t` seconds into the epoch.
    fn target(&self, t: f64) -> f64 {
        let mss = f64::from(self.mss);
        let w_max_seg = self.w_max / mss;
        let d = t - self.k;
        (CUBIC_C * d * d * d + w_max_seg) * mss
    }
}

impl CongestionControl for CoupledCubic {
    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, now: SimTime, bytes_acked: u32, _rtt: Option<Duration>) {
        if self.in_slow_start() {
            self.cwnd = self
                .cwnd
                .saturating_add(bytes_acked.min(self.mss))
                .min(INIT_SSTHRESH);
            return;
        }
        let mss = f64::from(self.mss);
        let w = f64::from(self.cwnd.max(1));
        if self.epoch_start.is_none() {
            self.epoch_start = Some(now);
            if self.w_max < w {
                // Already past the old plateau: start a new convex probe
                // from here.
                self.w_max = w;
                self.k = 0.0;
            } else {
                self.k = ((self.w_max - w) / mss / CUBIC_C).cbrt();
            }
        }
        let t = (now - self.epoch_start.unwrap()).as_secs_f64();
        let cubic_inc = ((self.target(t) - w) / w * f64::from(bytes_acked)).max(0.0);
        let inc = if self.coupled && self.total_cwnd > 0 {
            let coupled_cap =
                self.alpha * f64::from(bytes_acked) * mss / f64::from(self.total_cwnd.max(1));
            cubic_inc.min(coupled_cap)
        } else {
            cubic_inc
        };
        self.increase_accum += inc;
        if self.increase_accum >= 1.0 {
            let add = self.increase_accum as u32;
            self.increase_accum -= f64::from(add);
            self.cwnd = self.cwnd.saturating_add(add).min(INIT_SSTHRESH);
        }
    }

    fn on_dup_ack(&mut self) {
        self.cwnd = self.cwnd.saturating_add(self.mss);
    }

    fn on_fast_retransmit(&mut self, _now: SimTime, in_flight: u32) {
        self.on_loss(in_flight);
        self.cwnd = self.ssthresh + 3 * self.mss;
    }

    fn on_retransmit_timeout(&mut self, _now: SimTime, in_flight: u32) {
        self.on_loss(in_flight);
        self.cwnd = self.mss;
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn set_cwnd(&mut self, bytes: u32) {
        self.cwnd = bytes.max(self.mss);
    }

    fn set_ssthresh(&mut self, bytes: u32) {
        self.ssthresh = bytes.max(2 * self.mss);
    }

    fn set_coupled(&mut self, signal: CoupledSignal) {
        self.alpha = signal.alpha;
        self.total_cwnd = signal.total_cwnd;
        self.coupled = true;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

/// Compute the LIA `alpha` coupling factor (RFC 6356 §4).
///
/// `subflows` yields `(cwnd_bytes, srtt)` for each active subflow.
/// Returns 1.0 when no subflow has an RTT sample yet.
pub fn lia_alpha(subflows: &[(u32, Duration)]) -> f64 {
    let mut best = 0.0f64;
    let mut denom = 0.0f64;
    let mut total = 0.0f64;
    for &(cwnd, rtt) in subflows {
        let rtt_s = rtt.as_secs_f64().max(1e-6);
        let c = f64::from(cwnd);
        best = best.max(c / (rtt_s * rtt_s));
        denom += c / rtt_s;
        total += c;
    }
    if denom <= 0.0 || best <= 0.0 {
        return 1.0;
    }
    (total * best / (denom * denom)).max(f64::MIN_POSITIVE)
}

/// Compute OLIA's per-path `alpha_i` terms.
///
/// Following Khalili et al. §3, with path quality approximated by
/// `w_i/rtt_i^2` (we do not track inter-loss distances, so the
/// highest-throughput-potential path stands in for the "best path" set):
///
/// * `M` — the paths with the largest congestion window.
/// * `collected` — best-quality paths *not* in `M` (good paths that the
///   window distribution currently under-uses).
/// * If `collected` is non-empty: `alpha_i = 1/(n*|collected|)` for
///   collected paths, `alpha_i = -1/(n*|M|)` for max-window paths, and 0
///   for everyone else — windows migrate from big to good-but-small.
/// * If `collected` is empty (the best paths already hold the biggest
///   windows): all `alpha_i = 0` and OLIA's rate term rules alone.
pub fn olia_alphas(flows: &[FlowView]) -> Vec<f64> {
    let n = flows.len();
    if n == 0 {
        return Vec::new();
    }
    let quality: Vec<f64> = flows
        .iter()
        .map(|f| {
            let rtt_s = f.srtt.as_secs_f64().max(1e-6);
            f64::from(f.cwnd) / (rtt_s * rtt_s)
        })
        .collect();
    let max_w = flows.iter().map(|f| f.cwnd).max().unwrap_or(0);
    let max_q = quality.iter().cloned().fold(0.0f64, f64::max);
    let near = |a: f64, b: f64| (a - b).abs() <= b * 1e-9;
    let in_m: Vec<bool> = flows.iter().map(|f| f.cwnd == max_w).collect();
    let in_best: Vec<bool> = quality
        .iter()
        .map(|&q| max_q > 0.0 && near(q, max_q))
        .collect();
    let collected: Vec<bool> = (0..n).map(|i| in_best[i] && !in_m[i]).collect();
    let n_collected = collected.iter().filter(|&&b| b).count();
    if n_collected == 0 {
        return vec![0.0; n];
    }
    let n_m = in_m.iter().filter(|&&b| b).count().max(1);
    (0..n)
        .map(|i| {
            if collected[i] {
                1.0 / (n as f64 * n_collected as f64)
            } else if in_m[i] {
                -1.0 / (n as f64 * n_m as f64)
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime(0);

    fn at_ms(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut r = Reno::new(1000, 10);
        let start = r.cwnd();
        // Acking a full window in MSS-sized chunks doubles cwnd.
        for _ in 0..10 {
            r.on_ack(T0, 1000, None);
        }
        assert_eq!(r.cwnd(), 2 * start);
    }

    #[test]
    fn reno_congestion_avoidance_linear() {
        let mut r = Reno::new(1000, 10);
        r.set_ssthresh(5_000);
        r.set_cwnd(10_000); // above ssthresh: CA
        assert!(!r.in_slow_start());
        // One full window of acks adds one MSS.
        for _ in 0..10 {
            r.on_ack(T0, 1000, None);
        }
        assert_eq!(r.cwnd(), 11_000);
    }

    #[test]
    fn reno_fast_retransmit_halves() {
        let mut r = Reno::new(1000, 10);
        r.set_cwnd(20_000);
        r.on_fast_retransmit(T0, 20_000);
        assert_eq!(r.ssthresh(), 10_000);
        assert_eq!(r.cwnd(), 13_000); // ssthresh + 3 MSS
        r.on_recovery_exit();
        assert_eq!(r.cwnd(), 10_000);
    }

    #[test]
    fn reno_rto_collapses_to_one_mss() {
        let mut r = Reno::new(1000, 10);
        r.set_cwnd(20_000);
        r.on_retransmit_timeout(T0, 20_000);
        assert_eq!(r.cwnd(), 1000);
        assert_eq!(r.ssthresh(), 10_000);
    }

    #[test]
    fn reno_floors() {
        let mut r = Reno::new(1000, 10);
        r.set_cwnd(0);
        assert_eq!(r.cwnd(), 1000);
        r.set_ssthresh(0);
        assert_eq!(r.ssthresh(), 2000);
        r.on_retransmit_timeout(T0, 100); // tiny flight still floors ssthresh
        assert_eq!(r.ssthresh(), 2000);
    }

    #[test]
    fn lia_never_more_aggressive_than_reno() {
        // Single subflow with alpha=1, total=cwnd: LIA == Reno CA rate.
        let mut lia = Lia::new(1000, 10);
        let mut reno = Reno::new(1000, 10);
        for c in [&mut lia as &mut dyn CongestionControl, &mut reno] {
            c.set_ssthresh(5_000);
            c.set_cwnd(10_000);
        }
        for _ in 0..100 {
            let c = lia.cwnd();
            lia.set_coupled(CoupledSignal {
                alpha: 1.0,
                total_cwnd: c,
                rate_sum: 0.0,
                srtt: Duration::from_millis(100),
            });
            lia.on_ack(T0, 1000, None);
            reno.on_ack(T0, 1000, None);
        }
        // LIA grows continuously, Reno in MSS quanta; they stay within one
        // MSS of each other over a hundred ACKs.
        let diff = i64::from(lia.cwnd()) - i64::from(reno.cwnd());
        assert!(
            diff.abs() <= 1000,
            "lia {} vs reno {}",
            lia.cwnd(),
            reno.cwnd()
        );
    }

    #[test]
    fn lia_coupling_slows_growth() {
        // Two equal subflows: alpha=1 against total 2*cwnd halves growth.
        let mut lia = Lia::new(1000, 10);
        lia.set_ssthresh(5_000);
        lia.set_cwnd(10_000);
        lia.set_coupled(CoupledSignal {
            alpha: 1.0,
            total_cwnd: 20_000,
            rate_sum: 0.0,
            srtt: Duration::from_millis(100),
        });
        for _ in 0..10 {
            lia.on_ack(T0, 1000, None);
        }
        // Uncoupled would add ~1000; coupled adds ~500.
        assert!(lia.cwnd() <= 10_600, "cwnd grew to {}", lia.cwnd());
        assert!(lia.cwnd() >= 10_400);
    }

    #[test]
    fn alpha_equal_paths_is_fraction() {
        // Two identical subflows: alpha = total*best/(denom^2)
        //  = 2c * (c/r^2) / (2c/r)^2 = 1/2.
        let a = lia_alpha(&[
            (10_000, Duration::from_millis(100)),
            (10_000, Duration::from_millis(100)),
        ]);
        assert!((a - 0.5).abs() < 1e-9, "alpha = {a}");
    }

    #[test]
    fn alpha_single_path_is_one() {
        let a = lia_alpha(&[(10_000, Duration::from_millis(50))]);
        assert!((a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_no_samples_defaults() {
        assert_eq!(lia_alpha(&[]), 1.0);
        assert_eq!(lia_alpha(&[(0, Duration::from_millis(10))]), 1.0);
    }

    #[test]
    fn alpha_favors_fast_path() {
        // A fast path and a slow path: alpha > the equal-path 0.5 because
        // the best path dominates.
        let a = lia_alpha(&[
            (10_000, Duration::from_millis(20)),
            (10_000, Duration::from_millis(200)),
        ]);
        assert!(a > 0.5, "alpha = {a}");
    }

    fn fv(cwnd: u32, ms: u64) -> FlowView {
        FlowView {
            cwnd,
            srtt: Duration::from_millis(ms),
        }
    }

    #[test]
    fn olia_alpha_collected_path_gets_positive_share() {
        // Path 0: small window, excellent quality (10 ms RTT) — collected.
        // Path 1: max window, poor quality (100 ms RTT) — in M.
        // q0 = 10_000/0.01^2 = 1e8 > q1 = 20_000/0.1^2 = 2e6.
        // n = 2, |collected| = 1, |M| = 1:
        //   alpha_0 = +1/(2*1) = 0.5, alpha_1 = -1/(2*1) = -0.5.
        let a = olia_alphas(&[fv(10_000, 10), fv(20_000, 100)]);
        assert!((a[0] - 0.5).abs() < 1e-12, "alpha = {a:?}");
        assert!((a[1] + 0.5).abs() < 1e-12, "alpha = {a:?}");
    }

    #[test]
    fn olia_alpha_zero_when_best_path_has_max_window() {
        // Equal RTTs: the max-window path is also the best-quality path,
        // so `collected` is empty and every alpha is zero.
        let a = olia_alphas(&[fv(10_000, 50), fv(20_000, 50)]);
        assert_eq!(a, vec![0.0, 0.0]);
    }

    #[test]
    fn olia_alpha_three_paths_hand_computed() {
        // Path 0: w=10_000, rtt=10ms  -> q = 1e8   (best, not max-w: collected)
        // Path 1: w=30_000, rtt=100ms -> q = 3e6   (max-w: M)
        // Path 2: w=20_000, rtt=100ms -> q = 2e6   (neither)
        // n = 3: alpha = [+1/3, -1/3, 0].
        let a = olia_alphas(&[fv(10_000, 10), fv(30_000, 100), fv(20_000, 100)]);
        assert!((a[0] - 1.0 / 3.0).abs() < 1e-12, "alpha = {a:?}");
        assert!((a[1] + 1.0 / 3.0).abs() < 1e-12, "alpha = {a:?}");
        assert!(a[2].abs() < 1e-12, "alpha = {a:?}");
    }

    #[test]
    fn olia_alpha_degenerate_inputs() {
        assert!(olia_alphas(&[]).is_empty());
        // Single path: it is both best and max-window -> alpha 0.
        assert_eq!(olia_alphas(&[fv(10_000, 50)]), vec![0.0]);
    }

    #[test]
    fn olia_single_flow_matches_reno_rate() {
        // With rate_sum = w/rtt the OLIA rate term reduces to mss/w: one
        // full window of acks adds ~one MSS, like Reno CA.
        let mut o = Olia::new(1000, 10);
        o.set_ssthresh(5_000);
        o.set_cwnd(10_000);
        let rtt = Duration::from_millis(100);
        o.set_coupled(CoupledSignal {
            alpha: 0.0,
            total_cwnd: 10_000,
            rate_sum: 10_000.0 / 0.1,
            srtt: rtt,
        });
        for _ in 0..10 {
            o.on_ack(T0, 1000, Some(rtt));
        }
        assert!((10_900..=11_100).contains(&o.cwnd()), "cwnd = {}", o.cwnd());
    }

    #[test]
    fn olia_negative_alpha_shrinks_window() {
        // A max-window path with alpha = -0.5 and a dominant rate_sum
        // grows slower than it shrinks: net decrease.
        let mut o = Olia::new(1000, 10);
        o.set_ssthresh(5_000);
        o.set_cwnd(20_000);
        let rtt = Duration::from_millis(100);
        o.set_coupled(CoupledSignal {
            alpha: -0.5,
            total_cwnd: 30_000,
            rate_sum: 300_000.0,
            srtt: rtt,
        });
        let before = o.cwnd();
        for _ in 0..40 {
            o.on_ack(T0, 1000, Some(rtt));
        }
        assert!(o.cwnd() < before, "cwnd = {}", o.cwnd());
    }

    #[test]
    fn cubic_convex_growth_accelerates_past_plateau() {
        let mut c = CoupledCubic::new(1000, 10);
        c.set_ssthresh(5_000);
        c.set_cwnd(10_000);
        // Drive acks across virtual time; cubic should pass its plateau
        // (w_max = cwnd at epoch start) and accelerate.
        let mut now_ms = 0;
        let mut last = c.cwnd();
        let mut grew = 0u32;
        for _ in 0..50 {
            now_ms += 100;
            for _ in 0..10 {
                c.on_ack(at_ms(now_ms), 1000, None);
            }
            grew += u32::from(c.cwnd() > last);
            last = c.cwnd();
        }
        assert!(c.cwnd() > 10_000, "cwnd = {}", c.cwnd());
        assert!(grew >= 10, "cwnd never grew: {}", c.cwnd());
    }

    #[test]
    fn cubic_loss_sets_plateau_and_concave_approach() {
        let mut c = CoupledCubic::new(1000, 10);
        c.set_ssthresh(5_000);
        c.set_cwnd(20_000);
        c.on_fast_retransmit(at_ms(0), 20_000);
        // beta = 0.7: ssthresh = 14_000, recovery exit deflates there.
        assert_eq!(c.ssthresh(), 14_000);
        c.on_recovery_exit();
        assert_eq!(c.cwnd(), 14_000);
        // K = cbrt((w_max - w)/mss/C) = cbrt(6/0.4) ~ 2.47 s.
        // Early in the epoch growth is concave: cwnd approaches but does
        // not exceed w_max = 20_000 within the first second.
        let mut now_ms = 0;
        for _ in 0..10 {
            now_ms += 100;
            for _ in 0..14 {
                c.on_ack(at_ms(now_ms), 1000, None);
            }
        }
        assert!(c.cwnd() > 14_000, "cwnd = {}", c.cwnd());
        assert!(c.cwnd() <= 20_000, "cwnd = {}", c.cwnd());
    }

    #[test]
    fn cubic_coupling_caps_increase() {
        // Identical twins, one coupled with a tiny alpha: the coupled one
        // must grow no faster than the LIA cap allows.
        let mut free = CoupledCubic::new(1000, 10);
        let mut capped = CoupledCubic::new(1000, 10);
        for c in [&mut free, &mut capped] {
            c.set_ssthresh(5_000);
            c.set_cwnd(10_000);
        }
        capped.set_coupled(CoupledSignal {
            alpha: 0.1,
            total_cwnd: 40_000,
            rate_sum: 0.0,
            srtt: Duration::from_millis(100),
        });
        let mut now_ms = 0;
        for _ in 0..30 {
            now_ms += 100;
            for _ in 0..10 {
                free.on_ack(at_ms(now_ms), 1000, None);
                capped.on_ack(at_ms(now_ms), 1000, None);
            }
        }
        assert!(
            capped.cwnd() < free.cwnd(),
            "capped {} vs free {}",
            capped.cwnd(),
            free.cwnd()
        );
        // Cap is alpha*mss/total per MSS acked: 3s * 10 acks * 1000B *
        // 0.1 * 1000/40_000 = 750 bytes max total growth.
        assert!(capped.cwnd() <= 10_000 + 1000, "cwnd = {}", capped.cwnd());
    }

    #[test]
    fn cc_algorithm_names_round_trip() {
        for algo in CcAlgorithm::ALL {
            let parsed: CcAlgorithm = algo.name().parse().unwrap();
            assert_eq!(parsed, algo);
            assert_eq!(format!("{algo}"), algo.name());
        }
        assert_eq!(
            "CUBIC".parse::<CcAlgorithm>().unwrap(),
            CcAlgorithm::CoupledCubic
        );
        assert!("vegas".parse::<CcAlgorithm>().is_err());
    }

    #[test]
    fn cc_algorithm_builds_named_controller() {
        for algo in CcAlgorithm::ALL {
            let cc = algo.build(1460, 10);
            assert_eq!(cc.name(), algo.name());
            assert_eq!(cc.cwnd(), 14_600);
        }
        assert!(!CcAlgorithm::Reno.is_coupled());
        assert!(CcAlgorithm::Olia.is_coupled());
    }

    #[test]
    fn coupled_state_lia_signals() {
        let mut st = CoupledState::new(CcAlgorithm::Lia);
        assert!(st.is_coupled());
        let flows = [fv(10_000, 100), fv(10_000, 100)];
        let sigs = st.recompute(&flows);
        assert_eq!(sigs.len(), 2);
        // Equal paths: alpha = 1/2, shared by both flows.
        assert!((sigs[0].alpha - 0.5).abs() < 1e-9);
        assert_eq!(sigs[0].total_cwnd, 20_000);
        // rate_sum = 2 * 10_000/0.1 = 200_000 B/s.
        assert!((sigs[0].rate_sum - 200_000.0).abs() < 1.0);
        assert_eq!(sigs[1].srtt, Duration::from_millis(100));
    }

    #[test]
    fn coupled_state_olia_per_flow_alphas() {
        let mut st = CoupledState::new(CcAlgorithm::Olia);
        let flows = [fv(10_000, 10), fv(20_000, 100)];
        let sigs = st.recompute(&flows);
        assert!((sigs[0].alpha - 0.5).abs() < 1e-12);
        assert!((sigs[1].alpha + 0.5).abs() < 1e-12);
        assert_eq!(sigs[0].total_cwnd, 30_000);
    }

    #[test]
    fn coupled_state_reno_is_uncoupled() {
        let mut st = CoupledState::new(CcAlgorithm::Reno);
        assert!(!st.is_coupled());
        let sigs = st.recompute(&[fv(10_000, 50)]);
        assert_eq!(sigs[0].alpha, 1.0);
    }
}
