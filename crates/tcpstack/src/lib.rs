//! A sans-IO userspace TCP stack.
//!
//! This crate is the single-path substrate the NSDI 2012 MPTCP paper builds
//! on: a complete TCP implementation — the full connection state machine,
//! reliable transmission with RTO (RFC 6298) and NewReno-style fast
//! retransmit/recovery, flow control with window scaling, delayed ACKs,
//! persist-timer zero-window probing, Reno and coupled-LIA congestion
//! control, and send/receive buffer autotuning.
//!
//! Design follows the smoltcp idiom: the socket is a pure state machine.
//! You feed it segments with [`TcpSocket::handle_segment`], drain output
//! with [`TcpSocket::poll`], and learn when to call back via
//! [`TcpSocket::poll_at`]. There is no I/O, no threads, no global clock —
//! which makes it exactly reproducible under the `mptcp-netsim` simulator.
//!
//! Three extension points exist purely for MPTCP (§4 of the paper):
//!
//! * **Chunked sends** ([`TcpSocket::send_chunk`]): payload enqueued with
//!   per-chunk TCP options. Segments never span chunk boundaries, and
//!   retransmissions re-attach the chunk's options — the paper's
//!   requirement that data sequence mappings be "retransmitted
//!   consistently" (§3.3.3).
//! * **Carried options** ([`TcpSocket::set_carry_options`]): options (the
//!   DATA_ACK) attached to *every* outgoing segment, including pure ACKs,
//!   which are not subject to flow control — the §3.3.3 conclusion.
//! * **Window override** ([`TcpSocket::set_window_override`]): the
//!   advertised window reflects the *connection-level* shared receive pool
//!   rather than subflow buffer state — the §3.3.1 deadlock fix.

pub mod cc;
pub mod config;
pub mod recvbuf;
pub mod rtt;
pub mod sendbuf;
pub mod socket;
pub mod state;

pub use cc::{
    CcAlgorithm, CongestionControl, CoupledCubic, CoupledSignal, CoupledState, FlowView, Lia, Olia,
    Reno,
};
pub use config::TcpConfig;
pub use rtt::RttEstimator;
pub use socket::{SocketStats, TcpSocket};
pub use state::TcpState;
