//! The receive queue: in-order assembly plus subflow-level reordering.
//!
//! Incoming payload is keyed by its offset in the subflow byte stream
//! (sequence relative to IRS+1). In-order bytes append to the assembled
//! stream the owner reads; out-of-order bytes wait in a BTree keyed by
//! offset. Note this is *subflow*-level reordering only — the interesting
//! connection-level out-of-order queue (Figure 8's four algorithms) lives
//! in the `mptcp` crate.

use std::collections::BTreeMap;

use bytes::Bytes;

/// Reassembly buffer for one TCP receive stream.
pub struct RecvQueue {
    /// In-order data not yet read by the owner.
    assembled: std::collections::VecDeque<Bytes>,
    assembled_bytes: usize,
    /// Offset (bytes since start of stream) of the next in-order byte.
    next_offset: u64,
    /// Offset of the first unread byte (next_offset - assembled_bytes).
    read_offset: u64,
    /// Out-of-order segments keyed by stream offset.
    ooo: BTreeMap<u64, Bytes>,
    ooo_bytes: usize,
    /// Current buffer capacity (autotuning may grow it).
    capacity: usize,
}

impl RecvQueue {
    /// Create with an initial capacity.
    pub fn new(capacity: usize) -> RecvQueue {
        RecvQueue {
            assembled: std::collections::VecDeque::new(),
            assembled_bytes: 0,
            next_offset: 0,
            read_offset: 0,
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            capacity,
        }
    }

    /// Offset of the next expected in-order byte.
    pub fn next_offset(&self) -> u64 {
        self.next_offset
    }

    /// Bytes buffered (assembled unread + out-of-order).
    pub fn buffered(&self) -> usize {
        self.assembled_bytes + self.ooo_bytes
    }

    /// Bytes held only in the out-of-order queue.
    pub fn ooo_bytes(&self) -> usize {
        self.ooo_bytes
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Grow (never shrink) the capacity.
    pub fn set_capacity(&mut self, cap: usize) {
        self.capacity = self.capacity.max(cap);
    }

    /// Receive window to advertise: free space in the buffer.
    pub fn window(&self) -> u32 {
        self.capacity.saturating_sub(self.buffered()) as u32
    }

    /// Insert payload whose first byte sits at stream `offset`.
    ///
    /// Returns the number of *new* in-order bytes made available (the
    /// amount `rcv_nxt` advanced). Data beyond the window has already been
    /// clipped by the socket; overlaps and duplicates are tolerated here.
    pub fn insert(&mut self, offset: u64, data: Bytes) -> u64 {
        if data.is_empty() {
            return 0;
        }
        let end = offset + data.len() as u64;
        if end <= self.next_offset {
            return 0; // entirely duplicate
        }
        // Clip the already-received prefix.
        let (offset, data) = if offset < self.next_offset {
            let cut = (self.next_offset - offset) as usize;
            (self.next_offset, data.slice(cut..))
        } else {
            (offset, data)
        };

        if offset > self.next_offset {
            // Out of order: stash, trimming overlap with existing entries.
            self.stash_ooo(offset, data);
            return 0;
        }

        // In order: append, then drain any now-contiguous stashed data.
        let before = self.next_offset;
        self.append(data);
        self.drain_ooo();
        self.next_offset - before
    }

    fn append(&mut self, data: Bytes) {
        self.next_offset += data.len() as u64;
        self.assembled_bytes += data.len();
        self.assembled.push_back(data);
    }

    fn stash_ooo(&mut self, mut offset: u64, mut data: Bytes) {
        // Trim against the predecessor.
        if let Some((&pstart, pdata)) = self.ooo.range(..=offset).next_back() {
            let pend = pstart + pdata.len() as u64;
            if pend >= offset + data.len() as u64 {
                return; // fully covered
            }
            if pend > offset {
                let cut = (pend - offset) as usize;
                data = data.slice(cut..);
                offset = pend;
            }
        }
        // Trim successors covered by this segment.
        let mut absorbed = Vec::new();
        for (&s, d) in self.ooo.range(offset..) {
            if s >= offset + data.len() as u64 {
                break;
            }
            absorbed.push((s, d.len()));
        }
        for (s, len) in absorbed {
            let sdata = self.ooo.remove(&s).unwrap();
            self.ooo_bytes -= len;
            let send = s + len as u64;
            let dend = offset + data.len() as u64;
            if send > dend {
                // Successor extends beyond: keep its tail.
                let keep = sdata.slice((dend - s) as usize..);
                self.ooo_bytes += keep.len();
                self.ooo.insert(dend, keep);
                break;
            }
        }
        self.ooo_bytes += data.len();
        self.ooo.insert(offset, data);
    }

    fn drain_ooo(&mut self) {
        while let Some((&start, _)) = self.ooo.first_key_value() {
            if start > self.next_offset {
                break;
            }
            let (start, data) = self.ooo.pop_first().unwrap();
            self.ooo_bytes -= data.len();
            if start + data.len() as u64 <= self.next_offset {
                continue; // fully duplicate
            }
            let cut = (self.next_offset - start) as usize;
            self.append(data.slice(cut..));
        }
    }

    /// Read up to `max` in-order bytes.
    pub fn read(&mut self, max: usize) -> Option<Bytes> {
        let front = self.assembled.front_mut()?;
        let out = if front.len() <= max {
            self.assembled.pop_front().unwrap()
        } else {
            let head = front.slice(..max);
            *front = front.slice(max..);
            head
        };
        self.assembled_bytes -= out.len();
        self.read_offset += out.len() as u64;
        Some(out)
    }

    /// Read like [`RecvQueue::read`], also reporting the stream offset of
    /// the first returned byte (used by MPTCP to match DSS mappings).
    pub fn read_with_offset(&mut self, max: usize) -> Option<(u64, Bytes)> {
        let off = self.read_offset;
        self.read(max).map(|b| (off, b))
    }

    /// First contiguous out-of-order range, for SACK generation.
    pub fn first_sack_block(&self) -> Option<(u64, u64)> {
        let (&start, data) = self.ooo.first_key_value()?;
        Some((start, start + data.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    #[test]
    fn in_order_delivery() {
        let mut q = RecvQueue::new(1000);
        assert_eq!(q.insert(0, b("abc")), 3);
        assert_eq!(q.insert(3, b("def")), 3);
        assert_eq!(&q.read(100).unwrap()[..], b"abc");
        assert_eq!(&q.read(100).unwrap()[..], b"def");
        assert!(q.read(100).is_none());
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut q = RecvQueue::new(1000);
        assert_eq!(q.insert(3, b("def")), 0);
        assert_eq!(q.ooo_bytes(), 3);
        assert_eq!(q.insert(0, b("abc")), 6); // fills the hole, drains ooo
        assert_eq!(q.ooo_bytes(), 0);
        assert_eq!(&q.read(100).unwrap()[..], b"abc");
        assert_eq!(&q.read(100).unwrap()[..], b"def");
    }

    #[test]
    fn duplicates_ignored() {
        let mut q = RecvQueue::new(1000);
        q.insert(0, b("abcdef"));
        assert_eq!(q.insert(0, b("abc")), 0);
        assert_eq!(q.insert(2, b("cdef")), 0);
        assert_eq!(q.buffered(), 6);
    }

    #[test]
    fn partial_overlap_trimmed() {
        let mut q = RecvQueue::new(1000);
        q.insert(0, b("abcd"));
        // Overlaps 2 bytes, extends 2 new.
        assert_eq!(q.insert(2, b("cdEF")), 2);
        let mut all = Vec::new();
        while let Some(x) = q.read(100) {
            all.extend_from_slice(&x);
        }
        assert_eq!(&all, b"abcdEF");
    }

    #[test]
    fn ooo_overlaps_merge() {
        let mut q = RecvQueue::new(1000);
        q.insert(10, b("KLM"));
        q.insert(8, b("IJKL")); // overlaps predecessor territory
        q.insert(12, b("MNO")); // overlaps successor
        assert_eq!(q.insert(0, b("ABCDEFGH")), 15);
        let mut all = Vec::new();
        while let Some(x) = q.read(100) {
            all.extend_from_slice(&x);
        }
        assert_eq!(all.len(), 15);
        assert_eq!(&all[8..], b"IJKLMNO");
    }

    #[test]
    fn window_reflects_occupancy() {
        let mut q = RecvQueue::new(10);
        assert_eq!(q.window(), 10);
        q.insert(0, b("abcdef"));
        assert_eq!(q.window(), 4);
        q.read(3);
        assert_eq!(q.window(), 7);
        // OOO data also consumes window.
        q.insert(8, b("xy"));
        assert_eq!(q.window(), 5);
    }

    #[test]
    fn read_with_offset_tracks_stream_position() {
        let mut q = RecvQueue::new(1000);
        q.insert(0, b("hello world"));
        let (off, data) = q.read_with_offset(5).unwrap();
        assert_eq!(off, 0);
        assert_eq!(&data[..], b"hello");
        let (off, data) = q.read_with_offset(100).unwrap();
        assert_eq!(off, 5);
        assert_eq!(&data[..], b" world");
    }

    #[test]
    fn sack_block_reports_first_hole_end() {
        let mut q = RecvQueue::new(1000);
        assert!(q.first_sack_block().is_none());
        q.insert(10, b("XYZ"));
        assert_eq!(q.first_sack_block(), Some((10, 13)));
    }

    #[test]
    fn capacity_never_shrinks() {
        let mut q = RecvQueue::new(100);
        q.set_capacity(50);
        assert_eq!(q.capacity(), 100);
        q.set_capacity(200);
        assert_eq!(q.capacity(), 200);
    }
}
