//! A unidirectional link: rate, propagation delay, drop-tail buffer.
//!
//! The queue is modelled fluidly: the link remembers when its transmitter
//! will next be idle (`busy_until`); the backlog in bytes at any instant is
//! `(busy_until - now) * rate`. A packet is dropped when the backlog plus
//! its own size would exceed the configured buffer — exactly netem/tbf
//! semantics, which is what the paper's emulated WiFi (80 ms buffer) and 3G
//! (2 s buffer!) links used.

use crate::rng::SimRng;
use crate::time::{Duration, SimTime};

/// Static link parameters.
#[derive(Clone, Copy, Debug)]
pub struct LinkCfg {
    /// Transmission rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Drop-tail buffer size in bytes.
    pub queue_bytes: usize,
    /// Independent random loss probability per packet (0 disables).
    pub loss: f64,
}

impl LinkCfg {
    /// A link whose buffer holds `buf_time` worth of traffic at line rate —
    /// how the paper specifies its emulated links ("80ms buffer").
    pub fn with_buffer_time(rate_bps: u64, delay: Duration, buf_time: Duration) -> LinkCfg {
        let queue_bytes = ((rate_bps as u128 * buf_time.as_nanos()) / (8 * 1_000_000_000)) as usize;
        LinkCfg {
            rate_bps,
            delay,
            queue_bytes: queue_bytes.max(3000),
            loss: 0.0,
        }
    }

    /// The paper's emulated WiFi path: 8 Mbps, 20 ms base RTT, 80 ms buffer.
    /// `delay` here is one-way (half the base RTT).
    pub fn wifi() -> LinkCfg {
        LinkCfg::with_buffer_time(
            8_000_000,
            Duration::from_millis(10),
            Duration::from_millis(80),
        )
    }

    /// The paper's emulated 3G path: 2 Mbps, 150 ms base RTT, 2 s buffer.
    pub fn threeg() -> LinkCfg {
        LinkCfg::with_buffer_time(2_000_000, Duration::from_millis(75), Duration::from_secs(2))
    }

    /// The very slow 3G link of Figure 6(a): 50 Kbps, 150 ms RTT, 2 s buffer.
    pub fn threeg_weak() -> LinkCfg {
        LinkCfg::with_buffer_time(50_000, Duration::from_millis(75), Duration::from_secs(2))
    }

    /// A LAN-style gigabit link (100 µs one-way, 500 packets of buffer).
    pub fn gigabit() -> LinkCfg {
        LinkCfg {
            rate_bps: 1_000_000_000,
            delay: Duration::from_micros(100),
            queue_bytes: 500 * 1500,
            loss: 0.0,
        }
    }

    /// A 100 Mbps link (Fig 6(b)'s slower interface).
    pub fn fast_ethernet() -> LinkCfg {
        LinkCfg {
            rate_bps: 100_000_000,
            delay: Duration::from_micros(100),
            queue_bytes: 500 * 1500,
            loss: 0.0,
        }
    }

    /// Time to serialize `bytes` onto this link.
    pub fn serialization(&self, bytes: usize) -> Duration {
        Duration::from_nanos((bytes as u64 * 8).saturating_mul(1_000_000_000) / self.rate_bps)
    }

    /// Bandwidth-delay product in bytes (one-way delay doubled for RTT).
    pub fn bdp_bytes(&self) -> usize {
        ((self.rate_bps as u128 * (2 * self.delay).as_nanos()) / (8 * 1_000_000_000)) as usize
    }
}

/// Counters exported per link.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Packets successfully transmitted.
    pub tx_packets: u64,
    /// Bytes successfully transmitted (wire bytes, including headers).
    pub tx_bytes: u64,
    /// Packets dropped by the drop-tail queue.
    pub queue_drops: u64,
    /// Packets dropped by random loss.
    pub random_drops: u64,
    /// Packets silently discarded while a fault held the link down.
    pub fault_drops: u64,
}

/// A unidirectional link instance.
pub struct Link {
    /// Static parameters. Fault events may rewrite these mid-run (loss
    /// bursts, delay spikes, bandwidth drops) and restore them afterwards.
    pub cfg: LinkCfg,
    busy_until: SimTime,
    /// Carrier state: a downed link is a silent blackhole — every packet
    /// vanishes without an RST or any signal to the endpoints.
    pub up: bool,
    /// Traffic counters.
    pub stats: LinkStats,
}

impl Link {
    /// Create an idle link.
    pub fn new(cfg: LinkCfg) -> Link {
        Link {
            cfg,
            busy_until: SimTime::ZERO,
            up: true,
            stats: LinkStats::default(),
        }
    }

    /// Current queue backlog in bytes.
    pub fn backlog_bytes(&self, now: SimTime) -> usize {
        let busy = self.busy_until.since(now);
        ((self.cfg.rate_bps as u128 * busy.as_nanos()) / (8 * 1_000_000_000)) as usize
    }

    /// Attempt to transmit a packet of `wire_len` bytes at `now`.
    ///
    /// Returns the instant the last bit arrives at the far end, or `None`
    /// if the packet was dropped (queue overflow or random loss).
    pub fn transmit(&mut self, now: SimTime, wire_len: usize, rng: &mut SimRng) -> Option<SimTime> {
        if !self.up {
            self.stats.fault_drops += 1;
            return None;
        }
        if rng.chance(self.cfg.loss) {
            self.stats.random_drops += 1;
            return None;
        }
        if self.backlog_bytes(now) + wire_len > self.cfg.queue_bytes {
            self.stats.queue_drops += 1;
            return None;
        }
        let start = self.busy_until.max(now);
        self.busy_until = start + self.cfg.serialization(wire_len);
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += wire_len as u64;
        Some(self.busy_until + self.cfg.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_loss_rng() -> SimRng {
        SimRng::new(1)
    }

    #[test]
    fn serialization_delay() {
        // 1500 bytes at 8 Mbps = 1.5 ms.
        let cfg = LinkCfg {
            rate_bps: 8_000_000,
            delay: Duration::from_millis(10),
            queue_bytes: 100_000,
            loss: 0.0,
        };
        let mut l = Link::new(cfg);
        let arr = l.transmit(SimTime::ZERO, 1500, &mut no_loss_rng()).unwrap();
        assert_eq!(
            arr,
            SimTime::ZERO + Duration::from_micros(1500) + Duration::from_millis(10)
        );
    }

    #[test]
    fn packets_queue_behind_each_other() {
        let cfg = LinkCfg {
            rate_bps: 8_000_000,
            delay: Duration::ZERO,
            queue_bytes: 100_000,
            loss: 0.0,
        };
        let mut l = Link::new(cfg);
        let mut rng = no_loss_rng();
        let a = l.transmit(SimTime::ZERO, 1000, &mut rng).unwrap();
        let b = l.transmit(SimTime::ZERO, 1000, &mut rng).unwrap();
        assert_eq!(b - a, cfg.serialization(1000));
    }

    #[test]
    fn drop_tail_overflow() {
        let cfg = LinkCfg {
            rate_bps: 1_000_000,
            delay: Duration::ZERO,
            queue_bytes: 3000,
            loss: 0.0,
        };
        let mut l = Link::new(cfg);
        let mut rng = no_loss_rng();
        assert!(l.transmit(SimTime::ZERO, 1500, &mut rng).is_some());
        assert!(l.transmit(SimTime::ZERO, 1500, &mut rng).is_some());
        // Third packet exceeds the 3000-byte buffer (2 × 1500 queued).
        assert!(l.transmit(SimTime::ZERO, 1500, &mut rng).is_none());
        assert_eq!(l.stats.queue_drops, 1);
        // After the queue drains the link accepts traffic again.
        let later = SimTime::ZERO + Duration::from_secs(1);
        assert!(l.transmit(later, 1500, &mut rng).is_some());
    }

    #[test]
    fn backlog_drains_over_time() {
        let cfg = LinkCfg {
            rate_bps: 8_000_000,
            delay: Duration::ZERO,
            queue_bytes: 100_000,
            loss: 0.0,
        };
        let mut l = Link::new(cfg);
        let mut rng = no_loss_rng();
        l.transmit(SimTime::ZERO, 10_000, &mut rng);
        assert_eq!(l.backlog_bytes(SimTime::ZERO), 10_000);
        // After half the serialization time, half the bytes remain.
        let half = SimTime::ZERO + Duration::from_micros(5000);
        assert_eq!(l.backlog_bytes(half), 5000);
    }

    #[test]
    fn downed_link_swallows_silently() {
        let mut l = Link::new(LinkCfg::gigabit());
        let mut rng = no_loss_rng();
        l.up = false;
        assert!(l.transmit(SimTime::ZERO, 1500, &mut rng).is_none());
        assert_eq!(l.stats.fault_drops, 1);
        assert_eq!(l.stats.tx_packets, 0);
        l.up = true;
        assert!(l.transmit(SimTime::ZERO, 1500, &mut rng).is_some());
        assert_eq!(l.stats.tx_packets, 1);
    }

    #[test]
    fn random_loss_counted() {
        let cfg = LinkCfg {
            rate_bps: 1_000_000_000,
            delay: Duration::ZERO,
            queue_bytes: usize::MAX / 2,
            loss: 1.0,
        };
        let mut l = Link::new(cfg);
        assert!(l.transmit(SimTime::ZERO, 100, &mut no_loss_rng()).is_none());
        assert_eq!(l.stats.random_drops, 1);
    }

    #[test]
    fn paper_link_presets() {
        // WiFi: 8 Mbps × 80 ms = 80 KB buffer.
        assert_eq!(LinkCfg::wifi().queue_bytes, 80_000);
        // 3G: 2 Mbps × 2 s = 500 KB buffer.
        assert_eq!(LinkCfg::threeg().queue_bytes, 500_000);
        // WiFi BDP = 8 Mbps × 20 ms = 20 KB.
        assert_eq!(LinkCfg::wifi().bdp_bytes(), 20_000);
        // 3G BDP = 2 Mbps × 150 ms = 37.5 KB.
        assert_eq!(LinkCfg::threeg().bdp_bytes(), 37_500);
    }
}
