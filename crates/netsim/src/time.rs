//! Simulation clock.
//!
//! [`SimTime`] is an absolute instant in nanoseconds since the start of the
//! simulation; durations reuse [`std::time::Duration`]. Keeping the clock a
//! plain integer makes every run exactly reproducible and lets tests assert
//! on precise timings (serialization delays, RTO backoff, etc.).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

pub use std::time::Duration;

/// An absolute instant on the simulation clock (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant; saturates at zero.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Earliest of two optional deadlines (None = no deadline).
pub fn min_deadline(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + Duration::from_micros(500);
        assert_eq!(t.0, 10_500_000);
        assert_eq!(t - SimTime::from_millis(10), Duration::from_micros(500));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime::ZERO.since(SimTime::from_secs(1)), Duration::ZERO);
    }

    #[test]
    fn deadline_combination() {
        let a = Some(SimTime::from_secs(2));
        let b = Some(SimTime::from_secs(1));
        assert_eq!(min_deadline(a, b), b);
        assert_eq!(min_deadline(a, None), a);
        assert_eq!(min_deadline(None, None), None);
    }
}
