//! Deterministic randomness for the simulator.
//!
//! All stochastic behaviour — random loss, MPTCP key generation, workload
//! think times — draws from a [`SimRng`] seeded by the scenario, so every
//! experiment is exactly reproducible (and shrinkable under proptest).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded random source.
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.random()
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.random()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.random_range(lo..hi)
    }

    /// Fork a child RNG with an independent stream derived from this one.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        assert!(!r.chance(0.0));
        for _ in 0..50 {
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::new(7);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.range(5, 5), 5);
    }

    #[test]
    fn fork_streams_differ() {
        let mut a = SimRng::new(42);
        let mut c = a.fork();
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
