//! A stable min-heap of timed events.
//!
//! Events at the same instant fire in insertion order — this tiebreak is
//! what makes the whole simulation deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An ordered queue of `(SimTime, T)` events.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `item` at instant `at`.
    pub fn push(&mut self, at: SimTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, item }));
    }

    /// Instant of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.item))
    }

    /// Pop the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), "c");
        q.push(SimTime::from_millis(1), "a");
        q.push(SimTime::from_millis(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn stable_for_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), ());
        assert!(q.pop_due(SimTime::from_millis(9)).is_none());
        assert!(q.pop_due(SimTime::from_millis(10)).is_some());
        assert!(q.is_empty());
    }
}
