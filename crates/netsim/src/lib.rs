//! Deterministic discrete-event network simulator.
//!
//! This crate stands in for the paper's testbeds: emulated WiFi/3G links
//! (netem-style rate + propagation delay + drop-tail buffer), gigabit LANs,
//! and the `htsim` simulator used for Figure 5. Everything is deterministic
//! given a seed: the event queue breaks ties by insertion order and all
//! randomness flows through [`SimRng`].
//!
//! The moving parts:
//! * [`SimTime`] — nanosecond simulation clock.
//! * [`EventQueue`] — the ordered event heap.
//! * [`Link`] — a unidirectional rate/delay/buffer pipe with drop-tail
//!   queueing and optional random loss.
//! * [`Path`] — a bidirectional pair of links plus a chain of
//!   [`Middlebox`] elements (the Click-style models of §4.1 live in the
//!   `mptcp-middlebox` crate and implement the trait defined here).
//! * [`Sim`] — the driver: routes segments from [`Host`]s through paths,
//!   applies middleboxes, schedules deliveries, and fires host timers.

pub mod capture;
pub mod event;
pub mod fault;
pub mod link;
pub mod path;
pub mod rng;
pub mod sim;
pub mod time;

pub use capture::{
    CaptureConfig, CaptureRecord, CaptureSnapshot, PacketCapture, PacketFate,
    DEFAULT_CAPTURE_CAPACITY,
};
pub use event::EventQueue;
pub use fault::{AppliedFault, FaultEvent, FaultKind, FaultSchedule};
pub use link::{Link, LinkCfg, LinkStats};
pub use path::{Dir, MbVerdict, Middlebox, Path};
pub use rng::SimRng;
pub use sim::{Host, HostId, Outbox, PathId, Sim};
pub use time::{Duration, SimTime};
