//! Pcap-like per-link packet capture with MPTCP option decoding.
//!
//! When enabled, [`Sim`](crate::sim::Sim) records one [`CaptureRecord`]
//! per routed segment: timestamp, path and direction, TCP header summary,
//! decoded MPTCP options, and the segment's fate — delivered, dropped by a
//! drop-tail queue or random loss, or swallowed by a middlebox. Segments a
//! middlebox rewrote (payload or options differ from what the sender
//! emitted) carry a `mutated` annotation, so a trace shows *what the
//! network did to the traffic*, not just what the endpoints saw.
//!
//! Like the [`Tracer`](mptcp_telemetry::Tracer), capture is zero-cost when
//! disabled (one branch, no allocation) and bounded when enabled: a
//! fixed-capacity ring plus a `dropped_records` counter.

use mptcp_packet::{MptcpOption, TcpSegment};

use crate::path::Dir;

/// Configuration for a [`PacketCapture`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CaptureConfig {
    /// Master switch; when false nothing is buffered or allocated.
    pub enabled: bool,
    /// Ring capacity in records.
    pub capacity: usize,
}

/// Default capture ring capacity — sized for the paper's 25-second
/// two-path scenarios (~130k packets on two 2 Mbps paths, counting pure
/// ACKs) without drops.
pub const DEFAULT_CAPTURE_CAPACITY: usize = 262_144;

impl CaptureConfig {
    /// Capture off — the zero-cost default.
    pub const fn disabled() -> CaptureConfig {
        CaptureConfig {
            enabled: false,
            capacity: 0,
        }
    }

    /// Capture on with the default ring capacity.
    pub const fn enabled() -> CaptureConfig {
        CaptureConfig {
            enabled: true,
            capacity: DEFAULT_CAPTURE_CAPACITY,
        }
    }
}

impl Default for CaptureConfig {
    fn default() -> CaptureConfig {
        CaptureConfig::disabled()
    }
}

/// What happened to a captured segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketFate {
    /// Transmitted and scheduled for delivery.
    Delivered,
    /// Dropped by the link's drop-tail queue.
    QueueDrop,
    /// Dropped by the link's configured random loss.
    RandomDrop,
    /// Swallowed by a middlebox in the path chain.
    MboxDrop,
    /// Silently discarded because a fault held the link down.
    FaultDrop,
}

impl PacketFate {
    /// Stable snake_case name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            PacketFate::Delivered => "delivered",
            PacketFate::QueueDrop => "queue_drop",
            PacketFate::RandomDrop => "random_drop",
            PacketFate::MboxDrop => "mbox_drop",
            PacketFate::FaultDrop => "fault_drop",
        }
    }
}

/// One captured segment. Allocation (flag string, decoded options) only
/// happens when capture is enabled, so the disabled path stays free.
#[derive(Clone, Debug, PartialEq)]
pub struct CaptureRecord {
    /// Simulated-clock nanoseconds at the instant the segment hit the path.
    pub at_ns: u64,
    /// Path index within the simulation.
    pub path: usize,
    /// Traffic direction through the path.
    pub fwd: bool,
    /// Source address and port.
    pub src: (u32, u16),
    /// Destination address and port.
    pub dst: (u32, u16),
    /// Subflow-level sequence number.
    pub seq: u32,
    /// Subflow-level acknowledgment number.
    pub ack: u32,
    /// Flag summary, e.g. `"SA"`, `"A"`, `"FA"`, `"R"`.
    pub flags: String,
    /// Payload bytes.
    pub payload_len: usize,
    /// Wire bytes including TCP/IP headers and options.
    pub wire_len: usize,
    /// Decoded MPTCP option summaries, e.g. `"dss(ack=42,map=7+1460)"`.
    pub mptcp: Vec<String>,
    /// A middlebox rewrote the segment (payload or options changed).
    pub mutated: bool,
    /// What became of the segment.
    pub fate: PacketFate,
}

impl CaptureRecord {
    /// True if the segment carried at least one MPTCP option.
    pub fn has_mptcp(&self) -> bool {
        !self.mptcp.is_empty()
    }

    /// Render as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let opts: Vec<String> = self.mptcp.iter().map(|o| format!("\"{o}\"")).collect();
        format!(
            "{{\"type\":\"packet\",\"at_ns\":{},\"path\":{},\"dir\":\"{}\",\
             \"src\":\"{}:{}\",\"dst\":\"{}:{}\",\"seq\":{},\"ack\":{},\
             \"flags\":\"{}\",\"payload_len\":{},\"wire_len\":{},\
             \"mptcp\":[{}],\"mutated\":{},\"fate\":\"{}\"}}",
            self.at_ns,
            self.path,
            if self.fwd { "fwd" } else { "rev" },
            self.src.0,
            self.src.1,
            self.dst.0,
            self.dst.1,
            self.seq,
            self.ack,
            self.flags,
            self.payload_len,
            self.wire_len,
            opts.join(","),
            self.mutated,
            self.fate.name(),
        )
    }
}

/// Summarize one decoded MPTCP option for a capture record.
pub fn summarize_option(opt: &MptcpOption) -> String {
    match opt {
        MptcpOption::MpCapable { receiver_key, .. } => {
            if receiver_key.is_some() {
                "mp_capable(echo)".to_string()
            } else {
                "mp_capable".to_string()
            }
        }
        MptcpOption::MpJoinSyn { addr_id, .. } => format!("mp_join_syn(id={addr_id})"),
        MptcpOption::MpJoinSynAck { .. } => "mp_join_synack".to_string(),
        MptcpOption::MpJoinAck { .. } => "mp_join_ack".to_string(),
        MptcpOption::Dss {
            data_ack,
            mapping,
            data_fin,
        } => {
            let mut parts = Vec::new();
            if let Some(a) = data_ack {
                parts.push(format!("ack={a}"));
            }
            if let Some(m) = mapping {
                parts.push(format!("map={}+{}", m.dsn, m.len));
                if m.checksum.is_some() {
                    parts.push("ck".to_string());
                }
            }
            if *data_fin {
                parts.push("fin".to_string());
            }
            format!("dss({})", parts.join(","))
        }
        MptcpOption::AddAddr(a) => format!("add_addr(id={},addr={})", a.addr_id, a.addr),
        MptcpOption::RemoveAddr { addr_ids } => {
            let ids: Vec<String> = addr_ids.iter().map(|i| i.to_string()).collect();
            format!("remove_addr(id={})", ids.join("+"))
        }
        MptcpOption::MpPrio { backup, .. } => format!("mp_prio(backup={backup})"),
        MptcpOption::MpFail { dsn } => format!("mp_fail(dsn={dsn})"),
        MptcpOption::FastClose { .. } => "fastclose".to_string(),
    }
}

/// Build the flag summary string (`S`, `A`, `F`, `R`, `P` in that order).
fn flag_string(seg: &TcpSegment) -> String {
    let mut s = String::new();
    if seg.flags.syn {
        s.push('S');
    }
    if seg.flags.ack {
        s.push('A');
    }
    if seg.flags.fin {
        s.push('F');
    }
    if seg.flags.rst {
        s.push('R');
    }
    if seg.flags.psh {
        s.push('P');
    }
    s
}

/// Bounded per-simulation packet capture.
#[derive(Debug, Default)]
pub struct PacketCapture {
    enabled: bool,
    buf: Vec<CaptureRecord>,
    capacity: usize,
    head: usize,
    total: u64,
}

impl PacketCapture {
    /// A capture honoring `cfg` (disabled config ⇒ permanent no-op).
    pub fn new(cfg: CaptureConfig) -> PacketCapture {
        if !cfg.enabled || cfg.capacity == 0 {
            return PacketCapture::default();
        }
        PacketCapture {
            enabled: true,
            buf: Vec::with_capacity(cfg.capacity),
            capacity: cfg.capacity,
            head: 0,
            total: 0,
        }
    }

    /// Is this capture recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one segment observation (no-op when disabled; all decoding
    /// happens behind the gate).
    pub fn observe(
        &mut self,
        at_ns: u64,
        path: usize,
        dir: Dir,
        seg: &TcpSegment,
        mutated: bool,
        fate: PacketFate,
    ) {
        if !self.enabled {
            return;
        }
        let rec = CaptureRecord {
            at_ns,
            path,
            fwd: dir == Dir::Fwd,
            src: (seg.tuple.src.addr, seg.tuple.src.port),
            dst: (seg.tuple.dst.addr, seg.tuple.dst.port),
            seq: seg.seq.0,
            ack: seg.ack.0,
            flags: flag_string(seg),
            payload_len: seg.payload.len(),
            wire_len: seg.wire_len(),
            mptcp: seg.mptcp_options().map(summarize_option).collect(),
            mutated,
            fate,
        };
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Records ever offered, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records overwritten to make room.
    pub fn dropped_records(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Allocated ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// An immutable copy of the retained records and bookkeeping.
    pub fn snapshot(&self) -> CaptureSnapshot {
        let mut records: Vec<CaptureRecord> = Vec::with_capacity(self.buf.len());
        records.extend_from_slice(&self.buf[self.head..]);
        records.extend_from_slice(&self.buf[..self.head]);
        CaptureSnapshot {
            records,
            total: self.total,
            dropped_records: self.dropped_records(),
        }
    }
}

/// Immutable copy of a [`PacketCapture`]'s state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CaptureSnapshot {
    /// Retained records, oldest first.
    pub records: Vec<CaptureRecord>,
    /// Records ever offered.
    pub total: u64,
    /// Records overwritten before this snapshot.
    pub dropped_records: u64,
}

impl CaptureSnapshot {
    /// One JSON object per line plus a trailing summary line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out.push_str(&format!(
            "{{\"type\":\"capture_summary\",\"records\":{},\"total\":{},\
             \"dropped_records\":{}}}\n",
            self.records.len(),
            self.total,
            self.dropped_records
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mptcp_packet::{DssMapping, Endpoint, FourTuple, SeqNum, TcpFlags, TcpOption};

    fn seg_with_dss() -> TcpSegment {
        let mut s = TcpSegment::new(
            FourTuple {
                src: Endpoint::new(1, 10),
                dst: Endpoint::new(2, 20),
            },
            SeqNum(100),
            SeqNum(200),
            TcpFlags::ACK,
        );
        s.options.push(TcpOption::Mptcp(MptcpOption::Dss {
            data_ack: Some(42),
            mapping: Some(DssMapping {
                dsn: 7,
                subflow_seq: 1,
                len: 1460,
                checksum: Some(0xbeef),
            }),
            data_fin: false,
        }));
        s.payload = Bytes::from_static(b"data");
        s
    }

    #[test]
    fn disabled_capture_is_inert() {
        let mut c = PacketCapture::new(CaptureConfig::disabled());
        c.observe(
            0,
            0,
            Dir::Fwd,
            &seg_with_dss(),
            false,
            PacketFate::Delivered,
        );
        assert_eq!(c.total(), 0);
        assert_eq!(c.capacity(), 0);
        assert!(c.snapshot().records.is_empty());
    }

    #[test]
    fn records_decode_mptcp_options() {
        let mut c = PacketCapture::new(CaptureConfig {
            enabled: true,
            capacity: 8,
        });
        c.observe(5, 1, Dir::Rev, &seg_with_dss(), true, PacketFate::Delivered);
        let s = c.snapshot();
        assert_eq!(s.records.len(), 1);
        let r = &s.records[0];
        assert!(r.has_mptcp());
        assert_eq!(r.mptcp[0], "dss(ack=42,map=7+1460,ck)");
        assert!(r.mutated);
        assert_eq!(r.flags, "A");
        let j = r.to_json();
        assert!(j.contains("\"dir\":\"rev\""));
        assert!(j.contains("\"fate\":\"delivered\""));
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut c = PacketCapture::new(CaptureConfig {
            enabled: true,
            capacity: 2,
        });
        for i in 0..5 {
            c.observe(
                i,
                0,
                Dir::Fwd,
                &seg_with_dss(),
                false,
                PacketFate::Delivered,
            );
        }
        let s = c.snapshot();
        assert_eq!(s.total, 5);
        assert_eq!(s.dropped_records, 3);
        let times: Vec<u64> = s.records.iter().map(|r| r.at_ns).collect();
        assert_eq!(times, vec![3, 4]);
        assert!(s.to_jsonl().contains("\"dropped_records\":3"));
    }
}
