//! Bidirectional paths and the middlebox trait.
//!
//! A [`Path`] is a forward link, a reverse link, and a chain of
//! [`Middlebox`] elements shared between the two directions (a NAT must see
//! both directions to translate consistently). Forward traffic traverses
//! the chain front-to-back, reverse traffic back-to-front, mirroring a
//! physical box sitting in the middle of the path.

use mptcp_packet::TcpSegment;
use mptcp_telemetry::{CounterId, Recorder};

use crate::link::Link;
use crate::rng::SimRng;
use crate::time::SimTime;

/// Traffic direction through a path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Client → server (the direction the path was created in).
    Fwd,
    /// Server → client.
    Rev,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::Fwd => Dir::Rev,
            Dir::Rev => Dir::Fwd,
        }
    }
}

/// What a middlebox did with a segment.
pub struct MbVerdict {
    /// Segments to keep moving in the original direction (possibly
    /// modified, split, or coalesced; empty = absorbed/dropped).
    pub forward: Vec<TcpSegment>,
    /// Segments to send back toward the original sender (e.g. a proxy's
    /// pro-active ACK). These skip the rest of the chain.
    pub backward: Vec<TcpSegment>,
}

impl MbVerdict {
    /// Pass the segment through unchanged.
    pub fn pass(seg: TcpSegment) -> MbVerdict {
        MbVerdict {
            forward: vec![seg],
            backward: Vec::new(),
        }
    }

    /// Silently drop the segment.
    pub fn drop() -> MbVerdict {
        MbVerdict {
            forward: Vec::new(),
            backward: Vec::new(),
        }
    }
}

/// A Click-style middlebox element (§4.1 of the paper).
///
/// Implementations live in the `mptcp-middlebox` crate: NAT, sequence
/// rewriting, option stripping, segment split/coalesce, pro-active ACKing,
/// payload modification.
pub trait Middlebox: Send {
    /// Process one segment travelling in `dir`.
    fn process(&mut self, now: SimTime, dir: Dir, seg: TcpSegment, rng: &mut SimRng) -> MbVerdict;

    /// Release any segments the box was holding (e.g. a coalescer's timer).
    fn poll(&mut self, _now: SimTime) -> Vec<(Dir, TcpSegment)> {
        Vec::new()
    }

    /// Next instant at which [`Middlebox::poll`] should run.
    fn poll_at(&self) -> Option<SimTime> {
        None
    }

    /// Human-readable name for traces and reports.
    fn name(&self) -> &'static str;

    /// Fold this element's interference counters into `rec`. The default
    /// records nothing; boxes that strip options, rewrite payloads, etc.
    /// override it so a path can report what it did to the traffic.
    fn record_telemetry(&self, _rec: &mut Recorder) {}
}

/// A bidirectional path between two hosts.
pub struct Path {
    /// Client→server link.
    pub fwd: Link,
    /// Server→client link.
    pub rev: Link,
    /// Middlebox chain, ordered from the client side.
    pub chain: Vec<Box<dyn Middlebox>>,
}

impl Path {
    /// A clean path with symmetric links and no middleboxes.
    pub fn symmetric(cfg: crate::link::LinkCfg) -> Path {
        Path {
            fwd: Link::new(cfg),
            rev: Link::new(cfg),
            chain: Vec::new(),
        }
    }

    /// A path with distinct forward/reverse links.
    pub fn asymmetric(fwd: crate::link::LinkCfg, rev: crate::link::LinkCfg) -> Path {
        Path {
            fwd: Link::new(fwd),
            rev: Link::new(rev),
            chain: Vec::new(),
        }
    }

    /// Attach a middlebox to the end of the chain (closest to the server).
    pub fn with_middlebox(mut self, mb: Box<dyn Middlebox>) -> Path {
        self.chain.push(mb);
        self
    }

    /// The link carrying traffic in `dir`.
    pub fn link_mut(&mut self, dir: Dir) -> &mut Link {
        match dir {
            Dir::Fwd => &mut self.fwd,
            Dir::Rev => &mut self.rev,
        }
    }

    /// The link carrying traffic in direction `dir`.
    pub fn link(&self, dir: Dir) -> &Link {
        match dir {
            Dir::Fwd => &self.fwd,
            Dir::Rev => &self.rev,
        }
    }

    /// Run `seg` through the middlebox chain in direction `dir`.
    ///
    /// Returns `(survivors, backwash)`: segments that emerged at the far end
    /// of the chain, and segments the chain sent back toward the origin.
    pub fn apply_chain(
        &mut self,
        now: SimTime,
        dir: Dir,
        seg: TcpSegment,
        rng: &mut SimRng,
    ) -> (Vec<TcpSegment>, Vec<TcpSegment>) {
        let mut inflight = vec![seg];
        let mut backwash = Vec::new();
        let idxs: Vec<usize> = match dir {
            Dir::Fwd => (0..self.chain.len()).collect(),
            Dir::Rev => (0..self.chain.len()).rev().collect(),
        };
        for i in idxs {
            let mut next = Vec::new();
            for s in inflight {
                let v = self.chain[i].process(now, dir, s, rng);
                next.extend(v.forward);
                backwash.extend(v.backward);
            }
            inflight = next;
            if inflight.is_empty() {
                break;
            }
        }
        (inflight, backwash)
    }

    /// Earliest poll deadline across the chain.
    pub fn poll_at(&self) -> Option<SimTime> {
        self.chain.iter().filter_map(|m| m.poll_at()).min()
    }

    /// Poll every element, collecting released segments.
    pub fn poll(&mut self, now: SimTime) -> Vec<(Dir, TcpSegment)> {
        let mut out = Vec::new();
        for m in &mut self.chain {
            out.extend(m.poll(now));
        }
        out
    }

    /// A telemetry snapshot of this path: link drop counters in both
    /// directions plus whatever each middlebox reports.
    pub fn telemetry(&self) -> mptcp_telemetry::TelemetrySnapshot {
        let mut rec = Recorder::new();
        for link in [&self.fwd, &self.rev] {
            rec.count_n(CounterId::LinkQueueDrops, link.stats.queue_drops);
            rec.count_n(CounterId::LinkRandomDrops, link.stats.random_drops);
            rec.count_n(CounterId::LinkFaultDrops, link.stats.fault_drops);
        }
        for mb in &self.chain {
            mb.record_telemetry(&mut rec);
        }
        rec.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkCfg;
    use bytes::Bytes;
    use mptcp_packet::{Endpoint, FourTuple, SeqNum, TcpFlags};

    fn seg() -> TcpSegment {
        let mut s = TcpSegment::new(
            FourTuple {
                src: Endpoint::new(1, 10),
                dst: Endpoint::new(2, 20),
            },
            SeqNum(1),
            SeqNum(0),
            TcpFlags::ACK,
        );
        s.payload = Bytes::from_static(b"data");
        s
    }

    /// A test middlebox that stamps payloads and reflects a copy backward.
    struct Tagger {
        tag: &'static [u8],
    }
    impl Middlebox for Tagger {
        fn process(
            &mut self,
            _now: SimTime,
            _dir: Dir,
            mut seg: TcpSegment,
            _rng: &mut SimRng,
        ) -> MbVerdict {
            let mut p = seg.payload.to_vec();
            p.extend_from_slice(self.tag);
            seg.payload = Bytes::from(p);
            MbVerdict::pass(seg)
        }
        fn name(&self) -> &'static str {
            "tagger"
        }
    }

    #[test]
    fn chain_order_respects_direction() {
        let mut p = Path::symmetric(LinkCfg::gigabit())
            .with_middlebox(Box::new(Tagger { tag: b"A" }))
            .with_middlebox(Box::new(Tagger { tag: b"B" }));
        let mut rng = SimRng::new(1);
        let (fwd, _) = p.apply_chain(SimTime::ZERO, Dir::Fwd, seg(), &mut rng);
        assert_eq!(&fwd[0].payload[..], b"dataAB");
        let (rev, _) = p.apply_chain(SimTime::ZERO, Dir::Rev, seg(), &mut rng);
        assert_eq!(&rev[0].payload[..], b"dataBA");
    }

    struct Blackhole;
    impl Middlebox for Blackhole {
        fn process(
            &mut self,
            _now: SimTime,
            _dir: Dir,
            _seg: TcpSegment,
            _rng: &mut SimRng,
        ) -> MbVerdict {
            MbVerdict::drop()
        }
        fn name(&self) -> &'static str {
            "blackhole"
        }
    }

    #[test]
    fn dropping_element_stops_chain() {
        let mut p = Path::symmetric(LinkCfg::gigabit())
            .with_middlebox(Box::new(Blackhole))
            .with_middlebox(Box::new(Tagger { tag: b"X" }));
        let mut rng = SimRng::new(1);
        let (fwd, back) = p.apply_chain(SimTime::ZERO, Dir::Fwd, seg(), &mut rng);
        assert!(fwd.is_empty());
        assert!(back.is_empty());
    }

    #[test]
    fn dir_flip() {
        assert_eq!(Dir::Fwd.flip(), Dir::Rev);
        assert_eq!(Dir::Rev.flip(), Dir::Fwd);
    }
}
