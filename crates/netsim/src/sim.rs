//! The simulation driver: hosts, routes, and the event loop.
//!
//! A [`Sim`] owns a set of [`Host`]s (each wrapping a transport stack and
//! application logic), a set of [`Path`]s, and a routing table mapping
//! `(src_addr, dst_addr)` pairs to paths. Multi-hop routes with several
//! entries model per-packet round-robin link bonding (the Figure 11
//! baseline). The loop alternates between letting hosts emit segments and
//! advancing the clock to the next delivery or timer.

use std::collections::HashMap;

use mptcp_packet::TcpSegment;

use crate::capture::{PacketCapture, PacketFate};
use crate::event::EventQueue;
use crate::fault::FaultSchedule;
use crate::path::{Dir, Path};
use crate::rng::SimRng;
use crate::time::{min_deadline, SimTime};

/// Identifies a host within a [`Sim`].
pub type HostId = usize;
/// Identifies a path within a [`Sim`].
pub type PathId = usize;

/// Collector for segments a host wants to transmit.
#[derive(Default)]
pub struct Outbox {
    segs: Vec<TcpSegment>,
}

impl Outbox {
    /// Queue a segment for routing.
    pub fn send(&mut self, seg: TcpSegment) {
        self.segs.push(seg);
    }

    /// Number of queued segments.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Whether the outbox is empty.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }
}

/// A simulated host: transport stack + application logic.
pub trait Host {
    /// A segment addressed to one of this host's addresses has arrived.
    fn handle_segment(&mut self, now: SimTime, seg: TcpSegment, out: &mut Outbox);

    /// Emit everything the host can send right now (data, ACKs,
    /// retransmissions due to expired timers, application writes...).
    fn poll(&mut self, now: SimTime, out: &mut Outbox);

    /// The next instant this host needs to be polled (timer deadline).
    fn poll_at(&self, now: SimTime) -> Option<SimTime>;

    /// One of this host's addresses changed state (interface up/down),
    /// fired by [`FaultKind::AddrDown`](crate::fault::FaultKind::AddrDown)
    /// / `AddrUp`. Hosts that track addresses (e.g. an MPTCP endpoint
    /// withdrawing the address via REMOVE_ADDR) override this; the
    /// default ignores it.
    fn addr_event(&mut self, now: SimTime, addr: u32, up: bool, out: &mut Outbox) {
        let _ = (now, addr, up, out);
    }
}

struct RouteEntry {
    hops: Vec<(PathId, Dir)>,
    rr: usize,
}

/// The discrete-event simulator.
pub struct Sim<H: Host> {
    /// Current simulation time.
    pub now: SimTime,
    /// Hosts, indexed by [`HostId`].
    pub hosts: Vec<H>,
    /// Paths, indexed by [`PathId`].
    pub paths: Vec<Path>,
    routes: HashMap<(u32, u32), RouteEntry>,
    addr_owner: HashMap<u32, HostId>,
    deliveries: EventQueue<TcpSegment>,
    /// Deterministic random source (loss, middlebox behaviour).
    pub rng: SimRng,
    /// Segments dropped because no route or no owner existed.
    pub routing_drops: u64,
    /// Pcap-like per-link capture; disabled (and free) by default. Enable
    /// via [`PacketCapture::new`] with an enabled
    /// [`CaptureConfig`](crate::capture::CaptureConfig).
    pub capture: PacketCapture,
    /// Timed fault events (blackouts, loss bursts, middlebox churn)
    /// applied to paths as the clock reaches them; empty by default.
    pub faults: FaultSchedule,
}

impl<H: Host> Sim<H> {
    /// Create an empty simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            hosts: Vec::new(),
            paths: Vec::new(),
            routes: HashMap::new(),
            addr_owner: HashMap::new(),
            deliveries: EventQueue::new(),
            rng: SimRng::new(seed),
            routing_drops: 0,
            capture: PacketCapture::default(),
            faults: FaultSchedule::default(),
        }
    }

    /// Add a host; returns its id.
    pub fn add_host(&mut self, host: H) -> HostId {
        self.hosts.push(host);
        self.hosts.len() - 1
    }

    /// Declare that `addr` belongs to `host` (deliveries to `addr` go there).
    pub fn bind_addr(&mut self, addr: u32, host: HostId) {
        self.addr_owner.insert(addr, host);
    }

    /// Add a path; returns its id. Routes must be added separately.
    pub fn add_path(&mut self, path: Path) -> PathId {
        self.paths.push(path);
        self.paths.len() - 1
    }

    /// Route traffic from `src` to `dst` over `path` in direction `dir`.
    pub fn add_route(&mut self, src: u32, dst: u32, path: PathId, dir: Dir) {
        self.routes
            .entry((src, dst))
            .or_insert_with(|| RouteEntry {
                hops: Vec::new(),
                rr: 0,
            })
            .hops
            .push((path, dir));
    }

    /// Convenience: add a path between `addr_a` and `addr_b` with both
    /// directions routed. `addr_a` is the client (Fwd) side.
    pub fn connect(&mut self, addr_a: u32, addr_b: u32, path: Path) -> PathId {
        let pid = self.add_path(path);
        self.add_route(addr_a, addr_b, pid, Dir::Fwd);
        self.add_route(addr_b, addr_a, pid, Dir::Rev);
        pid
    }

    /// Run the simulation until `deadline` (or until no events remain).
    pub fn run_until(&mut self, deadline: SimTime) {
        let mut stuck_at = self.now;
        let mut stuck_iters = 0u32;
        loop {
            self.drain_hosts();
            let Some(next) = self.next_wakeup() else {
                self.now = self.now.max(deadline);
                return;
            };
            if next > deadline {
                self.now = deadline;
                return;
            }
            self.now = self.now.max(next);
            self.fire_due();
            // Livelock guard: a host that reports an immediate deadline
            // while emitting nothing would spin here forever.
            if self.now == stuck_at {
                stuck_iters += 1;
                assert!(
                    stuck_iters < 100_000,
                    "simulation livelock at {:?} (next wakeup {:?})",
                    self.now,
                    next
                );
            } else {
                stuck_at = self.now;
                stuck_iters = 0;
            }
        }
    }

    /// Run until `stop` returns true (checked between events) or `deadline`.
    pub fn run_while<F: FnMut(&Sim<H>) -> bool>(&mut self, deadline: SimTime, mut keep_going: F) {
        loop {
            self.drain_hosts();
            if !keep_going(self) {
                return;
            }
            let Some(next) = self.next_wakeup() else {
                self.now = self.now.max(deadline);
                return;
            };
            if next > deadline {
                self.now = deadline;
                return;
            }
            self.now = self.now.max(next);
            self.fire_due();
        }
    }

    fn drain_hosts(&mut self) {
        let mut out = Outbox::default();
        for i in 0..self.hosts.len() {
            self.hosts[i].poll(self.now, &mut out);
            let segs = std::mem::take(&mut out.segs);
            for s in segs {
                self.route_segment(s);
            }
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        let mut next = self.deliveries.peek_time();
        for h in &self.hosts {
            next = min_deadline(next, h.poll_at(self.now));
        }
        for p in &self.paths {
            next = min_deadline(next, p.poll_at());
        }
        next = min_deadline(next, self.faults.next_at());
        next
    }

    fn fire_due(&mut self) {
        // Scheduled faults mutate paths before any traffic moves at this
        // instant, so a blackout swallows segments due "now".
        self.faults.apply_due(self.now, &mut self.paths);
        // Interface events reach the owning host before traffic moves, so
        // a REMOVE_ADDR triggered by the loss rides the surviving path at
        // this same instant.
        for (addr, up) in self.faults.take_addr_events() {
            let Some(&owner) = self.addr_owner.get(&addr) else {
                continue;
            };
            let mut out = Outbox::default();
            self.hosts[owner].addr_event(self.now, addr, up, &mut out);
            for s in out.segs {
                self.route_segment(s);
            }
        }
        // Middlebox timers (e.g. coalescers releasing held segments).
        for pid in 0..self.paths.len() {
            if self.paths[pid].poll_at().is_some_and(|t| t <= self.now) {
                let released = self.paths[pid].poll(self.now);
                for (dir, seg) in released {
                    // Held-and-released segments (coalescers) may differ
                    // from what the sender emitted; annotate as mutated.
                    self.transmit_on(pid, dir, seg, true);
                }
            }
        }
        // Segment deliveries.
        while let Some((_, seg)) = self.deliveries.pop_due(self.now) {
            let Some(&owner) = self.addr_owner.get(&seg.tuple.dst.addr) else {
                self.routing_drops += 1;
                continue;
            };
            let mut out = Outbox::default();
            self.hosts[owner].handle_segment(self.now, seg, &mut out);
            for s in out.segs {
                self.route_segment(s);
            }
        }
    }

    fn route_segment(&mut self, seg: TcpSegment) {
        let key = (seg.tuple.src.addr, seg.tuple.dst.addr);
        let Some(entry) = self.routes.get_mut(&key) else {
            self.routing_drops += 1;
            return;
        };
        let (pid, dir) = entry.hops[entry.rr % entry.hops.len()];
        entry.rr = entry.rr.wrapping_add(1);
        // Keep the pre-chain segment around only when capture is on, so the
        // disabled path stays clone-free.
        let original = if self.capture.is_enabled() {
            Some(seg.clone())
        } else {
            None
        };
        let (survivors, backwash) = self.paths[pid].apply_chain(self.now, dir, seg, &mut self.rng);
        if let Some(orig) = &original {
            if survivors.is_empty() {
                self.capture
                    .observe(self.now.0, pid, dir, orig, false, PacketFate::MboxDrop);
            }
        }
        for s in survivors {
            let mutated = original.as_ref().is_some_and(|o| *o != s);
            self.transmit_on(pid, dir, s, mutated);
        }
        for s in backwash {
            // Backwash segments are middlebox-fabricated (e.g. a proxy's
            // RST); they never match what the sender emitted.
            self.transmit_on(pid, dir.flip(), s, true);
        }
    }

    fn transmit_on(&mut self, pid: PathId, dir: Dir, seg: TcpSegment, mutated: bool) {
        let wire_len = seg.wire_len();
        let drops_before = if self.capture.is_enabled() {
            let stats = &self.paths[pid].link(dir).stats;
            Some((stats.queue_drops, stats.random_drops, stats.fault_drops))
        } else {
            None
        };
        let scheduled = self.paths[pid]
            .link_mut(dir)
            .transmit(self.now, wire_len, &mut self.rng);
        if let Some((queue_before, random_before, fault_before)) = drops_before {
            let stats = &self.paths[pid].link(dir).stats;
            let fate = if scheduled.is_some() {
                PacketFate::Delivered
            } else if stats.fault_drops > fault_before {
                PacketFate::FaultDrop
            } else if stats.random_drops > random_before {
                PacketFate::RandomDrop
            } else {
                debug_assert!(stats.queue_drops > queue_before);
                PacketFate::QueueDrop
            };
            self.capture
                .observe(self.now.0, pid, dir, &seg, mutated, fate);
        }
        if let Some(at) = scheduled {
            self.deliveries.push(at, seg);
        }
    }

    /// True when nothing remains scheduled (all hosts idle).
    pub fn idle(&self) -> bool {
        self.next_wakeup().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkCfg;
    use bytes::Bytes;
    use mptcp_packet::{Endpoint, FourTuple, SeqNum, TcpFlags};

    const A: u32 = 0x0a000001;
    const B: u32 = 0x0a000002;

    /// Ping-pong host: sends one segment at t=0, echoes whatever arrives,
    /// up to a bounce budget.
    struct Pinger {
        me: u32,
        peer: u32,
        kicks: u32,
        bounces: u32,
        received: Vec<SimTime>,
    }

    impl Pinger {
        fn seg(&self) -> TcpSegment {
            let mut s = TcpSegment::new(
                FourTuple {
                    src: Endpoint::new(self.me, 1),
                    dst: Endpoint::new(self.peer, 2),
                },
                SeqNum(0),
                SeqNum(0),
                TcpFlags::ACK,
            );
            s.payload = Bytes::from_static(b"ping");
            s
        }
    }

    impl Host for Pinger {
        fn handle_segment(&mut self, now: SimTime, _seg: TcpSegment, out: &mut Outbox) {
            self.received.push(now);
            if self.bounces > 0 {
                self.bounces -= 1;
                out.send(self.seg());
            }
        }
        fn poll(&mut self, _now: SimTime, out: &mut Outbox) {
            if self.kicks > 0 {
                self.kicks -= 1;
                out.send(self.seg());
            }
        }
        fn poll_at(&self, _now: SimTime) -> Option<SimTime> {
            None
        }
    }

    fn pinger(me: u32, peer: u32, kicks: u32, bounces: u32) -> Pinger {
        Pinger {
            me,
            peer,
            kicks,
            bounces,
            received: Vec::new(),
        }
    }

    #[test]
    fn ping_pong_round_trip_timing() {
        let mut sim: Sim<Pinger> = Sim::new(7);
        let a = sim.add_host(pinger(A, B, 1, 0));
        let b = sim.add_host(pinger(B, A, 0, 1));
        sim.bind_addr(A, a);
        sim.bind_addr(B, b);
        sim.connect(
            A,
            B,
            Path::symmetric(LinkCfg {
                rate_bps: 1_000_000_000,
                delay: crate::time::Duration::from_millis(5),
                queue_bytes: 1_000_000,
                loss: 0.0,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.hosts[b].received.len(), 1);
        assert_eq!(sim.hosts[a].received.len(), 1);
        // One-way ~5 ms (+ serialization); round trip ~10 ms.
        let rtt = sim.hosts[a].received[0];
        assert!(rtt >= SimTime::from_millis(10));
        assert!(rtt < SimTime::from_millis(11));
    }

    #[test]
    fn unrouted_traffic_counted() {
        let mut sim: Sim<Pinger> = Sim::new(7);
        let a = sim.add_host(pinger(A, B, 1, 0));
        sim.bind_addr(A, a);
        // No route, no host B.
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.routing_drops, 1);
    }

    #[test]
    fn bonded_route_round_robins() {
        let mut sim: Sim<Pinger> = Sim::new(7);
        let a = sim.add_host(pinger(A, B, 4, 0));
        let b = sim.add_host(pinger(B, A, 0, 0));
        sim.bind_addr(A, a);
        sim.bind_addr(B, b);
        let p1 = sim.add_path(Path::symmetric(LinkCfg::gigabit()));
        let p2 = sim.add_path(Path::symmetric(LinkCfg::gigabit()));
        sim.add_route(A, B, p1, Dir::Fwd);
        sim.add_route(A, B, p2, Dir::Fwd);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.hosts[b].received.len(), 4);
        assert_eq!(sim.paths[p1].fwd.stats.tx_packets, 2);
        assert_eq!(sim.paths[p2].fwd.stats.tx_packets, 2);
    }

    #[test]
    fn deadline_respected() {
        let mut sim: Sim<Pinger> = Sim::new(7);
        let a = sim.add_host(pinger(A, B, 1, 0));
        let b = sim.add_host(pinger(B, A, 0, 1000));
        sim.bind_addr(A, a);
        sim.bind_addr(B, b);
        sim.connect(
            A,
            B,
            Path::symmetric(LinkCfg {
                rate_bps: 1_000_000,
                delay: crate::time::Duration::from_millis(50),
                queue_bytes: 1_000_000,
                loss: 0.0,
            }),
        );
        sim.run_until(SimTime::from_millis(500));
        assert!(sim.now <= SimTime::from_millis(500));
        // ~100 ms per bounce pair: only a handful of receptions fit.
        assert!(sim.hosts[a].received.len() < 10);
    }
}
