//! Fault injection: timed network events on the simulator clock.
//!
//! A [`FaultSchedule`] holds [`FaultEvent`]s — blackouts, silent
//! blackholes, loss bursts, delay spikes, bandwidth drops, mid-connection
//! middlebox insertion/removal — that the [`Sim`](crate::sim::Sim) applies
//! to its paths exactly when their timestamps come due. Faults fire from
//! the same event loop as deliveries and timers, so a seeded run replays
//! the same failure timeline every time.
//!
//! Windowed faults (everything carrying a `duration`) save the affected
//! link configuration when they fire and schedule their own restore event;
//! `LinkDown`/`LinkUp` are the unpaired primitives for open-ended
//! blackouts. Overlapping windows on the same path restore in firing
//! order, so schedules should avoid overlapping the same path unless that
//! interleaving is the point.

use mptcp_telemetry::{CounterId, EventKind, Recorder, TelemetrySnapshot};

use crate::link::LinkCfg;
use crate::path::{Middlebox, Path};
use crate::sim::PathId;
use crate::time::{min_deadline, Duration, SimTime};

/// What a fault does to a path when it fires.
pub enum FaultKind {
    /// Take both directions down: a silent blackout (packets vanish, no
    /// RST) until a matching [`FaultKind::LinkUp`].
    LinkDown,
    /// Bring a downed path back up.
    LinkUp,
    /// Silent blackhole for `duration`, then self-restore. Identical to a
    /// `LinkDown`/`LinkUp` pair with the restore managed by the schedule.
    Blackhole { duration: Duration },
    /// Force both directions to random-drop with probability `loss` for
    /// `duration`, then restore the configured loss rates.
    LossBurst { loss: f64, duration: Duration },
    /// Add `extra` one-way propagation delay in both directions for
    /// `duration` (a handover or deep-fade spike).
    DelaySpike { extra: Duration, duration: Duration },
    /// Scale both directions' rate by `factor` (usually < 1) for
    /// `duration`, with a 1 bps floor.
    BandwidthDrop { factor: f64, duration: Duration },
    /// Splice a middlebox into the front of the path's chain
    /// mid-connection (e.g. a NAT reboot bringing up a stricter box).
    InsertMiddlebox(Box<dyn Middlebox>),
    /// Remove every chain element whose `name()` matches.
    RemoveMiddlebox { name: &'static str },
    /// An interface loss: take the path down (like
    /// [`FaultKind::LinkDown`]) *and* notify the host owning `addr` via
    /// [`Host::addr_event`](crate::sim::Host::addr_event), so its
    /// transport can withdraw the address (REMOVE_ADDR) and migrate.
    AddrDown { addr: u32 },
    /// The interface returns: path back up, owner notified.
    AddrUp { addr: u32 },
}

impl FaultKind {
    /// Stable snake_case name for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LinkDown => "link_down",
            FaultKind::LinkUp => "link_up",
            FaultKind::Blackhole { .. } => "blackhole",
            FaultKind::LossBurst { .. } => "loss_burst",
            FaultKind::DelaySpike { .. } => "delay_spike",
            FaultKind::BandwidthDrop { .. } => "bandwidth_drop",
            FaultKind::InsertMiddlebox(_) => "insert_middlebox",
            FaultKind::RemoveMiddlebox { .. } => "remove_middlebox",
            FaultKind::AddrDown { .. } => "addr_down",
            FaultKind::AddrUp { .. } => "addr_up",
        }
    }
}

/// One scheduled fault.
pub struct FaultEvent {
    /// Simulated instant the fault fires.
    pub at: SimTime,
    /// The path it applies to.
    pub path: PathId,
    /// What happens.
    pub kind: FaultKind,
}

/// Record of a fault (or scheduled restore) that already fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppliedFault {
    /// When it fired.
    pub at: SimTime,
    /// The path it hit.
    pub path: PathId,
    /// [`FaultKind::name`] of the event (`"restore"` for window ends).
    pub name: &'static str,
}

/// How to undo a windowed fault when its duration elapses.
enum Restore {
    /// Bring the path back up (ends a [`FaultKind::Blackhole`]).
    LinkUp,
    /// Re-install the saved link configurations.
    Cfgs { fwd: LinkCfg, rev: LinkCfg },
}

/// A time-ordered set of faults plus the bookkeeping of applying them.
#[derive(Default)]
pub struct FaultSchedule {
    pending: Vec<FaultEvent>,
    restores: Vec<(SimTime, PathId, Restore)>,
    applied: Vec<AppliedFault>,
    /// `(addr, up)` notifications for the sim to hand to address owners.
    addr_events: Vec<(u32, bool)>,
    telemetry: Recorder,
}

impl FaultSchedule {
    /// An empty schedule (the default for every [`Sim`](crate::sim::Sim)).
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Queue a fault event.
    pub fn push(&mut self, ev: FaultEvent) {
        self.pending.push(ev);
    }

    /// Queue `kind` on `path` at time `at`.
    pub fn at(&mut self, at: SimTime, path: PathId, kind: FaultKind) {
        self.push(FaultEvent { at, path, kind });
    }

    /// Convenience: blackout `path` from `from` for `duration` (a
    /// `LinkDown` plus its `LinkUp`).
    pub fn blackout(&mut self, path: PathId, from: SimTime, duration: Duration) {
        self.at(from, path, FaultKind::LinkDown);
        self.at(from + duration, path, FaultKind::LinkUp);
    }

    /// True when no fault or restore remains scheduled.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty() && self.restores.is_empty()
    }

    /// Earliest instant anything in the schedule needs to fire.
    pub fn next_at(&self) -> Option<SimTime> {
        let mut next = self.pending.iter().map(|e| e.at).min();
        next = min_deadline(next, self.restores.iter().map(|(t, _, _)| *t).min());
        next
    }

    /// Apply every fault and restore due at or before `now`. Restores run
    /// first so a window ending exactly when another fault begins hands
    /// the new fault a clean path.
    pub fn apply_due(&mut self, now: SimTime, paths: &mut [Path]) {
        let mut i = 0;
        while i < self.restores.len() {
            if self.restores[i].0 <= now {
                let (_, pid, restore) = self.restores.swap_remove(i);
                match restore {
                    Restore::LinkUp => {
                        paths[pid].fwd.up = true;
                        paths[pid].rev.up = true;
                    }
                    Restore::Cfgs { fwd, rev } => {
                        paths[pid].fwd.cfg = fwd;
                        paths[pid].rev.cfg = rev;
                    }
                }
                self.applied.push(AppliedFault {
                    at: now,
                    path: pid,
                    name: "restore",
                });
            } else {
                i += 1;
            }
        }
        while let Some(ev) = self.pop_due(now) {
            self.apply(now, ev, paths);
        }
    }

    /// Extract the earliest due event, ties broken by insertion order.
    fn pop_due(&mut self, now: SimTime) -> Option<FaultEvent> {
        let mut best: Option<usize> = None;
        for (i, ev) in self.pending.iter().enumerate() {
            if ev.at <= now && best.is_none_or(|b| ev.at < self.pending[b].at) {
                best = Some(i);
            }
        }
        best.map(|i| self.pending.remove(i))
    }

    fn apply(&mut self, now: SimTime, ev: FaultEvent, paths: &mut [Path]) {
        let pid = ev.path;
        let name = ev.kind.name();
        let path = &mut paths[pid];
        match ev.kind {
            FaultKind::LinkDown => {
                path.fwd.up = false;
                path.rev.up = false;
                self.telemetry
                    .event(now.0, EventKind::BlackoutInjected { path: pid as u32 });
            }
            FaultKind::LinkUp => {
                path.fwd.up = true;
                path.rev.up = true;
            }
            FaultKind::Blackhole { duration } => {
                path.fwd.up = false;
                path.rev.up = false;
                self.restores.push((now + duration, pid, Restore::LinkUp));
                self.telemetry
                    .event(now.0, EventKind::BlackoutInjected { path: pid as u32 });
            }
            FaultKind::LossBurst { loss, duration } => {
                self.save_cfgs(now + duration, pid, path);
                path.fwd.cfg.loss = loss;
                path.rev.cfg.loss = loss;
            }
            FaultKind::DelaySpike { extra, duration } => {
                self.save_cfgs(now + duration, pid, path);
                path.fwd.cfg.delay += extra;
                path.rev.cfg.delay += extra;
            }
            FaultKind::BandwidthDrop { factor, duration } => {
                self.save_cfgs(now + duration, pid, path);
                for link in [&mut path.fwd, &mut path.rev] {
                    link.cfg.rate_bps = ((link.cfg.rate_bps as f64 * factor) as u64).max(1);
                }
            }
            FaultKind::InsertMiddlebox(mb) => {
                path.chain.insert(0, mb);
            }
            FaultKind::RemoveMiddlebox { name } => {
                path.chain.retain(|mb| mb.name() != name);
            }
            FaultKind::AddrDown { addr } => {
                path.fwd.up = false;
                path.rev.up = false;
                self.addr_events.push((addr, false));
                self.telemetry
                    .event(now.0, EventKind::BlackoutInjected { path: pid as u32 });
            }
            FaultKind::AddrUp { addr } => {
                path.fwd.up = true;
                path.rev.up = true;
                self.addr_events.push((addr, true));
            }
        }
        self.telemetry.count(CounterId::FaultsInjected);
        self.applied.push(AppliedFault {
            at: now,
            path: pid,
            name,
        });
    }

    fn save_cfgs(&mut self, restore_at: SimTime, pid: PathId, path: &Path) {
        self.restores.push((
            restore_at,
            pid,
            Restore::Cfgs {
                fwd: path.fwd.cfg,
                rev: path.rev.cfg,
            },
        ));
    }

    /// Every fault and restore that has fired, in firing order.
    pub fn applied(&self) -> &[AppliedFault] {
        &self.applied
    }

    /// Drain `(addr, up)` notifications produced by fired
    /// [`FaultKind::AddrDown`]/[`FaultKind::AddrUp`] events. The sim
    /// dispatches them to the owning hosts right after faults apply.
    pub fn take_addr_events(&mut self) -> Vec<(u32, bool)> {
        std::mem::take(&mut self.addr_events)
    }

    /// Telemetry recorded by firing faults (`faults_injected`,
    /// `blackout_injected` events).
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkCfg;

    fn path() -> Path {
        Path::symmetric(LinkCfg::wifi())
    }

    #[test]
    fn blackout_downs_and_restores() {
        let mut paths = vec![path()];
        let mut sched = FaultSchedule::new();
        sched.blackout(0, SimTime::from_secs(1), Duration::from_secs(3));
        assert_eq!(sched.next_at(), Some(SimTime::from_secs(1)));

        sched.apply_due(SimTime::from_millis(500), &mut paths);
        assert!(paths[0].fwd.up);

        sched.apply_due(SimTime::from_secs(1), &mut paths);
        assert!(!paths[0].fwd.up);
        assert!(!paths[0].rev.up);
        assert_eq!(sched.next_at(), Some(SimTime::from_secs(4)));

        sched.apply_due(SimTime::from_secs(4), &mut paths);
        assert!(paths[0].fwd.up);
        assert!(sched.is_empty());
        let names: Vec<&str> = sched.applied().iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["link_down", "link_up"]);
        let t = sched.telemetry();
        assert_eq!(
            t.counter(mptcp_telemetry::CounterId::FaultsInjected),
            2 // down + up
        );
        assert!(t
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::BlackoutInjected { path: 0 })));
    }

    #[test]
    fn blackhole_self_restores() {
        let mut paths = vec![path()];
        let mut sched = FaultSchedule::new();
        sched.at(
            SimTime::ZERO,
            0,
            FaultKind::Blackhole {
                duration: Duration::from_secs(2),
            },
        );
        sched.apply_due(SimTime::ZERO, &mut paths);
        assert!(!paths[0].fwd.up);
        assert_eq!(sched.next_at(), Some(SimTime::from_secs(2)));
        sched.apply_due(SimTime::from_secs(2), &mut paths);
        assert!(paths[0].fwd.up);
        assert!(sched.is_empty());
    }

    #[test]
    fn windowed_cfg_faults_restore_originals() {
        let mut paths = vec![path()];
        let orig = paths[0].fwd.cfg;
        let mut sched = FaultSchedule::new();
        sched.at(
            SimTime::ZERO,
            0,
            FaultKind::LossBurst {
                loss: 0.5,
                duration: Duration::from_secs(1),
            },
        );
        sched.at(
            SimTime::from_secs(2),
            0,
            FaultKind::DelaySpike {
                extra: Duration::from_millis(200),
                duration: Duration::from_secs(1),
            },
        );
        sched.at(
            SimTime::from_secs(4),
            0,
            FaultKind::BandwidthDrop {
                factor: 0.25,
                duration: Duration::from_secs(1),
            },
        );

        sched.apply_due(SimTime::ZERO, &mut paths);
        assert_eq!(paths[0].fwd.cfg.loss, 0.5);
        sched.apply_due(SimTime::from_secs(1), &mut paths);
        assert_eq!(paths[0].fwd.cfg.loss, orig.loss);

        sched.apply_due(SimTime::from_secs(2), &mut paths);
        assert_eq!(
            paths[0].rev.cfg.delay,
            orig.delay + Duration::from_millis(200)
        );
        sched.apply_due(SimTime::from_secs(3), &mut paths);
        assert_eq!(paths[0].rev.cfg.delay, orig.delay);

        sched.apply_due(SimTime::from_secs(4), &mut paths);
        assert_eq!(paths[0].fwd.cfg.rate_bps, orig.rate_bps / 4);
        sched.apply_due(SimTime::from_secs(5), &mut paths);
        assert_eq!(paths[0].fwd.cfg.rate_bps, orig.rate_bps);
        assert!(sched.is_empty());
    }

    #[test]
    fn same_instant_faults_fire_in_insertion_order() {
        let mut paths = vec![path()];
        let mut sched = FaultSchedule::new();
        // Down then immediately up again: net effect is an up link, which
        // only holds if insertion order is respected.
        sched.at(SimTime::from_secs(1), 0, FaultKind::LinkDown);
        sched.at(SimTime::from_secs(1), 0, FaultKind::LinkUp);
        sched.apply_due(SimTime::from_secs(1), &mut paths);
        assert!(paths[0].fwd.up);
        let names: Vec<&str> = sched.applied().iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["link_down", "link_up"]);
    }

    #[test]
    fn addr_faults_down_path_and_queue_host_events() {
        let mut paths = vec![path()];
        let mut sched = FaultSchedule::new();
        sched.at(
            SimTime::from_secs(1),
            0,
            FaultKind::AddrDown { addr: 0x0a00_0001 },
        );
        sched.at(
            SimTime::from_secs(3),
            0,
            FaultKind::AddrUp { addr: 0x0a00_0001 },
        );

        sched.apply_due(SimTime::from_secs(1), &mut paths);
        assert!(!paths[0].fwd.up);
        assert!(!paths[0].rev.up);
        assert_eq!(sched.take_addr_events(), vec![(0x0a00_0001, false)]);
        // Drained: a second take yields nothing.
        assert!(sched.take_addr_events().is_empty());

        sched.apply_due(SimTime::from_secs(3), &mut paths);
        assert!(paths[0].fwd.up);
        assert_eq!(sched.take_addr_events(), vec![(0x0a00_0001, true)]);

        let names: Vec<&str> = sched.applied().iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["addr_down", "addr_up"]);
    }

    #[test]
    fn middlebox_insert_and_remove() {
        struct Noop;
        impl Middlebox for Noop {
            fn process(
                &mut self,
                _now: SimTime,
                _dir: crate::path::Dir,
                seg: mptcp_packet::TcpSegment,
                _rng: &mut crate::rng::SimRng,
            ) -> crate::path::MbVerdict {
                crate::path::MbVerdict::pass(seg)
            }
            fn name(&self) -> &'static str {
                "noop"
            }
        }
        let mut paths = vec![path()];
        let mut sched = FaultSchedule::new();
        sched.at(
            SimTime::from_secs(1),
            0,
            FaultKind::InsertMiddlebox(Box::new(Noop)),
        );
        sched.at(
            SimTime::from_secs(2),
            0,
            FaultKind::RemoveMiddlebox { name: "noop" },
        );
        sched.apply_due(SimTime::from_secs(1), &mut paths);
        assert_eq!(paths[0].chain.len(), 1);
        sched.apply_due(SimTime::from_secs(2), &mut paths);
        assert!(paths[0].chain.is_empty());
    }
}
