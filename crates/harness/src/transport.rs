//! A uniform client-side transport: MPTCP connection or plain TCP socket.
//!
//! Experiments compare MPTCP against regular TCP (and TCP over bonded
//! links); [`Transport`] gives the hosts one API for all of them.

use std::fmt;

use bytes::Bytes;
use mptcp::{MptcpConnection, WriteOutcome};
use mptcp_netsim::SimTime;
use mptcp_packet::TcpSegment;
use mptcp_tcpstack::TcpSocket;

/// Why a [`Transport::write`] accepted no bytes.
///
/// The distinction matters to the applications: backpressure means "try
/// again after ACKs free buffer space", a closed send direction means no
/// amount of retrying will ever move these bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteError {
    /// Send buffers are full; retry once acknowledgements drain them.
    WouldBlock,
    /// The sending direction is closed or the connection has failed.
    Closed,
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteError::WouldBlock => write!(f, "send buffer full (backpressure)"),
            WriteError::Closed => write!(f, "sending direction closed"),
        }
    }
}

impl std::error::Error for WriteError {}

/// Client-side transport under test.
// An MptcpConnection dwarfs a TcpSocket, but transports live one per host
// for a whole simulation — boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum Transport {
    /// A Multipath TCP connection.
    Mptcp(MptcpConnection),
    /// A single regular TCP socket (baseline).
    Tcp(TcpSocket),
}

impl Transport {
    /// Is the transport ready to carry data?
    pub fn is_established(&self) -> bool {
        match self {
            Transport::Mptcp(c) => c.is_established(),
            Transport::Tcp(s) => s.is_established(),
        }
    }

    /// Write application bytes; returns the amount accepted (never 0) or
    /// why nothing was accepted.
    pub fn write(&mut self, data: &[u8]) -> Result<usize, WriteError> {
        match self {
            Transport::Mptcp(c) => match c.write(data) {
                WriteOutcome::Accepted(n) | WriteOutcome::FellBack(n) if n > 0 => Ok(n),
                WriteOutcome::Accepted(_)
                | WriteOutcome::FellBack(_)
                | WriteOutcome::WouldBlock => Err(WriteError::WouldBlock),
                WriteOutcome::Closed => Err(WriteError::Closed),
            },
            Transport::Tcp(s) => match s.send(data) {
                n if n > 0 => Ok(n),
                _ if s.is_error() || s.send_closed() => Err(WriteError::Closed),
                _ => Err(WriteError::WouldBlock),
            },
        }
    }

    /// Read in-order bytes.
    pub fn read(&mut self, max: usize) -> Option<Bytes> {
        match self {
            Transport::Mptcp(c) => c.read(max).into_data(),
            Transport::Tcp(s) => s.read(max),
        }
    }

    /// Close the sending direction.
    pub fn close(&mut self) {
        match self {
            Transport::Mptcp(c) => c.close(),
            Transport::Tcp(s) => s.close(),
        }
    }

    /// Stream EOF observed and drained?
    pub fn at_eof(&self) -> bool {
        match self {
            Transport::Mptcp(c) => c.at_eof(),
            Transport::Tcp(s) => s.stream_fin(),
        }
    }

    /// Did the transport fail (connection error with no recovery)?
    pub fn failed(&self) -> bool {
        match self {
            Transport::Mptcp(c) => c.state() == mptcp::ConnState::Closed && !c.send_closed(),
            Transport::Tcp(s) => s.is_error(),
        }
    }

    /// Feed an incoming segment.
    pub fn handle_segment(&mut self, now: SimTime, seg: &TcpSegment) {
        match self {
            Transport::Mptcp(c) => c.handle_segment(now, seg),
            Transport::Tcp(s) => s.handle_segment(now, seg),
        }
    }

    /// Emit at most one segment.
    pub fn poll(&mut self, now: SimTime) -> Option<TcpSegment> {
        match self {
            Transport::Mptcp(c) => c.poll(now),
            Transport::Tcp(s) => s.poll(now),
        }
    }

    /// Earliest timer deadline.
    pub fn poll_at(&self, now: SimTime) -> Option<SimTime> {
        match self {
            Transport::Mptcp(c) => c.poll_at(now),
            Transport::Tcp(s) => s.poll_at(now),
        }
    }

    /// Sender-held memory (buffered + retained-until-acked bytes).
    pub fn sender_memory(&self) -> usize {
        match self {
            Transport::Mptcp(c) => c.sender_memory(),
            Transport::Tcp(s) => s.bytes_queued(),
        }
    }

    /// The MPTCP connection, if this is one.
    pub fn as_mptcp(&mut self) -> Option<&mut MptcpConnection> {
        match self {
            Transport::Mptcp(c) => Some(c),
            Transport::Tcp(_) => None,
        }
    }

    /// Telemetry snapshot: the MPTCP connection's full recorder merge, or
    /// the plain socket's recorder for the TCP baseline.
    pub fn telemetry(&self) -> mptcp::telemetry::TelemetrySnapshot {
        match self {
            Transport::Mptcp(c) => c.telemetry(),
            Transport::Tcp(s) => s.telemetry.snapshot(),
        }
    }

    /// Time-series trace snapshot: connection + per-subflow tracers merged
    /// and time-sorted, or the lone socket's tracer for the TCP baseline.
    /// Empty unless the transport was configured with tracing enabled.
    pub fn trace_snapshot(&self) -> mptcp::telemetry::TraceSnapshot {
        match self {
            Transport::Mptcp(c) => c.trace_snapshot(),
            Transport::Tcp(s) => mptcp::telemetry::TraceSnapshot::merge(vec![s.tracer.snapshot()]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp_packet::{Endpoint, FourTuple, SeqNum};
    use mptcp_tcpstack::TcpConfig;

    fn established_tcp() -> Transport {
        let tuple = FourTuple {
            src: Endpoint::new(1, 1),
            dst: Endpoint::new(2, 2),
        };
        let now = SimTime::ZERO;
        let mut client = TcpSocket::client(TcpConfig::default(), tuple, SeqNum(1), now, vec![]);
        let syn = client.poll(now).unwrap();
        let mut server = TcpSocket::accept(TcpConfig::default(), &syn, SeqNum(500), now, vec![]);
        let synack = server.poll(now).unwrap();
        client.handle_segment(now, &synack);
        Transport::Tcp(client)
    }

    #[test]
    fn backpressure_and_closure_are_distinct_errors() {
        let mut t = established_tcp();
        // Filling the send buffer must surface as backpressure, not
        // closure: the app should retry, not give up.
        let chunk = vec![0u8; 64 * 1024];
        let mut wrote = 0usize;
        loop {
            match t.write(&chunk) {
                Ok(n) => {
                    assert!(n > 0, "Ok(0) is never a valid write result");
                    wrote += n;
                }
                Err(e) => {
                    assert_eq!(e, WriteError::WouldBlock);
                    break;
                }
            }
            assert!(wrote < 1 << 30, "send buffer never filled");
        }
        assert!(wrote > 0, "an established socket must accept some data");

        // After close, the same call reports a permanent condition.
        t.close();
        assert_eq!(t.write(&chunk), Err(WriteError::Closed));
    }
}
