//! A uniform client-side transport: MPTCP connection or plain TCP socket.
//!
//! Experiments compare MPTCP against regular TCP (and TCP over bonded
//! links); [`Transport`] gives the hosts one API for all of them.

use bytes::Bytes;
use mptcp::MptcpConnection;
use mptcp_netsim::SimTime;
use mptcp_packet::TcpSegment;
use mptcp_tcpstack::TcpSocket;

/// Client-side transport under test.
// An MptcpConnection dwarfs a TcpSocket, but transports live one per host
// for a whole simulation — boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum Transport {
    /// A Multipath TCP connection.
    Mptcp(MptcpConnection),
    /// A single regular TCP socket (baseline).
    Tcp(TcpSocket),
}

impl Transport {
    /// Is the transport ready to carry data?
    pub fn is_established(&self) -> bool {
        match self {
            Transport::Mptcp(c) => c.is_established(),
            Transport::Tcp(s) => s.is_established(),
        }
    }

    /// Write application bytes; returns amount accepted.
    pub fn write(&mut self, data: &[u8]) -> usize {
        match self {
            Transport::Mptcp(c) => c.write(data).accepted(),
            Transport::Tcp(s) => s.send(data),
        }
    }

    /// Read in-order bytes.
    pub fn read(&mut self, max: usize) -> Option<Bytes> {
        match self {
            Transport::Mptcp(c) => c.read(max).into_data(),
            Transport::Tcp(s) => s.read(max),
        }
    }

    /// Close the sending direction.
    pub fn close(&mut self) {
        match self {
            Transport::Mptcp(c) => c.close(),
            Transport::Tcp(s) => s.close(),
        }
    }

    /// Stream EOF observed and drained?
    pub fn at_eof(&self) -> bool {
        match self {
            Transport::Mptcp(c) => c.at_eof(),
            Transport::Tcp(s) => s.stream_fin(),
        }
    }

    /// Did the transport fail (connection error with no recovery)?
    pub fn failed(&self) -> bool {
        match self {
            Transport::Mptcp(c) => c.state() == mptcp::ConnState::Closed && !c.send_closed(),
            Transport::Tcp(s) => s.is_error(),
        }
    }

    /// Feed an incoming segment.
    pub fn handle_segment(&mut self, now: SimTime, seg: &TcpSegment) {
        match self {
            Transport::Mptcp(c) => c.handle_segment(now, seg),
            Transport::Tcp(s) => s.handle_segment(now, seg),
        }
    }

    /// Emit at most one segment.
    pub fn poll(&mut self, now: SimTime) -> Option<TcpSegment> {
        match self {
            Transport::Mptcp(c) => c.poll(now),
            Transport::Tcp(s) => s.poll(now),
        }
    }

    /// Earliest timer deadline.
    pub fn poll_at(&self, now: SimTime) -> Option<SimTime> {
        match self {
            Transport::Mptcp(c) => c.poll_at(now),
            Transport::Tcp(s) => s.poll_at(now),
        }
    }

    /// Sender-held memory (buffered + retained-until-acked bytes).
    pub fn sender_memory(&self) -> usize {
        match self {
            Transport::Mptcp(c) => c.sender_memory(),
            Transport::Tcp(s) => s.bytes_queued(),
        }
    }

    /// The MPTCP connection, if this is one.
    pub fn as_mptcp(&mut self) -> Option<&mut MptcpConnection> {
        match self {
            Transport::Mptcp(c) => Some(c),
            Transport::Tcp(_) => None,
        }
    }

    /// Telemetry snapshot: the MPTCP connection's full recorder merge, or
    /// the plain socket's recorder for the TCP baseline.
    pub fn telemetry(&self) -> mptcp::telemetry::TelemetrySnapshot {
        match self {
            Transport::Mptcp(c) => c.telemetry(),
            Transport::Tcp(s) => s.telemetry.snapshot(),
        }
    }

    /// Time-series trace snapshot: connection + per-subflow tracers merged
    /// and time-sorted, or the lone socket's tracer for the TCP baseline.
    /// Empty unless the transport was configured with tracing enabled.
    pub fn trace_snapshot(&self) -> mptcp::telemetry::TraceSnapshot {
        match self {
            Transport::Mptcp(c) => c.trace_snapshot(),
            Transport::Tcp(s) => mptcp::telemetry::TraceSnapshot::merge(vec![s.tracer.snapshot()]),
        }
    }
}
