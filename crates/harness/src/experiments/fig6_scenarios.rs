//! Figure 6: the receive-buffer optimizations across three topologies.
//!
//! (a) WiFi + a *very* lossy/slow 3G link (50 Kbps, 2 s of buffer): with
//!     ~200 KB buffers, M1+M2 improve MPTCP throughput roughly tenfold
//!     because a loss on 3G otherwise stalls the whole connection behind
//!     a multi-second retransmission.
//! (b) 1 Gbps + 100 Mbps (inter-datacenter asymmetry): MPTCP+M1,2 fills
//!     both with ~250 KB of buffer; regular MPTCP needs megabytes before
//!     it even matches TCP on the faster interface.
//! (c) Three symmetric 1 Gbps links: when paths are equal, underbuffered
//!     MPTCP naturally sticks to one path, so regular ≈ M1,2 everywhere.

use mptcp_netsim::{Duration, LinkCfg, Path};

use super::common::{run_bulk, run_bulk_with, BulkResult, Policy, Variant};

/// A WAN-ish link: 10 ms one-way, one base-RTT of buffer.
fn wan(rate_bps: u64) -> LinkCfg {
    LinkCfg::with_buffer_time(
        rate_bps,
        Duration::from_millis(10),
        Duration::from_millis(20),
    )
}

/// Which Figure 6 panel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Panel {
    /// WiFi + weak 3G.
    WeakCellular,
    /// 1 Gbps + 100 Mbps.
    Asymmetric,
    /// Three 1 Gbps links.
    Symmetric3,
}

impl Panel {
    /// Paths for the panel's MPTCP run.
    pub fn paths(&self) -> Vec<Path> {
        match self {
            Panel::WeakCellular => vec![
                Path::symmetric(LinkCfg::wifi()),
                Path::symmetric(LinkCfg::threeg_weak()),
            ],
            // Inter-datacenter framing (the paper's own description of
            // panel b): 10 ms of propagation with a BDP-scale buffer, so
            // queueing noise does not dwarf the base RTT.
            Panel::Asymmetric => vec![
                Path::symmetric(wan(1_000_000_000)),
                Path::symmetric(wan(100_000_000)),
            ],
            Panel::Symmetric3 => vec![
                Path::symmetric(wan(1_000_000_000)),
                Path::symmetric(wan(1_000_000_000)),
                Path::symmetric(wan(1_000_000_000)),
            ],
        }
    }

    /// TCP baselines: (label, single path).
    pub fn baselines(&self) -> Vec<(&'static str, Path)> {
        match self {
            Panel::WeakCellular => vec![
                ("TCP over WiFi", Path::symmetric(LinkCfg::wifi())),
                ("TCP over 3G", Path::symmetric(LinkCfg::threeg_weak())),
            ],
            Panel::Asymmetric => vec![
                ("TCP over 1Gbps itf", Path::symmetric(wan(1_000_000_000))),
                ("TCP over 100Mbps itf", Path::symmetric(wan(100_000_000))),
            ],
            Panel::Symmetric3 => vec![("TCP over 1Gbps itf", Path::symmetric(wan(1_000_000_000)))],
        }
    }

    /// Buffer sweep matching the paper's axes.
    pub fn default_bufs(&self) -> Vec<usize> {
        match self {
            Panel::WeakCellular => vec![100_000, 200_000, 500_000, 1_000_000, 2_000_000],
            _ => vec![
                250_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000,
            ],
        }
    }

    /// Measurement window (high-rate panels need less simulated time).
    pub fn windows(&self) -> (Duration, Duration) {
        match self {
            Panel::WeakCellular => (Duration::from_secs(5), Duration::from_secs(30)),
            _ => (Duration::from_secs(1), Duration::from_secs(3)),
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Buffer size (bytes).
    pub buf: usize,
    /// (label, goodput Mbps).
    pub results: Vec<(&'static str, f64)>,
}

/// Run one panel's sweep.
pub fn sweep(panel: Panel, bufs: &[usize], seed: u64) -> Vec<Row> {
    sweep_with(panel, bufs, seed, Policy::default())
}

/// [`sweep`] with an explicit cc + scheduler policy.
pub fn sweep_with(panel: Panel, bufs: &[usize], seed: u64, policy: Policy) -> Vec<Row> {
    let (warm, meas) = panel.windows();
    bufs.iter()
        .map(|&buf| {
            let mut results = Vec::new();
            for (label, v) in [
                ("MPTCP+M1,2", Variant::MptcpM12),
                ("regular MPTCP", Variant::MptcpRegular),
            ] {
                let r: BulkResult = run_bulk_with(v, buf, panel.paths(), warm, meas, seed, policy);
                results.push((label, r.goodput_mbps));
            }
            for (label, path) in panel.baselines() {
                let r = run_bulk(Variant::Tcp, buf, vec![path], warm, meas, seed);
                results.push((label, r.goodput_mbps));
            }
            Row { buf, results }
        })
        .collect()
}
