//! Figure 10: connection-establishment latency (SYN → SYN/ACK) measured
//! in real wall-clock time on this machine.
//!
//! For regular TCP the server just builds a control block; for MPTCP it
//! must hash the client's key, generate its own key, and verify the token
//! is unique among established connections (§5.2). We measure our actual
//! implementation: [`mptcp::TokenTable::generate`] with the table
//! pre-filled with 0 / 100 / 1000 connections — in the linear-scan mode
//! that reproduces the paper's growth, and in hash-set mode (the obvious
//! modern fix). The key-pool ablation measures the §5.2 suggestion.

use std::time::Instant;

use mptcp::{KeyPool, MptcpConfig, MptcpListener, TokenTable};
use mptcp_netsim::{SimRng, SimTime};
use mptcp_packet::{Endpoint, FourTuple, MptcpOption, SeqNum, TcpFlags, TcpOption, TcpSegment};
use mptcp_tcpstack::TcpConfig;
use mptcp_telemetry::LogHistogram;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct Row {
    /// Label ("regular TCP", "MPTCP", "MPTCP - 100 conn", ...).
    pub label: String,
    /// Latency samples in nanoseconds.
    pub samples_ns: Vec<u64>,
    /// Log-bucketed view of the same samples, for sort-free quantiles.
    hist: LogHistogram,
}

impl Row {
    /// A row over raw nanosecond latency samples.
    pub fn new(label: String, samples_ns: Vec<u64>) -> Row {
        let mut hist = LogHistogram::new();
        for &ns in &samples_ns {
            hist.record(ns);
        }
        Row {
            label,
            samples_ns,
            hist,
        }
    }

    /// Median latency in microseconds (log-bucketed, ≤ ~3% error).
    pub fn median_us(&self) -> f64 {
        self.hist.quantile(0.5) as f64 / 1000.0
    }

    /// PDF over microsecond buckets up to `max_us`.
    pub fn pdf_us(&self, max_us: usize) -> Vec<(usize, f64)> {
        let mut counts = vec![0u64; max_us + 1];
        for &ns in &self.samples_ns {
            let us = ((ns + 500) / 1000) as usize;
            counts[us.min(max_us)] += 1;
        }
        let total = self.samples_ns.len().max(1) as f64;
        counts
            .into_iter()
            .enumerate()
            .map(|(us, c)| (us, 100.0 * c as f64 / total))
            .collect()
    }
}

fn mp_syn(rng: &mut SimRng) -> TcpSegment {
    let mut syn = TcpSegment::new(
        FourTuple {
            src: Endpoint::new(0x0a000001, (rng.next_u32() % 50000) as u16 + 1024),
            dst: Endpoint::new(0x0a000063, 80),
        },
        SeqNum(rng.next_u32()),
        SeqNum(0),
        TcpFlags::SYN,
    );
    syn.options.push(TcpOption::Mptcp(MptcpOption::MpCapable {
        version: 0,
        checksum_required: true,
        sender_key: rng.next_u64(),
        receiver_key: None,
    }));
    syn
}

/// Time the full server-side SYN→SYN/ACK path of our MPTCP listener with
/// `existing` established connections in the token table.
pub fn measure_mptcp(trials: usize, existing: usize, scan_lookup: bool, seed: u64) -> Row {
    let mut rng = SimRng::new(seed);
    let mut listener = MptcpListener::new(MptcpConfig::default(), seed);
    listener.tokens.scan_lookup = scan_lookup;
    for _ in 0..existing {
        let _ = listener.tokens.generate(&mut rng);
    }
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let syn = mp_syn(&mut rng);
        let t = Instant::now();
        let idx = listener
            .handle_segment(SimTime::ZERO, &syn)
            .expect("accepted");
        // Poll only the new connection: the cost under test is key
        // generation + token uniqueness + SYN/ACK construction, not
        // unrelated connections.
        let synack = listener.conns[idx].poll(SimTime::ZERO);
        samples.push(t.elapsed().as_nanos() as u64);
        debug_assert!(synack.is_some_and(|s| s.flags.syn && s.flags.ack));
    }
    let label = if existing == 0 {
        "MPTCP".to_string()
    } else {
        format!("MPTCP - {existing} conn")
    };
    Row::new(label, samples)
}

/// Time the plain-TCP accept path (control block + SYN/ACK build).
pub fn measure_tcp(trials: usize, seed: u64) -> Row {
    let mut rng = SimRng::new(seed);
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut syn = mp_syn(&mut rng);
        syn.options.retain(|o| !o.is_mptcp());
        let t = Instant::now();
        let mut sock = mptcp_tcpstack::TcpSocket::accept(
            TcpConfig::default(),
            &syn,
            SeqNum(rng.next_u32()),
            SimTime::ZERO,
            vec![],
        );
        let synack = sock.poll(SimTime::ZERO);
        samples.push(t.elapsed().as_nanos() as u64);
        debug_assert!(synack.is_some());
    }
    Row::new("regular TCP".to_string(), samples)
}

/// Time key acquisition with a precomputed pool (§5.2 optimization).
pub fn measure_keypool(trials: usize, seed: u64) -> Row {
    let mut rng = SimRng::new(seed);
    let mut table = TokenTable::new();
    let mut pool = KeyPool::new(trials + 1);
    pool.refill(&mut rng);
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let t = Instant::now();
        let ks = pool.take(&mut table, &mut rng);
        samples.push(t.elapsed().as_nanos() as u64);
        std::hint::black_box(ks);
    }
    Row::new("MPTCP + key pool (keygen only)".to_string(), samples)
}

/// The full Figure 10 set.
pub fn run(trials: usize, seed: u64) -> Vec<Row> {
    let mut rows = vec![measure_tcp(trials, seed)];
    for existing in [0usize, 100, 1000] {
        rows.push(measure_mptcp(trials, existing, true, seed));
    }
    rows.push(measure_keypool(trials, seed));
    rows
}
