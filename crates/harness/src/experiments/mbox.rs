//! The §3/§4.1 middlebox matrix: which designs survive which middleboxes.
//!
//! For every middlebox model we run a 200 KB transfer under three designs:
//!
//! * **MPTCP** — two subflows, one per path, full protocol.
//! * **strawman** — the §3 strawman: a *single* TCP sequence space striped
//!   packet-by-packet across both paths (modelled as TCP over per-packet
//!   round-robin bonding, with an independent middlebox instance per
//!   path). Hole-intolerant boxes and ACK-policing proxies sit on each
//!   path and see a gappy stream — the study's reason the strawman is
//!   undeployable.
//! * **TCP** — single path, as a control.
//!
//! Outcomes: `Ok` (transfer completed as MPTCP), `FellBack` (completed as
//! regular TCP after fallback), `Stalled(pct)` (made partial progress).

use mptcp::{Mechanisms, MptcpConfig};
use mptcp_middlebox::proxy::UnseenAckPolicy;
use mptcp_middlebox::{
    HoleDropper, Nat, OptionStripper, PayloadModifier, ProactiveAcker, SegmentCoalescer,
    SegmentSplitter, SeqRewriter, StripMode, SynDropper,
};
use mptcp_netsim::{Duration, LinkCfg, Middlebox, Path};
use mptcp_tcpstack::TcpConfig;

use super::common::Policy;
use crate::hosts::{ClientApp, ServerApp};
use crate::scenario::{Scenario, TransportKind};

/// The transfer designs compared (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Design {
    /// Full MPTCP, one subflow per path.
    Mptcp,
    /// Single sequence space striped across paths.
    Strawman,
    /// Single-path TCP control.
    Tcp,
}

/// Outcome of one (middlebox, design) cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Outcome {
    /// Transfer completed with MPTCP signalling intact.
    Ok,
    /// Transfer completed after falling back to regular TCP.
    FellBack,
    /// Transfer stalled; payload delivered fraction in percent.
    Stalled(f64),
}

impl Outcome {
    /// Did all the data arrive?
    pub fn completed(&self) -> bool {
        !matches!(self, Outcome::Stalled(_))
    }
}

/// The middlebox models of §4.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MboxKind {
    /// Clean path (control row).
    None,
    /// NAT with SYN-gated mappings.
    Nat,
    /// Initial-sequence-number rewriting.
    SeqRewrite,
    /// MPTCP options stripped from SYNs.
    StripSyn,
    /// MPTCP options stripped from SYN/ACKs only.
    StripSynAck,
    /// MPTCP options stripped from data segments.
    StripData,
    /// SYNs bearing unknown options silently dropped.
    SynDrop,
    /// TSO-style segment splitting.
    Split,
    /// Normalizer-style segment coalescing.
    Coalesce,
    /// Proxy acking data pro-actively and correcting unseen ACKs.
    ProxyAck,
    /// Data after a sequence hole not forwarded.
    HoleDrop,
    /// FTP-ALG payload rewriting with length change.
    PayloadRewrite,
}

impl MboxKind {
    /// All rows of the matrix.
    pub fn all() -> Vec<MboxKind> {
        vec![
            MboxKind::None,
            MboxKind::Nat,
            MboxKind::SeqRewrite,
            MboxKind::StripSyn,
            MboxKind::StripSynAck,
            MboxKind::StripData,
            MboxKind::SynDrop,
            MboxKind::Split,
            MboxKind::Coalesce,
            MboxKind::ProxyAck,
            MboxKind::HoleDrop,
            MboxKind::PayloadRewrite,
        ]
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            MboxKind::None => "clean path",
            MboxKind::Nat => "NAT",
            MboxKind::SeqRewrite => "seq rewriter",
            MboxKind::StripSyn => "opt-strip (SYN)",
            MboxKind::StripSynAck => "opt-strip (SYN/ACK)",
            MboxKind::StripData => "opt-strip (data)",
            MboxKind::SynDrop => "SYN dropper",
            MboxKind::Split => "segment splitter",
            MboxKind::Coalesce => "segment coalescer",
            MboxKind::ProxyAck => "pro-active acker",
            MboxKind::HoleDrop => "hole dropper",
            MboxKind::PayloadRewrite => "payload ALG",
        }
    }

    /// Instantiate the element (fresh per path). `client_addr` is the
    /// address of the path's client side: the NAT model translates ports
    /// only (public address = client address), which exercises mapping
    /// state and SYN-gating without needing extra return routes in the
    /// simulator.
    pub fn make(&self, client_addr: u32) -> Option<Box<dyn Middlebox>> {
        match self {
            MboxKind::None => None,
            MboxKind::Nat => Some(Box::new(Nat::new(client_addr))),
            MboxKind::SeqRewrite => Some(Box::new(SeqRewriter::new())),
            MboxKind::StripSyn => Some(Box::new(OptionStripper::mptcp(StripMode::SynOnly))),
            MboxKind::StripSynAck => Some(Box::new(OptionStripper::mptcp(StripMode::SynAckOnly))),
            MboxKind::StripData => Some(Box::new(OptionStripper::mptcp(StripMode::DataOnly))),
            MboxKind::SynDrop => Some(Box::new(SynDropper::mptcp())),
            MboxKind::Split => Some(Box::new(SegmentSplitter::new(700))),
            MboxKind::Coalesce => Some(Box::new(SegmentCoalescer::new(
                Duration::from_micros(500),
                4096,
            ))),
            MboxKind::ProxyAck => Some(Box::new(ProactiveAcker::new(
                true,
                UnseenAckPolicy::Correct,
            ))),
            MboxKind::HoleDrop => Some(Box::new(HoleDropper::new())),
            MboxKind::PayloadRewrite => Some(Box::new(PayloadModifier::new(
                b"\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a",
                b"\x21\x21\x21\x21\x21\x21\x21\x21\x21\x21",
            ))),
        }
    }
}

/// One matrix cell result.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Middlebox under test.
    pub mbox: MboxKind,
    /// Design under test.
    pub design: Design,
    /// What happened.
    pub outcome: Outcome,
    /// Goodput in Mbps (delivered/elapsed).
    pub goodput_mbps: f64,
}

const TRANSFER: usize = 200_000;

fn make_path(mbox: MboxKind, client_addr: u32) -> Path {
    let mut p = Path::symmetric(LinkCfg {
        rate_bps: 10_000_000,
        delay: Duration::from_millis(10),
        queue_bytes: 64 * 1500,
        loss: 0.0,
    });
    if let Some(el) = mbox.make(client_addr) {
        p = p.with_middlebox(el);
    }
    p
}

/// Run one cell: a 200 KB transfer with a generous deadline.
pub fn run_cell(mbox: MboxKind, design: Design, seed: u64) -> Cell {
    run_cell_with(mbox, design, seed, Policy::default())
}

/// [`run_cell`] with an explicit cc + scheduler policy.
pub fn run_cell_with(mbox: MboxKind, design: Design, seed: u64, policy: Policy) -> Cell {
    let buf = 256 * 1024;
    let (kind, paths) = match design {
        Design::Mptcp => {
            let cfg = MptcpConfig::builder()
                .buffers(buf)
                .mechanisms(Mechanisms::M1_2)
                .checksum(true) // the ALG detector must be armed
                .cc(policy.cc)
                .scheduler(policy.sched)
                .build()
                .expect("middlebox config is valid");
            (
                TransportKind::Mptcp(cfg),
                vec![
                    make_path(mbox, crate::scenario::Endpoints::CLIENT[0]),
                    make_path(mbox, crate::scenario::Endpoints::CLIENT[1]),
                ],
            )
        }
        // The strawman stripes one connection over both paths, so both
        // middlebox instances see its (gappy) stream.
        Design::Strawman => (
            TransportKind::BondedTcp(TcpConfig::with_buffers(buf)),
            vec![
                make_path(mbox, crate::scenario::Endpoints::CLIENT[0]),
                make_path(mbox, crate::scenario::Endpoints::CLIENT[0]),
            ],
        ),
        Design::Tcp => (
            TransportKind::Tcp(TcpConfig::with_buffers(buf)),
            vec![make_path(mbox, crate::scenario::Endpoints::CLIENT[0])],
        ),
    };
    let mut sc = Scenario::new(
        kind,
        ClientApp::Bulk {
            total: TRANSFER,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        paths,
        seed,
    );
    let start = sc.sim.now;
    sc.run_for(Duration::from_secs(30));
    let delivered = sc.server().app_bytes_received;
    let elapsed = sc.sim.now - start;
    let fell_back = match &sc.client().transport {
        crate::transport::Transport::Mptcp(c) => c.is_fallback(),
        _ => false,
    };
    let outcome = if delivered >= TRANSFER as u64 {
        if design == Design::Mptcp && fell_back {
            Outcome::FellBack
        } else {
            Outcome::Ok
        }
    } else {
        Outcome::Stalled(100.0 * delivered as f64 / TRANSFER as f64)
    };
    Cell {
        mbox,
        design,
        outcome,
        goodput_mbps: crate::metrics::Rates::mbps(delivered, elapsed),
    }
}

/// Run the full matrix.
pub fn matrix(seed: u64) -> Vec<Cell> {
    matrix_with(seed, Policy::default())
}

/// [`matrix`] with an explicit cc + scheduler policy.
pub fn matrix_with(seed: u64, policy: Policy) -> Vec<Cell> {
    let mut cells = Vec::new();
    for mbox in MboxKind::all() {
        for design in [Design::Mptcp, Design::Strawman, Design::Tcp] {
            cells.push(run_cell_with(mbox, design, seed, policy));
        }
    }
    cells
}
