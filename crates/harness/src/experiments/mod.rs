//! Experiment drivers: one module per figure/table of the paper.
//!
//! Each module exposes a `run()` (or `sweep()`) returning plain row
//! structs; the `repro` binary in `mptcp-bench` formats them. Absolute
//! numbers depend on the simulated substrate (see DESIGN.md §2); the
//! *shape* of each result — orderings, crossovers, ratios — is the
//! reproduction target recorded in EXPERIMENTS.md.

pub mod chaos;
pub mod common;
pub mod fig10_handshake;
pub mod fig11_http;
pub mod fig3_checksum;
pub mod fig4_rcvbuf;
pub mod fig5_memory;
pub mod fig6_scenarios;
pub mod fig7_appdelay;
pub mod fig8_reorder;
pub mod fig9_wifi3g;
pub mod handover;
pub mod mbox;
pub mod trace;
