//! Shared experiment plumbing: bulk-transfer runs and measurement windows.

use mptcp::telemetry::{TraceConfig, TraceSnapshot};
use mptcp::{
    CcAlgorithm, Mechanisms, MptcpConfig, PathManagerCfg, PmPolicy, ReorderAlgo, SchedulerKind,
};
use mptcp_netsim::{CaptureConfig, CaptureSnapshot, Duration, PacketCapture, Path, SimTime};
use mptcp_tcpstack::TcpConfig;

use crate::hosts::{ClientApp, ServerApp};
use crate::metrics::Rates;
use crate::scenario::{Scenario, TransportKind};

/// The (congestion-control, scheduler, path-manager) policy triple a run
/// uses.
///
/// Every experiment accepts one of these; the default — coupled LIA with
/// the lowest-RTT scheduler and the kernel-style default path manager —
/// is the paper's deployable configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Policy {
    /// Congestion-control algorithm installed on every subflow.
    pub cc: CcAlgorithm,
    /// Packet scheduler driving chunk placement.
    pub sched: SchedulerKind,
    /// Path-manager policy driving subflow establishment.
    pub pm: PmPolicy,
}

impl Policy {
    /// A policy from explicit cc + scheduler parts (default path manager).
    pub fn new(cc: CcAlgorithm, sched: SchedulerKind) -> Policy {
        Policy {
            cc,
            sched,
            pm: PmPolicy::default(),
        }
    }

    /// Replace the path-manager policy (builder style).
    pub fn with_pm(mut self, pm: PmPolicy) -> Policy {
        self.pm = pm;
        self
    }

    /// `"lia+minrtt+default"`-style label for reports and table headers.
    pub fn label(&self) -> String {
        format!("{}+{}+{}", self.cc, self.sched, self.pm)
    }
}

/// The transport variants the figures compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Regular TCP over path 0.
    Tcp,
    /// Regular MPTCP: no receive-buffer mechanisms.
    MptcpRegular,
    /// MPTCP + opportunistic retransmission.
    MptcpM1,
    /// MPTCP + M1 + penalization (the paper's recommended config).
    MptcpM12,
    /// MPTCP + M1,2,3 (autotuning).
    MptcpM123,
    /// MPTCP + all mechanisms (adds cwnd capping).
    MptcpAll,
    /// TCP with per-packet round-robin link bonding.
    BondedTcp,
}

impl Variant {
    /// Human-readable label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Tcp => "TCP",
            Variant::MptcpRegular => "regular MPTCP",
            Variant::MptcpM1 => "MPTCP+M1",
            Variant::MptcpM12 => "MPTCP+M1,2",
            Variant::MptcpM123 => "MPTCP+M1,2,3",
            Variant::MptcpAll => "MPTCP+M1,2,3,4",
            Variant::BondedTcp => "bonding TCP",
        }
    }

    /// Build the transport kind with symmetric `buf` send/receive buffers
    /// and the default (LIA + minRTT) policy.
    pub fn kind(&self, buf: usize) -> TransportKind {
        self.kind_with(buf, Policy::default())
    }

    /// [`Variant::kind`] with an explicit congestion-control + scheduler
    /// policy. TCP variants ignore the policy (single path, Reno).
    pub fn kind_with(&self, buf: usize, policy: Policy) -> TransportKind {
        match self {
            Variant::Tcp => TransportKind::Tcp(tcp_cfg(buf, false)),
            Variant::BondedTcp => TransportKind::BondedTcp(tcp_cfg(buf, false)),
            v => {
                let mech = match v {
                    Variant::MptcpRegular => Mechanisms::NONE,
                    Variant::MptcpM1 => Mechanisms::M1,
                    Variant::MptcpM12 => Mechanisms::M1_2,
                    Variant::MptcpM123 => Mechanisms::M1_2_3,
                    _ => Mechanisms::ALL,
                };
                let cfg = MptcpConfig::builder()
                    .buffers(buf)
                    .mechanisms(mech)
                    .reorder(ReorderAlgo::Shortcuts)
                    // The paper's emulated-link studies disable checksum cost.
                    .checksum(false)
                    .cc(policy.cc)
                    .scheduler(policy.sched)
                    .path_manager(PathManagerCfg::new(policy.pm))
                    .build()
                    .expect("experiment config is valid");
                TransportKind::Mptcp(cfg)
            }
        }
    }
}

/// A TCP config with symmetric buffers.
pub fn tcp_cfg(buf: usize, autotune: bool) -> TcpConfig {
    let mut c = TcpConfig::with_buffers(buf);
    c.autotune = autotune;
    c
}

/// Result of one bulk run.
#[derive(Clone, Debug)]
pub struct BulkResult {
    /// Application-level goodput in Mbps over the measurement window.
    pub goodput_mbps: f64,
    /// Scheduled (wire payload incl. re-injections) throughput in Mbps.
    pub throughput_mbps: f64,
    /// Mean sender memory over the window, bytes.
    pub sender_mem: f64,
    /// Mean receiver memory over the window, bytes.
    pub receiver_mem: f64,
    /// Did the transport fall back to plain TCP?
    pub fell_back: bool,
    /// Client-side transport telemetry at the end of the run (M1–M4,
    /// fallback causes, reorder/scheduler internals).
    pub telemetry: mptcp::telemetry::TelemetrySnapshot,
}

/// A [`BulkResult`] plus the time-series artifacts of a traced run.
#[derive(Clone, Debug)]
pub struct TracedBulkResult {
    /// The scalar rates and telemetry of the run.
    pub bulk: BulkResult,
    /// Client-side time-series trace (conn + subflow samples, spans).
    pub trace: TraceSnapshot,
    /// Per-link packet capture with MPTCP options decoded.
    pub capture: CaptureSnapshot,
}

/// Run a continuous bulk transfer (client → server) for `warmup +
/// measure`, returning rates over the measurement window only.
pub fn run_bulk(
    variant: Variant,
    buf: usize,
    paths: Vec<Path>,
    warmup: Duration,
    measure: Duration,
    seed: u64,
) -> BulkResult {
    run_bulk_with(
        variant,
        buf,
        paths,
        warmup,
        measure,
        seed,
        Policy::default(),
    )
}

/// [`run_bulk`] with an explicit congestion-control + scheduler policy.
#[allow(clippy::too_many_arguments)] // mirrors run_bulk + the policy
pub fn run_bulk_with(
    variant: Variant,
    buf: usize,
    paths: Vec<Path>,
    warmup: Duration,
    measure: Duration,
    seed: u64,
    policy: Policy,
) -> BulkResult {
    run_bulk_traced_with(
        variant,
        buf,
        paths,
        warmup,
        measure,
        seed,
        policy,
        TraceConfig::disabled(),
        CaptureConfig::disabled(),
    )
    .bulk
}

/// [`run_bulk`] with time-series tracing and packet capture wired in.
/// Disabled configs make this identical (and identically cheap) to
/// `run_bulk`.
#[allow(clippy::too_many_arguments)] // mirrors run_bulk + the two configs
pub fn run_bulk_traced(
    variant: Variant,
    buf: usize,
    paths: Vec<Path>,
    warmup: Duration,
    measure: Duration,
    seed: u64,
    trace: TraceConfig,
    capture: CaptureConfig,
) -> TracedBulkResult {
    run_bulk_traced_with(
        variant,
        buf,
        paths,
        warmup,
        measure,
        seed,
        Policy::default(),
        trace,
        capture,
    )
}

/// [`run_bulk_traced`] with an explicit policy.
#[allow(clippy::too_many_arguments)] // mirrors run_bulk_traced + the policy
pub fn run_bulk_traced_with(
    variant: Variant,
    buf: usize,
    paths: Vec<Path>,
    warmup: Duration,
    measure: Duration,
    seed: u64,
    policy: Policy,
    trace: TraceConfig,
    capture: CaptureConfig,
) -> TracedBulkResult {
    let mut kind = variant.kind_with(buf, policy);
    match &mut kind {
        TransportKind::Mptcp(cfg) => *cfg = cfg.clone().with_trace(trace),
        TransportKind::Tcp(tcp) | TransportKind::BondedTcp(tcp) => tcp.trace = trace,
    }
    let mut sc = Scenario::new(
        kind,
        ClientApp::Bulk {
            total: usize::MAX / 2,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        paths,
        seed,
    );
    sc.sim.capture = PacketCapture::new(capture);
    sc.run_for(warmup);
    let delivered0 = sc.server().app_bytes_received;
    let scheduled0 = scheduled_bytes(&mut sc);
    let t0 = sc.sim.now;
    sc.run_for(measure);
    let elapsed = sc.sim.now - t0;
    let delivered = sc.server().app_bytes_received - delivered0;
    let scheduled = scheduled_bytes(&mut sc) - scheduled0;
    let warm = t0;
    let (smem, rmem, fell_back, telemetry, trace) = {
        let client = sc.client();
        let smem = client.mem_sampler.mean_after(warm);
        let fell = match &client.transport {
            crate::transport::Transport::Mptcp(c) => c.is_fallback(),
            _ => false,
        };
        let telemetry = client.transport.telemetry();
        let trace = client.transport.trace_snapshot();
        (
            smem,
            sc.server().mem_sampler.mean_after(warm),
            fell,
            telemetry,
            trace,
        )
    };
    TracedBulkResult {
        bulk: BulkResult {
            goodput_mbps: Rates::mbps(delivered, elapsed),
            throughput_mbps: Rates::mbps(scheduled, elapsed),
            sender_mem: smem,
            receiver_mem: rmem,
            fell_back,
            telemetry,
        },
        trace,
        capture: sc.sim.capture.snapshot(),
    }
}

pub(crate) fn scheduled_bytes(sc: &mut Scenario) -> u64 {
    match &mut sc.client_mut().transport {
        crate::transport::Transport::Mptcp(c) => c.stats.bytes_scheduled,
        crate::transport::Transport::Tcp(s) => s.stats.bytes_out,
    }
}

/// The paper's emulated WiFi+3G path pair (Figs 4, 5, 7).
pub fn wifi_3g_paths() -> Vec<Path> {
    vec![
        Path::symmetric(mptcp_netsim::LinkCfg::wifi()),
        Path::symmetric(mptcp_netsim::LinkCfg::threeg()),
    ]
}

/// Standard measurement windows.
pub const WARMUP: Duration = Duration::from_secs(3);
/// Default measurement duration.
pub const MEASURE: Duration = Duration::from_secs(20);

/// Default deadline guard for runs that should quiesce on their own.
pub const LONG: SimTime = SimTime::from_secs(120);
