//! Figure 9: MPTCP over "real" 3G and WiFi, goodput vs buffer size.
//!
//! The paper used a commercial Belgian 3G network (TCP max ~2 Mbps) and a
//! WiFi AP rate-capped to 2 Mbps (FON-style shared hotspot). We emulate
//! both: 3G at 2 Mbps / 150 ms / 2 s buffer, WiFi capped at 2 Mbps /
//! 20 ms / 80 ms buffer. Expected shape: with 100 KB buffers MPTCP beats
//! single-path TCP by ~25%; at 500 KB it approaches 2× (both pipes full);
//! it never does worse than TCP.

use mptcp_netsim::{Duration, LinkCfg, Path};

use super::common::{run_bulk, run_bulk_with, Policy, Variant};

/// Capped-WiFi link: 2 Mbps, 20 ms RTT, 80 ms buffer.
pub fn capped_wifi() -> LinkCfg {
    LinkCfg::with_buffer_time(
        2_000_000,
        Duration::from_millis(10),
        Duration::from_millis(80),
    )
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Buffer size (bytes).
    pub buf: usize,
    /// (label, goodput Mbps).
    pub results: Vec<(&'static str, f64)>,
}

/// Sweep the paper's buffer axis: 50, 100, 200, 500 KB.
pub fn sweep(bufs: &[usize], seed: u64) -> Vec<Row> {
    sweep_with(bufs, seed, Policy::default())
}

/// [`sweep`] with an explicit cc + scheduler policy for the MPTCP row
/// (the TCP baselines are single-path and unaffected).
pub fn sweep_with(bufs: &[usize], seed: u64, policy: Policy) -> Vec<Row> {
    let warm = Duration::from_secs(4);
    let meas = Duration::from_secs(25);
    bufs.iter()
        .map(|&buf| {
            let mut results = Vec::new();
            let mptcp_paths = vec![
                Path::symmetric(capped_wifi()),
                Path::symmetric(LinkCfg::threeg()),
            ];
            let r = run_bulk_with(
                Variant::MptcpM12,
                buf,
                mptcp_paths,
                warm,
                meas,
                seed,
                policy,
            );
            results.push(("MPTCP", r.goodput_mbps));
            let r = run_bulk(
                Variant::Tcp,
                buf,
                vec![Path::symmetric(capped_wifi())],
                warm,
                meas,
                seed,
            );
            results.push(("TCP over WiFi", r.goodput_mbps));
            let r = run_bulk(
                Variant::Tcp,
                buf,
                vec![Path::symmetric(LinkCfg::threeg())],
                warm,
                meas,
                seed,
            );
            results.push(("TCP over 3G", r.goodput_mbps));
            Row { buf, results }
        })
        .collect()
}

/// The paper's x-axis.
pub fn default_bufs() -> Vec<usize> {
    vec![50_000, 100_000, 200_000, 500_000]
}
