//! Figure 4: throughput vs receive-buffer size over emulated WiFi + 3G.
//!
//! Paper setup: WiFi 8 Mbps / 20 ms RTT / 80 ms buffer; 3G 2 Mbps /
//! 150 ms RTT / 2 s buffer. Sweep the (symmetric) send/receive buffer and
//! compare TCP on each interface, regular MPTCP, MPTCP+M1 (goodput *and*
//! throughput — M1's duplicate transmissions show up as the gap), and
//! MPTCP+M1,2.
//!
//! Expected shape: regular MPTCP *underperforms TCP-over-WiFi* below
//! ~400 KB (the paper's headline pathology), +M1 roughly matches it, and
//! +M1,2 matches or beats it everywhere while approaching the 10 Mbps
//! aggregate as buffers grow.

use mptcp_netsim::{Duration, LinkCfg, Path};

use super::common::{
    run_bulk, run_bulk_with, wifi_3g_paths, BulkResult, Policy, Variant, MEASURE, WARMUP,
};

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Configured buffer (bytes).
    pub buf: usize,
    /// Per-variant results, in the order of [`variants`].
    pub results: Vec<(Variant, BulkResult)>,
}

/// The variants Figure 4 plots.
pub fn variants() -> Vec<Variant> {
    vec![
        Variant::Tcp,          // over WiFi (path 0)
        Variant::MptcpRegular, // panel (a)
        Variant::MptcpM1,      // panel (b)
        Variant::MptcpM12,     // panel (c)
    ]
}

/// TCP over the 3G interface (needs a path list starting with 3G).
pub fn run_tcp_3g(buf: usize, seed: u64) -> BulkResult {
    run_bulk(
        Variant::Tcp,
        buf,
        vec![Path::symmetric(LinkCfg::threeg())],
        WARMUP,
        MEASURE,
        seed,
    )
}

/// Run the full sweep. `bufs` in bytes (paper: 0–1000 KB).
pub fn sweep(bufs: &[usize], seed: u64) -> Vec<Row> {
    sweep_with(bufs, seed, Policy::default())
}

/// [`sweep`] with an explicit cc + scheduler policy.
pub fn sweep_with(bufs: &[usize], seed: u64, policy: Policy) -> Vec<Row> {
    bufs.iter()
        .map(|&buf| {
            let results = variants()
                .into_iter()
                .map(|v| {
                    let paths = match v {
                        Variant::Tcp => vec![Path::symmetric(LinkCfg::wifi())],
                        _ => wifi_3g_paths(),
                    };
                    (
                        v,
                        run_bulk_with(v, buf, paths, WARMUP, MEASURE, seed, policy),
                    )
                })
                .collect();
            Row { buf, results }
        })
        .collect()
}

/// The paper's x-axis: ~8 points from 50 KB to 1 MB.
pub fn default_bufs() -> Vec<usize> {
    vec![
        50_000, 100_000, 200_000, 300_000, 400_000, 600_000, 800_000, 1_000_000,
    ]
}

/// Shorter windows for tests.
pub fn quick(buf: usize, v: Variant, seed: u64) -> BulkResult {
    let paths = match v {
        Variant::Tcp => vec![Path::symmetric(LinkCfg::wifi())],
        _ => wifi_3g_paths(),
    };
    run_bulk(
        v,
        buf,
        paths,
        Duration::from_secs(2),
        Duration::from_secs(8),
        seed,
    )
}
