//! Figure 11: apachebench-style requests/sec vs transfer size.
//!
//! Closed-loop clients each issue a request and read a `file_size`-byte
//! response to EOF, then immediately reconnect — over two parallel links —
//! comparing regular TCP (one link), TCP with per-packet round-robin
//! bonding (both links), and MPTCP (one subflow per link).
//!
//! Expected shape: MPTCP loses below ~30 KB (second-subflow setup cost
//! dominates), roughly doubles TCP above ~100 KB, and edges out bonding
//! for the largest files.
//!
//! Scale note: the paper used 100 clients on 2×1 Gbps with a real Apache.
//! The default here is a smaller fleet on 2×100 Mbps so a full sweep runs
//! in seconds; `clients`/`link_mbps` knobs restore the paper's scale.

use mptcp::{Mechanisms, MptcpConfig};
use mptcp_netsim::{Duration, LinkCfg, Path};
use mptcp_tcpstack::TcpConfig;

use super::common::Policy;
use crate::scenario::{Scenario, TransportKind};

/// Sweep configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of concurrent closed-loop clients.
    pub clients: usize,
    /// Per-link rate in Mbps.
    pub link_mbps: u64,
    /// Simulated duration per point.
    pub duration: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            clients: 10,
            link_mbps: 100,
            duration: Duration::from_secs(5),
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Transfer (file) size in bytes.
    pub file_size: usize,
    /// (label, requests per second).
    pub results: Vec<(&'static str, f64)>,
}

fn link(cfg: &Config) -> LinkCfg {
    LinkCfg {
        rate_bps: cfg.link_mbps * 1_000_000,
        delay: Duration::from_micros(100),
        queue_bytes: 256 * 1500,
        loss: 0.0,
    }
}

fn run_one(kind: TransportKind, cfg: &Config, file_size: usize, seed: u64) -> f64 {
    let l = link(cfg);
    let mut sc = Scenario::http_fleet(kind, cfg.clients, file_size, || Path::symmetric(l), seed);
    // Warm up connections briefly, then measure.
    sc.run_for(Duration::from_millis(500));
    let done0: u64 = sc
        .clients
        .iter()
        .map(|&id| sc.sim.hosts[id].as_client().unwrap().http_completed())
        .sum();
    let t0 = sc.sim.now;
    sc.run_for(cfg.duration);
    let done1: u64 = sc
        .clients
        .iter()
        .map(|&id| sc.sim.hosts[id].as_client().unwrap().http_completed())
        .sum();
    (done1 - done0) as f64 / (sc.sim.now - t0).as_secs_f64()
}

/// Run the sweep over `sizes` for all three transports.
pub fn sweep(cfg: Config, sizes: &[usize], seed: u64) -> Vec<Row> {
    sweep_with(cfg, sizes, seed, Policy::default())
}

/// [`sweep`] with an explicit cc + scheduler policy for the MPTCP row.
pub fn sweep_with(cfg: Config, sizes: &[usize], seed: u64, policy: Policy) -> Vec<Row> {
    sizes
        .iter()
        .map(|&file_size| {
            let tcp = TcpConfig::with_buffers(512 * 1024);
            let mcfg = MptcpConfig::builder()
                .buffers(512 * 1024)
                .mechanisms(Mechanisms::M1_2)
                .checksum(false)
                .cc(policy.cc)
                .scheduler(policy.sched)
                .build()
                .expect("fig11 config is valid");
            let results = vec![
                (
                    "MPTCP",
                    run_one(TransportKind::Mptcp(mcfg.clone()), &cfg, file_size, seed),
                ),
                (
                    "bonding TCP",
                    run_one(TransportKind::BondedTcp(tcp.clone()), &cfg, file_size, seed),
                ),
                (
                    "regular TCP",
                    run_one(TransportKind::Tcp(tcp.clone()), &cfg, file_size, seed),
                ),
            ];
            Row { file_size, results }
        })
        .collect()
}

/// The paper's x-axis (bytes): 4 KB – 300 KB.
pub fn default_sizes() -> Vec<usize> {
    vec![
        4_096, 16_384, 30_000, 65_536, 100_000, 150_000, 200_000, 300_000,
    ]
}
