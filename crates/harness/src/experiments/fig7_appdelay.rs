//! Figure 7: application-level latency PDF (8 KB blocks, 200 KB buffers,
//! WiFi + 3G).
//!
//! The app stamps each 8 KB block when it enters the send buffer and when
//! it is fully read at the receiver. Expected shape: regular MPTCP has a
//! long tail (blocks stuck behind the 3G path); MPTCP+M1,2 concentrates
//! mass at low delay; and — the paper's counterintuitive punchline —
//! plain TCP over WiFi is *slower* than MPTCP+M1,2 because 200 KB of send
//! buffer is overkill for an 8 Mbps path, so blocks queue at the sender.

use mptcp_netsim::{Duration, LinkCfg, Path};

use crate::hosts::{ClientApp, ServerApp};
use crate::metrics::AppDelayStats;
use crate::scenario::{Scenario, TransportKind};

use super::common::{wifi_3g_paths, Policy, Variant};

/// One curve of the PDF plot.
#[derive(Clone, Debug)]
pub struct Curve {
    /// Legend label.
    pub label: &'static str,
    /// Delay statistics.
    pub stats: AppDelayStats,
}

fn run_blocks(kind: TransportKind, paths: Vec<Path>, dur: Duration, seed: u64) -> AppDelayStats {
    let mut sc = Scenario::new(kind, ClientApp::Blocks, ServerApp::Sink, paths, seed);
    sc.run_for(dur);
    let sent = &sc.client().block_sent;
    let received = &sc.server().block_received;
    // Skip the first second's blocks (slow-start warmup).
    let skip = sent
        .iter()
        .take_while(|t| **t < mptcp_netsim::SimTime::from_secs(1))
        .count();
    AppDelayStats::from_stamps(
        &sent[skip.min(sent.len())..],
        &received[skip.min(received.len())..],
    )
}

/// Run all four Figure 7 curves with `buf`-byte buffers.
pub fn run(buf: usize, dur: Duration, seed: u64) -> Vec<Curve> {
    run_with(buf, dur, seed, Policy::default())
}

/// [`run`] with an explicit cc + scheduler policy.
pub fn run_with(buf: usize, dur: Duration, seed: u64, policy: Policy) -> Vec<Curve> {
    let mut out = Vec::new();
    for (label, v) in [
        ("MPTCP + M1,2", Variant::MptcpM12),
        ("regular MPTCP", Variant::MptcpRegular),
    ] {
        out.push(Curve {
            label,
            stats: run_blocks(v.kind_with(buf, policy), wifi_3g_paths(), dur, seed),
        });
    }
    for (label, link) in [
        ("TCP over WiFi", LinkCfg::wifi()),
        ("TCP over 3G", LinkCfg::threeg()),
    ] {
        out.push(Curve {
            label,
            stats: run_blocks(
                Variant::Tcp.kind(buf),
                vec![Path::symmetric(link)],
                dur,
                seed,
            ),
        });
    }
    out
}
