//! Figure 5: sender/receiver memory vs configured maximum receive buffer.
//!
//! With autotuning (M3) the stack grows buffers only as needed; with
//! capping (M4) it additionally refuses to fill bufferbloated 3G queues.
//! Expected shape: MPTCP+M1,2,3 memory grows with the configured cap
//! toward ~500 KB; adding M4 roughly halves it at large configurations;
//! TCP-over-WiFi stays smallest, TCP-over-3G in between. Receiver memory
//! is a substantial fraction of the sender's (multipath reordering), near
//! zero for single-path TCP.

use mptcp_netsim::{Duration, LinkCfg, Path};

use super::common::{run_bulk_with, wifi_3g_paths, Policy, Variant};

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Configured max buffer (bytes).
    pub buf: usize,
    /// (variant label, mean sender memory, mean receiver memory).
    pub results: Vec<(&'static str, f64, f64)>,
}

/// Run the memory sweep with autotuning enabled everywhere.
pub fn sweep(bufs: &[usize], seed: u64) -> Vec<Row> {
    sweep_with(bufs, seed, Policy::default())
}

/// [`sweep`] with an explicit cc + scheduler policy.
pub fn sweep_with(bufs: &[usize], seed: u64, policy: Policy) -> Vec<Row> {
    let warm = Duration::from_secs(3);
    let meas = Duration::from_secs(15);
    bufs.iter()
        .map(|&buf| {
            let mut results = Vec::new();
            for (label, v) in [
                ("MPTCP+M1,2,3,4", Variant::MptcpAll),
                ("MPTCP+M1,2,3", Variant::MptcpM123),
            ] {
                let r = run_bulk_with(v, buf, wifi_3g_paths(), warm, meas, seed, policy);
                results.push((label, r.sender_mem, r.receiver_mem));
            }
            // Autotuned TCP baselines.
            for (label, link) in [
                ("TCP over WiFi", LinkCfg::wifi()),
                ("TCP over 3G", LinkCfg::threeg()),
            ] {
                let r = run_tcp_autotuned(buf, link, warm, meas, seed);
                results.push((label, r.0, r.1));
            }
            Row { buf, results }
        })
        .collect()
}

fn run_tcp_autotuned(
    buf: usize,
    link: LinkCfg,
    warm: Duration,
    meas: Duration,
    seed: u64,
) -> (f64, f64) {
    use crate::hosts::{ClientApp, ServerApp};
    use crate::scenario::{Scenario, TransportKind};
    let cfg = super::common::tcp_cfg(buf, true);
    let mut sc = Scenario::new(
        TransportKind::Tcp(cfg),
        ClientApp::Bulk {
            total: usize::MAX / 2,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        vec![Path::symmetric(link)],
        seed,
    );
    sc.run_for(warm);
    let t0 = sc.sim.now;
    sc.run_for(meas);
    let smem = sc.client().mem_sampler.mean_after(t0);
    let rmem = sc.server().mem_sampler.mean_after(t0);
    (smem, rmem)
}

/// Default x-axis: 100 KB – 1 MB.
pub fn default_bufs() -> Vec<usize> {
    vec![100_000, 200_000, 400_000, 600_000, 800_000, 1_000_000]
}
