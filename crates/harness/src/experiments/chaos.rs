//! `repro chaos`: fault-injection runs exercising path-failure detection
//! and break-before-make recovery (the robustness story behind §3.4's
//! mobility machinery).
//!
//! Three parts, each returning violations instead of panicking so the
//! `repro` binary can render everything before deciding the exit code:
//!
//! * [`blackout`] — the headline demo: the scheduler-preferred WiFi path
//!   goes silently dark for 3 s mid-transfer. The connection must keep
//!   delivering on 3G (break-before-make: the stranded DSNs are
//!   reinjected), declare the path Suspect → Failed, and promote it back
//!   to Active once the link returns;
//! * [`all_paths`] — every path goes dark past the abort deadline. The
//!   connection must abort with the typed
//!   [`AbortReason::AllPathsFailed`] instead of hanging;
//! * [`sweep_run`] — a seeded randomized schedule of blackholes, loss
//!   bursts, delay spikes and bandwidth drops. Invariants: every byte is
//!   delivered exactly once, the run finishes (no deadlock), and the
//!   connection never aborts under recoverable faults.

use mptcp::telemetry::{CounterId, EventKind, TelemetrySnapshot, TraceConfig, TraceSnapshot};
use mptcp::{AbortReason, FailureDetection, Mechanisms, MptcpConfig, PathManagerCfg, PathState};
use mptcp_netsim::{AppliedFault, Duration, FaultKind, SimRng, SimTime};

use super::common::{wifi_3g_paths, Policy};
use crate::hosts::{ClientApp, ServerApp};
use crate::scenario::{Scenario, TransportKind};

/// Shared client configuration: generous buffers so the blackout strands
/// real in-flight data, M1+M2 (the paper's recommended set), no checksum
/// cost.
fn chaos_cfg(trace: bool, policy: Policy) -> MptcpConfig {
    let mut b = MptcpConfig::builder()
        .buffers(256 * 1024)
        .mechanisms(Mechanisms::M1_2)
        .checksum(false)
        .cc(policy.cc)
        .scheduler(policy.sched)
        .path_manager(PathManagerCfg::new(policy.pm));
    if trace {
        b = b.trace(TraceConfig::enabled());
    }
    b.build().expect("chaos config is valid")
}

/// A continuous client → server bulk scenario over WiFi+3G.
fn bulk_scenario(cfg: MptcpConfig, total: usize, seed: u64) -> Scenario {
    Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        wifi_3g_paths(),
        seed,
    )
}

/// What the single-path blackout run produced.
pub struct BlackoutOutcome {
    /// Server bytes before the blackout window opened.
    pub delivered_before: u64,
    /// Server bytes delivered *during* the 3 s blackout (survival proof:
    /// they rode the 3G path).
    pub delivered_during: u64,
    /// Server bytes delivered after the link came back.
    pub delivered_after: u64,
    /// `ConnStats::path_failures` at the end.
    pub path_failures: u64,
    /// `ConnStats::path_recoveries` at the end.
    pub path_recoveries: u64,
    /// `ConnStats::reinjections` at the end (break-before-make evidence).
    pub reinjections: u64,
    /// Final scheduler-visible state of the blacked-out subflow.
    pub final_state: PathState,
    /// Abort reason, which must stay `None` here.
    pub abort: Option<AbortReason>,
    /// Client transport telemetry (PathSuspect/PathFailed/PathRecovered).
    pub telemetry: TelemetrySnapshot,
    /// Fault-schedule telemetry (`faults_injected`, `blackout_injected`).
    pub fault_telemetry: TelemetrySnapshot,
    /// Faults and restores that fired, in order.
    pub faults: Vec<AppliedFault>,
    /// Client time-series trace (the `path_*` spans land here too).
    pub trace: TraceSnapshot,
    /// Invariant violations (empty on a healthy run).
    pub violations: Vec<String>,
}

/// Blackout the WiFi path (path 0 — the scheduler's preferred low-RTT
/// path) from t=1 s for 3 s under a continuous bulk transfer.
pub fn blackout(seed: u64) -> BlackoutOutcome {
    blackout_with(seed, Policy::default())
}

/// [`blackout`] with an explicit cc + scheduler policy.
pub fn blackout_with(seed: u64, policy: Policy) -> BlackoutOutcome {
    let mut sc = bulk_scenario(chaos_cfg(true, policy), usize::MAX / 2, seed);
    sc.sim
        .faults
        .blackout(0, SimTime::from_secs(1), Duration::from_secs(3));

    sc.run_for(Duration::from_secs(1));
    let delivered_before = sc.server().app_bytes_received;
    sc.run_for(Duration::from_secs(3));
    let delivered_during = sc.server().app_bytes_received - delivered_before;
    // Recovery window: probes are on exponential backoff, so give the
    // restored link several seconds to be re-validated.
    sc.run_for(Duration::from_secs(8));
    let delivered_after = sc.server().app_bytes_received - delivered_before - delivered_during;

    let (path_failures, path_recoveries, reinjections, final_state, abort, telemetry, trace) = {
        let client = sc.client_mut();
        let conn = client.transport.as_mptcp().expect("mptcp client");
        let stats = (
            conn.stats.path_failures,
            conn.stats.path_recoveries,
            conn.stats.reinjections,
        );
        let final_state = conn.subflows()[0].path_state;
        let abort = conn.abort_reason();
        (
            stats.0,
            stats.1,
            stats.2,
            final_state,
            abort,
            client.transport.telemetry(),
            client.transport.trace_snapshot(),
        )
    };
    let fault_telemetry = sc.sim.faults.telemetry();
    let faults = sc.sim.faults.applied().to_vec();

    let mut violations = Vec::new();
    if delivered_during == 0 {
        violations.push("no bytes delivered during the blackout (surviving path idle)".into());
    }
    if path_failures == 0 {
        violations.push("blacked-out path was never declared Failed".into());
    }
    if path_recoveries == 0 {
        violations.push("path never recovered after the link came back".into());
    }
    if reinjections == 0 {
        violations.push("no break-before-make reinjection of stranded DSNs".into());
    }
    if let Some(r) = abort {
        violations.push(format!("unexpected abort: {r}"));
    }
    if final_state != PathState::Active {
        violations.push(format!("final path state {final_state:?}, expected Active"));
    }
    for (counter, what) in [
        (CounterId::PathSuspects, "path_suspects"),
        (CounterId::PathFailures, "path_failures"),
        (CounterId::PathRecoveries, "path_recoveries"),
    ] {
        if telemetry.counter(counter) == 0 {
            violations.push(format!("telemetry counter {what} is zero"));
        }
    }
    if !telemetry
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::PathRecovered { subflow: 0 }))
    {
        violations.push("no PathRecovered event for subflow 0".into());
    }
    if !fault_telemetry
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::BlackoutInjected { path: 0 }))
    {
        violations.push("fault schedule recorded no BlackoutInjected event".into());
    }

    BlackoutOutcome {
        delivered_before,
        delivered_during,
        delivered_after,
        path_failures,
        path_recoveries,
        reinjections,
        final_state,
        abort,
        telemetry,
        fault_telemetry,
        faults,
        trace,
        violations,
    }
}

/// What the all-paths blackout run produced.
pub struct AllPathsOutcome {
    /// The abort deadline configured for the run.
    pub abort_deadline: Duration,
    /// The typed abort reason (must be `AllPathsFailed`).
    pub abort: Option<AbortReason>,
    /// Simulated second the `ConnAborted` event fired, if it did.
    pub aborted_at_s: Option<f64>,
    /// `ConnStats::path_failures` at the end.
    pub path_failures: u64,
    /// Client transport telemetry.
    pub telemetry: TelemetrySnapshot,
    /// Invariant violations (empty on a healthy run).
    pub violations: Vec<String>,
}

/// Take every path down (open-ended, no restore) one second into a bulk
/// transfer; the connection must abort with a typed reason — never hang.
pub fn all_paths(seed: u64) -> AllPathsOutcome {
    all_paths_with(seed, Policy::default())
}

/// [`all_paths`] with an explicit cc + scheduler policy.
pub fn all_paths_with(seed: u64, policy: Policy) -> AllPathsOutcome {
    let abort_deadline = Duration::from_secs(5);
    let cfg = chaos_cfg(false, policy)
        .into_builder()
        .failure_detection(FailureDetection {
            abort_deadline,
            ..FailureDetection::default()
        })
        .build()
        .expect("chaos config is valid");
    let mut sc = bulk_scenario(cfg, usize::MAX / 2, seed);
    let from = SimTime::from_secs(1);
    sc.sim.faults.at(from, 0, FaultKind::LinkDown);
    sc.sim.faults.at(from, 1, FaultKind::LinkDown);
    sc.run_for(Duration::from_secs(30));

    let (abort, path_failures, telemetry) = {
        let client = sc.client_mut();
        let conn = client.transport.as_mptcp().expect("mptcp client");
        (
            conn.abort_reason(),
            conn.stats.path_failures,
            client.transport.telemetry(),
        )
    };
    let aborted_at_s = telemetry.events.iter().find_map(|e| {
        matches!(e.kind, EventKind::ConnAborted { .. }).then_some(e.at_ns as f64 / 1e9)
    });

    let mut violations = Vec::new();
    if abort != Some(AbortReason::AllPathsFailed) {
        violations.push(format!(
            "expected AllPathsFailed abort, got {abort:?} (a hang looks like None)"
        ));
    }
    match aborted_at_s {
        None => violations.push("no ConnAborted telemetry event".into()),
        // Detection needs a few RTOs before the deadline clock even
        // starts; well past deadline + backoff slack means a stall.
        Some(t) if t > 20.0 => violations.push(format!("abort far too late, at {t:.1} s")),
        Some(_) => {}
    }
    if path_failures < 2 {
        violations.push(format!("only {path_failures} of 2 paths declared Failed"));
    }

    AllPathsOutcome {
        abort_deadline,
        abort,
        aborted_at_s,
        path_failures,
        telemetry,
        violations,
    }
}

/// One randomized-schedule run of the invariant sweep.
pub struct SweepRun {
    /// The seed (drives both the simulator and the fault schedule).
    pub seed: u64,
    /// Bytes the client set out to send.
    pub total: u64,
    /// Bytes the server's application read.
    pub delivered: u64,
    /// Faults + restores that fired.
    pub faults: Vec<AppliedFault>,
    /// Abort reason (must be `None`: every injected fault is recoverable).
    pub abort: Option<AbortReason>,
    /// Simulated seconds the run took.
    pub elapsed_s: f64,
    /// Invariant violations (empty on a healthy run).
    pub violations: Vec<String>,
}

/// Bytes each sweep run transfers.
const SWEEP_TOTAL: usize = 6_000_000;
/// Simulated-time budget; running out of it is the deadlock invariant.
const SWEEP_DEADLINE: SimTime = SimTime::from_secs(120);

/// Queue a seeded random schedule of recoverable faults: blackholes, loss
/// bursts, delay spikes and bandwidth drops, each window well under the
/// abort deadline so a correct implementation always rides them out.
fn random_schedule(sc: &mut Scenario, seed: u64) {
    let mut rng = SimRng::new(seed ^ 0xfa17_5eed);
    for _ in 0..6 {
        let path = rng.range(0, 2) as usize;
        let at = SimTime::from_millis(rng.range(500, 6_000));
        let duration = Duration::from_millis(rng.range(300, 2_500));
        let kind = match rng.range(0, 4) {
            0 => FaultKind::Blackhole { duration },
            1 => FaultKind::LossBurst {
                loss: 0.05 + rng.next_f64() * 0.25,
                duration,
            },
            2 => FaultKind::DelaySpike {
                extra: Duration::from_millis(rng.range(50, 400)),
                duration,
            },
            _ => FaultKind::BandwidthDrop {
                factor: 0.1 + rng.next_f64() * 0.4,
                duration,
            },
        };
        sc.sim.faults.at(at, path, kind);
    }
}

/// Run one seeded randomized-fault transfer and check the invariants.
pub fn sweep_run(seed: u64) -> SweepRun {
    sweep_run_with(seed, Policy::default())
}

/// [`sweep_run`] with an explicit cc + scheduler policy.
pub fn sweep_run_with(seed: u64, policy: Policy) -> SweepRun {
    let mut sc = bulk_scenario(chaos_cfg(false, policy), SWEEP_TOTAL, seed);
    random_schedule(&mut sc, seed);

    let mut delivered = 0u64;
    let mut abort = None;
    while sc.sim.now < SWEEP_DEADLINE {
        sc.run_for(Duration::from_secs(1));
        delivered = sc.server().app_bytes_received;
        abort = sc
            .client_mut()
            .transport
            .as_mptcp()
            .and_then(|c| c.abort_reason());
        if delivered >= SWEEP_TOTAL as u64 || abort.is_some() {
            break;
        }
    }
    let elapsed_s = sc.sim.now.0 as f64 / 1e9;
    let faults = sc.sim.faults.applied().to_vec();

    let mut violations = Vec::new();
    match delivered.cmp(&(SWEEP_TOTAL as u64)) {
        std::cmp::Ordering::Less => violations.push(format!(
            "delivered {delivered} of {SWEEP_TOTAL} bytes (deadlock or loss)"
        )),
        std::cmp::Ordering::Greater => violations.push(format!(
            "delivered {delivered} > {SWEEP_TOTAL} bytes written: duplicate delivery"
        )),
        std::cmp::Ordering::Equal => {}
    }
    if let Some(r) = abort {
        violations.push(format!("aborted under recoverable faults: {r}"));
    }

    SweepRun {
        seed,
        total: SWEEP_TOTAL as u64,
        delivered,
        faults,
        abort,
        elapsed_s,
        violations,
    }
}

/// Run the whole chaos suite: blackout demo, all-paths abort, and
/// `sweep_n` randomized seeds derived from `seed`.
pub struct ChaosArtifacts {
    /// The single-path blackout demo.
    pub blackout: BlackoutOutcome,
    /// The all-paths abort check.
    pub all_paths: AllPathsOutcome,
    /// The randomized invariant sweep.
    pub sweep: Vec<SweepRun>,
}

impl ChaosArtifacts {
    /// Every violation across the suite, prefixed by its origin.
    pub fn violations(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .blackout
            .violations
            .iter()
            .map(|v| format!("blackout: {v}"))
            .collect();
        out.extend(
            self.all_paths
                .violations
                .iter()
                .map(|v| format!("all-paths: {v}")),
        );
        for run in &self.sweep {
            out.extend(
                run.violations
                    .iter()
                    .map(|v| format!("sweep seed {}: {v}", run.seed)),
            );
        }
        out
    }
}

/// Run everything.
pub fn run(seed: u64, sweep_n: u64) -> ChaosArtifacts {
    run_with(seed, sweep_n, Policy::default())
}

/// [`run`] with an explicit cc + scheduler policy.
pub fn run_with(seed: u64, sweep_n: u64, policy: Policy) -> ChaosArtifacts {
    ChaosArtifacts {
        blackout: blackout_with(seed, policy),
        all_paths: all_paths_with(seed, policy),
        sweep: (0..sweep_n)
            .map(|i| sweep_run_with(seed ^ (i * 7919), policy))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 20120425;

    #[test]
    fn blackout_survives_and_recovers() {
        let out = blackout(SEED);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.delivered_during > 0);
        // The path_* spans must also be visible in the time-series trace.
        assert!(
            out.trace
                .spans()
                .any(|(_, _, k)| matches!(k, EventKind::PathFailed { .. })),
            "no PathFailed span in the trace"
        );
    }

    #[test]
    fn all_paths_down_aborts_with_typed_reason() {
        let out = all_paths(SEED);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.abort, Some(AbortReason::AllPathsFailed));
    }

    #[test]
    fn randomized_sweep_holds_invariants() {
        let run = sweep_run(SEED);
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert!(!run.faults.is_empty(), "schedule injected nothing");
    }
}
