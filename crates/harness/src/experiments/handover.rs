//! `repro handover`: WiFi → cellular migration over a pre-opened backup
//! subflow (§3.4's mobility story, driven by the path manager).
//!
//! The client's PM registry marks its cellular interface
//! `SUBFLOW|BACKUP`; the server signals its second address via ADD_ADDR.
//! The resulting backup subflow is established *before* anything goes
//! wrong but carries no data (the scheduler's last-resort tier). When the
//! WiFi interface is withdrawn mid-stream (`FaultKind::AddrDown` — the
//! host *knows* its interface died, unlike a silent blackout), the
//! connection must:
//!
//! * send REMOVE_ADDR for the lost address on the surviving path,
//! * close the WiFi subflow and reinject its stranded chunks,
//! * promote the backup subflow (MP_PRIO) so the scheduler uses it,
//!
//! all in the same instant — so the application-visible byte stream never
//! stalls longer than one minimum RTO, and no retransmission timer fires
//! on the surviving path. Contrast with [`super::chaos::blackout`], where
//! the same migration costs a multi-second failure-detection delay.

use mptcp::telemetry::{CounterId, EventKind, TelemetrySnapshot, TraceConfig, TraceSnapshot};
use mptcp::{
    AbortReason, EndpointFlags, Mechanisms, MptcpConfig, PathManagerCfg, PmEndpoint, PmPolicy,
};
use mptcp_netsim::{Duration, FaultKind, SimTime};

use super::common::{wifi_3g_paths, Policy};
use crate::hosts::{ClientApp, ServerApp};
use crate::scenario::{Endpoints, Scenario, TransportKind};

/// When the WiFi interface is withdrawn.
const SWITCH_AT: SimTime = SimTime::from_secs(3);
/// Total simulated run length.
const RUN_FOR: Duration = Duration::from_secs(8);
/// The app-visible stall budget: one minimum RTO. A handover that relies
/// on any timer would blow this; the PM-driven path migrates in zero time.
const STALL_BUDGET: Duration = Duration::from_millis(200);

/// What the handover run produced.
pub struct HandoverOutcome {
    /// When the WiFi address was withdrawn, seconds.
    pub switch_at_s: f64,
    /// Server bytes delivered before the switch.
    pub delivered_before: u64,
    /// Server bytes delivered after the switch (cellular-only proof).
    pub delivered_after: u64,
    /// Longest gap between consecutive 8 KB delivery stamps in the window
    /// around the switch, milliseconds.
    pub max_gap_ms: f64,
    /// The budget `max_gap_ms` is judged against, milliseconds.
    pub stall_budget_ms: f64,
    /// Was the backup subflow established (and flagged backup) before the
    /// switch?
    pub backup_preopened: bool,
    /// Subflow-level bytes acked on the backup at the pre-switch sample —
    /// zero proves the scheduler kept it in the last-resort tier.
    pub backup_bytes_before: u64,
    /// REMOVE_ADDR options sent for the lost address.
    pub remove_addrs_sent: u64,
    /// MP_PRIO promotions the PM issued.
    pub promotions: u64,
    /// Abort reason, which must stay `None`.
    pub abort: Option<AbortReason>,
    /// Client transport telemetry.
    pub telemetry: TelemetrySnapshot,
    /// Client time-series trace (the PM decision spans land here).
    pub trace: TraceSnapshot,
    /// Invariant violations (empty on a clean handover).
    pub violations: Vec<String>,
}

/// Run the handover scenario with the default policy.
pub fn run(seed: u64) -> HandoverOutcome {
    run_with(seed, Policy::default())
}

/// [`run`] with an explicit cc + scheduler + pm policy.
pub fn run_with(seed: u64, policy: Policy) -> HandoverOutcome {
    let cfg = MptcpConfig::builder()
        .buffers(256 * 1024)
        .mechanisms(Mechanisms::M1_2)
        .checksum(false)
        .cc(policy.cc)
        .scheduler(policy.sched)
        .path_manager(PathManagerCfg::new(policy.pm).endpoint(PmEndpoint::new(
            Endpoints::CLIENT[1],
            EndpointFlags::SUBFLOW | EndpointFlags::BACKUP,
        )))
        .trace(TraceConfig::enabled())
        .build()
        .expect("handover config is valid");
    let mut sc = Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total: usize::MAX / 2,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        wifi_3g_paths(),
        seed,
    );
    sc.sim.faults.at(
        SWITCH_AT,
        0,
        FaultKind::AddrDown {
            addr: Endpoints::CLIENT[0],
        },
    );

    // Sample just before the switch: the backup must already be up.
    sc.run_for(Duration::from_millis(2_900));
    let (backup_preopened, backup_bytes_before) = {
        let conn = sc.client_mut().transport.as_mptcp().expect("mptcp client");
        let sfs = conn.subflows();
        let up = sfs.len() >= 2 && !sfs[1].dead && sfs[1].backup;
        let bytes = sfs.get(1).map_or(0, |s| s.sock.stats.bytes_acked);
        (up, bytes)
    };
    let delivered_before = sc.server().app_bytes_received;

    sc.run_for(RUN_FOR - Duration::from_millis(2_900));
    let delivered_after = sc.server().app_bytes_received - delivered_before;

    // Longest delivery gap in (switch - 1 s, switch + 2 s): a migration
    // that leans on a timer shows up as a hole right after the switch.
    let w0 = SimTime::from_secs(2);
    let w1 = SimTime::from_secs(5);
    let mut prev = w0;
    let mut max_gap = Duration::ZERO;
    for &t in sc.server().block_received.iter() {
        if t < w0 || t > w1 {
            continue;
        }
        max_gap = max_gap.max(t - prev);
        prev = t;
    }
    max_gap = max_gap.max(w1 - prev);

    let (abort, telemetry, trace) = {
        let client = sc.client_mut();
        let conn = client.transport.as_mptcp().expect("mptcp client");
        let abort = conn.abort_reason();
        (
            abort,
            client.transport.telemetry(),
            client.transport.trace_snapshot(),
        )
    };
    let remove_addrs_sent = telemetry.counter(CounterId::RemoveAddrsSent);
    let promotions = telemetry.counter(CounterId::PmBackupPromotions);

    let mut violations = Vec::new();
    if !backup_preopened {
        violations.push("backup subflow was not established before the switch".into());
    }
    if delivered_after == 0 {
        violations.push("nothing delivered after the switch (migration failed)".into());
    }
    if max_gap > STALL_BUDGET {
        violations.push(format!(
            "app-visible stall of {:.0} ms exceeds the {:.0} ms budget",
            max_gap.as_secs_f64() * 1e3,
            STALL_BUDGET.as_secs_f64() * 1e3
        ));
    }
    if remove_addrs_sent == 0 {
        violations.push("no REMOVE_ADDR sent for the lost address".into());
    }
    if promotions == 0 {
        violations.push("backup subflow was never promoted (no MP_PRIO)".into());
    }
    // The surviving path's timers must never fire: migration is
    // event-driven, not timeout-driven.
    let switch_ns = SWITCH_AT.0;
    for (at, sf, kind) in trace.spans() {
        match kind {
            EventKind::TcpRto { subflow: 1, .. } if at >= switch_ns => {
                violations.push(format!(
                    "TCP RTO on the surviving subflow at {:.2} s",
                    at as f64 / 1e9
                ));
            }
            EventKind::DataRto { .. } if at >= switch_ns => {
                violations.push(format!("data-level RTO at {:.2} s", at as f64 / 1e9));
            }
            _ => {}
        }
        let _ = sf;
    }
    if !trace
        .spans()
        .any(|(_, _, k)| matches!(k, EventKind::PmBackupPromoted { .. }))
    {
        violations.push("no PmBackupPromoted span in the trace".into());
    }
    if let Some(r) = abort {
        violations.push(format!("unexpected abort: {r}"));
    }
    // SignalOnly would never open the backup; surface a config footgun
    // early rather than as a cryptic stall.
    if policy.pm == PmPolicy::SignalOnly {
        violations.push("handover requires a join-capable pm policy (not signal)".into());
    }

    HandoverOutcome {
        switch_at_s: SWITCH_AT.0 as f64 / 1e9,
        delivered_before,
        delivered_after,
        max_gap_ms: max_gap.as_secs_f64() * 1e3,
        stall_budget_ms: STALL_BUDGET.as_secs_f64() * 1e3,
        backup_preopened,
        backup_bytes_before,
        remove_addrs_sent,
        promotions,
        abort,
        telemetry,
        trace,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 20120425;

    #[test]
    fn handover_migrates_without_stall() {
        let out = run(SEED);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.backup_preopened);
        assert!(out.delivered_before > 0 && out.delivered_after > 0);
        assert_eq!(out.telemetry.counter(CounterId::PmBackupPromotions), 1);
        assert!(out.max_gap_ms <= out.stall_budget_ms);
    }

    #[test]
    fn handover_emits_pm_decision_spans() {
        let out = run(SEED ^ 1);
        let mut saw_open = false;
        let mut saw_promote = false;
        let mut saw_remove = false;
        for (_, _, k) in out.trace.spans() {
            match k {
                EventKind::PmOpenSubflow { backup: 1, .. } => saw_open = true,
                EventKind::PmBackupPromoted { .. } => saw_promote = true,
                EventKind::RemoveAddr { .. } => saw_remove = true,
                _ => {}
            }
        }
        assert!(saw_open, "no PmOpenSubflow(backup) span");
        assert!(saw_promote, "no PmBackupPromoted span");
        assert!(saw_remove, "no RemoveAddr span");
    }

    #[test]
    fn backup_carries_no_data_before_switch() {
        let out = run(SEED ^ 2);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(
            out.backup_bytes_before, 0,
            "scheduler striped data onto the backup before the switch"
        );
    }
}
