//! `repro trace <scenario>`: traced bulk runs that emit the time-domain
//! artifacts behind the paper's figures — per-subflow cwnd/srtt/rwnd
//! timelines, the MPTCP-aware packet capture, and a gnuplot-ready data
//! file.
//!
//! Three scenarios are wired up:
//!
//! * `fig4` — the rcvbuf-limited WiFi+3G regime of Figure 4: a tight
//!   shared receive buffer makes the slow 3G subflow block the window, so
//!   the timeline shows M1 reinjections and M2 penalties interrupting the
//!   3G cwnd series while goodput recovers;
//! * `fig9` — the capped-WiFi + 3G setup of Figure 9 (both pipes ~2 Mbps,
//!   wildly different RTTs) with the paper's recommended MPTCP+M1,2;
//! * `fallback` — a payload-rewriting middlebox breaks the DSS checksum
//!   and the capture shows MPTCP options disappearing at the fallback
//!   span (§3.3.6).
//!
//! The heavy artifacts (trace JSONL/CSV, capture JSONL, timeline `.dat`)
//! are rendered here as strings; file placement stays in the `repro`
//! binary. The JSON [`RunReport`] only embeds the trace bookkeeping.

use mptcp::telemetry::{TraceConfig, TraceRecord, TraceSnapshot, SPAN_CONN_LEVEL};
use mptcp::{Mechanisms, MptcpConfig};
use mptcp_middlebox::PayloadModifier;
use mptcp_netsim::{CaptureConfig, Duration, LinkCfg, PacketCapture, Path};

use super::common::{run_bulk_traced_with, scheduled_bytes, wifi_3g_paths};
use super::common::{BulkResult, Policy, TracedBulkResult, Variant};
use super::fig9_wifi3g::capped_wifi;
use crate::hosts::{ClientApp, ServerApp};
use crate::metrics::Rates;
use crate::report::RunReport;
use crate::scenario::{Scenario, TransportKind};

/// The scenarios `repro trace` knows how to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceScenario {
    /// Rcvbuf-limited WiFi+3G (Figure 4's time-domain pathology).
    Fig4,
    /// Capped WiFi + 3G, MPTCP+M1,2 (Figure 9).
    Fig9,
    /// Checksum-corrupting middlebox forcing fallback (§3.3.6).
    Fallback,
}

impl TraceScenario {
    /// All scenarios, in documentation order.
    pub fn all() -> [TraceScenario; 3] {
        [
            TraceScenario::Fig4,
            TraceScenario::Fig9,
            TraceScenario::Fallback,
        ]
    }

    /// Parse a CLI scenario name.
    pub fn parse(name: &str) -> Option<TraceScenario> {
        match name {
            "fig4" => Some(TraceScenario::Fig4),
            "fig9" => Some(TraceScenario::Fig9),
            "fallback" => Some(TraceScenario::Fallback),
            _ => None,
        }
    }

    /// Stable name used for CLI parsing and output file stems.
    pub fn name(&self) -> &'static str {
        match self {
            TraceScenario::Fig4 => "fig4",
            TraceScenario::Fig9 => "fig9",
            TraceScenario::Fallback => "fallback",
        }
    }

    /// One-line description for `repro` usage text.
    pub fn describe(&self) -> &'static str {
        match self {
            TraceScenario::Fig4 => "rcvbuf-limited WiFi+3G, MPTCP+M1,2 @ 100 KB",
            TraceScenario::Fig9 => "capped WiFi (2 Mbps) + 3G, MPTCP+M1,2 @ 100 KB",
            TraceScenario::Fallback => "checksum-corrupting middlebox, fallback to TCP",
        }
    }
}

/// Everything one traced scenario run produces.
#[derive(Clone, Debug)]
pub struct TraceArtifacts {
    /// Which scenario ran.
    pub scenario: TraceScenario,
    /// Rates, telemetry, trace snapshot, and packet capture.
    pub run: TracedBulkResult,
    /// JSON report with the trace bookkeeping attached.
    pub report: RunReport,
}

/// Buffer small enough that the shared window stays the bottleneck, so
/// the M1/M2 machinery (and its spans) shows up in the timeline.
const TRACE_BUF: usize = 100_000;

/// Run one traced scenario with default-capacity tracing and capture.
pub fn run(scenario: TraceScenario, seed: u64) -> TraceArtifacts {
    run_with(scenario, seed, Policy::default())
}

/// [`run`] with an explicit cc + scheduler policy.
pub fn run_with(scenario: TraceScenario, seed: u64, policy: Policy) -> TraceArtifacts {
    let trace = TraceConfig::enabled();
    let capture = CaptureConfig::enabled();
    let (label, run) = match scenario {
        TraceScenario::Fig4 => (
            "MPTCP+M1,2 @ 100 KB, WiFi+3G",
            run_bulk_traced_with(
                Variant::MptcpM12,
                TRACE_BUF,
                wifi_3g_paths(),
                Duration::from_secs(3),
                Duration::from_secs(20),
                seed,
                policy,
                trace,
                capture,
            ),
        ),
        TraceScenario::Fig9 => (
            "MPTCP+M1,2 @ 100 KB, capped WiFi+3G",
            run_bulk_traced_with(
                Variant::MptcpM12,
                TRACE_BUF,
                vec![
                    Path::symmetric(capped_wifi()),
                    Path::symmetric(LinkCfg::threeg()),
                ],
                Duration::from_secs(4),
                Duration::from_secs(25),
                seed,
                policy,
                trace,
                capture,
            ),
        ),
        TraceScenario::Fallback => (
            "MPTCP+M1,2 + checksum-mangling middlebox",
            run_fallback(seed, policy, trace, capture),
        ),
    };
    let report = RunReport::new("trace", label, run.bulk.telemetry.clone())
        .policy(policy.cc.name(), policy.sched.name(), policy.pm.name())
        .metric("goodput_mbps", run.bulk.goodput_mbps)
        .metric("throughput_mbps", run.bulk.throughput_mbps)
        .metric("capture_records", run.capture.records.len() as f64)
        .metric("capture_dropped", run.capture.dropped_records as f64)
        .trace(&run.trace);
    TraceArtifacts {
        scenario,
        run,
        report,
    }
}

/// The fallback scenario from the telemetry integration tests: a
/// payload-rewriting middlebox (FTP-ALG model) on both paths breaks the
/// DSS checksum mid-transfer. Built by hand because it needs `checksum =
/// true` and middleboxes, which [`Variant::kind`] does not model.
fn run_fallback(
    seed: u64,
    policy: Policy,
    trace: TraceConfig,
    capture: CaptureConfig,
) -> TracedBulkResult {
    let cfg = MptcpConfig::builder()
        .buffers(256 * 1024)
        .mechanisms(Mechanisms::M1_2)
        .checksum(true)
        .cc(policy.cc)
        .scheduler(policy.sched)
        .trace(trace)
        .build()
        .expect("fallback-trace config is valid");
    let mangled_path = || {
        Path::symmetric(LinkCfg {
            rate_bps: 10_000_000,
            delay: Duration::from_millis(10),
            queue_bytes: 64 * 1500,
            loss: 0.0,
        })
        .with_middlebox(Box::new(PayloadModifier::new(
            b"\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a",
            b"\x21\x21\x21\x21\x21\x21\x21\x21\x21\x21",
        )))
    };
    let mut sc = Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total: 200_000,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        vec![mangled_path(), mangled_path()],
        seed,
    );
    sc.sim.capture = PacketCapture::new(capture);
    let t0 = sc.sim.now;
    sc.run_for(Duration::from_secs(30));
    let elapsed = sc.sim.now - t0;
    let delivered = sc.server().app_bytes_received;
    let scheduled = scheduled_bytes(&mut sc);
    let (smem, rmem, fell_back, telemetry, trace) = {
        let client = sc.client();
        let smem = client.mem_sampler.mean_after(t0);
        let fell = match &client.transport {
            crate::transport::Transport::Mptcp(c) => c.is_fallback(),
            _ => false,
        };
        (
            smem,
            sc.server().mem_sampler.mean_after(t0),
            fell,
            client.transport.telemetry(),
            client.transport.trace_snapshot(),
        )
    };
    TracedBulkResult {
        bulk: BulkResult {
            goodput_mbps: Rates::mbps(delivered, elapsed),
            throughput_mbps: Rates::mbps(scheduled, elapsed),
            sender_mem: smem,
            receiver_mem: rmem,
            fell_back,
            telemetry,
        },
        trace,
        capture: sc.sim.capture.snapshot(),
    }
}

/// Render a gnuplot-ready timeline: blank-line-separated blocks selected
/// with `index N`.
///
/// * block 0 — connection samples: `t_s goodput_mbps rwnd reorder_bytes
///   rcv_buf_cap` (goodput is the data-ACKed delta between consecutive
///   samples);
/// * blocks 1..=S — one per subflow: `t_s cwnd ssthresh srtt_ms
///   in_flight`;
/// * last block — spans: `t_s subflow kind` (`-` for connection-level).
pub fn timeline_dat(snap: &TraceSnapshot) -> String {
    let mut out = String::from(
        "# MPTCP trace timeline; gnuplot blocks via `index N`\n\
         # block 0 (conn): t_s goodput_mbps rwnd reorder_bytes rcv_buf_cap\n",
    );
    let mut prev: Option<(u64, u64)> = None;
    for rec in &snap.records {
        if let TraceRecord::ConnSample {
            at_ns,
            rwnd,
            data_snd_una,
            reorder_bytes,
            rcv_buf_cap,
            ..
        } = *rec
        {
            let goodput = match prev {
                Some((t_prev, una_prev)) if at_ns > t_prev => {
                    data_snd_una.saturating_sub(una_prev) as f64 * 8.0 * 1e3
                        / (at_ns - t_prev) as f64
                }
                _ => 0.0,
            };
            prev = Some((at_ns, data_snd_una));
            out.push_str(&format!(
                "{:.6} {goodput:.4} {rwnd} {reorder_bytes} {rcv_buf_cap}\n",
                at_ns as f64 / 1e9
            ));
        }
    }
    let subflows = snap.subflow_ids();
    for (i, &sf) in subflows.iter().enumerate() {
        out.push_str(&format!(
            "\n\n# block {} (subflow {sf}): t_s cwnd ssthresh srtt_ms in_flight\n",
            i + 1
        ));
        for rec in &snap.records {
            if let TraceRecord::SubflowSample {
                at_ns,
                subflow,
                cwnd,
                ssthresh,
                srtt_us,
                in_flight,
                ..
            } = *rec
            {
                if subflow == sf {
                    out.push_str(&format!(
                        "{:.6} {cwnd} {ssthresh} {:.3} {in_flight}\n",
                        at_ns as f64 / 1e9,
                        srtt_us as f64 / 1e3
                    ));
                }
            }
        }
    }
    out.push_str(&format!(
        "\n\n# block {} (spans): t_s subflow kind\n",
        subflows.len() + 1
    ));
    for (at_ns, sf, kind) in snap.spans() {
        let sf = if sf == SPAN_CONN_LEVEL {
            "-".to_string()
        } else {
            sf.to_string()
        };
        out.push_str(&format!("{:.6} {sf} {}\n", at_ns as f64 / 1e9, kind.name()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp::telemetry::EventKind;

    #[test]
    fn scenario_names_round_trip() {
        for s in TraceScenario::all() {
            assert_eq!(TraceScenario::parse(s.name()), Some(s));
        }
        assert_eq!(TraceScenario::parse("fig999"), None);
    }

    #[test]
    fn timeline_blocks_are_index_selectable() {
        let snap = TraceSnapshot {
            records: vec![
                TraceRecord::ConnSample {
                    at_ns: 1_000_000_000,
                    rwnd: 50_000,
                    data_snd_nxt: 10_000,
                    data_snd_una: 8_000,
                    data_rcv_nxt: 8_000,
                    reorder_segs: 2,
                    reorder_bytes: 2920,
                    snd_buf_cap: 100_000,
                    rcv_buf_cap: 100_000,
                },
                TraceRecord::ConnSample {
                    at_ns: 2_000_000_000,
                    rwnd: 40_000,
                    data_snd_nxt: 20_000,
                    data_snd_una: 18_000,
                    data_rcv_nxt: 18_000,
                    reorder_segs: 0,
                    reorder_bytes: 0,
                    snd_buf_cap: 100_000,
                    rcv_buf_cap: 100_000,
                },
                TraceRecord::SubflowSample {
                    at_ns: 1_500_000_000,
                    subflow: 0,
                    cwnd: 14600,
                    ssthresh: 65535,
                    srtt_us: 20_000,
                    in_flight: 2920,
                    snd_nxt: 100,
                    rcv_nxt: 1,
                },
                TraceRecord::Span {
                    at_ns: 1_600_000_000,
                    subflow: 1,
                    kind: EventKind::M2Penalize {
                        subflow: 1,
                        before: 20,
                        after: 10,
                    },
                },
            ],
            total: 4,
            dropped_samples: 0,
        };
        let dat = timeline_dat(&snap);
        // Two double-blank separators → three gnuplot blocks.
        assert_eq!(dat.matches("\n\n\n").count(), 2, "{dat}");
        // Goodput between the two conn samples: 10 KB in 1 s = 0.08 Mbps.
        assert!(dat.contains("2.000000 0.0800"), "{dat}");
        assert!(dat.contains("1.500000 14600 65535 20.000 2920"), "{dat}");
        assert!(dat.contains("1.600000 1 m2_penalize"), "{dat}");
    }
}
