//! Figure 3: goodput vs MSS at 10 Gbps with DSM checksums on/off.
//!
//! The paper's Xeon servers were per-packet-cost-bound at small MSS and
//! checksum-bound at jumbo MSS (checksum offload covers the TCP checksum
//! but the DSM checksum must be computed in software, §3.3.6 — costing
//! ~30% at 8–9 KB MSS). We *measure* our real implementation costs on the
//! current machine — the per-packet segment-processing time of the stack
//! and the per-byte DSS checksum throughput — and model:
//!
//! ```text
//! goodput(mss) = min(10 Gbps, 8·mss / (T_pkt + [checksum]·2·mss·T_byte))
//! ```
//!
//! (×2: the sender computes and the receiver verifies.)

use std::time::Instant;

use bytes::Bytes;
use mptcp_netsim::SimTime;
use mptcp_packet::{checksum, Endpoint, FourTuple, SeqNum};
use mptcp_tcpstack::{TcpConfig, TcpSocket};

/// Calibration constants for the cost model.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Fixed per-packet processing cost, seconds.
    pub t_pkt: f64,
    /// Per-byte data-touching cost (copies, cache), seconds.
    pub t_copy: f64,
    /// Per-byte ones-complement checksum cost, seconds.
    pub t_byte: f64,
}

impl Calibration {
    /// Constants fitted to the paper's 2012 Xeon curves (Figure 3:
    /// ~2 Gbps at MSS 1500, ~9.5 vs ~6.5 Gbps at MSS 9000).
    pub const PAPER_ERA: Calibration = Calibration {
        t_pkt: 5.68e-6,
        t_copy: 0.21e-9,
        t_byte: 0.194e-9,
    };
}

/// Measure the DSS checksum's per-byte cost on this machine.
pub fn measure_checksum_cost() -> f64 {
    let payload = vec![0xabu8; 64 * 1024];
    // Warm up.
    for _ in 0..16 {
        std::hint::black_box(checksum::dss_checksum(1, 1, 0xffff, &payload));
    }
    let reps = 256;
    let t = Instant::now();
    for i in 0..reps {
        std::hint::black_box(checksum::dss_checksum(i, 1, 0xffff, &payload));
    }
    t.elapsed().as_secs_f64() / (reps as f64 * payload.len() as f64)
}

/// Measure the fixed per-packet cost of our stack: a receiver socket
/// processing one full-MSS segment plus emitting its ACK.
pub fn measure_packet_cost() -> f64 {
    let tuple = FourTuple {
        src: Endpoint::new(1, 1),
        dst: Endpoint::new(2, 2),
    };
    let now = SimTime::ZERO;
    let mut client = TcpSocket::client(TcpConfig::default(), tuple, SeqNum(1), now, vec![]);
    let syn = client.poll(now).unwrap();
    let mut server = TcpSocket::accept(TcpConfig::default(), &syn, SeqNum(500), now, vec![]);
    let synack = server.poll(now).unwrap();
    client.handle_segment(now, &synack);
    while let Some(s) = client.poll(now) {
        server.handle_segment(now, &s);
    }
    // Steady-state: feed segments, drain acks and reads.
    let payload = Bytes::from(vec![0u8; 1460]);
    let reps = 3000u32;
    client.send(&vec![0u8; 64 * 1024]); // prime some state
    let mut seq = client.poll(now).map(|s| s.seq).unwrap_or(SeqNum(2));
    let t = Instant::now();
    for _ in 0..reps {
        let mut seg =
            mptcp_packet::TcpSegment::new(tuple, seq, SeqNum(501), mptcp_packet::TcpFlags::ACK);
        seg.payload = payload.clone();
        seq += 1460;
        server.handle_segment(now, &seg);
        std::hint::black_box(server.poll(now));
        std::hint::black_box(server.read(usize::MAX));
    }
    t.elapsed().as_secs_f64() / f64::from(reps)
}

/// Calibrate the constants on the current machine.
pub fn calibrate() -> Calibration {
    Calibration {
        t_pkt: measure_packet_cost(),
        t_copy: 0.0, // folded into the measured per-packet stack cost
        t_byte: measure_checksum_cost(),
    }
}

/// One curve point.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// TCP maximum segment size in bytes.
    pub mss: usize,
    /// Goodput without DSM checksums, Gbps.
    pub no_checksum_gbps: f64,
    /// Goodput with DSM checksums, Gbps.
    pub checksum_gbps: f64,
}

/// Model the Figure 3 curves for the given MSS sweep.
pub fn run(cal: Calibration, msss: &[usize]) -> Vec<Row> {
    const LINE_RATE_GBPS: f64 = 10.0;
    msss.iter()
        .map(|&mss| {
            let base = cal.t_pkt + mss as f64 * cal.t_copy;
            let no_ck = (8.0 * mss as f64 / base) / 1e9;
            let with_ck = (8.0 * mss as f64 / (base + 2.0 * mss as f64 * cal.t_byte)) / 1e9;
            Row {
                mss,
                no_checksum_gbps: no_ck.min(LINE_RATE_GBPS),
                checksum_gbps: with_ck.min(LINE_RATE_GBPS),
            }
        })
        .collect()
}

/// The paper's x-axis: 1500 to 9000-byte (jumbo) MSS.
pub fn default_msss() -> Vec<usize> {
    vec![1500, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000]
}
