//! Figure 8: receiver CPU load for the four out-of-order queue algorithms.
//!
//! A client bulk-sends over two 1 Gbps paths with 2 or 8 subflows; the
//! server's connection-level reorder queue counts its operations (node
//! visits / comparisons). CPU utilization is modelled as
//!
//! ```text
//! util% = pkts/s · (T_pkt + T_opt·[mptcp] + ops_per_pkt · T_op) / 10⁹ · 100
//! ```
//!
//! with per-packet and per-op costs calibrated so the TCP baseline sits in
//! the paper's ~15–18% band (2006 Xeon-class constants; see EXPERIMENTS.md).
//! The reproduction target is the *ordering and ratios*: Regular ≫ Tree >
//! Shortcuts > AllShortcuts, all above TCP, with the gap growing from 2 to
//! 8 subflows.

use mptcp::{Mechanisms, MptcpConfig, ReorderAlgo};

use super::common::Policy;
use mptcp_netsim::{Duration, LinkCfg, Path};
use mptcp_packet::Endpoint;

use crate::hosts::{ClientApp, ServerApp};
use crate::scenario::{Endpoints, Scenario, TransportKind};

/// Modelled fixed per-packet receive cost (ns).
pub const T_PKT_NS: f64 = 900.0;
/// Extra per-packet MPTCP option processing (ns).
pub const T_OPT_NS: f64 = 350.0;
/// Cost per reorder-queue operation (ns).
pub const T_OP_NS: f64 = 120.0;

/// One bar of Figure 8.
#[derive(Clone, Debug)]
pub struct Row {
    /// Algorithm label ("TCP" for the baseline).
    pub algo: String,
    /// Number of subflows (connections for TCP).
    pub subflows: usize,
    /// Modelled CPU utilization (%).
    pub cpu_util: f64,
    /// Measured reorder-queue ops per received packet.
    pub ops_per_pkt: f64,
    /// Shortcut hit rate (0–1), if the algorithm has pointers.
    pub hit_rate: f64,
    /// Aggregate goodput (Mbps) achieved during the window.
    pub goodput_mbps: f64,
}

/// Run one (algorithm, subflow-count) cell.
pub fn run_cell(algo: ReorderAlgo, nsub: usize, seed: u64) -> Row {
    run_cell_with(algo, nsub, seed, Policy::default())
}

/// [`run_cell`] with an explicit cc + scheduler policy.
pub fn run_cell_with(algo: ReorderAlgo, nsub: usize, seed: u64, policy: Policy) -> Row {
    let cfg = MptcpConfig::builder()
        .buffers(8 * 1024 * 1024)
        .mechanisms(Mechanisms::M1_2)
        .reorder(algo)
        .checksum(false)
        .cc(policy.cc)
        .scheduler(policy.sched)
        .build()
        .expect("fig8 config is valid");
    let paths = vec![
        Path::symmetric(LinkCfg::gigabit()),
        Path::symmetric(LinkCfg::gigabit()),
    ];
    let mut sc = Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total: usize::MAX / 2,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        paths,
        seed,
    );
    // Establish the base 2 subflows, then add extras on alternating paths.
    sc.run_for(Duration::from_millis(200));
    {
        let now = sc.sim.now;
        let conn = sc.client_mut().transport.as_mptcp().unwrap();
        for i in 2..nsub {
            let side = i % 2;
            let _ = conn.open_subflow(
                Endpoint::new(Endpoints::CLIENT[side], 30_000 + i as u16),
                Endpoint::new(Endpoints::SERVER[side], Endpoints::PORT),
                now,
            );
        }
    }
    sc.run_for(Duration::from_millis(300));

    // Measurement window.
    let (ops0, _ins0, _hits0, pkts0, bytes0) = snapshot(&mut sc);
    let t0 = sc.sim.now;
    sc.run_for(Duration::from_secs(2));
    let win = (sc.sim.now - t0).as_secs_f64();
    let (ops1, ins1, hits1, pkts1, bytes1) = snapshot(&mut sc);

    let pkts = (pkts1 - pkts0) as f64;
    let ops = (ops1 - ops0) as f64;
    let pkts_per_sec = pkts / win;
    let ops_per_pkt = if pkts > 0.0 { ops / pkts } else { 0.0 };
    let util = pkts_per_sec * (T_PKT_NS + T_OPT_NS + ops_per_pkt * T_OP_NS) / 1e9 * 100.0;
    Row {
        algo: format!("{algo:?}"),
        subflows: nsub,
        cpu_util: util,
        ops_per_pkt,
        hit_rate: if ins1 > 0 {
            hits1 as f64 / ins1 as f64
        } else {
            0.0
        },
        goodput_mbps: crate::metrics::Rates::mbps(bytes1 - bytes0, sc.sim.now - t0),
    }
}

/// The TCP baseline bar: same packet rate, no reorder queue, no options.
pub fn tcp_baseline(pkts_per_sec: f64, conns: usize) -> Row {
    Row {
        algo: "TCP".into(),
        subflows: conns,
        cpu_util: pkts_per_sec * T_PKT_NS / 1e9 * 100.0,
        ops_per_pkt: 0.0,
        hit_rate: 0.0,
        goodput_mbps: 0.0,
    }
}

fn snapshot(sc: &mut Scenario) -> (u64, u64, u64, u64, u64) {
    let bytes = sc.server().app_bytes_received;
    let server = sc.server();
    let conn = &server.listener.conns[0];
    let pkts: u64 = conn.subflows().iter().map(|s| s.sock.stats.segs_in).sum();
    (
        conn.ooo.ops(),
        conn.ooo.inserts(),
        conn.ooo.shortcut_hits(),
        pkts,
        bytes,
    )
}

/// Run the whole figure: all algorithms × {2, 8} subflows + TCP baselines.
pub fn run(seed: u64) -> Vec<Row> {
    run_with(seed, Policy::default())
}

/// [`run`] with an explicit cc + scheduler policy.
pub fn run_with(seed: u64, policy: Policy) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut pkt_rate_estimate = 0.0f64;
    for nsub in [2usize, 8] {
        for algo in [
            ReorderAlgo::Regular,
            ReorderAlgo::Tree,
            ReorderAlgo::Shortcuts,
            ReorderAlgo::AllShortcuts,
        ] {
            let row = run_cell_with(algo, nsub, seed, policy);
            // Estimate the wire packet rate from goodput for the baseline.
            pkt_rate_estimate = pkt_rate_estimate.max(row.goodput_mbps * 1e6 / 8.0 / 1460.0);
            rows.push(row);
        }
    }
    rows.push(tcp_baseline(pkt_rate_estimate, 2));
    rows
}
