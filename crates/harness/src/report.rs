//! Plain-text/CSV rendering of experiment rows, for piping into plotting
//! tools (`repro figN | tee` covers the human-readable side; these helpers
//! produce machine-readable series).

/// A labelled series of (x, y) points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// Render aligned series as CSV: `x,label1,label2,...` — one row per x.
///
/// Series are aligned by index; shorter series pad with empty cells.
pub fn to_csv(x_name: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(x_name);
    for s in series {
        out.push(',');
        out.push_str(&escape(&s.label));
    }
    out.push('\n');
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.0))
            .unwrap_or(f64::NAN);
        out.push_str(&format!("{x}"));
        for s in series {
            out.push(',');
            if let Some(p) = s.points.get(i) {
                out.push_str(&format!("{}", p.1));
            }
        }
        out.push('\n');
    }
    out
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_layout() {
        let series = vec![
            Series {
                label: "a".into(),
                points: vec![(1.0, 10.0), (2.0, 20.0)],
            },
            Series {
                label: "b,c".into(),
                points: vec![(1.0, 11.0)],
            },
        ];
        let csv = to_csv("x", &series);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,\"b,c\"");
        assert_eq!(lines[1], "1,10,11");
        assert_eq!(lines[2], "2,20,");
    }

    #[test]
    fn empty_series() {
        assert_eq!(to_csv("x", &[]), "x\n");
    }
}
