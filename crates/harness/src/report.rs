//! Plain-text/CSV/JSON rendering of experiment rows, for piping into
//! plotting tools (`repro figN | tee` covers the human-readable side; these
//! helpers produce machine-readable series and per-run JSON reports that
//! embed the transport's [`TelemetrySnapshot`]).

use mptcp::telemetry::{TelemetrySnapshot, TraceSnapshot};

/// A labelled series of (x, y) points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// Render aligned series as CSV: `x,label1,label2,...` — one row per x.
///
/// Series are aligned by index; shorter series pad with empty cells.
pub fn to_csv(x_name: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(x_name);
    for s in series {
        out.push(',');
        out.push_str(&escape(&s.label));
    }
    out.push('\n');
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.0))
            .unwrap_or(f64::NAN);
        out.push_str(&format!("{x}"));
        for s in series {
            out.push(',');
            if let Some(p) = s.points.get(i) {
                out.push_str(&format!("{}", p.1));
            }
        }
        out.push('\n');
    }
    out
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Compact bookkeeping of a run's time-series trace, embedded in the JSON
/// report instead of the full record stream (which goes to its own JSONL
/// file — see `experiments::trace`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Records retained in the snapshot.
    pub records: u64,
    /// Records ever offered to the tracers.
    pub total: u64,
    /// Records overwritten by the bounded rings.
    pub dropped_samples: u64,
    /// Discrete span events among the retained records.
    pub spans: u64,
    /// Distinct subflows with sample series.
    pub subflows: u64,
}

impl From<&TraceSnapshot> for TraceSummary {
    fn from(snap: &TraceSnapshot) -> TraceSummary {
        TraceSummary {
            records: snap.records.len() as u64,
            total: snap.total,
            dropped_samples: snap.dropped_samples,
            spans: snap.spans().count() as u64,
            subflows: snap.subflow_ids().len() as u64,
        }
    }
}

/// One run of one experiment cell, ready for JSON emission: scalar metrics
/// plus the full telemetry snapshot captured at the end of the run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Experiment name, e.g. `"fig4"`.
    pub experiment: String,
    /// Variant/cell label, e.g. `"MPTCP+M1,2 @ 200 KiB"`.
    pub label: String,
    /// `(cc, scheduler, path-manager)` policy names, when the run had one.
    pub policy: Option<(String, String, String)>,
    /// Scalar metrics in emission order, e.g. `("goodput_mbps", 8.4)`.
    pub metrics: Vec<(String, f64)>,
    /// Transport telemetry at the end of the run.
    pub telemetry: TelemetrySnapshot,
    /// Trace bookkeeping, when the run was traced.
    pub trace: Option<TraceSummary>,
}

impl RunReport {
    /// Start a report for one experiment cell.
    pub fn new(
        experiment: impl Into<String>,
        label: impl Into<String>,
        telemetry: TelemetrySnapshot,
    ) -> Self {
        RunReport {
            experiment: experiment.into(),
            label: label.into(),
            policy: None,
            metrics: Vec::new(),
            telemetry,
            trace: None,
        }
    }

    /// Record the congestion-control + scheduler + path-manager policy
    /// (builder style).
    pub fn policy(
        mut self,
        cc: impl Into<String>,
        sched: impl Into<String>,
        pm: impl Into<String>,
    ) -> Self {
        self.policy = Some((cc.into(), sched.into(), pm.into()));
        self
    }

    /// Append a scalar metric (builder style).
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.push((name.into(), value));
        self
    }

    /// Attach the trace bookkeeping of a traced run (builder style).
    pub fn trace(mut self, snap: &TraceSnapshot) -> Self {
        self.trace = Some(TraceSummary::from(snap));
        self
    }

    /// Serialize as a single JSON object. Non-finite metric values render
    /// as `null` so the output stays valid JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"experiment\":{},\"label\":{},\"metrics\":{{",
            json_str(&self.experiment),
            json_str(&self.label)
        ));
        if let Some((cc, sched, pm)) = &self.policy {
            // Re-open the object: policy slots in before "metrics".
            let metrics_open = out.len() - "\"metrics\":{".len();
            out.truncate(metrics_open);
            out.push_str(&format!(
                "\"policy\":{{\"cc\":{},\"sched\":{},\"pm\":{}}},\"metrics\":{{",
                json_str(cc),
                json_str(sched),
                json_str(pm)
            ));
        }
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if value.is_finite() {
                out.push_str(&format!("{}:{}", json_str(name), value));
            } else {
                out.push_str(&format!("{}:null", json_str(name)));
            }
        }
        out.push_str("},\"telemetry\":");
        out.push_str(&self.telemetry.to_json());
        if let Some(t) = &self.trace {
            out.push_str(&format!(
                ",\"trace\":{{\"records\":{},\"total\":{},\"dropped_samples\":{},\
                 \"spans\":{},\"subflows\":{}}}",
                t.records, t.total, t.dropped_samples, t.spans, t.subflows
            ));
        }
        out.push('}');
        out
    }
}

/// Render a batch of run reports as a JSON array (one experiment's cells).
pub fn to_json_lines(reports: &[RunReport]) -> String {
    let mut out = String::from("[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&r.to_json());
    }
    out.push_str("\n]");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_layout() {
        let series = vec![
            Series {
                label: "a".into(),
                points: vec![(1.0, 10.0), (2.0, 20.0)],
            },
            Series {
                label: "b,c".into(),
                points: vec![(1.0, 11.0)],
            },
        ];
        let csv = to_csv("x", &series);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,\"b,c\"");
        assert_eq!(lines[1], "1,10,11");
        assert_eq!(lines[2], "2,20,");
    }

    #[test]
    fn empty_series() {
        assert_eq!(to_csv("x", &[]), "x\n");
    }

    #[test]
    fn run_report_json() {
        let report = RunReport::new("fig4", "MPTCP+M1,2", TelemetrySnapshot::default())
            .metric("goodput_mbps", 8.5)
            .metric("bad", f64::NAN);
        let json = report.to_json();
        assert!(json.starts_with("{\"experiment\":\"fig4\""));
        assert!(json.contains("\"goodput_mbps\":8.5"));
        assert!(json.contains("\"bad\":null"));
        assert!(json.contains("\"telemetry\":{"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn run_report_embeds_policy() {
        let json = RunReport::new("fig9", "MPTCP", TelemetrySnapshot::default())
            .policy("olia", "redundant", "fullmesh")
            .metric("goodput_mbps", 2.0)
            .to_json();
        assert!(
            json.contains(
                "\"policy\":{\"cc\":\"olia\",\"sched\":\"redundant\",\"pm\":\"fullmesh\"}"
            ),
            "{json}"
        );
        assert!(json.contains("\"goodput_mbps\":2"), "{json}");
        // Unset policy omits the key.
        let json = RunReport::new("x", "y", TelemetrySnapshot::default()).to_json();
        assert!(!json.contains("\"policy\""), "{json}");
    }

    #[test]
    fn run_report_embeds_trace_summary() {
        let json = RunReport::new("trace", "fig9", TelemetrySnapshot::default())
            .trace(&TraceSnapshot::default())
            .to_json();
        assert!(
            json.contains("\"trace\":{\"records\":0,\"total\":0,\"dropped_samples\":0"),
            "{json}"
        );
        // Untraced reports omit the key entirely.
        let json = RunReport::new("x", "y", TelemetrySnapshot::default()).to_json();
        assert!(!json.contains("\"trace\""), "{json}");
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn json_lines_batch() {
        let reports = vec![
            RunReport::new("x", "a", TelemetrySnapshot::default()),
            RunReport::new("x", "b", TelemetrySnapshot::default()),
        ];
        let out = to_json_lines(&reports);
        assert!(out.starts_with('['));
        assert!(out.ends_with(']'));
        assert_eq!(out.matches("\"experiment\"").count(), 2);
    }
}
