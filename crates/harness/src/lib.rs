//! Experiment harness: scenarios, workloads, metrics and the drivers that
//! regenerate every table and figure of the NSDI 2012 MPTCP paper.
//!
//! The harness glues the `mptcp` stack onto the `mptcp-netsim` simulator:
//! [`ClientHost`]/[`ServerHost`] implement [`mptcp_netsim::Host`], wrap a
//! [`Transport`] (MPTCP connection, plain TCP socket, or an MPTCP listener
//! that accepts both), and drive application workloads — bulk transfers,
//! timestamped 8 KB blocks (Figure 7), and closed-loop HTTP (Figure 11).
//!
//! Each experiment in [`experiments`] reproduces one figure: it builds the
//! paper's topology, sweeps the paper's parameter, and returns rows that
//! the `repro` binary (in `mptcp-bench`) prints.

pub mod experiments;
pub mod hosts;
pub mod metrics;
pub mod report;
pub mod scenario;
pub mod transport;

pub use hosts::{ClientApp, ClientHost, ServerApp, ServerHost};
pub use metrics::{AppDelayStats, Rates, Sampler};
pub use report::{to_csv, to_json_lines, RunReport, Series};
pub use scenario::{Endpoints, Scenario, TransportKind};
pub use transport::{Transport, WriteError};
