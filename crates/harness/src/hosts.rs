//! Simulated hosts: transport + application workload.
//!
//! [`ClientHost`] owns the transport under test and a [`ClientApp`]
//! workload; [`ServerHost`] wraps an [`mptcp::MptcpListener`] — which also
//! accepts plain-TCP clients via fallback, so one server implementation
//! serves every baseline — plus a [`ServerApp`].

use std::collections::HashMap;

use mptcp::{ConnEvent, MptcpConfig, MptcpConnection, MptcpListener};
use mptcp_netsim::{Duration, Host, Outbox, SimRng, SimTime};
use mptcp_packet::SeqNum;
use mptcp_packet::{Endpoint, FourTuple, TcpSegment};
use mptcp_tcpstack::{TcpConfig, TcpSocket};

use crate::metrics::Sampler;
use crate::transport::Transport;

/// Block size for the Figure 7 latency workload.
pub const BLOCK: usize = 8192;
/// Bytes of "HTTP request" in the closed-loop workload.
pub const HTTP_REQUEST_LEN: usize = 100;

/// What the client application does.
pub enum ClientApp {
    /// Send `total` bytes, then optionally close.
    Bulk {
        /// Total bytes to send.
        total: usize,
        /// Bytes accepted by the transport so far.
        written: usize,
        /// Send DATA_FIN/FIN after the last byte.
        close_when_done: bool,
    },
    /// Send 8 KB blocks continuously, timestamping each (Figure 7).
    Blocks,
    /// Closed-loop request/response: send a small request, read a
    /// `file_size`-byte response to EOF, reconnect, repeat (Figure 11).
    HttpLoop {
        /// Request sent on the current connection?
        requested: bool,
        /// Completed responses.
        completed: u64,
    },
    /// Only receive (server pushes).
    Sink,
}

/// How new client transports are minted (for reconnecting workloads).
pub struct ConnFactory {
    /// MPTCP config (`None` ⇒ plain TCP with `tcp_cfg`).
    pub mptcp: Option<MptcpConfig>,
    /// TCP config for the plain baseline.
    pub tcp_cfg: TcpConfig,
    /// Primary local address.
    pub local: Endpoint,
    /// Server address for the initial subflow.
    pub server: Endpoint,
    /// RNG for keys and ISNs.
    pub rng: SimRng,
}

impl ConnFactory {
    fn make(&mut self, now: SimTime) -> Transport {
        let src_port = self.local.port;
        self.local.port = self.local.port.wrapping_add(1).max(1024);
        let tuple = FourTuple {
            src: Endpoint::new(self.local.addr, src_port),
            dst: self.server,
        };
        match &self.mptcp {
            Some(cfg) => Transport::Mptcp(MptcpConnection::client(
                cfg.clone(),
                tuple,
                now,
                self.rng.fork(),
            )),
            None => Transport::Tcp(TcpSocket::client(
                self.tcp_cfg.clone(),
                tuple,
                SeqNum(self.rng.next_u32()),
                now,
                vec![],
            )),
        }
    }
}

/// A client host: one live transport plus a workload.
pub struct ClientHost {
    /// The transport under test.
    pub transport: Transport,
    /// The workload.
    pub app: ClientApp,
    factory: ConnFactory,
    /// Block-send timestamps (Figure 7).
    pub block_sent: Vec<SimTime>,
    /// Total application bytes accepted by the transport.
    pub app_bytes_sent: u64,
    /// Total application bytes read from the transport.
    pub app_bytes_received: u64,
    /// Periodic sender-memory sampler (Figure 5a).
    pub mem_sampler: Sampler,
}

impl ClientHost {
    /// Build a client; the first transport connects immediately.
    pub fn new(mut factory: ConnFactory, app: ClientApp, now: SimTime) -> ClientHost {
        let transport = factory.make(now);
        ClientHost {
            transport,
            app,
            factory,
            block_sent: Vec::new(),
            app_bytes_sent: 0,
            app_bytes_received: 0,
            mem_sampler: Sampler::new(Duration::from_millis(10)),
        }
    }

    /// Completed HTTP requests (Figure 11 numerator).
    pub fn http_completed(&self) -> u64 {
        match &self.app {
            ClientApp::HttpLoop { completed, .. } => *completed,
            _ => 0,
        }
    }

    /// Bulk transfer finished (all bytes accepted)?
    pub fn bulk_done(&self) -> bool {
        match &self.app {
            ClientApp::Bulk { total, written, .. } => written >= total,
            _ => false,
        }
    }

    fn note_sent(sent: &mut u64, stamps: &mut Vec<SimTime>, n: usize, now: SimTime) {
        let before = *sent;
        *sent += n as u64;
        // Stamp every block boundary crossed by this write (Figure 7:
        // "timestamps each block's transmission").
        let first = before / BLOCK as u64;
        let last = *sent / BLOCK as u64;
        for _ in first..last {
            stamps.push(now);
        }
    }

    fn drive_app(&mut self, now: SimTime) {
        if !self.transport.is_established() {
            return;
        }
        // Joins are driven by the in-connection path manager (configured
        // via `MptcpConfig::path_manager`); the host only drains events so
        // the queue stays bounded.
        if let Some(conn) = self.transport.as_mptcp() {
            for ev in conn.take_events() {
                let _: ConnEvent = ev;
            }
        }

        match &mut self.app {
            ClientApp::Bulk {
                total,
                written,
                close_when_done,
            } => {
                while *written < *total {
                    let want = (*total - *written).min(64 * 1024);
                    let buf = vec![0x5au8; want];
                    // WouldBlock: retry on the next drive. Closed: the
                    // failure path below (`transport.failed`) decides.
                    let Ok(n) = self.transport.write(&buf) else {
                        break;
                    };
                    *written += n;
                    let close = *written >= *total && *close_when_done;
                    Self::note_sent(&mut self.app_bytes_sent, &mut self.block_sent, n, now);
                    if close {
                        self.transport.close();
                    }
                }
            }
            ClientApp::Blocks => loop {
                let buf = [0xb1u8; BLOCK];
                let Ok(n) = self.transport.write(&buf) else {
                    break;
                };
                Self::note_sent(&mut self.app_bytes_sent, &mut self.block_sent, n, now);
            },
            ClientApp::HttpLoop {
                requested,
                completed,
            } => {
                if !*requested {
                    let req = vec![0x47u8; HTTP_REQUEST_LEN];
                    if self.transport.write(&req) == Ok(HTTP_REQUEST_LEN) {
                        *requested = true;
                    }
                }
                while let Some(b) = self.transport.read(usize::MAX) {
                    self.app_bytes_received += b.len() as u64;
                }
                if *requested && self.transport.at_eof() {
                    *completed += 1;
                    self.transport.close();
                    // Closed loop: immediately reconnect.
                    self.transport = self.factory.make(now);
                    *requested = false;
                }
            }
            ClientApp::Sink => {
                while let Some(b) = self.transport.read(usize::MAX) {
                    self.app_bytes_received += b.len() as u64;
                }
            }
        }

        // HTTP loop aborts dead connections and retries.
        if self.transport.failed() {
            if let ClientApp::HttpLoop { requested, .. } = &mut self.app {
                self.transport = self.factory.make(now);
                *requested = false;
            }
        }
    }
}

impl Host for ClientHost {
    fn handle_segment(&mut self, now: SimTime, seg: TcpSegment, out: &mut Outbox) {
        self.transport.handle_segment(now, &seg);
        self.drive_app(now);
        while let Some(s) = self.transport.poll(now) {
            out.send(s);
        }
    }

    fn poll(&mut self, now: SimTime, out: &mut Outbox) {
        self.drive_app(now);
        let mem = self.transport.sender_memory() as f64;
        self.mem_sampler.maybe_sample(now, || mem);
        while let Some(s) = self.transport.poll(now) {
            out.send(s);
        }
    }

    fn poll_at(&self, now: SimTime) -> Option<SimTime> {
        self.transport.poll_at(now)
    }

    fn addr_event(&mut self, now: SimTime, addr: u32, up: bool, out: &mut Outbox) {
        if let Some(conn) = self.transport.as_mptcp() {
            if up {
                conn.local_addr_up(addr, now);
            } else {
                conn.local_addr_down(addr, now);
            }
        }
        // Flush the REMOVE_ADDR (and any migrated data) immediately so it
        // rides the surviving path in this same simulation instant.
        self.drive_app(now);
        while let Some(s) = self.transport.poll(now) {
            out.send(s);
        }
    }
}

/// What the server application does with each connection.
pub enum ServerApp {
    /// Read and discard everything as fast as possible.
    Sink,
    /// Like `Sink`, but read at most `rate` bytes/sec (a slow reader).
    SlowSink {
        /// Read budget per second.
        rate: u64,
        /// Budget accumulator bookkeeping.
        last: SimTime,
        credit: f64,
    },
    /// On request: respond with `file_size` bytes, then close (Fig 11).
    HttpResponder {
        /// Response size.
        file_size: usize,
    },
}

/// Per-connection server-side bookkeeping.
#[derive(Default)]
struct ConnProgress {
    got_request: bool,
    response_written: usize,
    closed: bool,
}

/// A server host: listener + application.
pub struct ServerHost {
    /// The listening endpoint (accepts MPTCP and plain TCP alike).
    pub listener: MptcpListener,
    /// Application behaviour.
    pub app: ServerApp,
    progress: HashMap<usize, ConnProgress>,
    /// Total application bytes read across connections.
    pub app_bytes_received: u64,
    /// Block receive timestamps (Figure 7).
    pub block_received: Vec<SimTime>,
    /// Responses fully written (Figure 11 sanity).
    pub responses_started: u64,
    /// Receiver-memory sampler (Figure 5b).
    pub mem_sampler: Sampler,
}

impl ServerHost {
    /// New server host.
    pub fn new(cfg: MptcpConfig, app: ServerApp, seed: u64) -> ServerHost {
        ServerHost {
            listener: MptcpListener::new(cfg, seed),
            app,
            progress: HashMap::new(),
            app_bytes_received: 0,
            block_received: Vec::new(),
            responses_started: 0,
            mem_sampler: Sampler::new(Duration::from_millis(10)),
        }
    }

    /// Sum of receiver-held memory across connections.
    pub fn receiver_memory(&self) -> usize {
        self.listener
            .conns
            .iter()
            .map(|c| c.receiver_memory())
            .sum()
    }

    fn note_received(&mut self, n: usize, now: SimTime) {
        let before = self.app_bytes_received;
        self.app_bytes_received += n as u64;
        let first = before / BLOCK as u64;
        let last = self.app_bytes_received / BLOCK as u64;
        for _ in first..last {
            self.block_received.push(now);
        }
    }

    fn drive_app(&mut self, now: SimTime) {
        // Refill the slow-sink read budget outside the per-conn loop.
        let mut budget = match &mut self.app {
            ServerApp::Sink => usize::MAX,
            ServerApp::SlowSink { rate, last, credit } => {
                *credit += (*rate as f64) * (now - *last).as_secs_f64();
                *last = now;
                *credit as usize
            }
            ServerApp::HttpResponder { .. } => 0,
        };
        let http_file = match &self.app {
            ServerApp::HttpResponder { file_size } => Some(*file_size),
            _ => None,
        };

        let nconns = self.listener.conns.len();
        for idx in 0..nconns {
            match http_file {
                None => {
                    // Sink / SlowSink: drain within budget.
                    while budget > 0 {
                        let Some(b) = self.listener.conns[idx].read(budget).into_data() else {
                            break;
                        };
                        let n = b.len();
                        if budget != usize::MAX {
                            budget -= n;
                        }
                        self.note_received(n, now);
                    }
                }
                Some(file_size) => {
                    let prog = self.progress.entry(idx).or_default();
                    if prog.closed {
                        continue;
                    }
                    let conn = &mut self.listener.conns[idx];
                    if !prog.got_request {
                        if conn.read(usize::MAX).into_data().is_some() {
                            prog.got_request = true;
                            self.responses_started += 1;
                        } else {
                            continue;
                        }
                    }
                    while prog.response_written < file_size {
                        let want = (file_size - prog.response_written).min(64 * 1024);
                        let buf = vec![0x52u8; want];
                        let n = conn.write(&buf).accepted();
                        if n == 0 {
                            break;
                        }
                        prog.response_written += n;
                    }
                    if prog.response_written >= file_size {
                        conn.close();
                        prog.closed = true;
                    }
                }
            }
        }
        // Persist the unspent slow-sink credit.
        if let ServerApp::SlowSink { credit, .. } = &mut self.app {
            if budget != usize::MAX {
                *credit = budget as f64;
            }
        }
    }
}

impl Host for ServerHost {
    fn handle_segment(&mut self, now: SimTime, seg: TcpSegment, out: &mut Outbox) {
        self.listener.handle_segment(now, &seg);
        self.drive_app(now);
        let mut segs = Vec::new();
        self.listener.poll(now, &mut segs);
        for s in segs {
            out.send(s);
        }
    }

    fn poll(&mut self, now: SimTime, out: &mut Outbox) {
        self.drive_app(now);
        let mem = self.receiver_memory() as f64;
        self.mem_sampler.maybe_sample(now, || mem);
        let mut segs = Vec::new();
        self.listener.poll(now, &mut segs);
        for s in segs {
            out.send(s);
        }
    }

    fn addr_event(&mut self, now: SimTime, addr: u32, up: bool, out: &mut Outbox) {
        for conn in &mut self.listener.conns {
            if up {
                conn.local_addr_up(addr, now);
            } else {
                conn.local_addr_down(addr, now);
            }
        }
        let mut segs = Vec::new();
        self.listener.poll(now, &mut segs);
        for s in segs {
            out.send(s);
        }
    }

    fn poll_at(&self, now: SimTime) -> Option<SimTime> {
        let base = self.listener.poll_at(now);
        // A rate-limited reader must wake itself to keep draining (and to
        // send window updates) even when the network is quiescent.
        let tick = match &self.app {
            ServerApp::SlowSink { .. } => Some(now + Duration::from_millis(20)),
            _ => None,
        };
        match (base, tick) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }
}

/// Either kind of host, so one simulation can mix them.
// Hosts are few and long-lived; boxing the big variant buys nothing.
#[allow(clippy::large_enum_variant)]
pub enum Node {
    /// A client.
    Client(ClientHost),
    /// A server.
    Server(ServerHost),
}

impl Host for Node {
    fn handle_segment(&mut self, now: SimTime, seg: TcpSegment, out: &mut Outbox) {
        match self {
            Node::Client(c) => c.handle_segment(now, seg, out),
            Node::Server(s) => s.handle_segment(now, seg, out),
        }
    }

    fn poll(&mut self, now: SimTime, out: &mut Outbox) {
        match self {
            Node::Client(c) => c.poll(now, out),
            Node::Server(s) => s.poll(now, out),
        }
    }

    fn poll_at(&self, now: SimTime) -> Option<SimTime> {
        match self {
            Node::Client(c) => c.poll_at(now),
            Node::Server(s) => s.poll_at(now),
        }
    }

    fn addr_event(&mut self, now: SimTime, addr: u32, up: bool, out: &mut Outbox) {
        match self {
            Node::Client(c) => c.addr_event(now, addr, up, out),
            Node::Server(s) => s.addr_event(now, addr, up, out),
        }
    }
}

impl Node {
    /// The client, if this node is one.
    pub fn as_client(&self) -> Option<&ClientHost> {
        match self {
            Node::Client(c) => Some(c),
            _ => None,
        }
    }

    /// The client, mutably.
    pub fn as_client_mut(&mut self) -> Option<&mut ClientHost> {
        match self {
            Node::Client(c) => Some(c),
            _ => None,
        }
    }

    /// The server, if this node is one.
    pub fn as_server(&self) -> Option<&ServerHost> {
        match self {
            Node::Server(s) => Some(s),
            _ => None,
        }
    }

    /// The server, mutably.
    pub fn as_server_mut(&mut self) -> Option<&mut ServerHost> {
        match self {
            Node::Server(s) => Some(s),
            _ => None,
        }
    }
}
