//! Scenario assembly: hosts, addresses, paths, routes.
//!
//! All experiments use the same address plan: a client with up to three
//! interfaces talking to a server with up to three interfaces, one
//! [`mptcp_netsim::Path`] per interface pair. Link-bonding baselines route
//! one address pair over several parallel paths (per-packet round-robin,
//! like the Linux bonding driver in Figure 11).

use mptcp::{EndpointFlags, MptcpConfig, PmEndpoint, PmPolicy};
use mptcp_netsim::{Dir, Path, Sim, SimRng, SimTime};
use mptcp_packet::Endpoint;
use mptcp_tcpstack::TcpConfig;

use crate::hosts::{ClientApp, ClientHost, ConnFactory, Node, ServerApp, ServerHost};

/// The fixed address plan.
pub struct Endpoints;

impl Endpoints {
    /// Client interface addresses.
    pub const CLIENT: [u32; 3] = [0x0a00_0001, 0x0a00_0002, 0x0a00_0003];
    /// Server interface addresses.
    pub const SERVER: [u32; 3] = [0x0a00_0065, 0x0a00_0066, 0x0a00_0067];
    /// Server port.
    pub const PORT: u16 = 80;
}

/// Which transport the client uses.
#[derive(Clone)]
pub enum TransportKind {
    /// Multipath TCP with the given configuration; one subflow per path.
    Mptcp(MptcpConfig),
    /// Plain TCP over the first path only.
    Tcp(TcpConfig),
    /// Plain TCP with every path bonded under the first address pair
    /// (per-packet round-robin).
    BondedTcp(TcpConfig),
}

/// A built scenario: the simulation plus host handles.
pub struct Scenario {
    /// The simulator.
    pub sim: Sim<Node>,
    /// Client host ids (one for simple scenarios, many for Figure 11).
    pub clients: Vec<usize>,
    /// Server host id.
    pub server: usize,
}

impl Scenario {
    /// Build a scenario with one client, one server, and one path per
    /// entry of `paths` (path *i* connects client interface *i* to server
    /// interface *i*).
    pub fn new(
        kind: TransportKind,
        app: ClientApp,
        server_app: ServerApp,
        paths: Vec<Path>,
        seed: u64,
    ) -> Scenario {
        Scenario::with_clients(kind, vec![app], server_app, paths, seed)
    }

    /// Build with several clients sharing the path set (closed-loop HTTP).
    /// Client *k* uses source ports `10_000 + k·500 + i`.
    pub fn with_clients(
        kind: TransportKind,
        apps: Vec<ClientApp>,
        server_app: ServerApp,
        paths: Vec<Path>,
        seed: u64,
    ) -> Scenario {
        let npaths = paths.len();
        assert!((1..=3).contains(&npaths), "1..=3 paths supported");
        let mut sim: Sim<Node> = Sim::new(seed);

        // Server first. For MPTCP the server advertises its extra
        // interfaces (SIGNAL endpoints); the client's path manager pairs
        // them against its own SUBFLOW endpoints and opens the joins —
        // the kernel-PM flow, replacing hand-rolled host-side joins.
        let server_cfg = match &kind {
            TransportKind::Mptcp(cfg) => {
                let mut pm = cfg.path_manager().clone();
                pm.endpoints = Endpoints::SERVER[1..npaths]
                    .iter()
                    .map(|a| PmEndpoint::new(*a, EndpointFlags::SIGNAL).with_port(Endpoints::PORT))
                    .collect();
                cfg.clone()
                    .with_path_manager(pm)
                    .expect("server PM config is valid")
            }
            TransportKind::Tcp(tcp) | TransportKind::BondedTcp(tcp) => MptcpConfig::builder()
                .tcp(tcp.clone())
                .send_buf(tcp.send_buf)
                .recv_buf(tcp.recv_buf)
                .build()
                .expect("single-path config is valid"),
        };
        let server = sim.add_host(Node::Server(ServerHost::new(
            server_cfg,
            server_app,
            seed ^ 0x5e4,
        )));
        for addr in &Endpoints::SERVER[..npaths] {
            sim.bind_addr(*addr, server);
        }

        // Paths and routes.
        let bonded = matches!(kind, TransportKind::BondedTcp(_));
        for (i, path) in paths.into_iter().enumerate() {
            let pid = sim.add_path(path);
            if bonded {
                // Everything rides the first address pair, striped.
                sim.add_route(Endpoints::CLIENT[0], Endpoints::SERVER[0], pid, Dir::Fwd);
                sim.add_route(Endpoints::SERVER[0], Endpoints::CLIENT[0], pid, Dir::Rev);
            } else {
                sim.add_route(Endpoints::CLIENT[i], Endpoints::SERVER[i], pid, Dir::Fwd);
                sim.add_route(Endpoints::SERVER[i], Endpoints::CLIENT[i], pid, Dir::Rev);
            }
        }

        // Clients. A caller-specified endpoint registry wins (e.g. the
        // handover scenario marks its cellular interface SUBFLOW|BACKUP);
        // otherwise each extra interface becomes a plain SUBFLOW endpoint.
        let client_cfg = match &kind {
            TransportKind::Mptcp(cfg) if cfg.path_manager().endpoints.is_empty() => {
                let mut pm = cfg.path_manager().clone();
                pm.endpoints = Endpoints::CLIENT[1..npaths]
                    .iter()
                    .map(|a| PmEndpoint::new(*a, EndpointFlags::SUBFLOW))
                    .collect();
                Some(
                    cfg.clone()
                        .with_path_manager(pm)
                        .expect("client PM config is valid"),
                )
            }
            TransportKind::Mptcp(cfg) => Some(cfg.clone()),
            _ => None,
        };
        let mut clients = Vec::new();
        let mut seeder = SimRng::new(seed ^ 0xc11e);
        for (k, app) in apps.into_iter().enumerate() {
            let base_port = 10_000u16.wrapping_add((k as u16) * 500);
            let factory = ConnFactory {
                mptcp: client_cfg.clone(),
                tcp_cfg: match &kind {
                    TransportKind::Tcp(t) | TransportKind::BondedTcp(t) => t.clone(),
                    TransportKind::Mptcp(cfg) => cfg.tcp().clone(),
                },
                local: Endpoint::new(Endpoints::CLIENT[0], base_port),
                server: Endpoint::new(Endpoints::SERVER[0], Endpoints::PORT),
                rng: seeder.fork(),
            };
            let id = sim.add_host(Node::Client(ClientHost::new(factory, app, SimTime::ZERO)));
            clients.push(id);
        }
        // netsim delivers by address, so this constructor supports exactly
        // one client; multi-client scenarios use [`Scenario::http_fleet`],
        // which gives each client its own addresses.
        assert_eq!(clients.len(), 1, "use Scenario::http_fleet for fleets");
        for addr in &Endpoints::CLIENT[..npaths] {
            sim.bind_addr(*addr, clients[0]);
        }

        Scenario {
            sim,
            clients,
            server,
        }
    }

    /// Figure 11 topology: `n` clients, each with its own address (and a
    /// second address when MPTCP), all talking to one server over shared
    /// path capacity. To keep the simulation faithful yet tractable, each
    /// client pair gets its own [`Path`] built by `mk_path`, mirroring
    /// apachebench clients sharing two gigabit links via switch ports.
    pub fn http_fleet(
        kind: TransportKind,
        n: usize,
        file_size: usize,
        mk_path: impl Fn() -> Path,
        seed: u64,
    ) -> Scenario {
        let mut sim: Sim<Node> = Sim::new(seed);
        let server_cfg = match &kind {
            TransportKind::Mptcp(cfg) => {
                let mut pm = cfg.path_manager().clone();
                pm.endpoints = vec![PmEndpoint::new(Endpoints::SERVER[1], EndpointFlags::SIGNAL)
                    .with_port(Endpoints::PORT)];
                cfg.clone()
                    .with_path_manager(pm)
                    .expect("server PM config is valid")
            }
            TransportKind::Tcp(tcp) | TransportKind::BondedTcp(tcp) => MptcpConfig::builder()
                .tcp(tcp.clone())
                .build()
                .expect("single-path config is valid"),
        };
        let server = sim.add_host(Node::Server(ServerHost::new(
            server_cfg,
            ServerApp::HttpResponder { file_size },
            seed ^ 0x5e4,
        )));
        sim.bind_addr(Endpoints::SERVER[0], server);
        sim.bind_addr(Endpoints::SERVER[1], server);

        let mut clients = Vec::new();
        let mut seeder = SimRng::new(seed ^ 0xc11e);
        for k in 0..n {
            let a1 = 0x0b00_0000 + (k as u32) * 2;
            let a2 = a1 + 1;
            // Path 1: a1 <-> server0; Path 2: a2 <-> server1.
            let p1 = sim.add_path(mk_path());
            let p2 = sim.add_path(mk_path());
            match kind {
                TransportKind::BondedTcp(_) => {
                    sim.add_route(a1, Endpoints::SERVER[0], p1, Dir::Fwd);
                    sim.add_route(Endpoints::SERVER[0], a1, p1, Dir::Rev);
                    sim.add_route(a1, Endpoints::SERVER[0], p2, Dir::Fwd);
                    sim.add_route(Endpoints::SERVER[0], a1, p2, Dir::Rev);
                }
                _ => {
                    sim.add_route(a1, Endpoints::SERVER[0], p1, Dir::Fwd);
                    sim.add_route(Endpoints::SERVER[0], a1, p1, Dir::Rev);
                    sim.add_route(a2, Endpoints::SERVER[1], p2, Dir::Fwd);
                    sim.add_route(Endpoints::SERVER[1], a2, p2, Dir::Rev);
                }
            }
            let factory = ConnFactory {
                mptcp: match &kind {
                    TransportKind::Mptcp(cfg) => {
                        let mut pm = cfg.path_manager().clone();
                        pm.endpoints = vec![PmEndpoint::new(a2, EndpointFlags::SUBFLOW)];
                        Some(
                            cfg.clone()
                                .with_path_manager(pm)
                                .expect("client PM config is valid"),
                        )
                    }
                    _ => None,
                },
                tcp_cfg: match &kind {
                    TransportKind::Tcp(t) | TransportKind::BondedTcp(t) => t.clone(),
                    TransportKind::Mptcp(cfg) => cfg.tcp().clone(),
                },
                local: Endpoint::new(a1, 10_000),
                server: Endpoint::new(Endpoints::SERVER[0], Endpoints::PORT),
                rng: seeder.fork(),
            };
            let id = sim.add_host(Node::Client(ClientHost::new(
                factory,
                ClientApp::HttpLoop {
                    requested: false,
                    completed: 0,
                },
                SimTime::ZERO,
            )));
            sim.bind_addr(a1, id);
            sim.bind_addr(a2, id);
            clients.push(id);
        }
        Scenario {
            sim,
            clients,
            server,
        }
    }

    /// N×M full-mesh topology: the client owns `n_local` interfaces, the
    /// server `n_remote`, with a dedicated [`Path`] routing every
    /// interface pair. The client runs the fullmesh path-manager policy,
    /// so 3×2 establishes all six subflows (primary + five joins) — the
    /// structural stress test for PM-driven meshing.
    pub fn mesh(
        cfg: MptcpConfig,
        app: ClientApp,
        server_app: ServerApp,
        n_local: usize,
        n_remote: usize,
        mk_path: impl Fn() -> Path,
        seed: u64,
    ) -> Scenario {
        assert!((1..=3).contains(&n_local), "1..=3 client interfaces");
        assert!((1..=3).contains(&n_remote), "1..=3 server interfaces");
        let mut sim: Sim<Node> = Sim::new(seed);

        let mut server_pm = cfg.path_manager().clone();
        server_pm.endpoints = Endpoints::SERVER[1..n_remote]
            .iter()
            .map(|a| PmEndpoint::new(*a, EndpointFlags::SIGNAL).with_port(Endpoints::PORT))
            .collect();
        let server_cfg = cfg
            .clone()
            .with_path_manager(server_pm)
            .expect("server PM config is valid");
        let server = sim.add_host(Node::Server(ServerHost::new(
            server_cfg,
            server_app,
            seed ^ 0x5e4,
        )));
        for addr in &Endpoints::SERVER[..n_remote] {
            sim.bind_addr(*addr, server);
        }

        for i in 0..n_local {
            for j in 0..n_remote {
                let pid = sim.add_path(mk_path());
                sim.add_route(Endpoints::CLIENT[i], Endpoints::SERVER[j], pid, Dir::Fwd);
                sim.add_route(Endpoints::SERVER[j], Endpoints::CLIENT[i], pid, Dir::Rev);
            }
        }

        let mut client_pm = cfg.path_manager().clone();
        client_pm.policy = PmPolicy::Fullmesh;
        client_pm.endpoints = Endpoints::CLIENT[1..n_local]
            .iter()
            .map(|a| PmEndpoint::new(*a, EndpointFlags::SUBFLOW | EndpointFlags::FULLMESH))
            .collect();
        let client_cfg = cfg
            .with_path_manager(client_pm)
            .expect("client PM config is valid");
        let factory = ConnFactory {
            tcp_cfg: client_cfg.tcp().clone(),
            mptcp: Some(client_cfg),
            local: Endpoint::new(Endpoints::CLIENT[0], 10_000),
            server: Endpoint::new(Endpoints::SERVER[0], Endpoints::PORT),
            rng: SimRng::new(seed ^ 0xc11e),
        };
        let client = sim.add_host(Node::Client(ClientHost::new(factory, app, SimTime::ZERO)));
        for addr in &Endpoints::CLIENT[..n_local] {
            sim.bind_addr(*addr, client);
        }

        Scenario {
            sim,
            clients: vec![client],
            server,
        }
    }

    /// The (single) client host.
    pub fn client(&self) -> &ClientHost {
        self.sim.hosts[self.clients[0]].as_client().unwrap()
    }

    /// The client host, mutably.
    pub fn client_mut(&mut self) -> &mut ClientHost {
        self.sim.hosts[self.clients[0]].as_client_mut().unwrap()
    }

    /// The server host.
    pub fn server(&self) -> &ServerHost {
        self.sim.hosts[self.server].as_server().unwrap()
    }

    /// The server host, mutably.
    pub fn server_mut(&mut self) -> &mut ServerHost {
        self.sim.hosts[self.server].as_server_mut().unwrap()
    }

    /// Run for a simulated duration.
    pub fn run_for(&mut self, d: mptcp_netsim::Duration) {
        let deadline = self.sim.now + d;
        self.sim.run_until(deadline);
    }
}
