//! Measurement helpers: rate conversion, periodic sampling, delay PDFs.

use mptcp_netsim::{Duration, SimTime};
use mptcp_telemetry::LogHistogram;

/// Rate conversions.
pub struct Rates;

impl Rates {
    /// Bytes over a duration, in megabits per second.
    pub fn mbps(bytes: u64, dur: Duration) -> f64 {
        if dur.is_zero() {
            return 0.0;
        }
        (bytes as f64 * 8.0) / dur.as_secs_f64() / 1e6
    }

    /// Bytes over a duration, in gigabits per second.
    pub fn gbps(bytes: u64, dur: Duration) -> f64 {
        Rates::mbps(bytes, dur) / 1e3
    }
}

/// Samples a value at a fixed simulated-time interval (memory curves of
/// Figure 5).
pub struct Sampler {
    interval: Duration,
    next_at: SimTime,
    /// Collected samples.
    pub samples: Vec<(SimTime, f64)>,
}

impl Sampler {
    /// Sample every `interval`.
    pub fn new(interval: Duration) -> Sampler {
        Sampler {
            interval,
            next_at: SimTime::ZERO,
            samples: Vec::new(),
        }
    }

    /// Record `value()` if the interval elapsed.
    pub fn maybe_sample<F: FnOnce() -> f64>(&mut self, now: SimTime, value: F) {
        if now >= self.next_at {
            self.samples.push((now, value()));
            self.next_at = now + self.interval;
        }
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean of samples taken at or after `from` (skip warm-up).
    pub fn mean_after(&self, from: SimTime) -> f64 {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|(t, _)| *t >= from)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            return 0.0;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Application-level delay statistics (Figure 7): paired send/receive
/// stamps for fixed-size blocks.
///
/// Quantiles come from a [`LogHistogram`] over nanosecond delays (shared
/// with the runtime's loop profiler and tick-skew tracking), so they cost
/// no sort and ≤ ~3% relative error; the raw delays are kept for the
/// exact-binned [`AppDelayStats::pdf`].
#[derive(Clone, Debug)]
pub struct AppDelayStats {
    /// Per-block delays.
    pub delays: Vec<Duration>,
    hist: LogHistogram,
}

impl AppDelayStats {
    /// Pair up send and receive stamps (receive may lag behind).
    pub fn from_stamps(sent: &[SimTime], received: &[SimTime]) -> AppDelayStats {
        let n = sent.len().min(received.len());
        let delays: Vec<Duration> = (0..n).map(|i| received[i] - sent[i]).collect();
        let mut hist = LogHistogram::new();
        for d in &delays {
            hist.record(d.as_nanos() as u64);
        }
        AppDelayStats { delays, hist }
    }

    /// Histogram as (bin_left_edge, probability in percent).
    pub fn pdf(&self, bin: Duration, max: Duration) -> Vec<(Duration, f64)> {
        let nbins = (max.as_nanos() / bin.as_nanos()).max(1) as usize;
        let mut counts = vec![0u64; nbins + 1];
        for d in &self.delays {
            let idx = ((d.as_nanos() / bin.as_nanos()) as usize).min(nbins);
            counts[idx] += 1;
        }
        let total = self.delays.len().max(1) as f64;
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (bin * i as u32, 100.0 * c as f64 / total))
            .collect()
    }

    /// Mean delay.
    pub fn mean(&self) -> Duration {
        if self.delays.is_empty() {
            return Duration::ZERO;
        }
        self.delays.iter().sum::<Duration>() / self.delays.len() as u32
    }

    /// The `q`-quantile (0.0–1.0) of the delay distribution, from the
    /// log-bucketed histogram (exact at q=0 and q=1, ≤ ~3% error between).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.delays.is_empty() {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.hist.quantile(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_conversion() {
        // 1 MB in 1 second = 8 Mbps.
        assert!((Rates::mbps(1_000_000, Duration::from_secs(1)) - 8.0).abs() < 1e-9);
        assert_eq!(Rates::mbps(100, Duration::ZERO), 0.0);
    }

    #[test]
    fn sampler_respects_interval() {
        let mut s = Sampler::new(Duration::from_millis(10));
        s.maybe_sample(SimTime::ZERO, || 1.0);
        s.maybe_sample(SimTime::from_millis(5), || 2.0); // too soon
        s.maybe_sample(SimTime::from_millis(10), || 3.0);
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn sampler_warmup_skip() {
        let mut s = Sampler::new(Duration::from_millis(1));
        s.maybe_sample(SimTime::ZERO, || 100.0);
        s.maybe_sample(SimTime::from_millis(1), || 1.0);
        s.maybe_sample(SimTime::from_millis(2), || 3.0);
        assert_eq!(s.mean_after(SimTime::from_millis(1)), 2.0);
    }

    #[test]
    fn delay_stats_pair_and_quantile() {
        let sent = vec![
            SimTime::ZERO,
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        ];
        let recv = vec![
            SimTime::from_millis(5),
            SimTime::from_millis(30),
            SimTime::from_millis(21),
        ];
        let st = AppDelayStats::from_stamps(&sent, &recv);
        assert_eq!(st.delays.len(), 3);
        assert_eq!(st.quantile(0.0), Duration::from_millis(1));
        assert_eq!(st.quantile(1.0), Duration::from_millis(20));
        let pdf = st.pdf(Duration::from_millis(10), Duration::from_millis(50));
        let total: f64 = pdf.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }
}
