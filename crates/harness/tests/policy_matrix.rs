//! Satellite coverage for the pluggable policy architecture: every
//! (congestion control × scheduler) pair must complete a fixed transfer
//! with exactly-once delivery, and the default LIA+minRTT pair must
//! reproduce the pre-refactor goodput (the extraction was required to be
//! byte-identical, so the tolerance here — 1% — is generous).

use mptcp::telemetry::CounterId;
use mptcp::{CcAlgorithm, SchedulerKind};
use mptcp_harness::experiments::chaos;
use mptcp_harness::experiments::common::{run_bulk_with, Policy, Variant};
use mptcp_harness::experiments::fig9_wifi3g::capped_wifi;
use mptcp_harness::hosts::{ClientApp, ServerApp};
use mptcp_harness::scenario::Scenario;
use mptcp_netsim::{Duration, LinkCfg, Path, SimTime};

/// The Figure 9 path pair: capped WiFi (2 Mbps / 20 ms) + 3G (2 Mbps /
/// 300 ms), wildly different RTTs so scheduling decisions matter.
fn matrix_paths() -> Vec<Path> {
    vec![
        Path::symmetric(capped_wifi()),
        Path::symmetric(LinkCfg::threeg()),
    ]
}

/// Every cc × scheduler pair must move a fixed-size transfer to
/// completion with the server application reading exactly the bytes the
/// client wrote — no loss, no duplicate delivery (the redundant
/// scheduler's wire-level copies must be invisible to the application).
#[test]
fn every_policy_pair_delivers_exactly_once() {
    const TOTAL: usize = 1_000_000;
    for cc in CcAlgorithm::ALL {
        for sched in SchedulerKind::ALL {
            let policy = Policy::new(cc, sched);
            let kind = Variant::MptcpM12.kind_with(200_000, policy);
            let mut sc = Scenario::new(
                kind,
                ClientApp::Bulk {
                    total: TOTAL,
                    written: 0,
                    close_when_done: false,
                },
                ServerApp::Sink,
                matrix_paths(),
                7,
            );
            let deadline = SimTime::from_secs(60);
            while sc.sim.now < deadline && sc.server().app_bytes_received < TOTAL as u64 {
                sc.run_for(Duration::from_secs(1));
            }
            let delivered = sc.server().app_bytes_received;
            assert_eq!(
                delivered,
                TOTAL as u64,
                "{}: delivered {delivered} of {TOTAL} bytes \
                 (less = loss/deadlock, more = duplicate delivery)",
                policy.label()
            );
            let fell_back = sc
                .client_mut()
                .transport
                .as_mptcp()
                .map(|c| c.is_fallback())
                .unwrap_or(true);
            assert!(!fell_back, "{}: fell back to plain TCP", policy.label());
        }
    }
}

/// The default policy must reproduce the pre-refactor scheduler's goodput.
/// 2.328039 Mbps is the exact value the inlined lowest-RTT loop produced
/// for this configuration before the `Scheduler` trait existed.
#[test]
fn default_policy_matches_prerefactor_goodput() {
    const BASELINE_MBPS: f64 = 2.328039;
    let r = run_bulk_with(
        Variant::MptcpM12,
        200_000,
        matrix_paths(),
        Duration::from_secs(3),
        Duration::from_secs(10),
        7,
        Policy::default(),
    );
    let rel = (r.goodput_mbps - BASELINE_MBPS).abs() / BASELINE_MBPS;
    assert!(
        rel < 0.01,
        "LIA+minRTT goodput {:.6} Mbps deviates {:.2}% from the \
         pre-refactor baseline {BASELINE_MBPS} Mbps",
        r.goodput_mbps,
        rel * 100.0
    );
}

/// With the redundant scheduler every chunk rides both paths, so a 3 s
/// WiFi blackout must not stall the DATA_ACK clock: the 3G copies keep
/// `snd_una` moving and the data-level RTO never fires. (Under minRTT the
/// same blackout strands chunks on the dark path until failure detection
/// reinjects them.)
#[test]
fn redundant_scheduler_rides_out_blackout_without_data_rtos() {
    let out = chaos::blackout_with(7, Policy::new(CcAlgorithm::Lia, SchedulerKind::Redundant));
    assert!(
        out.delivered_during > 0,
        "no bytes delivered during the blackout"
    );
    assert_eq!(
        out.telemetry.counter(CounterId::DataRtos),
        0,
        "data-level RTO fired despite redundant copies on the live path"
    );
    assert_eq!(
        out.telemetry.counter(CounterId::DataAckStalls),
        0,
        "DATA_ACK stall recorded despite redundant copies on the live path"
    );
}
