//! End-to-end tests for the telemetry subsystem: the paper's mechanisms
//! and fallback paths must be observable from the outside through
//! [`mptcp::telemetry::TelemetrySnapshot`] — in `BulkResult`, in
//! `ConnStats`, and in the JSON report.

use mptcp::telemetry::{CounterId, FallbackCause, GaugeId};
use mptcp::{Mechanisms, MptcpConfig};
use mptcp_harness::experiments::common::{run_bulk, wifi_3g_paths, Variant, WARMUP};
use mptcp_harness::{ClientApp, RunReport, Scenario, ServerApp, TransportKind};
use mptcp_middlebox::PayloadModifier;
use mptcp_netsim::{Duration, LinkCfg, Path};

const SEED: u64 = 20120425;

/// A WiFi+3G run with a tight receive buffer is exactly the regime where
/// M1 (opportunistic retransmission) and M2 (penalization) fire: the slow
/// 3G subflow blocks the shared window and gets penalized (§4.2).
#[test]
fn rwnd_limited_run_records_m1_and_m2() {
    let r = run_bulk(
        Variant::MptcpM12,
        200_000,
        wifi_3g_paths(),
        WARMUP,
        Duration::from_secs(5),
        SEED,
    );
    let t = &r.telemetry;
    assert!(
        t.counter(CounterId::M1Reinjections) > 0,
        "no M1 reinjections recorded:\n{}",
        t.render_table()
    );
    assert!(
        t.counter(CounterId::M2Penalizations) > 0,
        "no M2 penalizations recorded:\n{}",
        t.render_table()
    );
    assert!(t.counter(CounterId::SchedulerPicks) > 0);
    assert_eq!(t.gauge(GaugeId::Subflows).max, 2);
    // M1/M2 fired, so the event ring must hold the matching events.
    assert!(t.events_total > 0);

    // The same counters flow into the machine-readable report.
    let json = RunReport::new("test", Variant::MptcpM12.label(), r.telemetry.clone())
        .metric("goodput_mbps", r.goodput_mbps)
        .to_json();
    assert!(json.contains("\"m1_reinjections\":"), "{json}");
    assert!(json.contains("\"m2_penalizations\":"), "{json}");
    assert!(json.contains("\"goodput_mbps\":"), "{json}");
}

/// A content-rewriting middlebox (FTP-ALG model) breaks the DSS checksum;
/// per §3.3.6 the connection must fall back to regular TCP, and telemetry
/// must name the cause.
#[test]
fn checksum_corruption_records_fallback_cause() {
    let cfg = MptcpConfig::builder()
        .buffers(256 * 1024)
        .mechanisms(Mechanisms::M1_2)
        .checksum(true)
        .build()
        .expect("valid config");
    let mangled_path = || {
        Path::symmetric(LinkCfg {
            rate_bps: 10_000_000,
            delay: Duration::from_millis(10),
            queue_bytes: 64 * 1500,
            loss: 0.0,
        })
        .with_middlebox(Box::new(PayloadModifier::new(
            b"\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a",
            b"\x21\x21\x21\x21\x21\x21\x21\x21\x21\x21",
        )))
    };
    let mut sc = Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total: 200_000,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        vec![mangled_path(), mangled_path()],
        SEED,
    );
    sc.run_for(Duration::from_secs(30));

    // The receiver detects the mangled payload; its ConnStats must carry
    // both the raw counter and the recorded fallback cause.
    let stats = sc.server().listener.conns[0].conn_stats();
    assert!(
        stats.telemetry.counter(CounterId::ChecksumFailures) > 0,
        "no checksum failures recorded:\n{}",
        stats.telemetry.render_table()
    );
    assert!(stats.telemetry.counter(CounterId::Fallbacks) > 0);
    let causes = stats.telemetry.fallback_causes();
    assert!(
        causes.contains(&FallbackCause::ChecksumFail),
        "fallback causes: {causes:?}"
    );

    // The sender fell back too (MP_FAIL or local detection) and the
    // transfer still completed — fallback, not corruption or stall.
    let client = sc.client().transport.telemetry();
    assert!(
        client.counter(CounterId::Fallbacks) > 0,
        "client never fell back:\n{}",
        client.render_table()
    );
    assert!(sc.server().app_bytes_received >= 200_000);
}
