//! N×M full-mesh matrix: the path manager's fullmesh policy must
//! establish a subflow for every interface pair and the connection must
//! deliver the byte stream exactly once across all of them.

use mptcp::telemetry::CounterId;
use mptcp::{Mechanisms, MptcpConfig, PathManagerCfg, PmPolicy};
use mptcp_harness::experiments::common::tcp_cfg;
use mptcp_harness::hosts::{ClientApp, ServerApp};
use mptcp_harness::scenario::Scenario;
use mptcp_netsim::{Duration, LinkCfg, Path, SimTime};

const TOTAL: usize = 4_000_000;
const DEADLINE: SimTime = SimTime::from_secs(60);

fn mesh_cfg() -> MptcpConfig {
    MptcpConfig::builder()
        .buffers(512 * 1024)
        .tcp(tcp_cfg(512 * 1024, false))
        .mechanisms(Mechanisms::M1_2)
        .checksum(false)
        .path_manager(PathManagerCfg::new(PmPolicy::Fullmesh))
        .build()
        .expect("mesh config is valid")
}

/// Run an n_local × n_remote mesh to completion; return (delivered,
/// established-subflow count, per-subflow bytes acked, pm-opened count).
fn run_mesh(n_local: usize, n_remote: usize, seed: u64) -> (u64, usize, Vec<u64>, u64) {
    let mut sc = Scenario::mesh(
        mesh_cfg(),
        ClientApp::Bulk {
            total: TOTAL,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        n_local,
        n_remote,
        || Path::symmetric(LinkCfg::wifi()),
        seed,
    );
    while sc.sim.now < DEADLINE && sc.server().app_bytes_received < TOTAL as u64 {
        sc.run_for(Duration::from_secs(1));
    }
    let delivered = sc.server().app_bytes_received;
    let conn = sc.client_mut().transport.as_mptcp().expect("mptcp client");
    let live: Vec<u64> = conn
        .subflows()
        .iter()
        .filter(|s| !s.dead && s.sock.is_established())
        .map(|s| s.sock.stats.bytes_acked)
        .collect();
    let pm_opened = conn.path_manager().subflows_opened() as u64;
    let telemetry = sc.client_mut().transport.telemetry();
    assert_eq!(
        telemetry.counter(CounterId::PmSubflowsOpened),
        pm_opened,
        "PmSubflowsOpened counter disagrees with the PM's own join count"
    );
    (delivered, live.len(), live, pm_opened)
}

#[test]
fn mesh_1x1_is_a_plain_connection() {
    let (delivered, nsub, _, _) = run_mesh(1, 1, 11);
    assert_eq!(delivered, TOTAL as u64, "exactly-once delivery violated");
    assert_eq!(nsub, 1);
}

#[test]
fn mesh_2x2_establishes_four_subflows() {
    let (delivered, nsub, _, _) = run_mesh(2, 2, 22);
    assert_eq!(delivered, TOTAL as u64, "exactly-once delivery violated");
    assert_eq!(nsub, 4, "2×2 fullmesh must establish 4 subflows");
}

#[test]
fn mesh_3x2_establishes_all_six_subflows_and_keeps_them_busy() {
    let (delivered, nsub, bytes, pm_opened) = run_mesh(3, 2, 33);
    assert_eq!(delivered, TOTAL as u64, "exactly-once delivery violated");
    assert_eq!(nsub, 6, "3×2 fullmesh must establish all 6 subflows");
    assert_eq!(
        pm_opened, 5,
        "PM should account the 5 joins beside the primary"
    );
    let busy = bytes.iter().filter(|&&b| b > 0).count();
    assert_eq!(
        busy, 6,
        "all 6 subflows should carry data; per-subflow bytes: {bytes:?}"
    );
}
