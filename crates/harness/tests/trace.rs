//! End-to-end tests for the time-series tracing layer: the trace, the
//! MPTCP-aware packet capture, and the zero-cost-when-disabled contract,
//! all observed from outside the stack.

use mptcp::telemetry::{EventKind, TraceConfig};
use mptcp_harness::experiments::common::{run_bulk_traced, wifi_3g_paths, Variant};
use mptcp_harness::experiments::trace::{run, timeline_dat, TraceScenario};
use mptcp_netsim::{CaptureConfig, Duration};

const SEED: u64 = 20120425;

/// §3.3.6: once the DSS checksum catches a payload-rewriting middlebox,
/// the connection falls back to regular TCP and stops emitting MPTCP
/// options. The capture must agree with the trace: the last
/// option-carrying packet precedes the fallback span.
#[test]
fn fallback_trace_options_end_before_fallback_span() {
    let art = run(TraceScenario::Fallback, SEED);
    let trace = &art.run.trace;
    let capture = &art.run.capture;

    let fallback_at = trace
        .spans()
        .filter(|(_, _, k)| matches!(k, EventKind::Fallback { .. }))
        .map(|(at, _, _)| at)
        .max()
        .expect("no fallback span recorded");

    let last_option_at = capture
        .records
        .iter()
        .filter(|r| r.has_mptcp())
        .map(|r| r.at_ns)
        .max()
        .expect("capture saw no MPTCP options at all");

    assert!(
        last_option_at <= fallback_at,
        "MPTCP option on the wire at {last_option_at} ns, after fallback at {fallback_at} ns"
    );

    // Nothing overflowed, and the artifacts carry the series.
    assert_eq!(trace.dropped_samples, 0);
    assert_eq!(capture.dropped_records, 0);
    assert!(art.run.bulk.fell_back, "client never fell back");
}

/// The zero-cost contract at the harness level: a run with tracing and
/// capture disabled records no samples and no packets — the disabled
/// tracer holds no buffer (allocation-freedom of the write path is
/// asserted by `Tracer::capacity()` in the telemetry unit tests).
#[test]
fn disabled_tracing_records_nothing() {
    let r = run_bulk_traced(
        Variant::MptcpM12,
        100_000,
        wifi_3g_paths(),
        Duration::from_secs(1),
        Duration::from_secs(2),
        SEED,
        TraceConfig::disabled(),
        CaptureConfig::disabled(),
    );
    assert!(r.bulk.goodput_mbps > 0.0, "run carried no data");
    assert!(r.trace.is_empty(), "disabled tracer produced records");
    assert_eq!(r.trace.total, 0);
    assert_eq!(r.capture.total, 0);
    assert!(r.capture.records.is_empty());
}

/// An enabled fig-9-style run yields per-subflow cwnd/srtt series for both
/// subflows, at least one M2 penalty span, and a timeline whose blocks are
/// separated for gnuplot `index` selection.
#[test]
fn traced_rwnd_limited_run_has_series_and_penalty_spans() {
    let r = run_bulk_traced(
        Variant::MptcpM12,
        100_000,
        wifi_3g_paths(),
        Duration::from_secs(2),
        Duration::from_secs(6),
        SEED,
        TraceConfig::enabled(),
        CaptureConfig::enabled(),
    );
    assert_eq!(r.trace.subflow_ids(), vec![0, 1]);
    assert!(
        r.trace
            .spans()
            .any(|(_, _, k)| matches!(k, EventKind::M2Penalize { .. })),
        "no M2 penalty span in an rwnd-limited run"
    );
    assert!(r.capture.records.iter().any(|c| c.has_mptcp()));
    let dat = timeline_dat(&r.trace);
    // conn block + one block per subflow + span block.
    assert_eq!(dat.matches("\n\n\n").count(), 3, "timeline block count");
}
