//! Proves the zero-copy claim with a counting allocator: once the buffer
//! pool and a reusable decode segment are warm, a steady-state
//! encode → freeze → verified-decode cycle performs **zero** heap
//! allocations per segment.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use mptcp_packet::{
    BufPool, DssMapping, Endpoint, FourTuple, MptcpOption, SeqNum, TcpFlags, TcpOption, TcpSegment,
};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Refresh a reusable bulk-data segment in place: a real sender mutates
/// sequence state per segment, it does not rebuild the option list.
fn refresh_bulk_segment(seg: &mut TcpSegment, seq: u32, payload: Bytes) {
    seg.seq = SeqNum(seq);
    let len = payload.len() as u16;
    seg.options.clear();
    seg.options.push(TcpOption::Mptcp(MptcpOption::Dss {
        data_ack: Some(9000),
        mapping: Some(DssMapping {
            dsn: u64::from(seq),
            subflow_seq: seq,
            len,
            checksum: Some(0xbeef),
        }),
        data_fin: false,
    }));
    seg.options.push(TcpOption::Timestamps { val: seq, ecr: 1 });
    seg.payload = payload;
}

#[test]
fn steady_state_encode_decode_is_allocation_free() {
    let pool = BufPool::new(2048, 32);
    let payload_pool = BufPool::new(2048, 32);

    // Reusable sender and receiver segments: their options Vecs are
    // recycled across cycles, as a real stack's would be.
    let base_tuple = FourTuple {
        src: Endpoint::new(0x0a000001, 4242),
        dst: Endpoint::new(0x0a000002, 80),
    };
    let mut seg = TcpSegment::new(base_tuple, SeqNum(0), SeqNum(77), TcpFlags::ACK);
    seg.window = 1 << 20;
    let mut decoded = TcpSegment::new(base_tuple, SeqNum(0), SeqNum(0), TcpFlags::ACK);

    let cycle = |seg: &mut TcpSegment, decoded: &mut TcpSegment, seq: u32| {
        // Sender side: build the payload in a pooled buffer, freeze it,
        // encode header+options+payload into a second pooled buffer.
        let mut pb = payload_pool.checkout();
        pb.resize(1400, 0);
        pb[0] = seq as u8;
        let payload = pb.freeze();
        refresh_bulk_segment(seg, seq, payload);
        let mut frame = pool.checkout();
        seg.encode_into(10, &mut frame).expect("options fit");
        // "Transmit": freeze the frame as the received datagram view.
        let datagram = frame.freeze();
        // Receiver side: checksum-verify + decode with payload as a slice
        // of the pooled datagram.
        TcpSegment::decode_verified_view_into(&datagram, 0x0a000001, 0x0a000002, 10, decoded)
            .expect("roundtrip verifies");
        assert_eq!(decoded.payload.len(), 1400);
        assert_eq!(decoded.payload[0], seq as u8);
        assert_eq!(decoded.seq, SeqNum(seq));
        // Drop order returns both buffers to their pools.
    };

    // Warm-up: pools allocate their entries, Vecs find their capacity.
    for seq in 0..64 {
        cycle(&mut seg, &mut decoded, seq);
    }

    // The counter is process-wide, so rare ambient allocations (test
    // harness bookkeeping) can land inside a measured window. Per-segment
    // leakage would show up ≥1000 times; ambient noise vanishes on retry,
    // so demand at least one perfectly clean 1000-segment window.
    let mut last = u64::MAX;
    for attempt in 0..5 {
        let before = allocs();
        for seq in 0..1000 {
            cycle(&mut seg, &mut decoded, 64 + attempt * 1000 + seq);
        }
        last = allocs() - before;
        if last == 0 {
            return;
        }
    }
    panic!(
        "steady-state encode→decode cycles must not touch the heap \
         ({last} allocations over the last 1000-segment window)"
    );
}
