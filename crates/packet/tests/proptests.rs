//! Property tests for the wire codec: encode/decode roundtrips and
//! checksum algebra under arbitrary inputs.

use bytes::Bytes;
use mptcp_packet::checksum::{dss_checksum, dss_checksum_valid};
use mptcp_packet::mptcp_opts::AdvertisedAddr;
use mptcp_packet::{
    DssMapping, Endpoint, FourTuple, MptcpOption, SeqNum, TcpFlags, TcpOption, TcpSegment,
};
use proptest::prelude::*;

fn arb_mptcp_option() -> impl Strategy<Value = MptcpOption> {
    prop_oneof![
        (any::<u64>(), any::<bool>(), any::<Option<u64>>()).prop_map(|(k, c, r)| {
            MptcpOption::MpCapable {
                version: 0,
                checksum_required: c,
                sender_key: k,
                receiver_key: r,
            }
        }),
        (any::<u32>(), any::<u32>(), any::<u8>(), any::<bool>()).prop_map(
            |(token, nonce, addr_id, backup)| MptcpOption::MpJoinSyn {
                token,
                nonce,
                addr_id,
                backup,
            }
        ),
        (any::<u64>(), any::<u32>(), any::<u8>()).prop_map(|(mac, nonce, addr_id)| {
            MptcpOption::MpJoinSynAck {
                mac,
                nonce,
                addr_id,
                backup: false,
            }
        }),
        // DATA_ACK is truncated to 32 bits on the wire; use values that
        // roundtrip exactly so equality holds.
        (
            proptest::option::of(any::<u32>()),
            proptest::option::of((
                any::<u64>(),
                any::<u32>(),
                1..u16::MAX,
                any::<Option<u16>>()
            )),
            any::<bool>()
        )
            .prop_map(|(da, m, fin)| MptcpOption::Dss {
                data_ack: da.map(u64::from),
                mapping: m.map(|(dsn, ssn, len, ck)| DssMapping {
                    dsn,
                    subflow_seq: ssn,
                    len,
                    checksum: ck,
                }),
                data_fin: fin,
            }),
        (any::<u8>(), any::<u32>(), any::<Option<u16>>()).prop_map(|(id, addr, port)| {
            MptcpOption::AddAddr(AdvertisedAddr {
                addr_id: id,
                addr,
                port,
            })
        }),
        proptest::collection::vec(any::<u8>(), 1..8)
            .prop_map(|ids| MptcpOption::RemoveAddr { addr_ids: ids }),
        any::<u64>().prop_map(|dsn| MptcpOption::MpFail { dsn }),
        proptest::collection::vec(any::<u8>(), 20..21).prop_map(|mac| {
            let mut m = [0u8; 20];
            m.copy_from_slice(&mac);
            MptcpOption::MpJoinAck { mac: m }
        }),
        (any::<bool>(), any::<Option<u8>>())
            .prop_map(|(backup, addr_id)| MptcpOption::MpPrio { backup, addr_id }),
        any::<u64>().prop_map(|receiver_key| MptcpOption::FastClose { receiver_key }),
    ]
}

fn arb_option() -> impl Strategy<Value = TcpOption> {
    prop_oneof![
        any::<u16>().prop_map(TcpOption::Mss),
        (0u8..15).prop_map(TcpOption::WindowScale),
        Just(TcpOption::SackPermitted),
        (any::<u32>(), any::<u32>()).prop_map(|(val, ecr)| TcpOption::Timestamps { val, ecr }),
        arb_mptcp_option().prop_map(TcpOption::Mptcp),
    ]
}

proptest! {
    #[test]
    fn mptcp_option_value_roundtrips(opt in arb_mptcp_option()) {
        let mut buf = Vec::new();
        opt.encode_value(&mut buf);
        let decoded = MptcpOption::decode_value(&buf).expect("decodable");
        prop_assert_eq!(opt, decoded);
    }

    #[test]
    fn segment_roundtrips(
        opts in proptest::collection::vec(arb_option(), 0..2),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u16>(),
        wscale in 0u8..10,
    ) {
        let mut seg = TcpSegment::new(
            FourTuple {
                src: Endpoint::new(0x0a000001, 1234),
                dst: Endpoint::new(0x0a000002, 80),
            },
            SeqNum(seq),
            SeqNum(ack),
            TcpFlags::ACK,
        );
        // Windows survive exactly when they are multiples of the scale.
        seg.window = u32::from(window) << wscale;
        seg.options = opts;
        seg.payload = Bytes::from(payload);
        let wire = seg.encode(wscale).expect("options fit");
        let back = TcpSegment::decode(&wire, 0x0a000001, 0x0a000002, wscale).expect("decodable");
        prop_assert_eq!(back, seg);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..120)) {
        let _ = TcpSegment::decode(&bytes, 1, 2, 7);
        let _ = mptcp_packet::options::decode_options(&bytes);
        let _ = MptcpOption::decode_value(&bytes);
    }

    #[test]
    fn dss_checksum_detects_any_single_byte_flip(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        flip_at in any::<prop::sample::Index>(),
        flip_bits in 1u8..=255,
    ) {
        let ck = dss_checksum(42, 7, payload.len() as u16, &payload);
        let mut modified = payload.clone();
        let i = flip_at.index(modified.len());
        modified[i] ^= flip_bits;
        // Ones-complement sums can collide only via reordering of 16-bit
        // words, never via a single-byte XOR flip.
        prop_assert!(!dss_checksum_valid(42, 7, payload.len() as u16, &modified, ck));
    }

    #[test]
    fn verified_decode_roundtrips_and_rejects_corruption(
        opts in proptest::collection::vec(arb_option(), 0..2),
        payload in proptest::collection::vec(any::<u8>(), 0..400),
        seq in any::<u32>(),
        truncate_by in any::<prop::sample::Index>(),
        flip_at in any::<prop::sample::Index>(),
        flip_bits in 1u8..=255,
    ) {
        let mut seg = TcpSegment::new(
            FourTuple {
                src: Endpoint::new(0x0a000001, 1234),
                dst: Endpoint::new(0x0a000002, 80),
            },
            SeqNum(seq),
            SeqNum(0),
            TcpFlags::ACK,
        );
        seg.options = opts;
        seg.payload = Bytes::from(payload);
        let wire = seg.encode(4).expect("options fit");

        // Intact bytes verify and roundtrip exactly.
        let back = TcpSegment::decode_verified(&wire, 0x0a000001, 0x0a000002, 4)
            .expect("intact wire bytes verify");
        prop_assert_eq!(back, seg);

        // A proper prefix is never accepted as the original: short ones
        // fail structurally, longer ones trip the pseudo-header length
        // folded into the checksum. (Ones-complement sums admit rare
        // collisions where a truncated tail cancels the length delta, so
        // the contract is "never the original", not "always rejected".)
        let cut = truncate_by.index(wire.len());
        match TcpSegment::decode_verified(&wire[..cut], 0x0a000001, 0x0a000002, 4) {
            Err(_) => {}
            Ok(t) => prop_assert_ne!(t, seg.clone()),
        }

        // A flip of any bits within one byte always breaks the
        // ones-complement sum, wherever it lands (header, option, payload,
        // or the checksum field itself).
        let mut flipped = wire.clone();
        let i = flip_at.index(flipped.len());
        flipped[i] ^= flip_bits;
        prop_assert!(
            TcpSegment::decode_verified(&flipped, 0x0a000001, 0x0a000002, 4).is_err()
        );
    }

    #[test]
    fn verified_decode_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let _ = TcpSegment::decode_verified(&bytes, 1, 2, 7);
    }

    #[test]
    fn seqnum_ordering_antisymmetric(a in any::<u32>(), d in 1u32..(1 << 30)) {
        let x = SeqNum(a);
        let y = x + d;
        prop_assert!(x.before(y));
        prop_assert!(!y.before(x));
        prop_assert_eq!(y - x, d);
    }
}
