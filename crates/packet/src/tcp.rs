//! TCP segment representation and byte-level codec.
//!
//! Segments travel through the simulator in structured form (like Click
//! packets), but every field a middlebox can touch — addresses, ports,
//! sequence numbers, options, payload — is mutable, reflecting the paper's
//! lesson that "the entire TCP header and the payload must be considered as
//! mutable fields" (§7). [`TcpSegment::encode`]/[`TcpSegment::decode`]
//! provide the real wire format for codec tests and checksum computation.

use bytes::Bytes;

use crate::options::{self, TcpOption};
use crate::seq::SeqNum;

/// One endpoint: IPv4 address (as u32) and port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    /// IPv4 address.
    pub addr: u32,
    /// TCP port.
    pub port: u16,
}

impl Endpoint {
    /// Construct an endpoint.
    pub const fn new(addr: u32, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let a = self.addr.to_be_bytes();
        write!(f, "{}.{}.{}.{}:{}", a[0], a[1], a[2], a[3], self.port)
    }
}

/// The classic five-tuple minus protocol: src/dst endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FourTuple {
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
}

impl FourTuple {
    /// The tuple as seen by the other direction.
    pub fn reversed(&self) -> FourTuple {
        FourTuple {
            src: self.dst,
            dst: self.src,
        }
    }
}

/// TCP header flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// FIN.
    pub fin: bool,
    /// RST.
    pub rst: bool,
    /// PSH.
    pub psh: bool,
}

impl TcpFlags {
    /// SYN only.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// ACK only.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// RST.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };

    fn to_bits(self) -> u8 {
        (u8::from(self.fin))
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
    }

    fn from_bits(bits: u8) -> TcpFlags {
        TcpFlags {
            fin: bits & 0x01 != 0,
            syn: bits & 0x02 != 0,
            rst: bits & 0x04 != 0,
            psh: bits & 0x08 != 0,
            ack: bits & 0x10 != 0,
        }
    }
}

/// A TCP segment in flight.
#[derive(Clone, Debug, PartialEq)]
pub struct TcpSegment {
    /// Source/destination endpoints (mutable: NATs rewrite these).
    pub tuple: FourTuple,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: SeqNum,
    /// Acknowledgment number (valid when `flags.ack`).
    pub ack: SeqNum,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window, already scaled to bytes.
    ///
    /// We carry the scaled value so the stack logic reads naturally; the
    /// codec applies/removes the window-scale shift at the wire boundary.
    pub window: u32,
    /// TCP options.
    pub options: Vec<TcpOption>,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Why [`TcpSegment::decode_verified`] rejected a buffer of wire bytes.
///
/// Real-I/O receive paths (the UDP encapsulation runtime) need to tell a
/// datagram cut short in flight from one actively corrupted: the former is
/// countable noise, the latter is the §7 lesson about mutable headers
/// showing up on a live network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireDecodeError {
    /// Fewer bytes than a TCP header, or fewer than the data offset claims.
    Truncated,
    /// The header is self-inconsistent (data offset below the minimum).
    Malformed,
    /// The TCP checksum over the pseudo-header and segment did not verify:
    /// at least one bit changed between encode and decode.
    BadChecksum,
}

impl std::fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            WireDecodeError::Truncated => "segment truncated",
            WireDecodeError::Malformed => "TCP header malformed",
            WireDecodeError::BadChecksum => "TCP checksum mismatch",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for WireDecodeError {}

/// Fixed TCP header size without options.
pub const TCP_HEADER_LEN: usize = 20;
/// IPv4 header size assumed for wire-length accounting.
pub const IPV4_HEADER_LEN: usize = 20;

impl TcpSegment {
    /// A bare segment with no options or payload.
    pub fn new(tuple: FourTuple, seq: SeqNum, ack: SeqNum, flags: TcpFlags) -> Self {
        TcpSegment {
            tuple,
            seq,
            ack,
            flags,
            window: 0,
            options: Vec::new(),
            payload: Bytes::new(),
        }
    }

    /// Amount of sequence space this segment occupies (payload + SYN + FIN).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }

    /// Sequence number one past the end of the segment.
    pub fn seq_end(&self) -> SeqNum {
        self.seq + self.seq_len()
    }

    /// Total on-the-wire size including IPv4 + TCP headers and options.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN
            + TCP_HEADER_LEN
            + options::options_wire_len(&self.options)
            + self.payload.len()
    }

    /// The first MPTCP option on this segment, if any.
    pub fn mptcp_option(&self) -> Option<&crate::MptcpOption> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Mptcp(m) => Some(m),
            _ => None,
        })
    }

    /// All MPTCP options on this segment.
    pub fn mptcp_options(&self) -> impl Iterator<Item = &crate::MptcpOption> {
        self.options.iter().filter_map(|o| match o {
            TcpOption::Mptcp(m) => Some(m),
            _ => None,
        })
    }

    /// Encode to wire bytes (TCP header + options + payload; no IP header).
    ///
    /// `wscale_shift` is the window scale negotiated for this direction: the
    /// codec stores `window >> shift` in the 16-bit field, as the wire does.
    pub fn encode(&self, wscale_shift: u8) -> Result<Vec<u8>, options::OptionSpaceExceeded> {
        let mut out = Vec::with_capacity(
            TCP_HEADER_LEN + options::options_wire_len(&self.options) + self.payload.len(),
        );
        self.encode_into(wscale_shift, &mut out)?;
        Ok(out)
    }

    /// Encode by *appending* to `out` — the zero-copy entry point taking a
    /// pooled buffer (anything dereferencing to `Vec<u8>`), so the hot path
    /// never allocates a fresh `Vec` per segment.
    ///
    /// On error `out` is truncated back to its original length.
    pub fn encode_into(
        &self,
        wscale_shift: u8,
        out: &mut Vec<u8>,
    ) -> Result<(), options::OptionSpaceExceeded> {
        let base = out.len();
        out.extend_from_slice(&self.tuple.src.port.to_be_bytes());
        out.extend_from_slice(&self.tuple.dst.port.to_be_bytes());
        out.extend_from_slice(&self.seq.0.to_be_bytes());
        out.extend_from_slice(&self.ack.0.to_be_bytes());
        out.push(0); // data offset, patched once the options are in
        out.push(self.flags.to_bits());
        let wire_window = (self.window >> wscale_shift).min(u32::from(u16::MAX)) as u16;
        out.extend_from_slice(&wire_window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        if let Err(e) = options::encode_options_into(&self.options, out) {
            out.truncate(base);
            return Err(e);
        }
        let data_offset_words = (out.len() - base) / 4;
        out[base + 12] = (data_offset_words as u8) << 4;
        out.extend_from_slice(&self.payload);

        // TCP checksum over pseudo-header + segment.
        let seg = &out[base..];
        let mut sum = 0u32;
        sum = crate::checksum::add_u32(sum, self.tuple.src.addr);
        sum = crate::checksum::add_u32(sum, self.tuple.dst.addr);
        sum = crate::checksum::add_u16(sum, 6); // protocol TCP
        sum = crate::checksum::add_u16(sum, seg.len() as u16);
        sum = crate::checksum::ones_complement_add(sum, seg);
        let ck = crate::checksum::fold(sum);
        out[base + 16..base + 18].copy_from_slice(&ck.to_be_bytes());
        Ok(())
    }

    /// Decode from wire bytes produced by [`TcpSegment::encode`].
    ///
    /// `src_addr`/`dst_addr` come from the (conceptual) IP header;
    /// `wscale_shift` re-expands the 16-bit window field.
    pub fn decode(
        bytes: &[u8],
        src_addr: u32,
        dst_addr: u32,
        wscale_shift: u8,
    ) -> Option<TcpSegment> {
        let (header, data_offset) = parse_header(bytes, src_addr, dst_addr, wscale_shift)?;
        let options = options::decode_options(&bytes[TCP_HEADER_LEN..data_offset]);
        let payload = Bytes::copy_from_slice(&bytes[data_offset..]);
        Some(TcpSegment {
            payload,
            options,
            ..header
        })
    }

    /// Decode a datagram held in shared storage, taking the payload as a
    /// zero-copy slice of `bytes` — the receive-path twin of
    /// [`TcpSegment::encode_into`]. The payload keeps the backing buffer
    /// (e.g. a pooled receive buffer) alive for as long as it flows through
    /// the reorder queue and up to the application.
    pub fn decode_view(
        bytes: &Bytes,
        src_addr: u32,
        dst_addr: u32,
        wscale_shift: u8,
    ) -> Option<TcpSegment> {
        let (header, data_offset) = parse_header(bytes, src_addr, dst_addr, wscale_shift)?;
        let options = options::decode_options(&bytes[TCP_HEADER_LEN..data_offset]);
        let payload = bytes.slice(data_offset..);
        Some(TcpSegment {
            payload,
            options,
            ..header
        })
    }

    /// Decode into an existing segment, reusing its `options` Vec and taking
    /// the payload as a zero-copy slice of `bytes`. With a recycled `seg`
    /// and pooled `bytes`, steady-state decode performs no heap allocation.
    ///
    /// Returns `false` (leaving `seg` in an unspecified but valid state)
    /// when the bytes don't parse.
    pub fn decode_view_into(
        bytes: &Bytes,
        src_addr: u32,
        dst_addr: u32,
        wscale_shift: u8,
        seg: &mut TcpSegment,
    ) -> bool {
        let Some((header, data_offset)) = parse_header(bytes, src_addr, dst_addr, wscale_shift)
        else {
            return false;
        };
        seg.tuple = header.tuple;
        seg.seq = header.seq;
        seg.ack = header.ack;
        seg.flags = header.flags;
        seg.window = header.window;
        options::decode_options_into(&bytes[TCP_HEADER_LEN..data_offset], &mut seg.options);
        seg.payload = bytes.slice(data_offset..);
        true
    }

    /// Decode wire bytes with the TCP checksum verified first.
    ///
    /// [`TcpSegment::decode`] trusts its input (simulator segments never
    /// bit-rot); a real receive path must not. Any truncation or bit flip
    /// between [`TcpSegment::encode`] and here is rejected: truncation is
    /// caught structurally or by the pseudo-header length term, and a flip
    /// of any single bit always changes the ones-complement sum.
    pub fn decode_verified(
        bytes: &[u8],
        src_addr: u32,
        dst_addr: u32,
        wscale_shift: u8,
    ) -> Result<TcpSegment, WireDecodeError> {
        verify_wire(bytes, src_addr, dst_addr)?;
        TcpSegment::decode(bytes, src_addr, dst_addr, wscale_shift)
            .ok_or(WireDecodeError::Malformed)
    }

    /// Checksum-verified zero-copy decode: [`TcpSegment::decode_verified`]
    /// semantics with the payload sliced out of `bytes` rather than copied.
    pub fn decode_verified_view(
        bytes: &Bytes,
        src_addr: u32,
        dst_addr: u32,
        wscale_shift: u8,
    ) -> Result<TcpSegment, WireDecodeError> {
        verify_wire(bytes, src_addr, dst_addr)?;
        TcpSegment::decode_view(bytes, src_addr, dst_addr, wscale_shift)
            .ok_or(WireDecodeError::Malformed)
    }

    /// Checksum-verified decode into a reusable segment: the fully
    /// allocation-free receive path ([`TcpSegment::decode_view_into`] with
    /// [`TcpSegment::decode_verified`]'s integrity guarantee).
    pub fn decode_verified_view_into(
        bytes: &Bytes,
        src_addr: u32,
        dst_addr: u32,
        wscale_shift: u8,
        seg: &mut TcpSegment,
    ) -> Result<(), WireDecodeError> {
        verify_wire(bytes, src_addr, dst_addr)?;
        if TcpSegment::decode_view_into(bytes, src_addr, dst_addr, wscale_shift, seg) {
            Ok(())
        } else {
            Err(WireDecodeError::Malformed)
        }
    }
}

/// Structural + checksum validation shared by the verified decoders.
fn verify_wire(bytes: &[u8], src_addr: u32, dst_addr: u32) -> Result<(), WireDecodeError> {
    if bytes.len() < TCP_HEADER_LEN {
        return Err(WireDecodeError::Truncated);
    }
    let data_offset = ((bytes[12] >> 4) as usize) * 4;
    if data_offset < TCP_HEADER_LEN {
        return Err(WireDecodeError::Malformed);
    }
    if bytes.len() < data_offset {
        return Err(WireDecodeError::Truncated);
    }
    let mut sum = 0u32;
    sum = crate::checksum::add_u32(sum, src_addr);
    sum = crate::checksum::add_u32(sum, dst_addr);
    sum = crate::checksum::add_u16(sum, 6); // protocol TCP
    sum = crate::checksum::add_u16(sum, bytes.len() as u16);
    sum = crate::checksum::ones_complement_add(sum, bytes);
    if crate::checksum::fold(sum) != 0 {
        return Err(WireDecodeError::BadChecksum);
    }
    Ok(())
}

/// Parse the fixed 20-byte header, returning a payload-less segment and the
/// data offset. Shared by the copying and view decoders.
fn parse_header(
    bytes: &[u8],
    src_addr: u32,
    dst_addr: u32,
    wscale_shift: u8,
) -> Option<(TcpSegment, usize)> {
    if bytes.len() < TCP_HEADER_LEN {
        return None;
    }
    let src_port = u16::from_be_bytes([bytes[0], bytes[1]]);
    let dst_port = u16::from_be_bytes([bytes[2], bytes[3]]);
    let seq = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let ack = u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let data_offset = ((bytes[12] >> 4) as usize) * 4;
    if data_offset < TCP_HEADER_LEN || bytes.len() < data_offset {
        return None;
    }
    let flags = TcpFlags::from_bits(bytes[13]);
    let window = u32::from(u16::from_be_bytes([bytes[14], bytes[15]])) << wscale_shift;
    let header = TcpSegment {
        tuple: FourTuple {
            src: Endpoint::new(src_addr, src_port),
            dst: Endpoint::new(dst_addr, dst_port),
        },
        seq: SeqNum(seq),
        ack: SeqNum(ack),
        flags,
        window,
        options: Vec::new(),
        payload: Bytes::new(),
    };
    Some((header, data_offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MptcpOption;

    fn tuple() -> FourTuple {
        FourTuple {
            src: Endpoint::new(0x0a000001, 4242),
            dst: Endpoint::new(0x0a000002, 80),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut seg = TcpSegment::new(tuple(), SeqNum(1000), SeqNum(2000), TcpFlags::ACK);
        seg.window = 65535;
        seg.payload = Bytes::from_static(b"hello, multipath world");
        seg.options = vec![TcpOption::Timestamps { val: 1, ecr: 2 }];
        let wire = seg.encode(0).unwrap();
        let back = TcpSegment::decode(&wire, 0x0a000001, 0x0a000002, 0).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn window_scaling_applied_at_wire() {
        let mut seg = TcpSegment::new(tuple(), SeqNum(0), SeqNum(0), TcpFlags::ACK);
        seg.window = 1 << 20; // 1 MiB: needs scaling to fit 16 bits
        let wire = seg.encode(7).unwrap();
        let back = TcpSegment::decode(&wire, 0x0a000001, 0x0a000002, 7).unwrap();
        assert_eq!(back.window, 1 << 20);
        // Without the scale shift applied by the receiver, the window reads
        // 128x smaller — exactly the RFC 1323 firewall hazard from §7.
        let naive = TcpSegment::decode(&wire, 0x0a000001, 0x0a000002, 0).unwrap();
        assert_eq!(naive.window, (1 << 20) >> 7);
    }

    #[test]
    fn seq_len_counts_syn_fin() {
        let mut seg = TcpSegment::new(tuple(), SeqNum(5), SeqNum(0), TcpFlags::SYN);
        assert_eq!(seg.seq_len(), 1);
        seg.flags.fin = true;
        seg.payload = Bytes::from_static(b"xyz");
        assert_eq!(seg.seq_len(), 5);
        assert_eq!(seg.seq_end(), SeqNum(10));
    }

    #[test]
    fn mptcp_option_accessor() {
        let mut seg = TcpSegment::new(tuple(), SeqNum(0), SeqNum(0), TcpFlags::SYN);
        assert!(seg.mptcp_option().is_none());
        seg.options.push(TcpOption::Mss(1460));
        seg.options.push(TcpOption::Mptcp(MptcpOption::MpCapable {
            version: 0,
            checksum_required: true,
            sender_key: 7,
            receiver_key: None,
        }));
        assert!(matches!(
            seg.mptcp_option(),
            Some(MptcpOption::MpCapable { sender_key: 7, .. })
        ));
    }

    #[test]
    fn decode_rejects_short_or_corrupt() {
        assert!(TcpSegment::decode(&[0u8; 10], 0, 0, 0).is_none());
        let seg = TcpSegment::new(tuple(), SeqNum(0), SeqNum(0), TcpFlags::ACK);
        let mut wire = seg.encode(0).unwrap();
        wire[12] = 0x20; // data offset 8 words = 32 bytes > actual length
        assert!(TcpSegment::decode(&wire, 0, 0, 0).is_none());
    }

    #[test]
    fn wire_len_accounts_headers_and_padding() {
        let mut seg = TcpSegment::new(tuple(), SeqNum(0), SeqNum(0), TcpFlags::ACK);
        assert_eq!(seg.wire_len(), 40);
        seg.options.push(TcpOption::WindowScale(2)); // 3 bytes -> padded to 4
        assert_eq!(seg.wire_len(), 44);
        seg.payload = Bytes::from_static(&[0; 100]);
        assert_eq!(seg.wire_len(), 144);
    }

    #[test]
    fn encode_into_appends_and_matches_encode() {
        let mut seg = TcpSegment::new(tuple(), SeqNum(77), SeqNum(88), TcpFlags::ACK);
        seg.window = 4096;
        seg.payload = Bytes::from_static(b"payload bytes");
        seg.options = vec![TcpOption::Timestamps { val: 3, ecr: 4 }];
        let wire = seg.encode(2).unwrap();
        let mut buf = vec![0xAA, 0xBB]; // pre-existing bytes must survive
        seg.encode_into(2, &mut buf).unwrap();
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        assert_eq!(&buf[2..], &wire[..]);
    }

    #[test]
    fn encode_into_truncates_on_option_overflow() {
        let dss = TcpOption::Mptcp(MptcpOption::Dss {
            data_ack: Some(1),
            mapping: Some(crate::DssMapping {
                dsn: 2,
                subflow_seq: 3,
                len: 4,
                checksum: Some(5),
            }),
            data_fin: false,
        });
        let mut seg = TcpSegment::new(tuple(), SeqNum(0), SeqNum(0), TcpFlags::ACK);
        seg.options = vec![dss.clone(), dss];
        let mut buf = vec![1, 2, 3];
        assert!(seg.encode_into(0, &mut buf).is_err());
        assert_eq!(buf, vec![1, 2, 3], "failed encode leaves buffer intact");
    }

    #[test]
    fn view_decoders_match_copy_decoder_without_copying() {
        let mut seg = TcpSegment::new(tuple(), SeqNum(9), SeqNum(10), TcpFlags::ACK);
        seg.payload = Bytes::from_static(b"zero copy me");
        seg.options = vec![TcpOption::Timestamps { val: 1, ecr: 2 }];
        let wire = Bytes::from(seg.encode(0).unwrap());

        let copied = TcpSegment::decode(&wire, 0x0a000001, 0x0a000002, 0).unwrap();
        let viewed = TcpSegment::decode_view(&wire, 0x0a000001, 0x0a000002, 0).unwrap();
        assert_eq!(copied, viewed);
        let verified = TcpSegment::decode_verified_view(&wire, 0x0a000001, 0x0a000002, 0).unwrap();
        assert_eq!(copied, verified);

        // The view's payload is a slice of the wire buffer, not a copy.
        let off = wire.len() - seg.payload.len();
        assert_eq!(
            viewed.payload.as_ref().as_ptr(),
            wire[off..].as_ptr(),
            "payload aliases the datagram storage"
        );

        // Reusable-segment decode matches too, and reuses the options Vec.
        let mut reused = TcpSegment::new(tuple(), SeqNum(0), SeqNum(0), TcpFlags::RST);
        reused.options.reserve(8);
        let cap = reused.options.capacity();
        assert!(TcpSegment::decode_view_into(
            &wire,
            0x0a000001,
            0x0a000002,
            0,
            &mut reused
        ));
        assert_eq!(reused, copied);
        assert_eq!(reused.options.capacity(), cap);
        assert!(!TcpSegment::decode_view_into(
            &wire.slice(..10),
            0x0a000001,
            0x0a000002,
            0,
            &mut reused
        ));
    }

    #[test]
    fn tuple_reversal() {
        let t = tuple();
        assert_eq!(t.reversed().reversed(), t);
        assert_eq!(t.reversed().src, t.dst);
    }
}
