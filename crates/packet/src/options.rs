//! TCP option codec, including the 40-byte option-space constraint.
//!
//! The option space limit is load-bearing for MPTCP: §3.3.5 notes that when
//! a middlebox coalesces two segments it can keep only one DSS mapping, and
//! the sender must recover by retransmitting the unmapped bytes. We enforce
//! the limit at encode time so the stack can never emit an illegal header.

use crate::mptcp_opts::MptcpOption;

/// Maximum bytes of TCP options in a header (data offset is 4 bits of
/// 32-bit words: 15*4 - 20 = 40).
pub const MAX_OPTIONS_LEN: usize = 40;

/// TCP option kinds we encode/decode natively.
pub mod kind {
    pub const EOL: u8 = 0;
    pub const NOP: u8 = 1;
    pub const MSS: u8 = 2;
    pub const WSCALE: u8 = 3;
    pub const SACK_PERMITTED: u8 = 4;
    pub const SACK: u8 = 5;
    pub const TIMESTAMPS: u8 = 8;
    pub const MPTCP: u8 = 30;
}

/// A parsed TCP option.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TcpOption {
    /// Maximum segment size (SYN only).
    Mss(u16),
    /// Window scale shift (SYN only).
    WindowScale(u8),
    /// SACK permitted (SYN only).
    SackPermitted,
    /// Selective acknowledgment blocks (left, right) in absolute sequence.
    Sack(Vec<(u32, u32)>),
    /// RFC 1323 timestamps.
    Timestamps {
        /// Sender's timestamp value.
        val: u32,
        /// Echoed timestamp.
        ecr: u32,
    },
    /// Any MPTCP (kind 30) option.
    Mptcp(MptcpOption),
    /// An option we don't understand — carried opaquely, like a middlebox
    /// that forwards unknown options would.
    Unknown {
        /// Option kind byte.
        kind: u8,
        /// Option value (excluding kind and length bytes).
        data: Vec<u8>,
    },
}

impl TcpOption {
    /// Encoded length in bytes (kind + len + value), before NOP padding.
    pub fn encoded_len(&self) -> usize {
        match self {
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Sack(blocks) => 2 + blocks.len() * 8,
            TcpOption::Timestamps { .. } => 10,
            TcpOption::Mptcp(m) => 2 + m.value_len(),
            TcpOption::Unknown { data, .. } => 2 + data.len(),
        }
    }

    /// Append the wire encoding of this option to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TcpOption::Mss(mss) => {
                out.extend_from_slice(&[kind::MSS, 4]);
                out.extend_from_slice(&mss.to_be_bytes());
            }
            TcpOption::WindowScale(shift) => {
                out.extend_from_slice(&[kind::WSCALE, 3, *shift]);
            }
            TcpOption::SackPermitted => {
                out.extend_from_slice(&[kind::SACK_PERMITTED, 2]);
            }
            TcpOption::Sack(blocks) => {
                out.extend_from_slice(&[kind::SACK, (2 + blocks.len() * 8) as u8]);
                for (l, r) in blocks {
                    out.extend_from_slice(&l.to_be_bytes());
                    out.extend_from_slice(&r.to_be_bytes());
                }
            }
            TcpOption::Timestamps { val, ecr } => {
                out.extend_from_slice(&[kind::TIMESTAMPS, 10]);
                out.extend_from_slice(&val.to_be_bytes());
                out.extend_from_slice(&ecr.to_be_bytes());
            }
            TcpOption::Mptcp(m) => {
                // Encode the value straight into `out` — no scratch Vec.
                out.push(kind::MPTCP);
                out.push((2 + m.value_len()) as u8);
                let before = out.len();
                m.encode_value(out);
                debug_assert_eq!(out.len() - before, m.value_len());
            }
            TcpOption::Unknown { kind, data } => {
                out.push(*kind);
                out.push((2 + data.len()) as u8);
                out.extend_from_slice(data);
            }
        }
    }

    /// Is this an MPTCP option?
    pub fn is_mptcp(&self) -> bool {
        matches!(self, TcpOption::Mptcp(_))
    }
}

/// Error returned when a segment's options exceed the 40-byte TCP limit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptionSpaceExceeded {
    /// Total bytes the options would need.
    pub needed: usize,
}

impl std::fmt::Display for OptionSpaceExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TCP options need {} bytes but only {MAX_OPTIONS_LEN} fit",
            self.needed
        )
    }
}

impl std::error::Error for OptionSpaceExceeded {}

/// Encode a list of options, NOP-padded to a multiple of four bytes.
///
/// Fails if the encoded options exceed [`MAX_OPTIONS_LEN`].
pub fn encode_options(opts: &[TcpOption]) -> Result<Vec<u8>, OptionSpaceExceeded> {
    let mut out = Vec::with_capacity(MAX_OPTIONS_LEN);
    encode_options_into(opts, &mut out)?;
    Ok(out)
}

/// Append the NOP-padded option block to `out` (the zero-copy entry point:
/// `out` is typically a pooled segment buffer).
///
/// Fails — leaving `out` truncated back to its original length — if the
/// encoded options exceed [`MAX_OPTIONS_LEN`].
pub fn encode_options_into(
    opts: &[TcpOption],
    out: &mut Vec<u8>,
) -> Result<(), OptionSpaceExceeded> {
    let base = out.len();
    for o in opts {
        o.encode(out);
    }
    while !(out.len() - base).is_multiple_of(4) {
        out.push(kind::NOP);
    }
    let len = out.len() - base;
    if len > MAX_OPTIONS_LEN {
        out.truncate(base);
        return Err(OptionSpaceExceeded { needed: len });
    }
    Ok(())
}

/// Total padded wire length of an option list.
pub fn options_wire_len(opts: &[TcpOption]) -> usize {
    let raw: usize = opts.iter().map(|o| o.encoded_len()).sum();
    raw.div_ceil(4) * 4
}

/// Parse a TCP option block. Unknown kinds become [`TcpOption::Unknown`];
/// malformed trailing bytes terminate the parse (defensive, per the paper's
/// middlebox-hardening stance).
pub fn decode_options(bytes: &[u8]) -> Vec<TcpOption> {
    let mut opts = Vec::new();
    decode_options_into(bytes, &mut opts);
    opts
}

/// Parse a TCP option block into a caller-provided `Vec`, clearing it first.
/// Reusing the same `Vec` across segments keeps steady-state decode free of
/// per-segment allocations (options that carry no inner heap data — DSS,
/// timestamps, MSS — then cost nothing to push).
pub fn decode_options_into(mut bytes: &[u8], opts: &mut Vec<TcpOption>) {
    opts.clear();
    while let Some(&k) = bytes.first() {
        match k {
            kind::EOL => break,
            kind::NOP => {
                bytes = &bytes[1..];
                continue;
            }
            _ => {}
        }
        let Some(&len) = bytes.get(1) else { break };
        let len = len as usize;
        if len < 2 || bytes.len() < len {
            break;
        }
        let value = &bytes[2..len];
        let opt = match k {
            kind::MSS if value.len() == 2 => {
                TcpOption::Mss(u16::from_be_bytes([value[0], value[1]]))
            }
            kind::WSCALE if value.len() == 1 => TcpOption::WindowScale(value[0]),
            kind::SACK_PERMITTED if value.is_empty() => TcpOption::SackPermitted,
            kind::SACK if value.len().is_multiple_of(8) => {
                let blocks = value
                    .chunks_exact(8)
                    .map(|c| {
                        (
                            u32::from_be_bytes([c[0], c[1], c[2], c[3]]),
                            u32::from_be_bytes([c[4], c[5], c[6], c[7]]),
                        )
                    })
                    .collect();
                TcpOption::Sack(blocks)
            }
            kind::TIMESTAMPS if value.len() == 8 => TcpOption::Timestamps {
                val: u32::from_be_bytes([value[0], value[1], value[2], value[3]]),
                ecr: u32::from_be_bytes([value[4], value[5], value[6], value[7]]),
            },
            kind::MPTCP => match MptcpOption::decode_value(value) {
                Some(m) => TcpOption::Mptcp(m),
                None => TcpOption::Unknown {
                    kind: k,
                    data: value.to_vec(),
                },
            },
            _ => TcpOption::Unknown {
                kind: k,
                data: value.to_vec(),
            },
        };
        opts.push(opt);
        bytes = &bytes[len..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mptcp_opts::DssMapping;

    #[test]
    fn syn_options_roundtrip() {
        let opts = vec![
            TcpOption::Mss(1460),
            TcpOption::WindowScale(7),
            TcpOption::SackPermitted,
            TcpOption::Mptcp(MptcpOption::MpCapable {
                version: 0,
                checksum_required: true,
                sender_key: 0xaa,
                receiver_key: None,
            }),
        ];
        let wire = encode_options(&opts).unwrap();
        assert_eq!(wire.len() % 4, 0);
        assert_eq!(decode_options(&wire), opts);
    }

    #[test]
    fn dss_plus_timestamps_fit() {
        // The tightest common case: full DSS (with data ack, 8-byte DSN
        // mapping and checksum) plus timestamps must fit in 40 bytes.
        let opts = vec![
            TcpOption::Mptcp(MptcpOption::Dss {
                data_ack: Some(1),
                mapping: Some(DssMapping {
                    dsn: 2,
                    subflow_seq: 3,
                    len: 4,
                    checksum: Some(5),
                }),
                data_fin: false,
            }),
            TcpOption::Timestamps { val: 1, ecr: 2 },
        ];
        let wire = encode_options(&opts).unwrap();
        assert!(wire.len() <= MAX_OPTIONS_LEN);
        assert_eq!(decode_options(&wire), opts);
    }

    #[test]
    fn option_space_overflow_detected() {
        // Two full DSS options with checksums cannot coexist: this is why a
        // coalescing middlebox must drop one mapping (§3.3.5).
        let dss = TcpOption::Mptcp(MptcpOption::Dss {
            data_ack: Some(1),
            mapping: Some(DssMapping {
                dsn: 2,
                subflow_seq: 3,
                len: 4,
                checksum: Some(5),
            }),
            data_fin: false,
        });
        let err = encode_options(&[dss.clone(), dss]).unwrap_err();
        assert!(err.needed > MAX_OPTIONS_LEN);
    }

    #[test]
    fn unknown_options_carried_opaquely() {
        let opts = vec![TcpOption::Unknown {
            kind: 99,
            data: vec![1, 2, 3],
        }];
        let wire = encode_options(&opts).unwrap();
        assert_eq!(decode_options(&wire), opts);
    }

    #[test]
    fn truncated_option_block_stops_cleanly() {
        // kind=MSS, len=4, but only one value byte present.
        let bytes = [kind::MSS, 4, 0x05];
        assert!(decode_options(&bytes).is_empty());
    }

    #[test]
    fn eol_terminates() {
        let mut wire = encode_options(&[TcpOption::SackPermitted]).unwrap();
        wire[2] = kind::EOL; // the first padding NOP becomes EOL
        wire.extend_from_slice(&[0xde, 0xad]); // garbage after EOL ignored
        assert_eq!(decode_options(&wire), vec![TcpOption::SackPermitted]);
    }

    #[test]
    fn sack_blocks_roundtrip() {
        let opts = vec![TcpOption::Sack(vec![(100, 200), (300, 400)])];
        let wire = encode_options(&opts).unwrap();
        assert_eq!(decode_options(&wire), opts);
    }

    #[test]
    fn wire_len_matches_encoding() {
        let opts = vec![
            TcpOption::Mss(1460),
            TcpOption::WindowScale(7),
            TcpOption::Timestamps { val: 9, ecr: 8 },
        ];
        assert_eq!(
            options_wire_len(&opts),
            encode_options(&opts).unwrap().len()
        );
    }
}
