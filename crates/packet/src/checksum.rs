//! Internet ones-complement checksums.
//!
//! MPTCP reuses TCP's 16-bit ones-complement checksum for the DSS option so
//! that the (expensive) pass over the payload is done only once: the payload
//! sum is folded into both the TCP checksum and the DSS checksum over an
//! MPTCP pseudo-header (§3.3.6 of the paper). This module provides the raw
//! sum, the fold, and the DSS pseudo-header checksum.

/// Accumulate the ones-complement sum of `data` into `sum`.
///
/// `sum` is a 32-bit accumulator carrying un-folded carries; start from `0`
/// (or a previous partial sum) and call [`fold`] at the end. Odd-length data
/// is virtually padded with a trailing zero byte, per RFC 1071.
#[inline]
pub fn ones_complement_add(mut sum: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Add a single big-endian 16-bit word to the accumulator.
#[inline]
pub fn add_u16(sum: u32, word: u16) -> u32 {
    sum + u32::from(word)
}

/// Add a big-endian 32-bit word to the accumulator.
#[inline]
pub fn add_u32(sum: u32, word: u32) -> u32 {
    sum + (word >> 16) + (word & 0xffff)
}

/// Add a big-endian 64-bit word to the accumulator.
#[inline]
pub fn add_u64(sum: u32, word: u64) -> u32 {
    add_u32(add_u32(sum, (word >> 32) as u32), word as u32)
}

/// Fold the 32-bit accumulator into the final 16-bit ones-complement value.
#[inline]
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Compute the ones-complement checksum of a standalone buffer.
#[inline]
pub fn checksum(data: &[u8]) -> u16 {
    fold(ones_complement_add(0, data))
}

/// Compute the DSS checksum over the MPTCP pseudo-header and payload.
///
/// The pseudo-header covers the 64-bit data sequence number, the 32-bit
/// relative subflow sequence number, the 16-bit data-level length and a
/// zero field, exactly mirroring RFC 6824 §3.3. A content-modifying
/// middlebox that rewrites payload bytes (or shifts lengths) breaks this
/// checksum, which is what triggers MPTCP's fallback machinery.
pub fn dss_checksum(dsn: u64, subflow_seq_rel: u32, data_len: u16, payload: &[u8]) -> u16 {
    let mut sum = 0u32;
    sum = add_u64(sum, dsn);
    sum = add_u32(sum, subflow_seq_rel);
    sum = add_u16(sum, data_len);
    // 16-bit zero checksum field contributes nothing.
    sum = ones_complement_add(sum, payload);
    fold(sum)
}

/// Verify a DSS checksum; returns `true` when the payload is unmodified.
pub fn dss_checksum_valid(
    dsn: u64,
    subflow_seq_rel: u32,
    data_len: u16,
    payload: &[u8],
    expected: u16,
) -> bool {
    dss_checksum(dsn, subflow_seq_rel, data_len, payload) == expected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The worked example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = ones_complement_add(0, &data);
        assert_eq!(sum & 0xfffff, 0x2ddf0);
        assert_eq!(fold(sum), !0xddf2u16);
    }

    #[test]
    fn empty_payload() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(
            checksum(&[0xab]),
            fold(ones_complement_add(0, &[0xab, 0x00]))
        );
    }

    #[test]
    fn dss_checksum_detects_payload_change() {
        let payload = b"USER anonymous\r\n";
        let ck = dss_checksum(1000, 1, payload.len() as u16, payload);
        assert!(dss_checksum_valid(
            1000,
            1,
            payload.len() as u16,
            payload,
            ck
        ));
        let modified = b"USER 10.0.0.0001\r\n";
        assert!(!dss_checksum_valid(
            1000,
            1,
            modified.len() as u16,
            modified,
            ck
        ));
    }

    #[test]
    fn dss_checksum_detects_mapping_shift() {
        let payload = b"hello world";
        let ck = dss_checksum(42, 7, payload.len() as u16, payload);
        assert!(!dss_checksum_valid(
            43,
            7,
            payload.len() as u16,
            payload,
            ck
        ));
        assert!(!dss_checksum_valid(
            42,
            8,
            payload.len() as u16,
            payload,
            ck
        ));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let a = b"abcdef";
        let b = b"ghijklm";
        let mut whole = Vec::new();
        whole.extend_from_slice(a);
        whole.extend_from_slice(b);
        // Incremental summation is only equal when the boundary is even.
        let sum = ones_complement_add(ones_complement_add(0, a), b);
        assert_eq!(fold(sum), checksum(&whole));
    }
}
