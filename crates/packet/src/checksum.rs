//! Internet ones-complement checksums.
//!
//! MPTCP reuses TCP's 16-bit ones-complement checksum for the DSS option so
//! that the (expensive) pass over the payload is done only once: the payload
//! sum is folded into both the TCP checksum and the DSS checksum over an
//! MPTCP pseudo-header (§3.3.6 of the paper). This module provides the raw
//! sum, the fold, and the DSS pseudo-header checksum.

/// Accumulate the ones-complement sum of `data` into `sum`.
///
/// `sum` is a 32-bit accumulator carrying un-folded carries; start from `0`
/// (or a previous partial sum) and call [`fold`] at the end. Odd-length data
/// is virtually padded with a trailing zero byte, per RFC 1071.
///
/// Internally this sums many bytes per add in u64 lanes — AVX-512 and AVX2
/// kernels (runtime-detected on x86-64) widening 32-bit words into 64-bit
/// vector accumulators, with a portable four-lane scalar kernel everywhere
/// else — rather than one 16-bit word at a time; the perf suite pins the
/// difference. The wide sum is taken in native byte order and corrected
/// once at the end: a ones-complement sum is endian-independent up to a
/// byte swap (RFC 1071 §2.B), so on little-endian hosts the folded 16-bit
/// result is simply `swap_bytes()`d back to the big-endian word order the
/// protocol defines.
#[inline]
pub fn ones_complement_add(sum: u32, data: &[u8]) -> u32 {
    sum + u32::from(wide_sum(data))
}

/// Folded (but not complemented) 16-bit ones-complement sum of `data`,
/// computed with u64 lanes. Returns a big-endian-word-order sum; adding it
/// into a u32 accumulator is valid because ones-complement addition is
/// associative and any partial fold is congruent mod 2^16 − 1.
fn wide_sum(data: &[u8]) -> u16 {
    let (acc_simd, rest_simd) = bulk_sum_simd(data);
    let (acc_scalar, rest) = bulk_sum_portable(rest_simd);
    // Both partials are folded below 2^33, so the combined accumulator and
    // the < 8 bytes of tail adds below cannot overflow a u64.
    let mut acc = acc_simd + acc_scalar;

    // Tail (< 8 bytes): native-endian 16-bit words, odd byte zero-padded.
    let mut tail_chunks = rest.chunks_exact(2);
    for c in &mut tail_chunks {
        acc += u64::from(u16::from_ne_bytes([c[0], c[1]]));
    }
    if let [last] = tail_chunks.remainder() {
        // The pad byte is the *second* byte of the final 16-bit word in
        // wire order, i.e. the high byte of a little-endian native word.
        acc += u64::from(u16::from_ne_bytes([*last, 0]));
    }

    let acc = (acc & 0xffff_ffff) + (acc >> 32);
    let acc32 = ((acc & 0xffff_ffff) + (acc >> 32)) as u32;
    let mut s16 = (acc32 & 0xffff) + (acc32 >> 16);
    while s16 >> 16 != 0 {
        s16 = (s16 & 0xffff) + (s16 >> 16);
    }
    let native = s16 as u16;
    // Native word order → protocol (big-endian) word order.
    if cfg!(target_endian = "little") {
        native.swap_bytes()
    } else {
        native
    }
}

/// Portable bulk kernel: four independent u64 lanes over 32-byte chunks,
/// explicit end-around carries, then single u64 words. Returns the partial
/// sum folded below 2^33 plus the unprocessed tail (< 8 bytes).
fn bulk_sum_portable(data: &[u8]) -> (u64, &[u8]) {
    // Independent lanes break the dependency chain so several adds stay in
    // flight per cycle.
    let mut lanes = [0u64; 4];
    let mut carries = 0u64;
    let mut chunks32 = data.chunks_exact(32);
    for c in &mut chunks32 {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_ne_bytes(c[i * 8..i * 8 + 8].try_into().unwrap());
            let (s, carry) = lane.overflowing_add(w);
            *lane = s;
            carries += u64::from(carry);
        }
    }
    let mut rest = chunks32.remainder();
    let mut chunks8 = rest.chunks_exact(8);
    for c in &mut chunks8 {
        let w = u64::from_ne_bytes(c.try_into().unwrap());
        let (s, carry) = lanes[0].overflowing_add(w);
        lanes[0] = s;
        carries += u64::from(carry);
    }
    rest = chunks8.remainder();

    // Collapse lanes + carries into one end-around-carry u64 sum, then
    // fold below 2^33 (2^32 ≡ 1 mod 2^16 − 1 keeps folds congruent).
    let mut acc = carries;
    for lane in lanes {
        let (s, carry) = acc.overflowing_add(lane);
        acc = s + u64::from(carry);
    }
    let s = (acc & 0xffff_ffff) + (acc >> 32);
    ((s & 0xffff_ffff) + (s >> 32), rest)
}

/// SIMD bulk kernel dispatch: on x86-64, sum whole 128-byte blocks with
/// AVX-512 and whole 64-byte blocks with AVX2 (each runtime-detected,
/// cascading widest-first); otherwise pass the input through untouched.
/// Returns a partial sum below 2^34 plus the remainder (< 64 bytes when
/// any kernel ran).
#[cfg(target_arch = "x86_64")]
fn bulk_sum_simd(data: &[u8]) -> (u64, &[u8]) {
    let mut acc = 0u64;
    let mut rest = data;
    if rest.len() >= 64
        && std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512bw")
    {
        // SAFETY: AVX-512F + AVX-512BW support was just verified at
        // runtime (BW supplies the byte-masked tail load).
        let (a, r) = unsafe { bulk_sum_avx512(rest) };
        acc += a;
        rest = r;
    }
    if rest.len() >= 64 && std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        let (a, r) = unsafe { bulk_sum_avx2(rest) };
        acc += a;
        rest = r;
    }
    (acc, rest)
}

#[cfg(not(target_arch = "x86_64"))]
fn bulk_sum_simd(data: &[u8]) -> (u64, &[u8]) {
    (0, data)
}

/// AVX-512 kernel: two 64-byte loads per iteration, each register's 32-bit
/// words split into 64-bit lanes by mask/shift (plain ALU ops, no shuffle
/// port) and accumulated with 64-bit vector adds. No lane can carry below
/// 2^31 input bytes, far beyond any segment. The tail is consumed in the
/// same registers — one plain 64-byte block, then a byte-masked load
/// (AVX-512BW) whose zero fill is exactly the odd-byte pad semantics — so
/// this kernel sums the *entire* input and returns an empty remainder.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn bulk_sum_avx512(data: &[u8]) -> (u64, &[u8]) {
    use std::arch::x86_64::*;
    let mut chunks = data.chunks_exact(128);
    // SAFETY (for the whole function): loads are unaligned (`loadu`) and
    // every pointer stays within the chunk handed out by the iterator or
    // the bounds-checked remainder slice; the final load reads only the
    // `rest.len()` bytes its mask enables.
    unsafe {
        let mask = _mm512_set1_epi64(0xffff_ffff);
        let zero = _mm512_setzero_si512();
        // Four independent accumulators keep every dependency chain at one
        // vector add per iteration.
        let mut acc0 = zero;
        let mut acc1 = zero;
        let mut acc2 = zero;
        let mut acc3 = zero;
        for c in &mut chunks {
            let a = _mm512_loadu_si512(c.as_ptr() as *const __m512i);
            let b = _mm512_loadu_si512(c.as_ptr().add(64) as *const __m512i);
            acc0 = _mm512_add_epi64(acc0, _mm512_and_si512(a, mask));
            acc1 = _mm512_add_epi64(acc1, _mm512_srli_epi64(a, 32));
            acc2 = _mm512_add_epi64(acc2, _mm512_and_si512(b, mask));
            acc3 = _mm512_add_epi64(acc3, _mm512_srli_epi64(b, 32));
        }
        let mut rest = chunks.remainder();
        if rest.len() >= 64 {
            let a = _mm512_loadu_si512(rest.as_ptr() as *const __m512i);
            acc0 = _mm512_add_epi64(acc0, _mm512_and_si512(a, mask));
            acc1 = _mm512_add_epi64(acc1, _mm512_srli_epi64(a, 32));
            rest = &rest[64..];
        }
        if !rest.is_empty() {
            let k: __mmask64 = (1u64 << rest.len()) - 1;
            let a = _mm512_maskz_loadu_epi8(k, rest.as_ptr() as *const i8);
            acc2 = _mm512_add_epi64(acc2, _mm512_and_si512(a, mask));
            acc3 = _mm512_add_epi64(acc3, _mm512_srli_epi64(a, 32));
        }
        let sum = _mm512_add_epi64(_mm512_add_epi64(acc0, acc1), _mm512_add_epi64(acc2, acc3));
        // Each u64 lane stays below 2^60 for any real input, so the lane
        // sum cannot overflow; fold below 2^33 for the caller.
        let acc = _mm512_reduce_add_epi64(sum) as u64;
        let s = (acc & 0xffff_ffff) + (acc >> 32);
        ((s & 0xffff_ffff) + (s >> 32), &data[data.len()..])
    }
}

/// AVX2 kernel: two 32-byte loads per iteration, 32-bit words zero-widened
/// into 64-bit vector accumulators (no carries possible below 2^31 input
/// bytes, far beyond any segment).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn bulk_sum_avx2(data: &[u8]) -> (u64, &[u8]) {
    use std::arch::x86_64::*;
    let mut chunks = data.chunks_exact(64);
    // SAFETY (for the whole function): loads are unaligned (`loadu`) and
    // every pointer stays within the 64-byte chunk handed out by the
    // iterator.
    unsafe {
        let zero = _mm256_setzero_si256();
        // Four independent accumulators: one vector add per accumulator
        // per iteration keeps every dependency chain at one cycle.
        let mut acc0 = zero;
        let mut acc1 = zero;
        let mut acc2 = zero;
        let mut acc3 = zero;
        for c in &mut chunks {
            let a = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
            let b = _mm256_loadu_si256(c.as_ptr().add(32) as *const __m256i);
            acc0 = _mm256_add_epi64(acc0, _mm256_unpacklo_epi32(a, zero));
            acc1 = _mm256_add_epi64(acc1, _mm256_unpackhi_epi32(a, zero));
            acc2 = _mm256_add_epi64(acc2, _mm256_unpacklo_epi32(b, zero));
            acc3 = _mm256_add_epi64(acc3, _mm256_unpackhi_epi32(b, zero));
        }
        let sum = _mm256_add_epi64(_mm256_add_epi64(acc0, acc1), _mm256_add_epi64(acc2, acc3));
        let mut out = [0u64; 4];
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, sum);
        // Each u64 lane stays below 2^60 for any real input, so the plain
        // sum cannot overflow; fold below 2^33 for the caller.
        let acc: u64 = out.iter().sum();
        let s = (acc & 0xffff_ffff) + (acc >> 32);
        ((s & 0xffff_ffff) + (s >> 32), chunks.remainder())
    }
}

/// The original two-bytes-per-iteration sum, kept as the reference the
/// property tests compare the wide-word implementation against.
#[cfg(test)]
pub fn ones_complement_add_reference(mut sum: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Add a single big-endian 16-bit word to the accumulator.
#[inline]
pub fn add_u16(sum: u32, word: u16) -> u32 {
    sum + u32::from(word)
}

/// Add a big-endian 32-bit word to the accumulator.
#[inline]
pub fn add_u32(sum: u32, word: u32) -> u32 {
    sum + (word >> 16) + (word & 0xffff)
}

/// Add a big-endian 64-bit word to the accumulator.
#[inline]
pub fn add_u64(sum: u32, word: u64) -> u32 {
    add_u32(add_u32(sum, (word >> 32) as u32), word as u32)
}

/// Fold the 32-bit accumulator into the final 16-bit ones-complement value.
#[inline]
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Compute the ones-complement checksum of a standalone buffer.
#[inline]
pub fn checksum(data: &[u8]) -> u16 {
    fold(ones_complement_add(0, data))
}

/// Compute the DSS checksum over the MPTCP pseudo-header and payload.
///
/// The pseudo-header covers the 64-bit data sequence number, the 32-bit
/// relative subflow sequence number, the 16-bit data-level length and a
/// zero field, exactly mirroring RFC 6824 §3.3. A content-modifying
/// middlebox that rewrites payload bytes (or shifts lengths) breaks this
/// checksum, which is what triggers MPTCP's fallback machinery.
pub fn dss_checksum(dsn: u64, subflow_seq_rel: u32, data_len: u16, payload: &[u8]) -> u16 {
    let mut sum = 0u32;
    sum = add_u64(sum, dsn);
    sum = add_u32(sum, subflow_seq_rel);
    sum = add_u16(sum, data_len);
    // 16-bit zero checksum field contributes nothing.
    sum = ones_complement_add(sum, payload);
    fold(sum)
}

/// Verify a DSS checksum; returns `true` when the payload is unmodified.
pub fn dss_checksum_valid(
    dsn: u64,
    subflow_seq_rel: u32,
    data_len: u16,
    payload: &[u8],
    expected: u16,
) -> bool {
    dss_checksum(dsn, subflow_seq_rel, data_len, payload) == expected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The worked example from RFC 1071 §3: raw sum 0x2ddf0, which
        // folds to 0xddf2. The wide-word accumulator holds a partially
        // folded value (congruent mod 2^16 − 1), so compare after fold.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(ones_complement_add(0, &data)), !0xddf2u16);
        let reference = ones_complement_add_reference(0, &data);
        assert_eq!(reference & 0xfffff, 0x2ddf0);
        assert_eq!(fold(reference), !0xddf2u16);
    }

    #[test]
    fn wide_matches_reference_on_crafted_lengths() {
        // Every length class the wide path special-cases: empty, sub-word
        // tails, one full u64, the 32-byte lane boundary, and ±1 around it.
        let data: Vec<u8> = (0u32..257)
            .map(|i| (i.wrapping_mul(37) >> 3) as u8)
            .collect();
        for len in [
            0, 1, 2, 3, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 65, 255, 256, 257,
        ] {
            let d = &data[..len];
            assert_eq!(
                fold(ones_complement_add(0, d)),
                fold(ones_complement_add_reference(0, d)),
                "len {len}"
            );
        }
        // All-0xff input exercises maximal carry traffic.
        let ff = vec![0xffu8; 1500];
        assert_eq!(
            fold(ones_complement_add(0, &ff)),
            fold(ones_complement_add_reference(0, &ff))
        );
    }

    #[test]
    fn empty_payload() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(
            checksum(&[0xab]),
            fold(ones_complement_add(0, &[0xab, 0x00]))
        );
    }

    #[test]
    fn dss_checksum_detects_payload_change() {
        let payload = b"USER anonymous\r\n";
        let ck = dss_checksum(1000, 1, payload.len() as u16, payload);
        assert!(dss_checksum_valid(
            1000,
            1,
            payload.len() as u16,
            payload,
            ck
        ));
        let modified = b"USER 10.0.0.0001\r\n";
        assert!(!dss_checksum_valid(
            1000,
            1,
            modified.len() as u16,
            modified,
            ck
        ));
    }

    #[test]
    fn dss_checksum_detects_mapping_shift() {
        let payload = b"hello world";
        let ck = dss_checksum(42, 7, payload.len() as u16, payload);
        assert!(!dss_checksum_valid(
            43,
            7,
            payload.len() as u16,
            payload,
            ck
        ));
        assert!(!dss_checksum_valid(
            42,
            8,
            payload.len() as u16,
            payload,
            ck
        ));
    }

    proptest::proptest! {
        /// The wide-word sum equals the old 2-byte reference on arbitrary
        /// content, lengths, alignments (sub-slices shift the data relative
        /// to any 8/32-byte boundary), and non-zero initial accumulators.
        #[test]
        fn wide_equals_reference(
            data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..4096),
            offset in 0usize..64,
            initial in 0u32..0x1_0000,
        ) {
            let d = &data[offset.min(data.len())..];
            // Compare after fold: partial folds are congruent mod 2^16 − 1,
            // so the raw accumulators may differ while the checksum agrees.
            proptest::prop_assert_eq!(
                fold(ones_complement_add(initial, d)),
                fold(ones_complement_add_reference(initial, d))
            );
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let a = b"abcdef";
        let b = b"ghijklm";
        let mut whole = Vec::new();
        whole.extend_from_slice(a);
        whole.extend_from_slice(b);
        // Incremental summation is only equal when the boundary is even.
        let sum = ones_complement_add(ones_complement_add(0, a), b);
        assert_eq!(fold(sum), checksum(&whole));
    }
}
