//! A recycling buffer pool for the zero-copy segment pipeline.
//!
//! The paper's Figure 3 shows the per-byte costs (checksums) dominating
//! MPTCP's CPU bill; the per-*packet* costs next in line are allocator
//! traffic — a fresh `Vec<u8>` per encoded segment and per received
//! datagram. [`BufPool`] removes both: a checkout hands back a reusable
//! [`PooledBuf`], and [`PooledBuf::freeze`] turns a filled buffer into a
//! cheap [`Bytes`] view without copying, so a received datagram's payload
//! can flow decode → reorder queue → application as slices of one pooled
//! allocation.
//!
//! # Ownership and aliasing rules
//!
//! Recycling is driven purely by `Arc` reference counts:
//!
//! * Each pooled buffer is an `Arc<PoolEntry>`. The free list holds one
//!   strong reference to every idle buffer.
//! * `checkout` only reuses an entry whose strong count is exactly 1 —
//!   i.e. no [`PooledBuf`] and no frozen [`Bytes`] view (nor any slice of
//!   one) is alive. Aliased entries are skipped, never handed out, so a
//!   live view can never observe a buffer being rewritten.
//! * [`PooledBuf::freeze`] returns the entry to the free list immediately;
//!   it becomes reusable only once the returned `Bytes` and all its slices
//!   drop (the strong count decays back to 1).
//!
//! Holding a frozen view for a long time (e.g. parked in a reorder queue
//! across many ticks) is safe but pins the whole underlying buffer; the
//! pool simply allocates fresh entries (counted as misses) while old ones
//! are pinned.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;

/// How many idle entries `checkout` inspects before giving up and
/// allocating fresh. Entries still pinned by live views are rotated to the
/// back of the free list so they are retried last.
const CHECKOUT_PROBES: usize = 4;

/// One pooled buffer. Public only so `Arc<PoolEntry>` can coerce to the
/// `Arc<dyn AsRef<[u8]>>` owner that [`Bytes::from_shared`] wants.
pub struct PoolEntry {
    buf: Vec<u8>,
}

impl AsRef<[u8]> for PoolEntry {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Point-in-time pool statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served by recycling an idle buffer.
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer (cold start, or every
    /// idle entry still pinned by a live view).
    pub misses: u64,
    /// Buffers currently checked out (live [`PooledBuf`]s).
    pub outstanding: u64,
    /// Most buffers ever checked out simultaneously.
    pub high_water: u64,
}

struct Shared {
    free: Mutex<VecDeque<Arc<PoolEntry>>>,
    /// Initial capacity of fresh buffers (they may grow; grown capacity is
    /// kept across recycles).
    buf_capacity: usize,
    /// Free-list bound: entries returned past this are dropped instead.
    max_idle: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    outstanding: AtomicU64,
    high_water: AtomicU64,
}

/// A cloneable handle to a shared pool of reusable byte buffers.
#[derive(Clone)]
pub struct BufPool {
    shared: Arc<Shared>,
}

impl BufPool {
    /// A pool whose fresh buffers start with `buf_capacity` bytes of
    /// capacity and whose free list keeps at most `max_idle` entries.
    pub fn new(buf_capacity: usize, max_idle: usize) -> BufPool {
        let max_idle = max_idle.max(1);
        BufPool {
            shared: Arc::new(Shared {
                free: Mutex::new(VecDeque::with_capacity(max_idle)),
                buf_capacity,
                max_idle,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                outstanding: AtomicU64::new(0),
                high_water: AtomicU64::new(0),
            }),
        }
    }

    /// Check out an empty buffer, recycling an idle one when possible.
    pub fn checkout(&self) -> PooledBuf {
        let mut entry = None;
        {
            let mut free = self.shared.free.lock().unwrap();
            for _ in 0..CHECKOUT_PROBES.min(free.len()) {
                let candidate = free.pop_front().unwrap();
                if Arc::strong_count(&candidate) == 1 {
                    entry = Some(candidate);
                    break;
                }
                // Still pinned by a frozen view: retry it last.
                free.push_back(candidate);
            }
        }
        let entry = match entry {
            Some(mut e) => {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                // Sole owner (checked above, and we hold the only Arc).
                Arc::get_mut(&mut e).expect("unaliased entry").buf.clear();
                e
            }
            None => {
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                Arc::new(PoolEntry {
                    buf: Vec::with_capacity(self.shared.buf_capacity),
                })
            }
        };
        let out = self.shared.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        self.shared.high_water.fetch_max(out, Ordering::Relaxed);
        PooledBuf {
            entry: Some(entry),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            outstanding: self.shared.outstanding.load(Ordering::Relaxed),
            high_water: self.shared.high_water.load(Ordering::Relaxed),
        }
    }

    /// Idle entries on the free list (pinned or not).
    pub fn idle(&self) -> usize {
        self.shared.free.lock().unwrap().len()
    }
}

impl Shared {
    fn give_back(&self, entry: Arc<PoolEntry>) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        let mut free = self.free.lock().unwrap();
        if free.len() < self.max_idle {
            free.push_back(entry);
        }
        // else: drop, shrinking the pool back toward its bound.
    }
}

/// An exclusively-owned, writable pooled buffer.
///
/// Dereferences to `Vec<u8>` for writing. Dropping it returns the buffer
/// to the pool; [`PooledBuf::freeze`] converts it into an immutable
/// [`Bytes`] view instead (also returning the storage to the pool, which
/// will reuse it only after the view dies).
pub struct PooledBuf {
    entry: Option<Arc<PoolEntry>>,
    shared: Arc<Shared>,
}

impl PooledBuf {
    /// Freeze the written contents into an immutable shared view.
    ///
    /// No bytes are copied and nothing is allocated: the `Bytes` is backed
    /// by the same pooled storage, which stays off-limits to `checkout`
    /// until the view (and every slice of it) is dropped.
    pub fn freeze(mut self) -> Bytes {
        let entry = self.entry.take().expect("not yet frozen");
        let view: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::clone(&entry) as _;
        self.shared.give_back(entry);
        Bytes::from_shared(view)
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.entry.as_ref().expect("not frozen").buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        let entry = self.entry.as_mut().expect("not frozen");
        // A checked-out buffer is never aliased: checkout requires strong
        // count 1 and views are only minted by freeze (which consumes it).
        &mut Arc::get_mut(entry)
            .expect("checked-out buffer unaliased")
            .buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(entry) = self.entry.take() {
            self.shared.give_back(entry);
        }
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBuf({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_after_plain_drop() {
        let pool = BufPool::new(64, 8);
        let mut a = pool.checkout();
        a.extend_from_slice(b"hello");
        drop(a);
        let b = pool.checkout();
        assert!(b.is_empty(), "recycled buffer is cleared");
        assert!(b.capacity() >= 64);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn live_view_is_never_aliased() {
        let pool = BufPool::new(64, 8);
        let mut a = pool.checkout();
        a.extend_from_slice(b"pinned");
        let view = a.freeze();
        assert_eq!(&view[..], b"pinned");
        assert_eq!(pool.idle(), 1, "storage returned to the free list");

        // While the view lives, checkout must not reuse its storage.
        let mut b = pool.checkout();
        b.extend_from_slice(b"other!");
        assert_eq!(&view[..], b"pinned", "view untouched by new checkout");
        assert_eq!(pool.stats().misses, 2, "pinned entry skipped, not reused");

        // A slice keeps the pin alive even after the parent view drops.
        let slice = view.slice(1..3);
        drop(view);
        drop(b);
        let c = pool.checkout();
        assert_eq!(&slice[..], b"in", "slice still valid");
        drop(c);
        drop(slice);

        // With every view dead the storage is reusable again.
        let before = pool.stats().hits;
        let _d = pool.checkout();
        assert!(pool.stats().hits > before);
    }

    #[test]
    fn freeze_then_drop_allows_reuse() {
        let pool = BufPool::new(32, 4);
        let mut a = pool.checkout();
        a.extend_from_slice(&[7; 10]);
        let v = a.freeze();
        drop(v);
        let b = pool.checkout();
        assert_eq!(pool.stats().hits, 1);
        assert!(b.is_empty());
    }

    #[test]
    fn outstanding_and_high_water_track_checkouts() {
        let pool = BufPool::new(16, 16);
        let a = pool.checkout();
        let b = pool.checkout();
        let c = pool.checkout();
        assert_eq!(pool.stats().outstanding, 3);
        assert_eq!(pool.stats().high_water, 3);
        drop(a);
        drop(b);
        assert_eq!(pool.stats().outstanding, 1);
        assert_eq!(pool.stats().high_water, 3);
        drop(c);
        assert_eq!(pool.stats().outstanding, 0);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BufPool::new(8, 2);
        let bufs: Vec<_> = (0..5).map(|_| pool.checkout()).collect();
        drop(bufs);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn grown_capacity_survives_recycle() {
        let pool = BufPool::new(8, 4);
        let mut a = pool.checkout();
        a.extend_from_slice(&[0u8; 1000]);
        drop(a);
        let b = pool.checkout();
        assert!(b.capacity() >= 1000);
    }
}
