//! Wire formats for TCP and Multipath TCP.
//!
//! This crate is the byte-level substrate of the MPTCP reproduction: TCP
//! headers and flags, the full TCP option codec (including the MPTCP kind-30
//! option with every subtype the NSDI 2012 paper uses), ones-complement
//! checksums (both the TCP checksum and the DSS checksum covering the MPTCP
//! pseudo-header), and the SHA-1 / HMAC-SHA1 primitives used to derive
//! connection tokens and authenticate MP_JOIN handshakes.
//!
//! Everything here is pure data manipulation — no I/O, no clocks — so it can
//! be exercised exhaustively by unit and property tests.

pub mod checksum;
pub mod crypto;
pub mod mptcp_opts;
pub mod options;
pub mod pool;
pub mod seq;
pub mod tcp;

pub use mptcp_opts::{DssMapping, MptcpOption};
pub use options::TcpOption;
pub use pool::{BufPool, PoolStats, PooledBuf};
pub use seq::SeqNum;
pub use tcp::{Endpoint, FourTuple, TcpFlags, TcpSegment, WireDecodeError};
