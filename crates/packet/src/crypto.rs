//! SHA-1 and HMAC-SHA1, implemented from scratch for MPTCP key handling.
//!
//! MPTCP's security model (§3.2) hangs off two 64-bit random keys exchanged
//! in MP_CAPABLE: the *token* identifying a connection is the most
//! significant 32 bits of `SHA1(key)`, the initial data sequence number is
//! derived from the least significant 64 bits, and MP_JOIN subflows are
//! authenticated with truncated `HMAC-SHA1(keyA || keyB, nonces)`. The paper
//! measures this exact computation in Figure 10 (connection-setup latency),
//! so we implement the real thing rather than a stand-in hash.

/// Output size of SHA-1 in bytes.
pub const SHA1_LEN: usize = 20;

const BLOCK: usize = 64;

/// Incremental SHA-1 (FIPS 180-1): feed borrowed slices with
/// [`Sha1::update`], no copy of the message is ever made — only a single
/// 64-byte block buffer lives on the stack.
pub struct Sha1 {
    h: [u32; 5],
    block: [u8; BLOCK],
    /// Total message bytes fed so far; `len % 64` is the block fill.
    len: u64,
}

impl Default for Sha1 {
    fn default() -> Sha1 {
        Sha1::new()
    }
}

impl Sha1 {
    pub fn new() -> Sha1 {
        Sha1 {
            h: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            block: [0u8; BLOCK],
            len: 0,
        }
    }

    /// Absorb `data` without copying it into an owned message buffer.
    pub fn update(&mut self, mut data: &[u8]) {
        let fill = (self.len % BLOCK as u64) as usize;
        self.len += data.len() as u64;
        if fill != 0 {
            let take = (BLOCK - fill).min(data.len());
            self.block[fill..fill + take].copy_from_slice(&data[..take]);
            data = &data[take..];
            if fill + take < BLOCK {
                return;
            }
            let block = self.block;
            self.compress(&block);
        }
        let mut chunks = data.chunks_exact(BLOCK);
        for chunk in &mut chunks {
            self.compress(chunk.try_into().unwrap());
        }
        let rest = chunks.remainder();
        self.block[..rest.len()].copy_from_slice(rest);
    }

    /// Pad, process the final block(s), and return the digest.
    pub fn finalize(mut self) -> [u8; SHA1_LEN] {
        let ml = self.len.wrapping_mul(8);
        let fill = (self.len % BLOCK as u64) as usize;
        let mut tail = [0u8; BLOCK * 2];
        tail[..fill].copy_from_slice(&self.block[..fill]);
        tail[fill] = 0x80;
        let total = if fill < 56 { BLOCK } else { BLOCK * 2 };
        tail[total - 8..total].copy_from_slice(&ml.to_be_bytes());
        let (first, second) = tail.split_at(BLOCK);
        self.compress(first.try_into().unwrap());
        if total == BLOCK * 2 {
            self.compress(second.try_into().unwrap());
        }

        let mut out = [0u8; SHA1_LEN];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK]) {
        let mut w = [0u32; 80];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let h = &mut self.h;
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
}

/// Compute the SHA-1 digest of `data` (FIPS 180-1).
pub fn sha1(data: &[u8]) -> [u8; SHA1_LEN] {
    let mut s = Sha1::new();
    s.update(data);
    s.finalize()
}

/// HMAC-SHA1 per RFC 2104, hashing the key pads and message incrementally —
/// no concatenation buffers are allocated.
pub fn hmac_sha1(key: &[u8], msg: &[u8]) -> [u8; SHA1_LEN] {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..SHA1_LEN].copy_from_slice(&sha1(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK];
    let mut opad = [0u8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    let mut inner = Sha1::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_hash = inner.finalize();

    let mut outer = Sha1::new();
    outer.update(&opad);
    outer.update(&inner_hash);
    outer.finalize()
}

/// Derive the 32-bit connection token from a 64-bit MPTCP key.
///
/// RFC 6824: the token is the most significant 32 bits of SHA1(key).
pub fn token_from_key(key: u64) -> u32 {
    let d = sha1(&key.to_be_bytes());
    u32::from_be_bytes([d[0], d[1], d[2], d[3]])
}

/// Derive the 64-bit initial data sequence number from a key.
///
/// RFC 6824: the IDSN is the least significant 64 bits of SHA1(key).
pub fn idsn_from_key(key: u64) -> u64 {
    let d = sha1(&key.to_be_bytes());
    u64::from_be_bytes([d[12], d[13], d[14], d[15], d[16], d[17], d[18], d[19]])
}

/// MP_JOIN SYN/ACK MAC: the sender (listener) proves knowledge of both keys.
///
/// Truncated to the most significant 64 bits of
/// `HMAC-SHA1(key_b || key_a, nonce_a || nonce_b)` per RFC 6824 §3.2.
pub fn join_synack_mac(
    key_local: u64,
    key_remote: u64,
    nonce_remote: u32,
    nonce_local: u32,
) -> u64 {
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&key_local.to_be_bytes());
    key[8..].copy_from_slice(&key_remote.to_be_bytes());
    let mut msg = [0u8; 8];
    msg[..4].copy_from_slice(&nonce_remote.to_be_bytes());
    msg[4..].copy_from_slice(&nonce_local.to_be_bytes());
    let d = hmac_sha1(&key, &msg);
    u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
}

/// MP_JOIN third-ACK MAC: the initiator's full 160-bit HMAC.
pub fn join_ack_mac(
    key_local: u64,
    key_remote: u64,
    nonce_local: u32,
    nonce_remote: u32,
) -> [u8; SHA1_LEN] {
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&key_local.to_be_bytes());
    key[8..].copy_from_slice(&key_remote.to_be_bytes());
    let mut msg = [0u8; 8];
    msg[..4].copy_from_slice(&nonce_local.to_be_bytes());
    msg[4..].copy_from_slice(&nonce_remote.to_be_bytes());
    hmac_sha1(&key, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha1_known_vectors() {
        // FIPS 180-1 test vectors.
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn sha1_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn hmac_rfc2202_vectors() {
        // RFC 2202 test case 1.
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha1(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
        // RFC 2202 test case 2.
        assert_eq!(
            hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
        // RFC 2202 test case 3: 0xaa*20 key, 0xdd*50 data.
        assert_eq!(
            hex(&hmac_sha1(&[0xaa; 20], &[0xdd; 50])),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn incremental_update_equals_oneshot() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7) as u8).collect();
        let oneshot = sha1(&data);
        // Split at every boundary class: mid-block, exactly one block,
        // block+1, and a final sliver.
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 299, 300] {
            let mut s = Sha1::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finalize(), oneshot, "split {split}");
        }
        // Byte-at-a-time.
        let mut s = Sha1::new();
        for b in &data {
            s.update(std::slice::from_ref(b));
        }
        assert_eq!(s.finalize(), oneshot);
    }

    #[test]
    fn token_is_deterministic_and_spread() {
        let t1 = token_from_key(0x0102030405060708);
        let t2 = token_from_key(0x0102030405060709);
        assert_eq!(t1, token_from_key(0x0102030405060708));
        assert_ne!(t1, t2);
    }

    #[test]
    fn idsn_differs_from_token() {
        let key = 0xdeadbeefcafebabe;
        assert_ne!(u64::from(token_from_key(key)), idsn_from_key(key));
    }

    #[test]
    fn join_macs_are_asymmetric() {
        let (ka, kb, na, nb) = (1u64, 2u64, 3u32, 4u32);
        // The B-side SYN/ACK MAC and the A-side ACK MAC use the keys in
        // opposite order, so a reflected message cannot be replayed.
        let synack = join_synack_mac(kb, ka, na, nb);
        let ack = join_ack_mac(ka, kb, na, nb);
        assert_ne!(synack, u64::from_be_bytes(ack[..8].try_into().unwrap()));
    }

    #[test]
    fn join_handshake_verifies() {
        // Both sides compute the same SYN/ACK MAC when the listener signs
        // and the initiator verifies with swapped roles.
        let (ka, kb, na, nb) = (0x1111u64, 0x2222u64, 0xaaaa_bbbb, 0xcccc_dddd);
        let signed_by_b = join_synack_mac(kb, ka, na, nb);
        let verified_by_a = join_synack_mac(kb, ka, na, nb);
        assert_eq!(signed_by_b, verified_by_a);
    }
}
