//! Wrapping 32-bit TCP sequence-number arithmetic.
//!
//! TCP sequence numbers live on a mod-2^32 circle; comparisons are only
//! meaningful for numbers within 2^31 of each other (RFC 793 semantics).
//! [`SeqNum`] makes the wrapping explicit so the stack never accidentally
//! uses plain integer comparison on sequence numbers — one of the classic
//! sources of TCP bugs.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A TCP sequence number on the mod-2^32 circle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// The zero sequence number.
    pub const ZERO: SeqNum = SeqNum(0);

    /// Returns `true` if `self` is strictly before `other` on the circle.
    #[inline]
    pub fn before(self, other: SeqNum) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }

    /// Returns `true` if `self` is before or equal to `other`.
    #[inline]
    pub fn before_eq(self, other: SeqNum) -> bool {
        (other.0.wrapping_sub(self.0) as i32) >= 0
    }

    /// Returns `true` if `self` is strictly after `other` on the circle.
    #[inline]
    pub fn after(self, other: SeqNum) -> bool {
        other.before(self)
    }

    /// Returns `true` if `self` is after or equal to `other`.
    #[inline]
    pub fn after_eq(self, other: SeqNum) -> bool {
        other.before_eq(self)
    }

    /// Distance from `other` to `self` (i.e. `self - other`), assuming
    /// `self` is at or after `other`. Wrapping-safe.
    #[inline]
    pub fn dist_from(self, other: SeqNum) -> u32 {
        self.0.wrapping_sub(other.0)
    }

    /// The larger of two sequence numbers under circle ordering.
    #[inline]
    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.after_eq(other) {
            self
        } else {
            other
        }
    }

    /// The smaller of two sequence numbers under circle ordering.
    #[inline]
    pub fn min(self, other: SeqNum) -> SeqNum {
        if self.before_eq(other) {
            self
        } else {
            other
        }
    }

    /// Is `self` in the half-open window `[start, start+len)`?
    #[inline]
    pub fn in_window(self, start: SeqNum, len: u32) -> bool {
        self.dist_from(start) < len
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    #[inline]
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u32> for SeqNum {
    #[inline]
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<u32> for SeqNum {
    type Output = SeqNum;
    #[inline]
    fn sub(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_sub(rhs))
    }
}

impl Sub<SeqNum> for SeqNum {
    type Output = u32;
    #[inline]
    fn sub(self, rhs: SeqNum) -> u32 {
        self.dist_from(rhs)
    }
}

impl From<u32> for SeqNum {
    fn from(v: u32) -> Self {
        SeqNum(v)
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Seq({})", self.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_simple() {
        assert!(SeqNum(1).before(SeqNum(2)));
        assert!(SeqNum(2).after(SeqNum(1)));
        assert!(SeqNum(5).before_eq(SeqNum(5)));
        assert!(SeqNum(5).after_eq(SeqNum(5)));
        assert!(!SeqNum(2).before(SeqNum(2)));
    }

    #[test]
    fn ordering_wraps() {
        let near_max = SeqNum(u32::MAX - 10);
        let wrapped = near_max + 20;
        assert_eq!(wrapped.0, 9);
        assert!(near_max.before(wrapped));
        assert!(wrapped.after(near_max));
        assert_eq!(wrapped.dist_from(near_max), 20);
    }

    #[test]
    fn window_membership() {
        assert!(SeqNum(100).in_window(SeqNum(100), 1));
        assert!(!SeqNum(100).in_window(SeqNum(101), 10));
        assert!(SeqNum(5).in_window(SeqNum(u32::MAX - 5), 20));
    }

    #[test]
    fn min_max_respect_circle() {
        let a = SeqNum(u32::MAX - 1);
        let b = SeqNum(3);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn subtraction_is_distance() {
        assert_eq!(SeqNum(10) - SeqNum(3), 7);
        assert_eq!(SeqNum(2) - SeqNum(u32::MAX), 3);
    }
}
