//! The MPTCP TCP option (kind 30) and its subtypes.
//!
//! The paper's central design conclusion (§3.3.3) is that all MPTCP
//! signalling — data sequence mappings, DATA_ACKs, DATA_FIN — must ride in
//! TCP *options*, never in the payload, because payload-encoded control data
//! is subject to flow control and middlebox buffering and can deadlock.
//! This module defines those options with RFC 6824 wire layouts.

use crate::crypto::SHA1_LEN;

/// A data sequence mapping (DSM): maps subflow bytes into the connection's
/// 64-bit data sequence space.
///
/// Per §3.3.4, the subflow side of the mapping is a *relative* offset from
/// the subflow's initial sequence number, so sequence-number-rewriting
/// middleboxes (10% of paths in the paper's study) cannot corrupt it, and
/// TSO NICs that copy the option onto every split segment merely produce
/// harmless duplicate mappings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DssMapping {
    /// Data sequence number of the first byte of the mapping.
    pub dsn: u64,
    /// Subflow sequence offset (relative to the subflow ISN + 1, i.e. the
    /// first data byte on the subflow is offset 1, matching RFC 6824).
    pub subflow_seq: u32,
    /// Number of bytes covered by the mapping.
    pub len: u16,
    /// DSS checksum over the MPTCP pseudo-header + payload, if negotiated.
    pub checksum: Option<u16>,
}

impl DssMapping {
    /// The data sequence number one past the end of this mapping.
    pub fn dsn_end(&self) -> u64 {
        self.dsn + u64::from(self.len)
    }

    /// The relative subflow sequence one past the end of this mapping.
    pub fn subflow_end(&self) -> u32 {
        self.subflow_seq.wrapping_add(u32::from(self.len))
    }
}

/// Address family + address carried in ADD_ADDR. Only IPv4 is modelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdvertisedAddr {
    /// Address identifier, scoped to the sending host.
    pub addr_id: u8,
    /// IPv4 address as a u32 (network order semantics kept abstract).
    pub addr: u32,
    /// Optional port; absent means "same port as the initial subflow".
    pub port: Option<u16>,
}

/// MPTCP option subtypes (RFC 6824 kind-30 option).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MptcpOption {
    /// MP_CAPABLE: negotiates MPTCP on the initial subflow and exchanges
    /// 64-bit keys. `receiver_key` is absent on the SYN, present on the
    /// SYN/ACK and the third ACK.
    MpCapable {
        /// Protocol version (0 for the paper-era draft semantics).
        version: u8,
        /// "A" flag: DSS checksums required (§3.3.6; can be disabled in
        /// datacenters).
        checksum_required: bool,
        /// Key of the packet's sender.
        sender_key: u64,
        /// Key of the packet's receiver, echoed for reliability.
        receiver_key: Option<u64>,
    },
    /// MP_JOIN on a SYN: initiates an additional subflow.
    MpJoinSyn {
        /// Token identifying the connection at the receiver
        /// (SHA1(receiver_key) truncated, §3.2).
        token: u32,
        /// Random nonce for HMAC freshness.
        nonce: u32,
        /// Address identifier of the initiator's source address.
        addr_id: u8,
        /// Backup-path flag.
        backup: bool,
    },
    /// MP_JOIN on a SYN/ACK: listener proves key knowledge.
    MpJoinSynAck {
        /// Truncated (64-bit) HMAC over both nonces.
        mac: u64,
        /// Listener's nonce.
        nonce: u32,
        /// Address identifier of the listener's address.
        addr_id: u8,
        /// Backup-path flag.
        backup: bool,
    },
    /// MP_JOIN on the third ACK: initiator's full 160-bit HMAC.
    MpJoinAck {
        /// Full HMAC-SHA1 over the nonces.
        mac: [u8; SHA1_LEN],
    },
    /// DSS: data sequence signal — DATA_ACK, mapping, and/or DATA_FIN.
    Dss {
        /// Explicit connection-level cumulative acknowledgment (§3.3.2):
        /// the left edge of the connection receive window.
        data_ack: Option<u64>,
        /// Mapping of subflow payload bytes into data sequence space.
        mapping: Option<DssMapping>,
        /// DATA_FIN: this DSS marks the end of the data stream. The DATA_FIN
        /// occupies one data sequence number (like a TCP FIN).
        data_fin: bool,
    },
    /// ADD_ADDR: announce an additional address (server-side NAT traversal,
    /// §3.2).
    AddAddr(AdvertisedAddr),
    /// REMOVE_ADDR: withdraw an address whose subflows are implicitly
    /// closed (mobility support, §3.4).
    RemoveAddr {
        /// Address identifiers being withdrawn.
        addr_ids: Vec<u8>,
    },
    /// MP_PRIO: change a subflow's backup priority.
    MpPrio {
        /// New backup flag value.
        backup: bool,
        /// Optional address id the change applies to.
        addr_id: Option<u8>,
    },
    /// MP_FAIL: checksum failure notification carrying the failing DSN;
    /// triggers fallback when it is the only subflow (§3.3.6).
    MpFail {
        /// Data sequence number at which the failure was detected.
        dsn: u64,
    },
    /// FASTCLOSE: abort the whole connection (RST-like at data level).
    FastClose {
        /// Receiver's key as proof.
        receiver_key: u64,
    },
}

/// RFC 6824 subtype codes.
pub mod subtype {
    pub const MP_CAPABLE: u8 = 0x0;
    pub const MP_JOIN: u8 = 0x1;
    pub const DSS: u8 = 0x2;
    pub const ADD_ADDR: u8 = 0x3;
    pub const REMOVE_ADDR: u8 = 0x4;
    pub const MP_PRIO: u8 = 0x5;
    pub const MP_FAIL: u8 = 0x6;
    pub const FASTCLOSE: u8 = 0x7;
}

impl MptcpOption {
    /// Encode the option *value* (bytes after kind and length).
    pub fn encode_value(&self, out: &mut Vec<u8>) {
        match self {
            MptcpOption::MpCapable {
                version,
                checksum_required,
                sender_key,
                receiver_key,
            } => {
                out.push((subtype::MP_CAPABLE << 4) | (version & 0x0f));
                let mut flags = 0x01u8; // H: HMAC-SHA1 crypto algorithm
                if *checksum_required {
                    flags |= 0x80; // A: checksum required
                }
                out.push(flags);
                out.extend_from_slice(&sender_key.to_be_bytes());
                if let Some(rk) = receiver_key {
                    out.extend_from_slice(&rk.to_be_bytes());
                }
            }
            MptcpOption::MpJoinSyn {
                token,
                nonce,
                addr_id,
                backup,
            } => {
                out.push((subtype::MP_JOIN << 4) | u8::from(*backup));
                out.push(*addr_id);
                out.extend_from_slice(&token.to_be_bytes());
                out.extend_from_slice(&nonce.to_be_bytes());
            }
            MptcpOption::MpJoinSynAck {
                mac,
                nonce,
                addr_id,
                backup,
            } => {
                out.push((subtype::MP_JOIN << 4) | u8::from(*backup));
                out.push(*addr_id);
                out.extend_from_slice(&mac.to_be_bytes());
                out.extend_from_slice(&nonce.to_be_bytes());
            }
            MptcpOption::MpJoinAck { mac } => {
                out.push(subtype::MP_JOIN << 4);
                out.push(0);
                out.extend_from_slice(mac);
            }
            MptcpOption::Dss {
                data_ack,
                mapping,
                data_fin,
            } => {
                out.push(subtype::DSS << 4);
                let mut flags = 0u8;
                if *data_fin {
                    flags |= 0x10; // F
                }
                if mapping.is_some() {
                    flags |= 0x04 | 0x08; // M + m (8-byte DSN)
                }
                if data_ack.is_some() {
                    // A only: 4-byte truncated data ack. Keeping the common
                    // encoding at 4 bytes is what lets a full DSS mapping, a
                    // DATA_ACK and timestamps coexist in the 40-byte option
                    // space; the receiver re-expands against its send state
                    // (see `infer_full_dsn` in the mptcp crate).
                    flags |= 0x01;
                }
                out.push(flags);
                if let Some(da) = data_ack {
                    out.extend_from_slice(&(*da as u32).to_be_bytes());
                }
                if let Some(m) = mapping {
                    out.extend_from_slice(&m.dsn.to_be_bytes());
                    out.extend_from_slice(&m.subflow_seq.to_be_bytes());
                    out.extend_from_slice(&m.len.to_be_bytes());
                    if let Some(ck) = m.checksum {
                        out.extend_from_slice(&ck.to_be_bytes());
                    }
                }
            }
            MptcpOption::AddAddr(a) => {
                out.push((subtype::ADD_ADDR << 4) | 0x4); // IPv4
                out.push(a.addr_id);
                out.extend_from_slice(&a.addr.to_be_bytes());
                if let Some(p) = a.port {
                    out.extend_from_slice(&p.to_be_bytes());
                }
            }
            MptcpOption::RemoveAddr { addr_ids } => {
                out.push(subtype::REMOVE_ADDR << 4);
                out.extend_from_slice(addr_ids);
            }
            MptcpOption::MpPrio { backup, addr_id } => {
                out.push((subtype::MP_PRIO << 4) | u8::from(*backup));
                if let Some(id) = addr_id {
                    out.push(*id);
                }
            }
            MptcpOption::MpFail { dsn } => {
                out.push(subtype::MP_FAIL << 4);
                out.push(0);
                out.extend_from_slice(&dsn.to_be_bytes());
            }
            MptcpOption::FastClose { receiver_key } => {
                out.push(subtype::FASTCLOSE << 4);
                out.push(0);
                out.extend_from_slice(&receiver_key.to_be_bytes());
            }
        }
    }

    /// Exact length of [`encode_value`](Self::encode_value)'s output, so
    /// callers can reserve or patch length bytes without encoding into a
    /// scratch buffer first.
    pub fn value_len(&self) -> usize {
        match self {
            MptcpOption::MpCapable { receiver_key, .. } => {
                2 + 8 + if receiver_key.is_some() { 8 } else { 0 }
            }
            MptcpOption::MpJoinSyn { .. } => 10,
            MptcpOption::MpJoinSynAck { .. } => 14,
            MptcpOption::MpJoinAck { .. } => 22,
            MptcpOption::Dss {
                data_ack, mapping, ..
            } => {
                let ack = if data_ack.is_some() { 4 } else { 0 };
                let map = match mapping {
                    Some(m) => 8 + 4 + 2 + if m.checksum.is_some() { 2 } else { 0 },
                    None => 0,
                };
                2 + ack + map
            }
            MptcpOption::AddAddr(a) => 2 + 4 + if a.port.is_some() { 2 } else { 0 },
            MptcpOption::RemoveAddr { addr_ids } => 1 + addr_ids.len(),
            MptcpOption::MpPrio { addr_id, .. } => 1 + usize::from(addr_id.is_some()),
            MptcpOption::MpFail { .. } => 10,
            MptcpOption::FastClose { .. } => 10,
        }
    }

    /// Decode an MPTCP option value (bytes after kind and length).
    ///
    /// Returns `None` for malformed or unknown subtypes; a defensive parser
    /// is part of the paper's "expect the network to mangle you" stance.
    pub fn decode_value(value: &[u8]) -> Option<MptcpOption> {
        if value.is_empty() {
            return None;
        }
        let st = value[0] >> 4;
        match st {
            subtype::MP_CAPABLE => {
                if value.len() < 10 {
                    return None;
                }
                let version = value[0] & 0x0f;
                let flags = value[1];
                let sender_key = u64::from_be_bytes(value[2..10].try_into().ok()?);
                let receiver_key = if value.len() >= 18 {
                    Some(u64::from_be_bytes(value[10..18].try_into().ok()?))
                } else {
                    None
                };
                Some(MptcpOption::MpCapable {
                    version,
                    checksum_required: flags & 0x80 != 0,
                    sender_key,
                    receiver_key,
                })
            }
            subtype::MP_JOIN => match value.len() {
                10 => Some(MptcpOption::MpJoinSyn {
                    backup: value[0] & 0x01 != 0,
                    addr_id: value[1],
                    token: u32::from_be_bytes(value[2..6].try_into().ok()?),
                    nonce: u32::from_be_bytes(value[6..10].try_into().ok()?),
                }),
                14 => Some(MptcpOption::MpJoinSynAck {
                    backup: value[0] & 0x01 != 0,
                    addr_id: value[1],
                    mac: u64::from_be_bytes(value[2..10].try_into().ok()?),
                    nonce: u32::from_be_bytes(value[10..14].try_into().ok()?),
                }),
                22 => {
                    let mac: [u8; SHA1_LEN] = value[2..22].try_into().ok()?;
                    Some(MptcpOption::MpJoinAck { mac })
                }
                _ => None,
            },
            subtype::DSS => {
                if value.len() < 2 {
                    return None;
                }
                let flags = value[1];
                let mut off = 2usize;
                let data_ack = if flags & 0x01 != 0 {
                    let width = if flags & 0x02 != 0 { 8 } else { 4 };
                    if value.len() < off + width {
                        return None;
                    }
                    let da = if width == 8 {
                        u64::from_be_bytes(value[off..off + 8].try_into().ok()?)
                    } else {
                        u64::from(u32::from_be_bytes(value[off..off + 4].try_into().ok()?))
                    };
                    off += width;
                    Some(da)
                } else {
                    None
                };
                let mapping = if flags & 0x04 != 0 {
                    let width = if flags & 0x08 != 0 { 8 } else { 4 };
                    if value.len() < off + width + 6 {
                        return None;
                    }
                    let dsn = if width == 8 {
                        u64::from_be_bytes(value[off..off + 8].try_into().ok()?)
                    } else {
                        u64::from(u32::from_be_bytes(value[off..off + 4].try_into().ok()?))
                    };
                    off += width;
                    let subflow_seq = u32::from_be_bytes(value[off..off + 4].try_into().ok()?);
                    off += 4;
                    let len = u16::from_be_bytes(value[off..off + 2].try_into().ok()?);
                    off += 2;
                    let checksum = if value.len() >= off + 2 {
                        let ck = u16::from_be_bytes(value[off..off + 2].try_into().ok()?);
                        Some(ck)
                    } else {
                        None
                    };
                    Some(DssMapping {
                        dsn,
                        subflow_seq,
                        len,
                        checksum,
                    })
                } else {
                    None
                };
                Some(MptcpOption::Dss {
                    data_ack,
                    mapping,
                    data_fin: flags & 0x10 != 0,
                })
            }
            subtype::ADD_ADDR => {
                if value.len() < 6 {
                    return None;
                }
                let addr_id = value[1];
                let addr = u32::from_be_bytes(value[2..6].try_into().ok()?);
                let port = if value.len() >= 8 {
                    Some(u16::from_be_bytes(value[6..8].try_into().ok()?))
                } else {
                    None
                };
                Some(MptcpOption::AddAddr(AdvertisedAddr {
                    addr_id,
                    addr,
                    port,
                }))
            }
            subtype::REMOVE_ADDR => {
                if value.len() < 2 {
                    return None;
                }
                Some(MptcpOption::RemoveAddr {
                    addr_ids: value[1..].to_vec(),
                })
            }
            subtype::MP_PRIO => Some(MptcpOption::MpPrio {
                backup: value[0] & 0x01 != 0,
                addr_id: value.get(1).copied(),
            }),
            subtype::MP_FAIL => {
                if value.len() < 10 {
                    return None;
                }
                Some(MptcpOption::MpFail {
                    dsn: u64::from_be_bytes(value[2..10].try_into().ok()?),
                })
            }
            subtype::FASTCLOSE => {
                if value.len() < 10 {
                    return None;
                }
                Some(MptcpOption::FastClose {
                    receiver_key: u64::from_be_bytes(value[2..10].try_into().ok()?),
                })
            }
            _ => None,
        }
    }

    /// Is this a DSS option carrying a mapping?
    pub fn as_mapping(&self) -> Option<&DssMapping> {
        match self {
            MptcpOption::Dss {
                mapping: Some(m), ..
            } => Some(m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(opt: MptcpOption) {
        let mut buf = Vec::new();
        opt.encode_value(&mut buf);
        assert_eq!(opt.value_len(), buf.len(), "value_len for {opt:?}");
        let decoded = MptcpOption::decode_value(&buf).expect("decode");
        assert_eq!(opt, decoded);
    }

    #[test]
    fn mp_capable_syn_roundtrip() {
        roundtrip(MptcpOption::MpCapable {
            version: 0,
            checksum_required: true,
            sender_key: 0x0123456789abcdef,
            receiver_key: None,
        });
    }

    #[test]
    fn mp_capable_ack_roundtrip() {
        roundtrip(MptcpOption::MpCapable {
            version: 0,
            checksum_required: false,
            sender_key: 1,
            receiver_key: Some(2),
        });
    }

    #[test]
    fn mp_join_roundtrips() {
        roundtrip(MptcpOption::MpJoinSyn {
            token: 0xaabbccdd,
            nonce: 0x11223344,
            addr_id: 2,
            backup: true,
        });
        roundtrip(MptcpOption::MpJoinSynAck {
            mac: 0xfeedfacecafebeef,
            nonce: 7,
            addr_id: 1,
            backup: false,
        });
        roundtrip(MptcpOption::MpJoinAck { mac: [0x5a; 20] });
    }

    #[test]
    fn dss_all_fields_roundtrip() {
        roundtrip(MptcpOption::Dss {
            data_ack: Some(0x7fff_0001),
            mapping: Some(DssMapping {
                dsn: 0xdead_beef_0000_0001,
                subflow_seq: 42,
                len: 1460,
                checksum: Some(0x8a31),
            }),
            data_fin: true,
        });
    }

    #[test]
    fn dss_data_ack_truncates_to_32_bits() {
        // The wire carries the low 32 bits; the peer re-expands them.
        let opt = MptcpOption::Dss {
            data_ack: Some(0x1_2345_6789),
            mapping: None,
            data_fin: false,
        };
        let mut buf = Vec::new();
        opt.encode_value(&mut buf);
        match MptcpOption::decode_value(&buf).unwrap() {
            MptcpOption::Dss { data_ack, .. } => assert_eq!(data_ack, Some(0x2345_6789)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn full_dss_plus_ack_fits_option_space() {
        // The size claim the 4-byte DATA_ACK exists for: mapping DSS (20) +
        // ack-only DSS (8) + timestamps (10) + padding <= 40.
        let mut mapping = Vec::new();
        MptcpOption::Dss {
            data_ack: None,
            mapping: Some(DssMapping {
                dsn: u64::MAX,
                subflow_seq: 1,
                len: 1460,
                checksum: Some(7),
            }),
            data_fin: false,
        }
        .encode_value(&mut mapping);
        let mut ack = Vec::new();
        MptcpOption::Dss {
            data_ack: Some(u64::MAX),
            mapping: None,
            data_fin: false,
        }
        .encode_value(&mut ack);
        // +2 per option for kind/len bytes, +10 for timestamps.
        let total = (mapping.len() + 2) + (ack.len() + 2) + 10;
        assert!(total <= 40, "DSS encodings too large: {total}");
    }

    #[test]
    fn dss_ack_only_roundtrip() {
        roundtrip(MptcpOption::Dss {
            data_ack: Some(99),
            mapping: None,
            data_fin: false,
        });
    }

    #[test]
    fn dss_mapping_without_checksum_roundtrip() {
        roundtrip(MptcpOption::Dss {
            data_ack: None,
            mapping: Some(DssMapping {
                dsn: 5,
                subflow_seq: 1,
                len: 100,
                checksum: None,
            }),
            data_fin: false,
        });
    }

    #[test]
    fn addr_management_roundtrips() {
        roundtrip(MptcpOption::AddAddr(AdvertisedAddr {
            addr_id: 3,
            addr: 0x0a000001,
            port: Some(8080),
        }));
        roundtrip(MptcpOption::AddAddr(AdvertisedAddr {
            addr_id: 4,
            addr: 0xc0a80101,
            port: None,
        }));
        roundtrip(MptcpOption::RemoveAddr {
            addr_ids: vec![1, 2, 3],
        });
    }

    #[test]
    fn control_roundtrips() {
        roundtrip(MptcpOption::MpPrio {
            backup: true,
            addr_id: Some(2),
        });
        roundtrip(MptcpOption::MpFail { dsn: u64::MAX - 1 });
        roundtrip(MptcpOption::FastClose {
            receiver_key: 0x1234,
        });
    }

    #[test]
    fn malformed_rejected() {
        assert!(MptcpOption::decode_value(&[]).is_none());
        // Truncated MP_CAPABLE.
        assert!(MptcpOption::decode_value(&[0x00, 0x01, 0xaa]).is_none());
        // Unknown subtype 0xf.
        assert!(MptcpOption::decode_value(&[0xf0, 0, 0, 0]).is_none());
        // MP_JOIN with nonsense length.
        assert!(MptcpOption::decode_value(&[0x10, 0, 1, 2, 3]).is_none());
    }

    #[test]
    fn mapping_end_helpers() {
        let m = DssMapping {
            dsn: 100,
            subflow_seq: 50,
            len: 10,
            checksum: None,
        };
        assert_eq!(m.dsn_end(), 110);
        assert_eq!(m.subflow_end(), 60);
    }
}
