//! Property tests: the four out-of-order queue algorithms are
//! observationally equivalent — same drained stream for any insertion
//! pattern — and reassembly is lossless.

use bytes::Bytes;
use mptcp::reorder::{make_queue, OooQueue};
use mptcp::ReorderAlgo;
use proptest::prelude::*;

/// A random non-overlapping segmentation of [0, n) chunks of 10 bytes,
/// presented in arbitrary order with arbitrary subflow attribution and
/// optional duplicates.
fn arb_workload() -> impl Strategy<Value = Vec<(u64, usize)>> {
    (1usize..40).prop_flat_map(|n| {
        let idx: Vec<u64> = (0..n as u64).collect();
        (
            Just(idx).prop_shuffle(),
            proptest::collection::vec(0usize..4, n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(order, subflows, dups)| {
                let mut w = Vec::new();
                for (k, chunk) in order.into_iter().enumerate() {
                    w.push((chunk * 10, subflows[k]));
                    if dups[k] {
                        w.push((chunk * 10, subflows[(k + 1) % subflows.len()]));
                    }
                }
                w
            })
    })
}

fn drain_all(q: &mut dyn OooQueue) -> Vec<u64> {
    let mut rcv = 0u64;
    let mut out = Vec::new();
    while let Some((dsn, data)) = q.pop_ready(rcv) {
        out.push(dsn);
        rcv = dsn + data.len() as u64;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_drain_identically(w in arb_workload()) {
        let mut reference: Option<Vec<u64>> = None;
        for algo in [
            ReorderAlgo::Regular,
            ReorderAlgo::Tree,
            ReorderAlgo::Shortcuts,
            ReorderAlgo::AllShortcuts,
        ] {
            let mut q = make_queue(algo);
            for &(dsn, sf) in &w {
                q.insert(dsn, Bytes::from(vec![(dsn % 251) as u8; 10]), sf);
            }
            let drained = drain_all(q.as_mut());
            prop_assert!(q.is_empty(), "{algo:?} left entries");
            prop_assert_eq!(q.buffered_bytes(), 0, "{:?} leaked bytes", algo);
            match &reference {
                None => reference = Some(drained),
                Some(r) => prop_assert_eq!(r, &drained, "{:?} diverged", algo),
            }
        }
        // And the drain is complete and in order.
        let r = reference.unwrap();
        let n = w.iter().map(|(d, _)| d / 10 + 1).max().unwrap_or(0);
        prop_assert_eq!(r.len() as u64, n);
        for (i, dsn) in r.iter().enumerate() {
            prop_assert_eq!(*dsn, i as u64 * 10);
        }
    }

    #[test]
    fn partial_drain_is_prefix_stable(w in arb_workload(), take in 0usize..20) {
        // Popping some entries, inserting the rest, then draining gives
        // the same stream as inserting everything first.
        let mut q = make_queue(ReorderAlgo::AllShortcuts);
        let (first, second) = w.split_at(take.min(w.len()));
        for &(dsn, sf) in first {
            q.insert(dsn, Bytes::from(vec![0u8; 10]), sf);
        }
        let mut rcv = 0u64;
        let mut drained = Vec::new();
        while let Some((dsn, data)) = q.pop_ready(rcv) {
            drained.push(dsn);
            rcv = dsn + data.len() as u64;
        }
        for &(dsn, sf) in second {
            q.insert(dsn, Bytes::from(vec![0u8; 10]), sf);
        }
        while let Some((dsn, data)) = q.pop_ready(rcv) {
            drained.push(dsn);
            rcv = dsn + data.len() as u64;
        }
        for (i, dsn) in drained.iter().enumerate() {
            prop_assert_eq!(*dsn, i as u64 * 10);
        }
    }
}
