//! The `poll_at` / `poll` (tick) contract under wall-clock jitter.
//!
//! The real event loop (`crates/runtime`) sleeps until the deadline
//! `poll_at` returns and the OS wakes it *late* — often by milliseconds,
//! under load by whole scheduler quanta. The state machines therefore
//! promise:
//!
//! 1. **Late ticks fire elapsed timers exactly once.** A tick at
//!    `deadline + jitter` runs each expired timer one time — not once per
//!    nominal interval covered by the jitter — and re-arms it relative to
//!    `now`, not to the missed deadline.
//! 2. **No double-fire.** Repeated ticks at the same `now` (the loop
//!    drains `poll` until `None`) do not re-run a timer that already
//!    fired at that instant.
//! 3. **Never stalls, never pins to the past.** While work is pending
//!    (unacked data ⇒ a retransmission must eventually happen), `poll_at`
//!    returns `Some(t)`; immediately after a tick, every returned
//!    deadline is strictly in the future, so a loop that sleeps until
//!    `poll_at` can neither hang forever nor spin at 100% CPU on a stale
//!    deadline.
//!
//! The test blackholes one direction of a client↔listener pair so both
//! the subflow RTO and the connection-level data RTO are pending, then
//! delivers wakeups with grossly exaggerated jitter.

use mptcp::{FailureDetection, MptcpConfig, MptcpConnection, MptcpListener};
use mptcp_netsim::{Duration, SimRng, SimTime};
use mptcp_packet::{Endpoint, FourTuple, TcpSegment};

const CLIENT: u32 = 0x0a000002;
const SERVER: u32 = 0x0a000001;

/// Failure detection far out of the way: this test is about timer
/// mechanics, not about path-failure semantics (covered elsewhere).
fn lax_cfg() -> MptcpConfig {
    MptcpConfig::builder()
        .failure_detection(FailureDetection {
            suspect_after_rtos: 50,
            fail_after_rtos: 100,
            progress_timeout: Duration::from_secs(600),
            probe_interval: Duration::from_secs(600),
            abort_deadline: Duration::from_secs(3600),
        })
        .build()
        .expect("valid config")
}

/// Drain `client.poll` at `now` (each call ticks) and return the emitted
/// segments. Checks invariant 3 on exit: after a tick, `poll_at` never
/// returns a deadline at or before `now`.
fn drain(client: &mut MptcpConnection, now: SimTime) -> Vec<TcpSegment> {
    let mut out = Vec::new();
    while let Some(seg) = client.poll(now) {
        out.push(seg);
        assert!(out.len() < 10_000, "poll never quiesced");
    }
    if let Some(t) = client.poll_at(now) {
        assert!(
            t > now,
            "poll_at returned a deadline not in the future right after a \
             tick: {t:?} <= {now:?} (the event loop would spin)"
        );
    }
    out
}

/// One full exchange step: client output → listener, listener output →
/// client. Returns when both sides are quiescent at `now`.
fn pump(client: &mut MptcpConnection, listener: &mut MptcpListener, now: SimTime) {
    for _ in 0..100 {
        let c_out = drain(client, now);
        let mut s_out = Vec::new();
        for seg in &c_out {
            listener.handle_segment(now, seg);
        }
        listener.poll(now, &mut s_out);
        for seg in &s_out {
            client.handle_segment(now, seg);
        }
        if c_out.is_empty() && s_out.is_empty() {
            return;
        }
    }
    panic!("handshake pump never quiesced");
}

#[test]
fn late_ticks_fire_elapsed_timers_exactly_once() {
    let cfg = lax_cfg();
    let tuple = FourTuple {
        src: Endpoint::new(CLIENT, 4000),
        dst: Endpoint::new(SERVER, 80),
    };
    let mut now = SimTime::from_millis(1);
    let mut client = MptcpConnection::client(cfg.clone(), tuple, now, SimRng::new(1));
    let mut listener = MptcpListener::new(cfg, 2);
    pump(&mut client, &mut listener, now);
    assert!(client.is_established());

    // Warmup: one delivered, DATA_ACKed write, walking time forward
    // deadline-by-deadline (the delayed-ACK flush needs its timer to
    // elapse). The jitter below then lands on a *confirmed* mid-stream
    // connection — an unconfirmed client treats the first data RTO as
    // middlebox option-stripping and falls back (§3.3.6), which is not
    // the behavior under test here.
    const WARM: usize = 1024;
    assert_eq!(client.write(&[0x11u8; WARM]).accepted(), WARM);
    let mut warm = 0usize;
    for _ in 0..50 {
        pump(&mut client, &mut listener, now);
        while let Some(b) = listener.conns[0].read(usize::MAX).into_data() {
            warm += b.len();
        }
        if warm == WARM && client.poll_at(now).is_none() {
            break;
        }
        match [client.poll_at(now), listener.poll_at(now)]
            .into_iter()
            .flatten()
            .min()
        {
            Some(t) => {
                assert!(t > now);
                now = t;
            }
            None => break,
        }
    }
    assert_eq!(warm, WARM, "warmup write must be delivered");
    assert_eq!(client.stats.data_rtos, 0, "warmup must not need timers");

    // Queue data, then blackhole everything the client sends: both the
    // subflow RTO and the data-level RTO are now pending.
    const DATA: usize = 20 * 1024;
    let wrote = client.write(&vec![0xa5u8; DATA]).accepted();
    assert_eq!(wrote, DATA);
    let lost = drain(&mut client, now);
    assert!(!lost.is_empty(), "the write must have produced segments");
    assert_eq!(client.stats.data_rtos, 0);
    assert_eq!(client.subflows()[0].sock.stats.rtos, 0);

    // Invariant 3: unacked data pending ⇒ there must be a future deadline.
    let deadline = client
        .poll_at(now)
        .expect("unacked data pending but no deadline: the loop would sleep forever");
    assert!(deadline > now);

    // First wakeup, grossly late: jitter spanning many nominal RTO
    // intervals. Invariant 1: each elapsed timer fires exactly once.
    now = deadline + Duration::from_secs(3);
    let retx1 = drain(&mut client, now);
    assert!(!retx1.is_empty(), "an elapsed RTO must retransmit");
    assert_eq!(
        client.stats.data_rtos, 1,
        "a late tick must fire the data RTO once, not once per missed interval"
    );
    assert_eq!(
        client.subflows()[0].sock.stats.rtos,
        1,
        "a late tick must fire the subflow RTO once, not once per missed interval"
    );

    // Invariant 2: more ticks at the same instant change nothing.
    let again = drain(&mut client, now);
    assert!(
        again.is_empty(),
        "a repeated tick at the same now re-emitted"
    );
    assert_eq!(client.stats.data_rtos, 1);
    assert_eq!(client.subflows()[0].sock.stats.rtos, 1);

    // Second late wakeup: the timers re-armed relative to the late tick
    // (backoff included). Only the timer whose deadline elapsed fires —
    // exactly once each; the still-future one (the data RTO's interval
    // grows with the backed-off subflow RTO) stays untouched.
    let deadline2 = client.poll_at(now).expect("retransmission still pending");
    assert!(deadline2 > now, "re-armed deadline must be in the future");
    now = deadline2 + Duration::from_secs(2);
    let retx2 = drain(&mut client, now);
    assert!(!retx2.is_empty(), "the elapsed deadline must retransmit");
    let data2 = client.stats.data_rtos - 1;
    let sub2 = client.subflows()[0].sock.stats.rtos - 1;
    assert!(
        data2 <= 1 && sub2 <= 1,
        "no timer may fire more than once per tick (data +{data2}, subflow +{sub2})"
    );
    assert!(
        data2 + sub2 >= 1,
        "the timer owning the elapsed deadline must have fired"
    );

    // Heal the wire: deliver the retransmissions and let the exchange
    // run, sleeping until whichever endpoint's `poll_at` is earliest —
    // exactly what the real event loop does. If `poll_at` ever returned
    // `None` with data outstanding (a stall) or a past deadline, this
    // loop would panic. The connection recovers fully: jitter cost time,
    // nothing else.
    for seg in &retx2 {
        listener.handle_segment(now, seg);
    }
    let mut got = 0usize;
    for _ in 0..1000 {
        pump(&mut client, &mut listener, now);
        while let Some(b) = listener.conns[0].read(usize::MAX).into_data() {
            got += b.len();
        }
        if got == DATA {
            break;
        }
        let next = [client.poll_at(now), listener.poll_at(now)]
            .into_iter()
            .flatten()
            .min()
            .expect("data outstanding but neither endpoint wants a wakeup");
        assert!(
            next > now,
            "deadline pinned to the past would spin the loop"
        );
        now = next;
    }
    assert_eq!(
        got, DATA,
        "server must deliver the full stream after recovery"
    );

    // All data acked: the data-level timer disarms; whatever deadline
    // remains (delayed-ack flush, etc.) is still strictly future.
    if let Some(t) = client.poll_at(now) {
        assert!(t > now);
    }
}
