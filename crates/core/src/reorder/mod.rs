//! The connection-level out-of-order queue (§4.3, Figure 8).
//!
//! Subflows deliver bytes in subflow order, but data sequence numbers
//! interleave across subflows, so almost every arriving segment is
//! out-of-order at the data level — the exact inverse of single-path TCP,
//! whose fast path assumes in-order arrival. The paper explores four
//! receive algorithms:
//!
//! * **Regular** — scan the queue linearly for the insertion point.
//! * **Tree** — balanced-tree lookup (log time, more code, still not
//!   constant).
//! * **Shortcuts** — exploit *batching*: a subflow sends runs of
//!   contiguous data sequence numbers, so each subflow keeps a pointer to
//!   where its next segment should land; a correct pointer makes insertion
//!   O(1). Works for ~80% of packets.
//! * **AllShortcuts** — when the pointer misses, iterate over contiguous
//!   *batches* instead of individual segments.
//!
//! All four implement [`OooQueue`] and count *ops* (node visits /
//! comparisons) so the Figure 8 experiment can report relative CPU cost;
//! the Criterion bench measures real wall-clock time as well.

mod batch;
mod linear;
mod shortcut;
mod tree;

pub use batch::AllShortcutsQueue;
pub use linear::LinearQueue;
pub use shortcut::ShortcutsQueue;
pub use tree::TreeQueue;

use bytes::Bytes;

use crate::config::ReorderAlgo;

/// A connection-level out-of-order queue.
///
/// Invariants all implementations maintain:
/// * entries are non-overlapping and sorted by data sequence number;
/// * duplicate or fully-covered inserts are dropped;
/// * `pop_ready(rcv_nxt)` returns the entry starting exactly at `rcv_nxt`,
///   if present.
pub trait OooQueue: Send {
    /// Insert a segment at data sequence `dsn`, arriving on `subflow`.
    fn insert(&mut self, dsn: u64, data: Bytes, subflow: usize);

    /// Insert a run of segments that arrived together (one ingress drain),
    /// consuming `items` but keeping its capacity for reuse.
    ///
    /// Observationally identical to calling [`OooQueue::insert`] in order;
    /// batch-structured implementations override this so a drain of N
    /// contiguous datagrams costs one lookup walk, not N.
    fn insert_batch(&mut self, items: &mut Vec<(u64, Bytes, usize)>) {
        for (dsn, data, subflow) in items.drain(..) {
            self.insert(dsn, data, subflow);
        }
    }

    /// Pop the entry starting at `rcv_nxt`, if queued. Entries that have
    /// been fully superseded (end ≤ rcv_nxt) are discarded on the way.
    fn pop_ready(&mut self, rcv_nxt: u64) -> Option<(u64, Bytes)>;

    /// Total payload bytes held (receiver memory, Figure 5b).
    fn buffered_bytes(&self) -> usize;

    /// Number of queued entries.
    fn len(&self) -> usize;

    /// Is the queue empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative operation count (node visits / comparisons): the CPU
    /// proxy plotted in Figure 8.
    fn ops(&self) -> u64;

    /// Fraction of inserts satisfied by a shortcut pointer (0 for the
    /// algorithms that have none).
    fn shortcut_hits(&self) -> u64;

    /// Count of insert calls.
    fn inserts(&self) -> u64;
}

/// Construct a queue for the configured algorithm.
pub fn make_queue(algo: ReorderAlgo) -> Box<dyn OooQueue> {
    match algo {
        ReorderAlgo::Regular => Box::new(LinearQueue::new()),
        ReorderAlgo::Tree => Box::new(TreeQueue::new()),
        ReorderAlgo::Shortcuts => Box::new(ShortcutsQueue::new()),
        ReorderAlgo::AllShortcuts => Box::new(AllShortcutsQueue::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    fn all_queues() -> Vec<(&'static str, Box<dyn OooQueue>)> {
        vec![
            ("regular", make_queue(ReorderAlgo::Regular)),
            ("tree", make_queue(ReorderAlgo::Tree)),
            ("shortcuts", make_queue(ReorderAlgo::Shortcuts)),
            ("allshortcuts", make_queue(ReorderAlgo::AllShortcuts)),
        ]
    }

    /// Drain everything in order starting from `rcv_nxt`, returning
    /// (dsn, len) pairs.
    fn drain(q: &mut dyn OooQueue, mut rcv_nxt: u64) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        while let Some((dsn, data)) = q.pop_ready(rcv_nxt) {
            assert_eq!(dsn, rcv_nxt);
            rcv_nxt = dsn + data.len() as u64;
            out.push((dsn, data.len()));
        }
        out
    }

    #[test]
    fn in_order_insert_and_drain() {
        for (name, mut q) in all_queues() {
            q.insert(0, bytes(10, 1), 0);
            q.insert(10, bytes(10, 2), 0);
            q.insert(20, bytes(5, 3), 0);
            assert_eq!(q.buffered_bytes(), 25, "{name}");
            let got = drain(q.as_mut(), 0);
            assert_eq!(got, vec![(0, 10), (10, 10), (20, 5)], "{name}");
            assert_eq!(q.buffered_bytes(), 0, "{name}");
        }
    }

    #[test]
    fn interleaved_subflows() {
        // Two subflows with batches: sf0 gets [0,10),[10,10); sf1 gets
        // [100,10),[110,10) — arrivals interleave.
        for (name, mut q) in all_queues() {
            q.insert(100, bytes(10, 1), 1);
            q.insert(0, bytes(10, 0), 0);
            q.insert(110, bytes(10, 1), 1);
            q.insert(10, bytes(10, 0), 0);
            assert_eq!(q.len(), 4, "{name}");
            let got = drain(q.as_mut(), 0);
            assert_eq!(got, vec![(0, 10), (10, 10)], "{name}");
            let got = drain(q.as_mut(), 100);
            assert_eq!(got, vec![(100, 10), (110, 10)], "{name}");
        }
    }

    #[test]
    fn reverse_order_insert() {
        for (name, mut q) in all_queues() {
            for i in (0..20u64).rev() {
                q.insert(i * 10, bytes(10, i as u8), 0);
            }
            assert_eq!(q.len(), 20, "{name}");
            let got = drain(q.as_mut(), 0);
            assert_eq!(got.len(), 20, "{name}");
        }
    }

    #[test]
    fn duplicates_dropped() {
        for (name, mut q) in all_queues() {
            q.insert(50, bytes(10, 1), 0);
            q.insert(50, bytes(10, 1), 1); // exact duplicate from elsewhere
            assert_eq!(q.len(), 1, "{name}");
            assert_eq!(q.buffered_bytes(), 10, "{name}");
        }
    }

    #[test]
    fn covered_inserts_dropped() {
        for (name, mut q) in all_queues() {
            q.insert(0, bytes(100, 1), 0);
            q.insert(20, bytes(10, 2), 1); // interior duplicate
            assert_eq!(q.len(), 1, "{name}");
            let got = drain(q.as_mut(), 0);
            assert_eq!(got, vec![(0, 100)], "{name}");
        }
    }

    #[test]
    fn pop_discards_stale_entries() {
        for (name, mut q) in all_queues() {
            q.insert(0, bytes(10, 1), 0);
            q.insert(10, bytes(10, 2), 0);
            // rcv_nxt has moved past the first entry (delivered via another
            // duplicate path).
            let got = q.pop_ready(10);
            assert!(got.is_some(), "{name}");
            assert_eq!(got.unwrap().0, 10, "{name}");
            assert!(q.is_empty(), "{name}");
        }
    }

    #[test]
    fn pop_on_hole_returns_none() {
        for (name, mut q) in all_queues() {
            q.insert(10, bytes(10, 1), 0);
            assert!(q.pop_ready(0).is_none(), "{name}");
            assert_eq!(q.len(), 1, "{name}");
        }
    }

    #[test]
    fn shortcut_hits_dominate_batched_arrivals() {
        // The 80% claim: with batched subflow sends, the per-subflow
        // pointer is almost always right.
        for algo in [ReorderAlgo::Shortcuts, ReorderAlgo::AllShortcuts] {
            let mut q = make_queue(algo);
            // sf1's batch lands far ahead; sf0 fills in behind, contiguous.
            q.insert(1_000, bytes(100, 0), 1);
            for i in 0..100u64 {
                q.insert(1_100 + i * 100, bytes(100, 0), 1);
            }
            let hits = q.shortcut_hits();
            let inserts = q.inserts();
            assert!(inserts == 101);
            assert!(
                hits as f64 / inserts as f64 > 0.9,
                "{algo:?}: {hits}/{inserts} hits"
            );
        }
    }

    #[test]
    fn linear_ops_exceed_shortcut_ops() {
        // The Figure 8 ordering: Regular >> Shortcuts for batched inserts.
        let workload: Vec<(u64, usize)> = {
            // Two interleaved subflow batches growing the queue.
            let mut w = Vec::new();
            for i in 0..200u64 {
                w.push((10_000 + i * 10, 1)); // sf1 far batch
                if i % 10 == 0 {
                    w.push((i, 0)); // occasional sf0 in-fill (stays queued)
                }
            }
            w
        };
        let mut lin = make_queue(ReorderAlgo::Regular);
        let mut sc = make_queue(ReorderAlgo::Shortcuts);
        for &(dsn, sf) in &workload {
            lin.insert(dsn, bytes(10, 0), sf);
            sc.insert(dsn, bytes(10, 0), sf);
        }
        assert_eq!(lin.len(), sc.len());
        assert!(
            lin.ops() > 3 * sc.ops(),
            "linear {} vs shortcuts {}",
            lin.ops(),
            sc.ops()
        );
    }

    #[test]
    fn insert_batch_equals_sequential_insert() {
        // Mixed workload: contiguous runs, gaps, duplicates, overlaps, an
        // empty segment, and a cross-subflow interleave — batch insertion
        // must yield exactly the same queue state as one-at-a-time.
        let workload: Vec<(u64, usize, usize)> = vec![
            (0, 10, 0),
            (10, 10, 0),
            (20, 10, 0), // run
            (100, 10, 1),
            (110, 10, 1), // second subflow's run
            (15, 10, 0),  // overlap into the first run
            (50, 0, 0),   // empty
            (10, 10, 1),  // duplicate from the other subflow
            (120, 10, 1),
            (130, 10, 1), // run continues after interruption
            (30, 10, 0),  // fills toward the far batch
        ];
        for algo in [
            ReorderAlgo::Regular,
            ReorderAlgo::Tree,
            ReorderAlgo::Shortcuts,
            ReorderAlgo::AllShortcuts,
        ] {
            let mut seq = make_queue(algo);
            for &(dsn, n, sf) in &workload {
                seq.insert(dsn, bytes(n, dsn as u8), sf);
            }
            let mut batched = make_queue(algo);
            let mut items: Vec<(u64, Bytes, usize)> = workload
                .iter()
                .map(|&(dsn, n, sf)| (dsn, bytes(n, dsn as u8), sf))
                .collect();
            batched.insert_batch(&mut items);
            assert!(items.is_empty(), "{algo:?}: batch consumes its input");
            assert_eq!(batched.len(), seq.len(), "{algo:?}");
            assert_eq!(batched.buffered_bytes(), seq.buffered_bytes(), "{algo:?}");
            assert_eq!(batched.inserts(), seq.inserts(), "{algo:?}");
            let a = drain(batched.as_mut(), 0);
            let b = drain(seq.as_mut(), 0);
            assert_eq!(a, b, "{algo:?}");
            let a = drain(batched.as_mut(), 100);
            let b = drain(seq.as_mut(), 100);
            assert_eq!(a, b, "{algo:?}");
        }
    }

    #[test]
    fn batch_run_costs_one_walk() {
        // The tentpole claim: a contiguous run through insert_batch pays
        // the lookup once, then constant-work appends.
        let mut q = make_queue(ReorderAlgo::AllShortcuts);
        q.insert(10_000, bytes(10, 0), 1); // far batch so the queue is non-trivial
        let mut items: Vec<(u64, Bytes, usize)> =
            (0..256u64).map(|i| (i * 10, bytes(10, 0), 0)).collect();
        q.insert_batch(&mut items);
        // First item walks (arming the cache), remaining 255 hit it.
        assert_eq!(q.shortcut_hits(), 255);
        assert!(q.ops() <= 260, "ops = {}", q.ops());
    }

    #[test]
    fn allshortcuts_beats_shortcuts_on_pointer_misses() {
        // Force pointer misses: single subflow inserting at alternating
        // far-apart positions. AllShortcuts scans batch summaries; plain
        // Shortcuts scans every node.
        let mut sc = make_queue(ReorderAlgo::Shortcuts);
        let mut asc = make_queue(ReorderAlgo::AllShortcuts);
        // Build many contiguous batches with holes between them; every
        // round also inserts into the gap of the *previous* region, which
        // defeats both subflows' pointers and forces the fallback scan.
        for batch in 1..50u64 {
            for k in 0..10u64 {
                let dsn = batch * 1_000 + k * 10;
                sc.insert(dsn, bytes(10, 0), 0);
                asc.insert(dsn, bytes(10, 0), 0);
            }
            let miss = (batch - 1) * 1_000 + 500;
            sc.insert(miss, bytes(10, 0), 1);
            asc.insert(miss, bytes(10, 0), 1);
        }
        assert_eq!(sc.len(), asc.len());
        assert!(
            asc.ops() < sc.ops(),
            "allshortcuts {} vs shortcuts {}",
            asc.ops(),
            sc.ops()
        );
    }
}
