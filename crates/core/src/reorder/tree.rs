//! "Tree" algorithm: balanced-tree out-of-order queue.
//!
//! The obvious fix the paper mentions first: replace the linear scan with
//! a binary tree. It reduces lookup to logarithmic time but "adds
//! complexity to the code, and still takes logarithmic time to place a
//! packet" — which is why the Shortcuts family wins in Figure 8. Ops are
//! modelled as ⌈log₂ n⌉ + 1 per lookup, matching a balanced tree's
//! comparison count.

use std::collections::BTreeMap;

use bytes::Bytes;

use super::OooQueue;

/// Balanced-tree out-of-order queue.
pub struct TreeQueue {
    map: BTreeMap<u64, Bytes>,
    bytes: usize,
    ops: u64,
    inserts: u64,
}

impl TreeQueue {
    /// An empty queue.
    pub fn new() -> TreeQueue {
        TreeQueue {
            map: BTreeMap::new(),
            bytes: 0,
            ops: 0,
            inserts: 0,
        }
    }

    fn lookup_cost(&self) -> u64 {
        (usize::BITS - self.map.len().leading_zeros()) as u64 + 1
    }
}

impl Default for TreeQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl OooQueue for TreeQueue {
    fn insert(&mut self, mut dsn: u64, mut data: Bytes, _subflow: usize) {
        self.inserts += 1;
        if data.is_empty() {
            return;
        }
        self.ops += self.lookup_cost();

        // Trim against predecessor.
        if let Some((&pstart, pdata)) = self.map.range(..=dsn).next_back() {
            let pend = pstart + pdata.len() as u64;
            if pend >= dsn + data.len() as u64 {
                return;
            }
            if pend > dsn {
                let cut = (pend - dsn) as usize;
                data = data.slice(cut..);
                dsn = pend;
            }
        }
        // Trim against successor.
        if let Some((&nstart, _)) = self.map.range(dsn..).next() {
            if dsn >= nstart {
                return;
            }
            let end = dsn + data.len() as u64;
            if end > nstart {
                data = data.slice(..(nstart - dsn) as usize);
            }
        }
        if data.is_empty() {
            return;
        }
        self.bytes += data.len();
        self.map.insert(dsn, data);
    }

    fn pop_ready(&mut self, rcv_nxt: u64) -> Option<(u64, Bytes)> {
        loop {
            let (&dsn, data) = self.map.first_key_value()?;
            let end = dsn + data.len() as u64;
            if end <= rcv_nxt {
                let (_, d) = self.map.pop_first().unwrap();
                self.bytes -= d.len();
                continue;
            }
            if dsn > rcv_nxt {
                return None;
            }
            let (dsn, data) = self.map.pop_first().unwrap();
            self.bytes -= data.len();
            if dsn == rcv_nxt {
                return Some((dsn, data));
            }
            let cut = (rcv_nxt - dsn) as usize;
            return Some((rcv_nxt, data.slice(cut..)));
        }
    }

    fn buffered_bytes(&self) -> usize {
        self.bytes
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn ops(&self) -> u64 {
        self.ops
    }

    fn shortcut_hits(&self) -> u64 {
        0
    }

    fn inserts(&self) -> u64 {
        self.inserts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_grow_logarithmically() {
        let mut q = TreeQueue::new();
        for i in 0..1024u64 {
            q.insert(i * 10, Bytes::from(vec![0u8; 10]), 0);
        }
        // Total ops bounded by n * (log2(n) + 2).
        assert!(q.ops() <= 1024 * 12, "ops = {}", q.ops());
        // And strictly more than constant-per-insert.
        assert!(q.ops() > 1024 * 2);
    }

    #[test]
    fn covered_insert_dropped() {
        let mut q = TreeQueue::new();
        q.insert(0, Bytes::from(vec![0u8; 100]), 0);
        q.insert(10, Bytes::from(vec![0u8; 10]), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.buffered_bytes(), 100);
    }
}
