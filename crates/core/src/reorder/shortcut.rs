//! "Shortcuts" algorithm: per-subflow expected-position pointers.
//!
//! The paper's key observation (§4.3): when a subflow is ready to send,
//! the connection allocates a *batch* of contiguous data sequence numbers
//! to it, so each subflow's arrivals are in-order at the data level within
//! the batch. The receiver therefore "augments each subflow's data
//! structures with a pointer to the connection-level out-of-order queue
//! where it expects the next segment of that subflow to arrive. If the
//! pointer is wrong, we revert to scanning the whole out-of-order queue."
//! The shortcut hits for ~80% of packets and makes insertion O(1).
//!
//! The queue is a slab-backed doubly-linked list (stable node handles with
//! generation counters, so recycled slots can't be mistaken for live ones).

use std::collections::HashMap;

use bytes::Bytes;

use super::OooQueue;

const NIL: usize = usize::MAX;

struct Node {
    dsn: u64,
    data: Bytes,
    prev: usize,
    next: usize,
    gen: u32,
    alive: bool,
}

impl Node {
    fn end(&self) -> u64 {
        self.dsn + self.data.len() as u64
    }
}

/// Linked-list out-of-order queue with per-subflow insertion shortcuts.
pub struct ShortcutsQueue {
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    len: usize,
    bytes: usize,
    /// subflow -> (node index, generation) after which the next segment
    /// from that subflow is expected to land.
    cursors: HashMap<usize, (usize, u32)>,
    ops: u64,
    hits: u64,
    inserts: u64,
}

impl ShortcutsQueue {
    /// An empty queue.
    pub fn new() -> ShortcutsQueue {
        ShortcutsQueue {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            bytes: 0,
            cursors: HashMap::new(),
            ops: 0,
            hits: 0,
            inserts: 0,
        }
    }

    fn alloc(&mut self, dsn: u64, data: Bytes) -> usize {
        match self.free.pop() {
            Some(i) => {
                let gen = self.nodes[i].gen.wrapping_add(1);
                self.nodes[i] = Node {
                    dsn,
                    data,
                    prev: NIL,
                    next: NIL,
                    gen,
                    alive: true,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    dsn,
                    data,
                    prev: NIL,
                    next: NIL,
                    gen: 0,
                    alive: true,
                });
                self.nodes.len() - 1
            }
        }
    }

    /// Insert the node after `after` (NIL = at head).
    fn link_after(&mut self, after: usize, idx: usize) {
        if after == NIL {
            self.nodes[idx].next = self.head;
            self.nodes[idx].prev = NIL;
            if self.head != NIL {
                self.nodes[self.head].prev = idx;
            }
            self.head = idx;
            if self.tail == NIL {
                self.tail = idx;
            }
        } else {
            let next = self.nodes[after].next;
            self.nodes[idx].prev = after;
            self.nodes[idx].next = next;
            self.nodes[after].next = idx;
            if next != NIL {
                self.nodes[next].prev = idx;
            } else {
                self.tail = idx;
            }
        }
        self.len += 1;
        self.bytes += self.nodes[idx].data.len();
    }

    fn unlink(&mut self, idx: usize) -> Bytes {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].alive = false;
        self.len -= 1;
        self.bytes -= self.nodes[idx].data.len();
        self.free.push(idx);
        std::mem::replace(&mut self.nodes[idx].data, Bytes::new())
    }

    /// Does inserting `[dsn, dsn+len)` directly after node `after` keep the
    /// list sorted and non-overlapping?
    fn position_valid(&self, after: usize, dsn: u64, len: usize) -> bool {
        let end = dsn + len as u64;
        if after == NIL {
            self.head == NIL || end <= self.nodes[self.head].dsn
        } else {
            let n = &self.nodes[after];
            if !n.alive || n.end() > dsn {
                return false;
            }
            n.next == NIL || end <= self.nodes[n.next].dsn
        }
    }

    /// Scan from the tail for the node after which `dsn` belongs.
    fn scan_position(&mut self, dsn: u64) -> usize {
        let mut t = self.tail;
        self.ops += 1;
        while t != NIL && self.nodes[t].dsn > dsn {
            t = self.nodes[t].prev;
            self.ops += 1;
        }
        t
    }

    fn insert_after(&mut self, after: usize, mut dsn: u64, mut data: Bytes) -> Option<usize> {
        // Trim against predecessor.
        if after != NIL {
            let pend = self.nodes[after].end();
            if pend >= dsn + data.len() as u64 {
                return None;
            }
            if pend > dsn {
                let cut = (pend - dsn) as usize;
                data = data.slice(cut..);
                dsn = pend;
            }
        }
        // Trim against successor.
        let next = if after == NIL {
            self.head
        } else {
            self.nodes[after].next
        };
        if next != NIL {
            let nstart = self.nodes[next].dsn;
            if dsn >= nstart {
                return None;
            }
            let end = dsn + data.len() as u64;
            if end > nstart {
                data = data.slice(..(nstart - dsn) as usize);
            }
        }
        if data.is_empty() {
            return None;
        }
        let idx = self.alloc(dsn, data);
        self.link_after(after, idx);
        Some(idx)
    }
}

impl Default for ShortcutsQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl OooQueue for ShortcutsQueue {
    fn insert(&mut self, dsn: u64, data: Bytes, subflow: usize) {
        self.inserts += 1;
        if data.is_empty() {
            return;
        }
        // Try the subflow's shortcut pointer first.
        let after = match self.cursors.get(&subflow) {
            Some(&(idx, gen))
                if idx != NIL
                    && idx < self.nodes.len()
                    && self.nodes[idx].gen == gen
                    && self.position_valid(idx, dsn, data.len()) =>
            {
                self.ops += 1;
                self.hits += 1;
                idx
            }
            _ => self.scan_position(dsn),
        };
        if let Some(idx) = self.insert_after(after, dsn, data) {
            let gen = self.nodes[idx].gen;
            self.cursors.insert(subflow, (idx, gen));
        }
    }

    fn pop_ready(&mut self, rcv_nxt: u64) -> Option<(u64, Bytes)> {
        loop {
            if self.head == NIL {
                return None;
            }
            let h = self.head;
            let (dsn, end) = (self.nodes[h].dsn, self.nodes[h].end());
            if end <= rcv_nxt {
                self.unlink(h);
                continue;
            }
            if dsn > rcv_nxt {
                return None;
            }
            let data = self.unlink(h);
            if dsn == rcv_nxt {
                return Some((dsn, data));
            }
            let cut = (rcv_nxt - dsn) as usize;
            return Some((rcv_nxt, data.slice(cut..)));
        }
    }

    fn buffered_bytes(&self) -> usize {
        self.bytes
    }

    fn len(&self) -> usize {
        self.len
    }

    fn ops(&self) -> u64 {
        self.ops
    }

    fn shortcut_hits(&self) -> u64 {
        self.hits
    }

    fn inserts(&self) -> u64 {
        self.inserts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: usize) -> Bytes {
        Bytes::from(vec![0u8; n])
    }

    #[test]
    fn contiguous_batch_hits_shortcut() {
        let mut q = ShortcutsQueue::new();
        q.insert(100, b(10), 0); // miss (empty queue scan, cheap)
        for i in 1..50u64 {
            q.insert(100 + i * 10, b(10), 0);
        }
        assert_eq!(q.shortcut_hits(), 49);
        assert_eq!(q.len(), 50);
    }

    #[test]
    fn interleaved_subflows_each_hit_their_cursor() {
        let mut q = ShortcutsQueue::new();
        // sf0 at 0.., sf1 at 10_000.., alternating arrivals.
        q.insert(0, b(10), 0);
        q.insert(10_000, b(10), 1);
        for i in 1..100u64 {
            q.insert(i * 10, b(10), 0);
            q.insert(10_000 + i * 10, b(10), 1);
        }
        // Each subflow's cursor stays valid despite the other's inserts.
        assert!(q.shortcut_hits() >= 198, "hits = {}", q.shortcut_hits());
    }

    #[test]
    fn stale_cursor_detected_after_pop() {
        let mut q = ShortcutsQueue::new();
        q.insert(0, b(10), 0);
        // Pop recycles the node slot.
        assert!(q.pop_ready(0).is_some());
        q.insert(100, b(10), 1); // reuses slot with bumped generation
                                 // sf0's cursor points at the recycled slot; the generation check
                                 // must force a scan rather than corrupt the list.
        q.insert(50, b(10), 0);
        assert_eq!(q.len(), 2);
        let a = q.pop_ready(50).unwrap();
        assert_eq!(a.0, 50);
        let c = q.pop_ready(100).unwrap();
        assert_eq!(c.0, 100);
    }

    #[test]
    fn overlap_trimmed_on_shortcut_path() {
        let mut q = ShortcutsQueue::new();
        q.insert(0, b(10), 0);
        q.insert(5, b(10), 0); // overlaps its own previous segment
        assert_eq!(q.buffered_bytes(), 15);
        let (_, d1) = q.pop_ready(0).unwrap();
        assert_eq!(d1.len(), 10);
        let (dsn, d2) = q.pop_ready(10).unwrap();
        assert_eq!(dsn, 10);
        assert_eq!(d2.len(), 5);
    }
}
