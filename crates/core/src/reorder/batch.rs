//! "AllShortcuts" algorithm: shortcuts plus batch-grouped fallback.
//!
//! For the ~20% of packets where the per-subflow pointer misses, plain
//! Shortcuts degenerates to scanning every queued segment. This variant
//! implements the paper's fix: "the out-of-order queue groups in-sequence
//! segments into batches. Then, we iterate over these batches instead of
//! iterating over all the segments. As there are significantly less
//! batches than packets in the out-of-order queue, the lookup process will
//! be much faster." (§4.3)
//!
//! Batches are maximal runs of contiguous data sequence numbers, stored in
//! a BTreeMap keyed by start DSN; each batch keeps its member segments in
//! arrival order for O(1) pops.

use std::collections::{BTreeMap, HashMap, VecDeque};

use bytes::Bytes;

use super::OooQueue;

struct Batch {
    end: u64,
    segs: VecDeque<(u64, Bytes)>,
}

/// Batch-grouped out-of-order queue with per-subflow shortcuts.
pub struct AllShortcutsQueue {
    batches: BTreeMap<u64, Batch>,
    /// batch end DSN -> batch start key (for O(1) append-to-batch).
    by_end: HashMap<u64, u64>,
    bytes: usize,
    segments: usize,
    /// subflow -> DSN where its next segment is expected.
    cursors: HashMap<usize, u64>,
    ops: u64,
    hits: u64,
    inserts: u64,
}

impl AllShortcutsQueue {
    /// An empty queue.
    pub fn new() -> AllShortcutsQueue {
        AllShortcutsQueue {
            batches: BTreeMap::new(),
            by_end: HashMap::new(),
            bytes: 0,
            segments: 0,
            cursors: HashMap::new(),
            ops: 0,
            hits: 0,
            inserts: 0,
        }
    }

    /// Append a segment to the batch ending exactly at `dsn`, then merge
    /// with the following batch if they now touch. Returns the batch's new
    /// end, so a batch-insert run can track it without another lookup.
    fn extend_batch(&mut self, start_key: u64, dsn: u64, data: Bytes) -> u64 {
        let len = data.len() as u64;
        let batch = self.batches.get_mut(&start_key).expect("batch exists");
        debug_assert_eq!(batch.end, dsn);
        self.by_end.remove(&batch.end);
        batch.segs.push_back((dsn, data));
        batch.end += len;
        let new_end = batch.end;
        self.segments += 1;
        self.bytes += len as usize;

        // Merge with the successor batch if contiguous.
        if let Some(mut succ) = self.batches.remove(&new_end) {
            self.by_end.remove(&succ.end);
            let succ_end = succ.end;
            let batch = self.batches.get_mut(&start_key).unwrap();
            batch.segs.append(&mut succ.segs);
            batch.end = succ_end;
            self.by_end.insert(succ_end, start_key);
            succ_end
        } else {
            self.by_end.insert(new_end, start_key);
            new_end
        }
    }

    /// Create a fresh batch, merging with a successor that starts at its
    /// end.
    fn new_batch(&mut self, dsn: u64, data: Bytes) {
        let len = data.len() as u64;
        let mut segs = VecDeque::new();
        segs.push_back((dsn, data));
        let mut end = dsn + len;
        self.segments += 1;
        self.bytes += len as usize;

        if let Some(mut succ) = self.batches.remove(&end) {
            self.by_end.remove(&succ.end);
            segs.append(&mut succ.segs);
            end = succ.end;
        }
        self.batches.insert(dsn, Batch { end, segs });
        self.by_end.insert(end, dsn);
    }

    fn remove_batch_front(&mut self, start_key: u64) -> Option<(u64, Bytes)> {
        let batch = self.batches.get_mut(&start_key)?;
        let (dsn, data) = batch.segs.pop_front()?;
        self.segments -= 1;
        self.bytes -= data.len();
        if batch.segs.is_empty() {
            let b = self.batches.remove(&start_key).unwrap();
            self.by_end.remove(&b.end);
        } else {
            // Re-key the batch at its new start.
            let b = self.batches.remove(&start_key).unwrap();
            let new_start = b.segs.front().unwrap().0;
            self.by_end.insert(b.end, new_start);
            self.batches.insert(new_start, b);
        }
        Some((dsn, data))
    }
}

impl Default for AllShortcutsQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl OooQueue for AllShortcutsQueue {
    fn insert(&mut self, dsn: u64, data: Bytes, subflow: usize) {
        self.inserts += 1;
        if data.is_empty() {
            return;
        }
        let len = data.len() as u64;

        // Shortcut: the subflow expected to continue exactly here, and a
        // batch indeed ends here (O(1) via the end index).
        if self.cursors.get(&subflow) == Some(&dsn) {
            if let Some(&start_key) = self.by_end.get(&dsn) {
                self.ops += 1;
                self.hits += 1;
                self.extend_batch(start_key, dsn, data);
                self.cursors.insert(subflow, dsn + len);
                return;
            }
        }

        // Fallback: iterate over batches (not segments), newest first.
        let mut covered = false;
        let mut target: Option<u64> = None; // batch to extend at its end
        let mut clip_to: Option<u64> = None; // successor start limiting tail
        self.ops += 1;
        for (&start, batch) in self.batches.range(..).rev() {
            self.ops += 1;
            if start > dsn {
                clip_to = Some(start);
                continue;
            }
            // First batch starting at or before dsn.
            if dsn < batch.end {
                // Starts inside this batch: contiguous runs hold all bytes
                // in [start, end), so the overlapped prefix is duplicate.
                if dsn + len <= batch.end {
                    covered = true;
                } else {
                    target = Some(start); // extend after trimming the front
                }
            } else if dsn == batch.end {
                target = Some(start);
            }
            break;
        }
        if covered {
            return;
        }

        let (dsn, data) = {
            // Trim the front against the target batch's end.
            let (mut dsn, mut data) = (dsn, data);
            if let Some(t) = target {
                let bend = self.batches[&t].end;
                if bend > dsn {
                    let cut = (bend - dsn) as usize;
                    data = data.slice(cut..);
                    dsn = bend;
                }
            }
            // Trim the tail against the successor batch.
            if let Some(ns) = clip_to {
                if dsn >= ns {
                    return;
                }
                if dsn + data.len() as u64 > ns {
                    data = data.slice(..(ns - dsn) as usize);
                }
            }
            if data.is_empty() {
                return;
            }
            (dsn, data)
        };

        let end = dsn + data.len() as u64;
        match target {
            Some(t) if self.batches[&t].end == dsn => {
                self.extend_batch(t, dsn, data);
            }
            _ => self.new_batch(dsn, data),
        }
        self.cursors.insert(subflow, end);
    }

    /// The promoted default ingress path: a drain of N contiguous datagrams
    /// costs one lookup to find the target batch, then N O(1) appends
    /// against a cached `(batch key, batch end)` — no per-segment cursor or
    /// end-index probing.
    fn insert_batch(&mut self, items: &mut Vec<(u64, Bytes, usize)>) {
        // Batch being extended by the current contiguous run.
        let mut cached: Option<(u64, u64)> = None;
        for (dsn, data, subflow) in items.drain(..) {
            if data.is_empty() {
                self.inserts += 1;
                continue;
            }
            let len = data.len() as u64;
            // Fast path mirrors `insert`'s shortcut exactly: the subflow's
            // cursor expected `dsn` AND a batch ends right there (the
            // cached one — batch ends are unique, so `by_end[dsn]` could
            // name no other).
            let fast = matches!(cached, Some((_, end)) if end == dsn)
                && self.cursors.get(&subflow) == Some(&dsn);
            if fast {
                let (key, _) = cached.unwrap();
                self.inserts += 1;
                self.ops += 1;
                self.hits += 1;
                let new_end = self.extend_batch(key, dsn, data);
                self.cursors.insert(subflow, dsn + len);
                // If a successor merge pushed the end past dsn+len, the next
                // contiguous item misses the cache and takes the full
                // insert — the same route the sequential shortcut takes.
                cached = Some((key, new_end));
                continue;
            }
            self.insert(dsn, data, subflow);
            // Re-arm the cache: after an insert the subflow's cursor points
            // one past the inserted bytes; if a batch ends exactly there,
            // the next contiguous segment can take the fast path.
            cached = self
                .cursors
                .get(&subflow)
                .and_then(|&c| self.by_end.get(&c).map(|&k| (k, c)));
        }
    }

    fn pop_ready(&mut self, rcv_nxt: u64) -> Option<(u64, Bytes)> {
        loop {
            let (&start, batch) = self.batches.first_key_value()?;
            if batch.end <= rcv_nxt {
                // Entire batch superseded.
                let b = self.batches.remove(&start).unwrap();
                self.by_end.remove(&b.end);
                self.segments -= b.segs.len();
                self.bytes -= b.segs.iter().map(|(_, d)| d.len()).sum::<usize>();
                continue;
            }
            if start > rcv_nxt {
                return None;
            }
            let (dsn, data) = self.remove_batch_front(start)?;
            let end = dsn + data.len() as u64;
            if end <= rcv_nxt {
                continue; // stale front segment
            }
            if dsn >= rcv_nxt {
                if dsn == rcv_nxt {
                    return Some((dsn, data));
                }
                // Shouldn't happen (batch.start <= rcv_nxt), defensive:
                return Some((dsn, data));
            }
            let cut = (rcv_nxt - dsn) as usize;
            return Some((rcv_nxt, data.slice(cut..)));
        }
    }

    fn buffered_bytes(&self) -> usize {
        self.bytes
    }

    fn len(&self) -> usize {
        self.segments
    }

    fn ops(&self) -> u64 {
        self.ops
    }

    fn shortcut_hits(&self) -> u64 {
        self.hits
    }

    fn inserts(&self) -> u64 {
        self.inserts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: usize) -> Bytes {
        Bytes::from(vec![0u8; n])
    }

    #[test]
    fn batches_merge_when_hole_fills() {
        let mut q = AllShortcutsQueue::new();
        q.insert(0, b(10), 0);
        q.insert(20, b(10), 1);
        assert_eq!(q.batches.len(), 2);
        q.insert(10, b(10), 2); // fills the hole: one batch remains
        assert_eq!(q.batches.len(), 1);
        assert_eq!(q.len(), 3);
        // Drains in order.
        assert_eq!(q.pop_ready(0).unwrap().0, 0);
        assert_eq!(q.pop_ready(10).unwrap().0, 10);
        assert_eq!(q.pop_ready(20).unwrap().0, 20);
        assert!(q.pop_ready(30).is_none());
        assert_eq!(q.buffered_bytes(), 0);
    }

    #[test]
    fn fallback_scans_batches_not_segments() {
        let mut q = AllShortcutsQueue::new();
        // One huge contiguous batch of 1000 segments.
        for i in 0..1000u64 {
            q.insert(1000 + i * 10, b(10), 0);
        }
        let before = q.ops();
        // A miss insert in front of everything: one batch visited, not 1000
        // nodes.
        q.insert(0, b(10), 1);
        assert!(q.ops() - before <= 4, "ops delta = {}", q.ops() - before);
    }

    #[test]
    fn shortcut_extends_batch_in_constant_ops() {
        let mut q = AllShortcutsQueue::new();
        q.insert(0, b(10), 0);
        let before = q.ops();
        for i in 1..100u64 {
            q.insert(i * 10, b(10), 0);
        }
        assert_eq!(q.ops() - before, 99);
        assert_eq!(q.shortcut_hits(), 99);
        assert_eq!(q.batches.len(), 1);
    }

    #[test]
    fn duplicate_interior_covered() {
        let mut q = AllShortcutsQueue::new();
        q.insert(0, b(10), 0);
        q.insert(10, b(10), 0);
        q.insert(5, b(10), 1); // interior of the single batch
        assert_eq!(q.len(), 2);
        assert_eq!(q.buffered_bytes(), 20);
    }

    #[test]
    fn partial_overlap_extends() {
        let mut q = AllShortcutsQueue::new();
        q.insert(0, b(10), 0);
        q.insert(5, b(10), 1); // 5 bytes duplicate, 5 new
        assert_eq!(q.buffered_bytes(), 15);
        assert_eq!(q.pop_ready(0).unwrap().1.len(), 10);
        let (dsn, d) = q.pop_ready(10).unwrap();
        assert_eq!(dsn, 10);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn pop_rekeys_batch() {
        let mut q = AllShortcutsQueue::new();
        q.insert(0, b(10), 0);
        q.insert(10, b(10), 0);
        q.pop_ready(0).unwrap();
        // Remaining batch must be findable at its new start.
        assert_eq!(q.pop_ready(10).unwrap().0, 10);
    }
}
