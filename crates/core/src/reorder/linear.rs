//! "Regular" algorithm: linear scan of the out-of-order queue.
//!
//! Models stock TCP receive processing (Van Jacobson fast path assumes
//! in-order data; out-of-order segments trigger a scan). Like Linux's
//! `tcp_data_queue_ofo`, the scan starts from the tail, which is cheap for
//! appends but walks the whole queue for interleaved multipath arrivals.

use bytes::Bytes;

use super::OooQueue;

#[derive(Debug)]
pub(crate) struct Entry {
    pub dsn: u64,
    pub data: Bytes,
}

impl Entry {
    pub fn end(&self) -> u64 {
        self.dsn + self.data.len() as u64
    }
}

/// Linear-scan out-of-order queue.
pub struct LinearQueue {
    entries: std::collections::VecDeque<Entry>,
    bytes: usize,
    ops: u64,
    inserts: u64,
}

impl LinearQueue {
    /// An empty queue.
    pub fn new() -> LinearQueue {
        LinearQueue {
            entries: std::collections::VecDeque::new(),
            bytes: 0,
            ops: 0,
            inserts: 0,
        }
    }
}

impl Default for LinearQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl OooQueue for LinearQueue {
    fn insert(&mut self, dsn: u64, data: Bytes, _subflow: usize) {
        self.inserts += 1;
        if data.is_empty() {
            return;
        }
        // Scan from the tail for the insertion index.
        let mut idx = self.entries.len();
        self.ops += 1;
        while idx > 0 && self.entries[idx - 1].dsn > dsn {
            idx -= 1;
            self.ops += 1;
        }
        let (dsn, data) = match trim_against_neighbors(
            dsn,
            data,
            idx.checked_sub(1).and_then(|i| self.entries.get(i)),
            self.entries.get(idx),
        ) {
            Some(x) => x,
            None => return,
        };
        self.bytes += data.len();
        self.entries.insert(idx, Entry { dsn, data });
    }

    fn pop_ready(&mut self, rcv_nxt: u64) -> Option<(u64, Bytes)> {
        pop_from_front(&mut self.entries, &mut self.bytes, rcv_nxt)
    }

    fn buffered_bytes(&self) -> usize {
        self.bytes
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn ops(&self) -> u64 {
        self.ops
    }

    fn shortcut_hits(&self) -> u64 {
        0
    }

    fn inserts(&self) -> u64 {
        self.inserts
    }
}

/// Shared neighbor-trimming logic: clip the new range against the entry
/// before it and the entry after it; `None` when fully covered.
pub(crate) fn trim_against_neighbors(
    mut dsn: u64,
    mut data: Bytes,
    prev: Option<&Entry>,
    next: Option<&Entry>,
) -> Option<(u64, Bytes)> {
    if let Some(p) = prev {
        let pend = p.end();
        if pend >= dsn + data.len() as u64 {
            return None; // fully covered by predecessor
        }
        if pend > dsn {
            let cut = (pend - dsn) as usize;
            data = data.slice(cut..);
            dsn = pend;
        }
    }
    if let Some(n) = next {
        if dsn >= n.dsn {
            return None; // would start inside or after successor
        }
        let end = dsn + data.len() as u64;
        if end > n.dsn {
            data = data.slice(..(n.dsn - dsn) as usize);
        }
    }
    if data.is_empty() {
        None
    } else {
        Some((dsn, data))
    }
}

/// Shared pop logic for front-ordered entry queues.
pub(crate) fn pop_from_front(
    entries: &mut std::collections::VecDeque<Entry>,
    bytes: &mut usize,
    rcv_nxt: u64,
) -> Option<(u64, Bytes)> {
    loop {
        let front = entries.front()?;
        if front.end() <= rcv_nxt {
            // Superseded (delivered via a duplicate on another subflow).
            let e = entries.pop_front().unwrap();
            *bytes -= e.data.len();
            continue;
        }
        if front.dsn > rcv_nxt {
            return None; // hole remains
        }
        let e = entries.pop_front().unwrap();
        *bytes -= e.data.len();
        if e.dsn == rcv_nxt {
            return Some((e.dsn, e.data));
        }
        // Partial overlap with already-delivered data.
        let cut = (rcv_nxt - e.dsn) as usize;
        return Some((rcv_nxt, e.data.slice(cut..)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_appends_are_cheap() {
        let mut q = LinearQueue::new();
        for i in 0..100u64 {
            q.insert(i * 10, Bytes::from(vec![0u8; 10]), 0);
        }
        // Each append costs one boundary comparison.
        assert_eq!(q.ops(), 100);
    }

    #[test]
    fn front_insert_scans_everything() {
        let mut q = LinearQueue::new();
        for i in 1..=50u64 {
            q.insert(i * 100, Bytes::from(vec![0u8; 10]), 0);
        }
        let before = q.ops();
        q.insert(0, Bytes::from(vec![0u8; 10]), 0);
        assert_eq!(q.ops() - before, 51, "walked the whole queue");
    }

    #[test]
    fn partial_pop_after_duplicate_delivery() {
        let mut q = LinearQueue::new();
        q.insert(0, Bytes::from(vec![1u8; 10]), 0);
        // rcv_nxt advanced to 5 some other way.
        let (dsn, data) = q.pop_ready(5).unwrap();
        assert_eq!(dsn, 5);
        assert_eq!(data.len(), 5);
    }
}
