//! Server-side endpoint: listening, token demux, and connection ownership.
//!
//! A [`MptcpListener`] plays the role of the kernel's listen socket plus
//! connection hash tables: MP_CAPABLE SYNs create connections (drawing
//! unique tokens from the shared [`TokenTable`], §5.2), MP_JOIN SYNs are
//! demuxed *by token* — the five-tuple cannot identify the connection
//! across NATs (§3.2) — and everything else is routed by four-tuple.

use std::collections::HashMap;

use mptcp_netsim::{SimRng, SimTime};
use mptcp_packet::{FourTuple, MptcpOption, TcpSegment};

use crate::config::MptcpConfig;
use crate::conn::MptcpConnection;
use crate::token::TokenTable;

/// A passive MPTCP endpoint managing many connections.
pub struct MptcpListener {
    cfg: MptcpConfig,
    /// Live connections.
    pub conns: Vec<MptcpConnection>,
    /// Tuple-based demux (fast path).
    by_tuple: HashMap<FourTuple, usize>,
    /// Token table shared across connections (uniqueness + join demux).
    pub tokens: TokenTable,
    rng: SimRng,
    /// SYNs that failed validation (bad token/MAC) — silently dropped.
    pub rejected_syns: u64,
}

impl MptcpListener {
    /// New listener with an RNG seed for keys and ISNs.
    pub fn new(cfg: MptcpConfig, seed: u64) -> MptcpListener {
        MptcpListener {
            cfg,
            conns: Vec::new(),
            by_tuple: HashMap::new(),
            tokens: TokenTable::new(),
            rng: SimRng::new(seed),
            rejected_syns: 0,
        }
    }

    /// Number of connections (incl. closed ones not yet reaped).
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// Is the endpoint connection-free?
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Feed an incoming segment. Returns the index of the connection that
    /// consumed it (possibly newly created), or `None` if dropped.
    pub fn handle_segment(&mut self, now: SimTime, seg: &TcpSegment) -> Option<usize> {
        let key = seg.tuple.reversed(); // our local tuple view

        // Existing subflow?
        if let Some(&idx) = self.by_tuple.get(&key) {
            self.conns[idx].handle_segment(now, seg);
            return Some(idx);
        }

        if !seg.flags.syn || seg.flags.ack {
            return None; // stray non-SYN for an unknown flow
        }

        // MP_JOIN: demux by token (§3.2).
        if let Some(MptcpOption::MpJoinSyn { token, .. }) = seg
            .mptcp_options()
            .find(|m| matches!(m, MptcpOption::MpJoinSyn { .. }))
        {
            let Some(idx) = self.tokens.owner(*token) else {
                self.rejected_syns += 1;
                return None;
            };
            if idx >= self.conns.len() || self.conns[idx].accept_join(seg, now).is_err() {
                self.rejected_syns += 1;
                return None;
            }
            self.by_tuple.insert(key, idx);
            return Some(idx);
        }

        // Fresh connection (MP_CAPABLE or plain TCP).
        let conn = MptcpConnection::server_accept(
            self.cfg.clone(),
            seg,
            now,
            self.rng.fork(),
            &mut self.tokens,
        );
        let token = conn.local_token();
        let idx = self.conns.len();
        self.conns.push(conn);
        self.tokens.set_owner(token, idx);
        self.by_tuple.insert(key, idx);
        Some(idx)
    }

    /// Feed a batch of segments that arrived together (one socket drain).
    ///
    /// Contiguous runs destined for the same existing connection are
    /// handed to [`MptcpConnection::handle_segments`], which drains the
    /// subflow stream once per run instead of once per segment. SYNs and
    /// strays fall through to the per-segment path. Indices of touched
    /// connections are appended (deduplicated) to `touched`.
    pub fn handle_segments(&mut self, now: SimTime, segs: &[TcpSegment], touched: &mut Vec<usize>) {
        let mut i = 0;
        while i < segs.len() {
            let Some(&idx) = self.by_tuple.get(&segs[i].tuple.reversed()) else {
                if let Some(idx) = self.handle_segment(now, &segs[i]) {
                    if !touched.contains(&idx) {
                        touched.push(idx);
                    }
                }
                i += 1;
                continue;
            };
            // Extend the run while segments keep resolving to `idx`.
            let mut j = i + 1;
            while j < segs.len() && self.by_tuple.get(&segs[j].tuple.reversed()) == Some(&idx) {
                j += 1;
            }
            self.conns[idx].handle_segments(now, &segs[i..j]);
            if !touched.contains(&idx) {
                touched.push(idx);
            }
            i = j;
        }
    }

    /// Poll every live connection for output; emits into `out`.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<TcpSegment>) {
        for c in &mut self.conns {
            if c.fully_closed() {
                continue;
            }
            while let Some(seg) = c.poll(now) {
                out.push(seg);
            }
        }
    }

    /// Earliest deadline across live connections.
    pub fn poll_at(&self, now: SimTime) -> Option<SimTime> {
        self.conns
            .iter()
            .filter(|c| !c.fully_closed())
            .filter_map(|c| c.poll_at(now))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp_packet::{Endpoint, SeqNum, TcpFlags, TcpOption};

    fn syn_plain() -> TcpSegment {
        TcpSegment::new(
            FourTuple {
                src: Endpoint::new(1, 1000),
                dst: Endpoint::new(2, 80),
            },
            SeqNum(100),
            SeqNum(0),
            TcpFlags::SYN,
        )
    }

    #[test]
    fn plain_syn_creates_fallback_conn() {
        let mut l = MptcpListener::new(MptcpConfig::default(), 7);
        let idx = l.handle_segment(SimTime::ZERO, &syn_plain()).unwrap();
        assert!(l.conns[idx].is_fallback());
    }

    #[test]
    fn capable_syn_creates_mptcp_conn_with_token() {
        let mut l = MptcpListener::new(MptcpConfig::default(), 7);
        let mut syn = syn_plain();
        syn.options.push(TcpOption::Mptcp(MptcpOption::MpCapable {
            version: 0,
            checksum_required: true,
            sender_key: 0xabc,
            receiver_key: None,
        }));
        let idx = l.handle_segment(SimTime::ZERO, &syn).unwrap();
        assert!(!l.conns[idx].is_fallback());
        let token = l.conns[idx].local_token();
        assert_eq!(l.tokens.owner(token), Some(idx));
    }

    #[test]
    fn join_with_unknown_token_rejected() {
        let mut l = MptcpListener::new(MptcpConfig::default(), 7);
        let mut syn = syn_plain();
        syn.options.push(TcpOption::Mptcp(MptcpOption::MpJoinSyn {
            token: 0xdeadbeef,
            nonce: 1,
            addr_id: 1,
            backup: false,
        }));
        assert!(l.handle_segment(SimTime::ZERO, &syn).is_none());
        assert_eq!(l.rejected_syns, 1);
    }

    #[test]
    fn stray_data_segment_dropped() {
        let mut l = MptcpListener::new(MptcpConfig::default(), 7);
        let mut seg = syn_plain();
        seg.flags = TcpFlags::ACK;
        assert!(l.handle_segment(SimTime::ZERO, &seg).is_none());
    }
}
