//! MPTCP keys, tokens and the server-side token table.
//!
//! During connection setup the endpoints exchange 64-bit random keys in
//! MP_CAPABLE. The server derives a 32-bit token (`SHA1(key)` truncated)
//! identifying the connection for MP_JOIN, and must "verify that its hash
//! is unique among all established connections" (§5.2). That uniqueness
//! check is what Figure 10 measures as a function of the number of
//! established connections, and the key-pool precomputation is the
//! optimization §5.2 suggests.

use std::collections::{HashMap, HashSet, VecDeque};

use mptcp_netsim::SimRng;
use mptcp_packet::crypto;

/// Key material for one side of an MPTCP connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeySet {
    /// The 64-bit random key exchanged in MP_CAPABLE.
    pub key: u64,
    /// Token: most significant 32 bits of SHA1(key).
    pub token: u32,
    /// Initial data sequence number: least significant 64 bits of SHA1(key).
    pub idsn: u64,
}

impl KeySet {
    /// Derive token and IDSN from a key.
    pub fn from_key(key: u64) -> KeySet {
        KeySet {
            key,
            token: crypto::token_from_key(key),
            idsn: crypto::idsn_from_key(key),
        }
    }
}

/// The per-host table of live connection tokens.
///
/// `generate` draws keys until the token is unique — the cost the paper
/// measures in Figure 10. The `scan_lookup` flag switches the uniqueness
/// check from a hash set to a linear scan, reproducing the growth with
/// connection count that the paper's kernel implementation exhibited.
pub struct TokenTable {
    set: HashSet<u32>,
    list: Vec<u32>,
    /// Use a linear scan for uniqueness checks (paper-era behaviour)
    /// instead of the hash-set fast path.
    pub scan_lookup: bool,
    /// Map from token to an opaque connection slot.
    owners: HashMap<u32, usize>,
}

impl TokenTable {
    /// An empty table.
    pub fn new() -> TokenTable {
        TokenTable {
            set: HashSet::new(),
            list: Vec::new(),
            scan_lookup: false,
            owners: HashMap::new(),
        }
    }

    /// Number of live tokens.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Is `token` present?
    pub fn contains(&self, token: u32) -> bool {
        if self.scan_lookup {
            self.list.contains(&token)
        } else {
            self.set.contains(&token)
        }
    }

    /// Generate a fresh key whose token is unique in this table, register
    /// it, and return the key set. This is the latency-critical path of
    /// Figure 10: key generation + SHA-1 + uniqueness verification.
    pub fn generate(&mut self, rng: &mut SimRng) -> KeySet {
        loop {
            let key = rng.next_u64();
            let ks = KeySet::from_key(key);
            if !self.contains(ks.token) {
                self.insert(ks.token, usize::MAX);
                return ks;
            }
        }
    }

    /// Register an externally-derived token (e.g. from a key pool).
    pub fn insert(&mut self, token: u32, owner: usize) -> bool {
        if self.contains(token) {
            return false;
        }
        self.set.insert(token);
        self.list.push(token);
        self.owners.insert(token, owner);
        true
    }

    /// Update the owner slot for a token.
    pub fn set_owner(&mut self, token: u32, owner: usize) {
        self.owners.insert(token, owner);
    }

    /// Find the connection slot owning `token` (MP_JOIN demux).
    pub fn owner(&self, token: u32) -> Option<usize> {
        self.owners.get(&token).copied()
    }

    /// Remove a token when its connection closes.
    pub fn remove(&mut self, token: u32) {
        self.set.remove(&token);
        self.list.retain(|&t| t != token);
        self.owners.remove(&token);
    }
}

impl Default for TokenTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Precomputed pool of key sets — the §5.2 optimization: "this additional
/// latency could be significantly reduced by maintaining a pool of
/// precomputed keys".
pub struct KeyPool {
    pool: VecDeque<KeySet>,
    target: usize,
}

impl KeyPool {
    /// A pool that keeps `target` keys precomputed.
    pub fn new(target: usize) -> KeyPool {
        KeyPool {
            pool: VecDeque::with_capacity(target),
            target,
        }
    }

    /// Refill the pool (run off the hot path).
    pub fn refill(&mut self, rng: &mut SimRng) {
        while self.pool.len() < self.target {
            self.pool.push_back(KeySet::from_key(rng.next_u64()));
        }
    }

    /// Take a precomputed key whose token is unique in `table`; falls back
    /// to on-demand generation if the pool is empty or collides.
    pub fn take(&mut self, table: &mut TokenTable, rng: &mut SimRng) -> KeySet {
        while let Some(ks) = self.pool.pop_front() {
            if table.insert(ks.token, usize::MAX) {
                return ks;
            }
        }
        table.generate(rng)
    }

    /// Keys currently pooled.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyset_derivation_matches_crypto() {
        let ks = KeySet::from_key(0xfeed);
        assert_eq!(ks.token, crypto::token_from_key(0xfeed));
        assert_eq!(ks.idsn, crypto::idsn_from_key(0xfeed));
    }

    #[test]
    fn generate_registers_unique_tokens() {
        let mut t = TokenTable::new();
        let mut rng = SimRng::new(1);
        let a = t.generate(&mut rng);
        let b = t.generate(&mut rng);
        assert_ne!(a.token, b.token);
        assert!(t.contains(a.token));
        assert!(t.contains(b.token));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn owner_lookup_for_join_demux() {
        let mut t = TokenTable::new();
        t.insert(42, 7);
        assert_eq!(t.owner(42), Some(7));
        t.set_owner(42, 9);
        assert_eq!(t.owner(42), Some(9));
        assert_eq!(t.owner(43), None);
        t.remove(42);
        assert_eq!(t.owner(42), None);
        assert!(!t.contains(42));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = TokenTable::new();
        assert!(t.insert(1, 0));
        assert!(!t.insert(1, 1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn scan_mode_equivalent_semantics() {
        let mut t = TokenTable::new();
        t.scan_lookup = true;
        t.insert(5, 0);
        assert!(t.contains(5));
        assert!(!t.contains(6));
    }

    #[test]
    fn pool_provides_and_falls_back() {
        let mut pool = KeyPool::new(4);
        let mut rng = SimRng::new(2);
        pool.refill(&mut rng);
        assert_eq!(pool.len(), 4);
        let mut table = TokenTable::new();
        let a = pool.take(&mut table, &mut rng);
        assert!(table.contains(a.token));
        assert_eq!(pool.len(), 3);
        // Empty pool still works via fallback.
        let mut empty = KeyPool::new(0);
        let b = empty.take(&mut table, &mut rng);
        assert!(table.contains(b.token));
    }
}
