//! Path-manager subsystem: which subflows to open, when, and why.
//!
//! The protocol machinery in [`crate::conn`] can open subflows, advertise
//! addresses and react to REMOVE_ADDR — but something has to *decide* to
//! do those things. The kernel MPTCP stack calls that component the path
//! manager: a per-connection policy engine driven by an endpoint registry
//! where each local address carries flags (`signal` = advertise via
//! ADD_ADDR, `subflow` = use for outgoing MP_JOINs, `backup` = open joins
//! with backup priority, `fullmesh` = pair against every learned remote
//! address) plus limits (how many extra subflows to create, how many
//! peer-advertised addresses to act on).
//!
//! The [`PathManager`] is a pure decision machine: the connection feeds it
//! [`PmEvent`]s (established, ADD_ADDR learned, REMOVE_ADDR received,
//! subflow failed) and executes the returned [`PmAction`]s (open subflow,
//! advertise, close, promote-backup). It holds no sockets and sends no
//! packets, so every policy is unit-testable without a connection.
//!
//! ADD_ADDR is advertised reliably: an advertisement is retransmitted on
//! a fixed interval until *echoed* — the peer demonstrates receipt by
//! joining toward the advertised address — or until the retry budget is
//! spent. The retransmit deadline surfaces through [`PathManager::poll_at`]
//! and is serviced by [`PathManager::tick`], following the same event-loop
//! contract as the rest of the stack.

use core::fmt;
use core::str::FromStr;

use mptcp_netsim::{Duration, SimTime};
use mptcp_packet::Endpoint;

/// Kernel-PM-style per-endpoint flags.
///
/// Combine with `|`: `EndpointFlags::SUBFLOW | EndpointFlags::BACKUP`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EndpointFlags {
    /// Advertise this address to the peer via ADD_ADDR.
    pub signal: bool,
    /// Use this address as the local side of outgoing MP_JOINs.
    pub subflow: bool,
    /// Joins from this address carry backup priority (MP_JOIN B-flag).
    pub backup: bool,
    /// Pair this address against every learned remote address, not just
    /// its positional match (the fullmesh policy implies this for every
    /// subflow endpoint).
    pub fullmesh: bool,
}

impl EndpointFlags {
    /// No flags set.
    pub const NONE: EndpointFlags = EndpointFlags {
        signal: false,
        subflow: false,
        backup: false,
        fullmesh: false,
    };
    /// `signal` only.
    pub const SIGNAL: EndpointFlags = EndpointFlags {
        signal: true,
        ..EndpointFlags::NONE
    };
    /// `subflow` only.
    pub const SUBFLOW: EndpointFlags = EndpointFlags {
        subflow: true,
        ..EndpointFlags::NONE
    };
    /// `backup` only (meaningful combined with `subflow`).
    pub const BACKUP: EndpointFlags = EndpointFlags {
        backup: true,
        ..EndpointFlags::NONE
    };
    /// `fullmesh` only (meaningful combined with `subflow`).
    pub const FULLMESH: EndpointFlags = EndpointFlags {
        fullmesh: true,
        ..EndpointFlags::NONE
    };

    /// Render as `signal|subflow|backup|fullmesh` (or `-` when empty),
    /// the admin-plane display format.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.signal {
            parts.push("signal");
        }
        if self.subflow {
            parts.push("subflow");
        }
        if self.backup {
            parts.push("backup");
        }
        if self.fullmesh {
            parts.push("fullmesh");
        }
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join("|")
        }
    }
}

impl std::ops::BitOr for EndpointFlags {
    type Output = EndpointFlags;

    fn bitor(self, rhs: EndpointFlags) -> EndpointFlags {
        EndpointFlags {
            signal: self.signal || rhs.signal,
            subflow: self.subflow || rhs.subflow,
            backup: self.backup || rhs.backup,
            fullmesh: self.fullmesh || rhs.fullmesh,
        }
    }
}

/// One entry in the local endpoint registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PmEndpoint {
    /// Local address.
    pub addr: u32,
    /// Fixed local port for joins from this endpoint; `None` derives a
    /// unique port from the connection's primary port.
    pub port: Option<u16>,
    /// What this endpoint is for.
    pub flags: EndpointFlags,
}

impl PmEndpoint {
    /// An endpoint with a derived port.
    pub fn new(addr: u32, flags: EndpointFlags) -> PmEndpoint {
        PmEndpoint {
            addr,
            port: None,
            flags,
        }
    }

    /// Pin the local port for joins from this endpoint.
    pub fn with_port(mut self, port: u16) -> PmEndpoint {
        self.port = Some(port);
        self
    }
}

/// Validated path-manager limits, mirroring the kernel's per-namespace
/// `limits` (subflow count, add_addr_accepted) plus the ADD_ADDR
/// reliability schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PmLimits {
    /// Maximum subflows the path manager will open (the connection's own
    /// `max_subflows` caps total subflows including the initial one).
    pub max_subflows: usize,
    /// Maximum peer-advertised addresses acted upon; further ADD_ADDRs
    /// are ignored by the policy.
    pub add_addr_accepted: usize,
    /// Retransmit interval for an ADD_ADDR that has not been echoed.
    pub add_addr_rtx: Duration,
    /// Retransmissions before an unechoed ADD_ADDR is abandoned.
    pub add_addr_rtx_max: u32,
}

impl Default for PmLimits {
    fn default() -> PmLimits {
        PmLimits {
            max_subflows: 8,
            add_addr_accepted: 8,
            add_addr_rtx: Duration::from_secs(1),
            add_addr_rtx_max: 3,
        }
    }
}

/// The registry of built-in path-manager policies.
///
/// Parses from and prints as the canonical lowercase names used by the
/// CLI (`repro <exp> --pm <name>`), the config builder and JSON reports:
/// `"default"`, `"fullmesh"`, `"backup"`, `"signal"`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PmPolicy {
    /// Pair the k-th learned remote address with the k-th `subflow`
    /// endpoint (primary local address when none remain).
    #[default]
    Default,
    /// Pair every subflow endpoint (and the primary local address)
    /// against every remote address, learned or primary.
    Fullmesh,
    /// Like `Default`, but every path-manager join carries backup
    /// priority.
    BackupOnly,
    /// Advertise `signal` endpoints but never open outgoing joins.
    SignalOnly,
}

impl PmPolicy {
    /// All policies, in sweep order.
    pub const ALL: [PmPolicy; 4] = [
        PmPolicy::Default,
        PmPolicy::Fullmesh,
        PmPolicy::BackupOnly,
        PmPolicy::SignalOnly,
    ];

    /// Canonical lowercase name (CLI flag value and report key).
    pub fn name(self) -> &'static str {
        match self {
            PmPolicy::Default => "default",
            PmPolicy::Fullmesh => "fullmesh",
            PmPolicy::BackupOnly => "backup",
            PmPolicy::SignalOnly => "signal",
        }
    }
}

impl fmt::Display for PmPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PmPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "default" => Ok(PmPolicy::Default),
            "fullmesh" | "full-mesh" | "mesh" => Ok(PmPolicy::Fullmesh),
            "backup" | "backup-only" | "backuponly" => Ok(PmPolicy::BackupOnly),
            "signal" | "signal-only" | "signalonly" => Ok(PmPolicy::SignalOnly),
            other => Err(format!(
                "unknown pm policy `{other}` \
                 (expected one of: default, fullmesh, backup, signal)"
            )),
        }
    }
}

/// Path-manager configuration carried inside
/// [`crate::MptcpConfig`] (`builder().path_manager(..)`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PathManagerCfg {
    /// The pairing policy.
    pub policy: PmPolicy,
    /// Local endpoint registry.
    pub endpoints: Vec<PmEndpoint>,
    /// Subflow/advertisement limits.
    pub limits: PmLimits,
}

impl PathManagerCfg {
    /// A config with the given policy, no endpoints, default limits.
    pub fn new(policy: PmPolicy) -> PathManagerCfg {
        PathManagerCfg {
            policy,
            ..PathManagerCfg::default()
        }
    }

    /// Append an endpoint (builder style).
    pub fn endpoint(mut self, ep: PmEndpoint) -> PathManagerCfg {
        self.endpoints.push(ep);
        self
    }

    /// Replace the limits (builder style).
    pub fn limits(mut self, limits: PmLimits) -> PathManagerCfg {
        self.limits = limits;
        self
    }
}

/// A connection-level occurrence the path manager reacts to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PmEvent {
    /// The MPTCP handshake completed; `local`/`remote` are the primary
    /// subflow's endpoints.
    Established { local: Endpoint, remote: Endpoint },
    /// The peer advertised `addr` (already deduplicated by the
    /// connection; repeated identical ADD_ADDRs never reach the PM).
    AddrAdvertised {
        addr_id: u8,
        addr: u32,
        port: Option<u16>,
    },
    /// The peer withdrew `addr_id`; `affected` are the live subflow
    /// indices using that remote address.
    AddrWithdrawn { addr_id: u8, affected: Vec<usize> },
    /// The failure detector declared subflow `subflow` Failed; `backups`
    /// are the live backup-priority subflow indices still standing.
    SubflowFailed { subflow: usize, backups: Vec<usize> },
    /// Subflow `subflow` recovered back to Active.
    SubflowRecovered { subflow: usize },
    /// A local address went away (interface down); `affected` are the
    /// live subflow indices bound to it, `backups` the surviving
    /// backup-priority subflows.
    LocalAddrDown {
        addr: u32,
        affected: Vec<usize>,
        backups: Vec<usize>,
    },
    /// A local address came (back) up.
    LocalAddrUp { addr: u32 },
}

/// A typed decision for the connection to execute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PmAction {
    /// Open an MP_JOIN subflow `local` -> `remote`.
    OpenSubflow {
        local: Endpoint,
        remote: Endpoint,
        backup: bool,
    },
    /// Advertise local address `addr` via ADD_ADDR (first send or
    /// retransmit; the connection keeps the addr_id stable per address).
    Advertise { addr: u32, port: Option<u16> },
    /// Close subflow `subflow` (address withdrawn under it).
    CloseSubflow { subflow: usize },
    /// Clear subflow `subflow`'s backup priority and tell the peer via
    /// MP_PRIO.
    PromoteBackup { subflow: usize },
}

/// Reliable-advertisement state for one signal endpoint.
#[derive(Clone, Copy, Debug)]
struct Advert {
    addr: u32,
    port: Option<u16>,
    echoed: bool,
    /// Next retransmit deadline; `None` once echoed or out of budget.
    rtx_at: Option<SimTime>,
    rtx_count: u32,
}

/// One learned remote address.
#[derive(Clone, Copy, Debug)]
struct Remote {
    addr_id: u8,
    ep: Endpoint,
}

/// The per-connection path-manager state machine. See the module docs.
pub struct PathManager {
    cfg: PathManagerCfg,
    primary_local: Option<Endpoint>,
    primary_remote: Option<Endpoint>,
    /// Learned remote addresses, in arrival order, capped by
    /// `add_addr_accepted`.
    remotes: Vec<Remote>,
    /// Outstanding local advertisements.
    adverts: Vec<Advert>,
    /// `(local addr, remote addr)` pairs already opened (dedup).
    opened_pairs: Vec<(u32, u32)>,
    /// OpenSubflow actions emitted so far, capped by
    /// `limits.max_subflows`.
    opened: usize,
    /// Learned remotes dropped by the `add_addr_accepted` cap.
    remotes_ignored: u64,
    /// Monotone counter deriving unique local join ports.
    join_seq: u16,
    established: bool,
}

impl PathManager {
    /// A path manager for one connection.
    pub fn new(cfg: PathManagerCfg) -> PathManager {
        PathManager {
            cfg,
            primary_local: None,
            primary_remote: None,
            remotes: Vec::new(),
            adverts: Vec::new(),
            opened_pairs: Vec::new(),
            opened: 0,
            remotes_ignored: 0,
            join_seq: 0,
            established: false,
        }
    }

    /// The configuration this manager runs.
    pub fn cfg(&self) -> &PathManagerCfg {
        &self.cfg
    }

    /// The active policy.
    pub fn policy(&self) -> PmPolicy {
        self.cfg.policy
    }

    /// Subflows opened by PM decisions so far.
    pub fn subflows_opened(&self) -> usize {
        self.opened
    }

    /// Learned remote addresses currently accepted.
    pub fn remotes_accepted(&self) -> usize {
        self.remotes.len()
    }

    /// Learned remote addresses dropped by the `add_addr_accepted` cap.
    pub fn remotes_ignored(&self) -> u64 {
        self.remotes_ignored
    }

    /// Advertisement states as `(addr, echoed, retransmits)` for the
    /// admin plane.
    pub fn advert_states(&self) -> Vec<(u32, bool, u32)> {
        self.adverts
            .iter()
            .map(|a| (a.addr, a.echoed, a.rtx_count))
            .collect()
    }

    /// The peer demonstrated receipt of our ADD_ADDR for `addr` (it
    /// joined toward that address): stop retransmitting.
    pub fn mark_echoed(&mut self, addr: u32) {
        for a in &mut self.adverts {
            if a.addr == addr {
                a.echoed = true;
                a.rtx_at = None;
            }
        }
    }

    /// Earliest pending ADD_ADDR retransmit deadline.
    pub fn poll_at(&self) -> Option<SimTime> {
        self.adverts.iter().filter_map(|a| a.rtx_at).min()
    }

    /// Service elapsed retransmit deadlines; idempotent at a fixed `now`
    /// (a fired deadline re-arms strictly after `now`).
    pub fn tick(&mut self, now: SimTime) -> Vec<PmAction> {
        let mut actions = Vec::new();
        let limits = self.cfg.limits;
        for a in &mut self.adverts {
            let Some(at) = a.rtx_at else { continue };
            if at > now {
                continue;
            }
            if a.rtx_count >= limits.add_addr_rtx_max {
                a.rtx_at = None; // budget spent; give up
                continue;
            }
            a.rtx_count += 1;
            a.rtx_at = Some(now + limits.add_addr_rtx);
            actions.push(PmAction::Advertise {
                addr: a.addr,
                port: a.port,
            });
        }
        actions
    }

    /// Feed one connection event; returns the decisions to execute.
    pub fn on_event(&mut self, now: SimTime, ev: PmEvent) -> Vec<PmAction> {
        match ev {
            PmEvent::Established { local, remote } => self.on_established(now, local, remote),
            PmEvent::AddrAdvertised {
                addr_id,
                addr,
                port,
            } => self.on_addr_advertised(addr_id, addr, port),
            PmEvent::AddrWithdrawn { addr_id, affected } => {
                self.remotes.retain(|r| r.addr_id != addr_id);
                affected
                    .into_iter()
                    .map(|subflow| PmAction::CloseSubflow { subflow })
                    .collect()
            }
            PmEvent::SubflowFailed { backups, .. } => self.promote_first(&backups),
            PmEvent::SubflowRecovered { .. } => Vec::new(),
            PmEvent::LocalAddrDown {
                addr,
                affected,
                backups,
            } => {
                // Stop advertising an address we no longer own.
                self.adverts.retain(|a| a.addr != addr);
                self.opened_pairs.retain(|&(l, _)| l != addr);
                let mut actions: Vec<PmAction> = affected
                    .into_iter()
                    .map(|subflow| PmAction::CloseSubflow { subflow })
                    .collect();
                actions.extend(self.promote_first(&backups));
                actions
            }
            PmEvent::LocalAddrUp { addr } => {
                // Re-advertise a returning signal endpoint; joins from it
                // are left to the peer (it learns the address again).
                let ep = self
                    .cfg
                    .endpoints
                    .iter()
                    .find(|e| e.addr == addr && e.flags.signal)
                    .copied();
                match ep {
                    Some(e) if self.established => vec![self.start_advert(now, e.addr, e.port)],
                    _ => Vec::new(),
                }
            }
        }
    }

    fn on_established(&mut self, now: SimTime, local: Endpoint, remote: Endpoint) -> Vec<PmAction> {
        if self.established {
            return Vec::new();
        }
        self.established = true;
        self.primary_local = Some(local);
        self.primary_remote = Some(remote);
        self.opened_pairs.push((local.addr, remote.addr));
        let mut actions = Vec::new();
        let signals: Vec<PmEndpoint> = self
            .cfg
            .endpoints
            .iter()
            .filter(|e| e.flags.signal)
            .copied()
            .collect();
        for ep in signals {
            actions.push(self.start_advert(now, ep.addr, ep.port));
        }
        // Fullmesh starts pairing immediately: every mesh-local against
        // the primary remote. Other policies wait for learned remotes.
        if self.cfg.policy == PmPolicy::Fullmesh {
            actions.extend(self.mesh_against(remote));
        }
        actions
    }

    fn start_advert(&mut self, now: SimTime, addr: u32, port: Option<u16>) -> PmAction {
        let rtx_at = Some(now + self.cfg.limits.add_addr_rtx);
        if let Some(a) = self.adverts.iter_mut().find(|a| a.addr == addr) {
            a.echoed = false;
            a.rtx_at = rtx_at;
            a.rtx_count = 0;
        } else {
            self.adverts.push(Advert {
                addr,
                port,
                echoed: false,
                rtx_at,
                rtx_count: 0,
            });
        }
        PmAction::Advertise { addr, port }
    }

    fn on_addr_advertised(&mut self, addr_id: u8, addr: u32, port: Option<u16>) -> Vec<PmAction> {
        if self.remotes.iter().any(|r| r.ep.addr == addr) {
            return Vec::new();
        }
        if self.remotes.len() >= self.cfg.limits.add_addr_accepted {
            self.remotes_ignored += 1;
            return Vec::new();
        }
        let remote_port = port
            .or(self.primary_remote.map(|r| r.port))
            .unwrap_or_default();
        let remote = Endpoint::new(addr, remote_port);
        self.remotes.push(Remote {
            addr_id,
            ep: remote,
        });
        if !self.established {
            return Vec::new();
        }
        match self.cfg.policy {
            PmPolicy::SignalOnly => Vec::new(),
            PmPolicy::Fullmesh => self.mesh_against(remote),
            PmPolicy::Default | PmPolicy::BackupOnly => {
                // Positional pairing: the k-th learned remote joins from
                // the k-th subflow endpoint, falling back to the primary
                // local address when the registry runs out.
                let k = self.remotes.len() - 1;
                let subflow_eps: Vec<PmEndpoint> = self
                    .cfg
                    .endpoints
                    .iter()
                    .filter(|e| e.flags.subflow)
                    .copied()
                    .collect();
                let (local_addr, port_hint, mut backup) = match subflow_eps.get(k) {
                    Some(e) => (e.addr, e.port, e.flags.backup),
                    None => match self.primary_local {
                        Some(p) => (p.addr, None, false),
                        None => return Vec::new(),
                    },
                };
                if self.cfg.policy == PmPolicy::BackupOnly {
                    backup = true;
                }
                self.open_pair(local_addr, port_hint, remote, backup)
                    .into_iter()
                    .collect()
            }
        }
    }

    /// Fullmesh pairing: every mesh-local (subflow endpoints plus the
    /// primary local address) against `remote`.
    fn mesh_against(&mut self, remote: Endpoint) -> Vec<PmAction> {
        let mut locals: Vec<(u32, Option<u16>, bool)> = Vec::new();
        if let Some(p) = self.primary_local {
            locals.push((p.addr, None, false));
        }
        for e in &self.cfg.endpoints {
            if e.flags.subflow || e.flags.fullmesh {
                locals.push((e.addr, e.port, e.flags.backup));
            }
        }
        let mut actions = Vec::new();
        for (addr, port, backup) in locals {
            actions.extend(self.open_pair(addr, port, remote, backup));
        }
        actions
    }

    fn open_pair(
        &mut self,
        local_addr: u32,
        port_hint: Option<u16>,
        remote: Endpoint,
        backup: bool,
    ) -> Option<PmAction> {
        if self.opened_pairs.contains(&(local_addr, remote.addr)) {
            return None;
        }
        if self.opened >= self.cfg.limits.max_subflows {
            return None;
        }
        self.join_seq += 1;
        let port = port_hint.unwrap_or_else(|| {
            let base = self.primary_local.map(|p| p.port).unwrap_or(10_000);
            base.wrapping_add(self.join_seq.wrapping_mul(100)).max(1024)
        });
        self.opened_pairs.push((local_addr, remote.addr));
        self.opened += 1;
        Some(PmAction::OpenSubflow {
            local: Endpoint::new(local_addr, port),
            remote,
            backup,
        })
    }

    fn promote_first(&self, backups: &[usize]) -> Vec<PmAction> {
        match backups.first() {
            Some(&subflow) => vec![PmAction::PromoteBackup { subflow }],
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOCAL: Endpoint = Endpoint {
        addr: 1,
        port: 10_000,
    };
    const REMOTE: Endpoint = Endpoint {
        addr: 100,
        port: 80,
    };

    fn established(pm: &mut PathManager) -> Vec<PmAction> {
        pm.on_event(
            SimTime::ZERO,
            PmEvent::Established {
                local: LOCAL,
                remote: REMOTE,
            },
        )
    }

    fn learned(pm: &mut PathManager, id: u8, addr: u32) -> Vec<PmAction> {
        pm.on_event(
            SimTime::ZERO,
            PmEvent::AddrAdvertised {
                addr_id: id,
                addr,
                port: Some(80),
            },
        )
    }

    fn opens(actions: &[PmAction]) -> usize {
        actions
            .iter()
            .filter(|a| matches!(a, PmAction::OpenSubflow { .. }))
            .count()
    }

    #[test]
    fn policy_registry_round_trips() {
        for p in PmPolicy::ALL {
            assert_eq!(p.name().parse::<PmPolicy>().unwrap(), p);
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!("backup-only".parse::<PmPolicy>(), Ok(PmPolicy::BackupOnly));
        let err = "bogus".parse::<PmPolicy>().unwrap_err();
        assert!(err.contains("unknown pm policy `bogus`"), "{err}");
        assert!(err.contains("fullmesh"), "{err}");
    }

    #[test]
    fn default_policy_pairs_kth_remote_with_kth_endpoint() {
        let cfg = PathManagerCfg::new(PmPolicy::Default)
            .endpoint(PmEndpoint::new(2, EndpointFlags::SUBFLOW))
            .endpoint(PmEndpoint::new(
                3,
                EndpointFlags::SUBFLOW | EndpointFlags::BACKUP,
            ));
        let mut pm = PathManager::new(cfg);
        assert_eq!(opens(&established(&mut pm)), 0);
        let a1 = learned(&mut pm, 1, 101);
        match &a1[..] {
            [PmAction::OpenSubflow {
                local,
                remote,
                backup,
            }] => {
                assert_eq!(local.addr, 2);
                assert_eq!(remote.addr, 101);
                assert!(!backup);
            }
            other => panic!("unexpected actions: {other:?}"),
        }
        let a2 = learned(&mut pm, 2, 102);
        match &a2[..] {
            [PmAction::OpenSubflow { local, backup, .. }] => {
                assert_eq!(local.addr, 3);
                assert!(backup, "second endpoint is backup-flagged");
            }
            other => panic!("unexpected actions: {other:?}"),
        }
        // Endpoints exhausted: the third remote pairs from the primary.
        let a3 = learned(&mut pm, 3, 103);
        match &a3[..] {
            [PmAction::OpenSubflow { local, .. }] => assert_eq!(local.addr, LOCAL.addr),
            other => panic!("unexpected actions: {other:?}"),
        }
    }

    #[test]
    fn repeated_same_remote_address_is_ignored() {
        let mut pm = PathManager::new(PathManagerCfg::default());
        established(&mut pm);
        assert_eq!(opens(&learned(&mut pm, 1, 101)), 1);
        assert_eq!(opens(&learned(&mut pm, 1, 101)), 0);
        assert_eq!(pm.remotes_accepted(), 1);
    }

    #[test]
    fn add_addr_accepted_cap_drops_extra_remotes() {
        let cfg = PathManagerCfg::default().limits(PmLimits {
            add_addr_accepted: 1,
            ..PmLimits::default()
        });
        let mut pm = PathManager::new(cfg);
        established(&mut pm);
        assert_eq!(opens(&learned(&mut pm, 1, 101)), 1);
        assert_eq!(opens(&learned(&mut pm, 2, 102)), 0);
        assert_eq!(pm.remotes_accepted(), 1);
        assert_eq!(pm.remotes_ignored(), 1);
    }

    #[test]
    fn max_subflows_cap_bounds_pm_joins() {
        let cfg = PathManagerCfg::new(PmPolicy::Fullmesh)
            .endpoint(PmEndpoint::new(2, EndpointFlags::SUBFLOW))
            .endpoint(PmEndpoint::new(3, EndpointFlags::SUBFLOW))
            .limits(PmLimits {
                max_subflows: 2,
                ..PmLimits::default()
            });
        let mut pm = PathManager::new(cfg);
        let mut total = opens(&established(&mut pm));
        total += opens(&learned(&mut pm, 1, 101));
        total += opens(&learned(&mut pm, 2, 102));
        assert_eq!(total, 2, "cap of 2 PM joins");
        assert_eq!(pm.subflows_opened(), 2);
    }

    #[test]
    fn fullmesh_three_by_two_opens_five_joins() {
        // 3 locals (primary + 2 endpoints) x 2 remotes (primary + 1
        // learned) = 6 pairs; the primary pair already exists.
        let cfg = PathManagerCfg::new(PmPolicy::Fullmesh)
            .endpoint(PmEndpoint::new(2, EndpointFlags::SUBFLOW))
            .endpoint(PmEndpoint::new(3, EndpointFlags::SUBFLOW));
        let mut pm = PathManager::new(cfg);
        let on_est = established(&mut pm);
        assert_eq!(opens(&on_est), 2, "mesh against the primary remote");
        let on_learn = learned(&mut pm, 1, 101);
        assert_eq!(opens(&on_learn), 3, "every local against the new remote");
        assert_eq!(pm.subflows_opened(), 5);
        // Distinct derived local ports across all joins.
        let mut ports: Vec<u16> = on_est
            .iter()
            .chain(on_learn.iter())
            .filter_map(|a| match a {
                PmAction::OpenSubflow { local, .. } => Some(local.port),
                _ => None,
            })
            .collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 5);
    }

    #[test]
    fn signal_only_never_joins() {
        let cfg = PathManagerCfg::new(PmPolicy::SignalOnly)
            .endpoint(PmEndpoint::new(2, EndpointFlags::SIGNAL));
        let mut pm = PathManager::new(cfg);
        let a = established(&mut pm);
        assert_eq!(opens(&a), 0);
        assert!(matches!(a[..], [PmAction::Advertise { addr: 2, .. }]));
        assert_eq!(opens(&learned(&mut pm, 1, 101)), 0);
    }

    #[test]
    fn backup_only_marks_every_join_backup() {
        let cfg = PathManagerCfg::new(PmPolicy::BackupOnly)
            .endpoint(PmEndpoint::new(2, EndpointFlags::SUBFLOW));
        let mut pm = PathManager::new(cfg);
        established(&mut pm);
        match &learned(&mut pm, 1, 101)[..] {
            [PmAction::OpenSubflow { backup, .. }] => assert!(backup),
            other => panic!("unexpected actions: {other:?}"),
        }
    }

    #[test]
    fn add_addr_retransmits_until_echoed() {
        let cfg = PathManagerCfg::default()
            .endpoint(PmEndpoint::new(2, EndpointFlags::SIGNAL))
            .limits(PmLimits {
                add_addr_rtx: Duration::from_secs(1),
                add_addr_rtx_max: 2,
                ..PmLimits::default()
            });
        let mut pm = PathManager::new(cfg);
        let a = established(&mut pm);
        assert!(matches!(a[..], [PmAction::Advertise { addr: 2, .. }]));
        let t1 = SimTime::ZERO + Duration::from_secs(1);
        assert_eq!(pm.poll_at(), Some(t1));
        // Before the deadline: nothing fires.
        assert!(pm
            .tick(SimTime::ZERO + Duration::from_millis(500))
            .is_empty());
        // First retransmit, re-armed relative to the tick's now.
        let r1 = pm.tick(t1);
        assert!(matches!(r1[..], [PmAction::Advertise { addr: 2, .. }]));
        assert!(
            pm.tick(t1).is_empty(),
            "ticks are idempotent at a fixed now"
        );
        let t2 = t1 + Duration::from_secs(1);
        assert_eq!(pm.poll_at(), Some(t2));
        // Second (and last budgeted) retransmit.
        assert_eq!(pm.tick(t2).len(), 1);
        // Budget spent: the third deadline expires without an action and
        // clears the timer.
        let t3 = t2 + Duration::from_secs(1);
        assert!(pm.tick(t3).is_empty());
        assert_eq!(pm.poll_at(), None);
        assert_eq!(pm.advert_states(), vec![(2, false, 2)]);
    }

    #[test]
    fn echo_stops_retransmission() {
        let cfg = PathManagerCfg::default().endpoint(PmEndpoint::new(2, EndpointFlags::SIGNAL));
        let mut pm = PathManager::new(cfg);
        established(&mut pm);
        pm.mark_echoed(2);
        assert_eq!(pm.poll_at(), None);
        assert!(pm.tick(SimTime::ZERO + Duration::from_secs(10)).is_empty());
        assert_eq!(pm.advert_states(), vec![(2, true, 0)]);
    }

    #[test]
    fn withdrawn_remote_closes_affected_subflows() {
        let mut pm = PathManager::new(PathManagerCfg::default());
        established(&mut pm);
        learned(&mut pm, 1, 101);
        let a = pm.on_event(
            SimTime::ZERO,
            PmEvent::AddrWithdrawn {
                addr_id: 1,
                affected: vec![1, 2],
            },
        );
        assert_eq!(
            a,
            vec![
                PmAction::CloseSubflow { subflow: 1 },
                PmAction::CloseSubflow { subflow: 2 }
            ]
        );
        assert_eq!(pm.remotes_accepted(), 0);
    }

    #[test]
    fn subflow_failure_promotes_first_backup() {
        let mut pm = PathManager::new(PathManagerCfg::default());
        established(&mut pm);
        let a = pm.on_event(
            SimTime::ZERO,
            PmEvent::SubflowFailed {
                subflow: 0,
                backups: vec![1, 2],
            },
        );
        assert_eq!(a, vec![PmAction::PromoteBackup { subflow: 1 }]);
        let none = pm.on_event(
            SimTime::ZERO,
            PmEvent::SubflowFailed {
                subflow: 0,
                backups: vec![],
            },
        );
        assert!(none.is_empty());
    }

    #[test]
    fn local_addr_down_closes_and_promotes() {
        let cfg = PathManagerCfg::default().endpoint(PmEndpoint::new(2, EndpointFlags::SIGNAL));
        let mut pm = PathManager::new(cfg);
        established(&mut pm);
        let a = pm.on_event(
            SimTime::ZERO,
            PmEvent::LocalAddrDown {
                addr: 2,
                affected: vec![0],
                backups: vec![1],
            },
        );
        assert_eq!(
            a,
            vec![
                PmAction::CloseSubflow { subflow: 0 },
                PmAction::PromoteBackup { subflow: 1 }
            ]
        );
        // The advert for the dead address is dropped...
        assert!(pm.advert_states().is_empty());
        // ...and restarts when the address returns.
        let up = pm.on_event(SimTime::ZERO, PmEvent::LocalAddrUp { addr: 2 });
        assert!(matches!(up[..], [PmAction::Advertise { addr: 2, .. }]));
        assert_eq!(pm.advert_states(), vec![(2, false, 0)]);
    }

    #[test]
    fn flags_compose_and_label() {
        let f = EndpointFlags::SUBFLOW | EndpointFlags::BACKUP;
        assert!(f.subflow && f.backup && !f.signal);
        assert_eq!(f.label(), "subflow|backup");
        assert_eq!(EndpointFlags::NONE.label(), "-");
    }
}
