//! Receive-side data sequence mapping tracking (§3.3.4–3.3.5).
//!
//! Each subflow keeps a [`MappingTracker`]: the set of DSS mappings
//! received (from any segment — it "does not greatly matter which packet
//! carries it"), matched against the subflow's in-order byte stream. Bytes
//! covered by a mapping are translated to data sequence numbers and
//! checksummed incrementally; bytes with no mapping (a coalescing
//! middlebox ate the option) are counted and dropped — the sender
//! retransmits them at the data level (§3.3.5).

use std::collections::BTreeMap;

use bytes::Bytes;
use mptcp_packet::checksum;
use mptcp_packet::DssMapping;

/// A mapping being filled in by arriving subflow bytes.
struct MapEntry {
    dsn: u64,
    /// 1-based subflow sequence for the pseudo-header.
    ssn1: u64,
    len: u32,
    checksum: Option<u16>,
    /// Bytes of the mapping consumed so far.
    consumed: u32,
    /// Incremental ones-complement accumulator over consumed payload.
    acc: u32,
    /// Carry byte when consumption split at an odd offset.
    odd: Option<u8>,
    /// Pieces held back until the checksum verdict: a modified segment
    /// must be *rejected*, never partially delivered (§3.3.6).
    held: Vec<Bytes>,
}

impl MapEntry {
    fn end0(&self, start0: u64) -> u64 {
        start0 + u64::from(self.len)
    }
}

/// What became of a run of consumed subflow bytes.
#[derive(Debug)]
pub enum Consumed {
    /// Bytes mapped into the data sequence space.
    Mapped {
        /// Data sequence number of the first byte.
        dsn: u64,
        /// The payload bytes.
        data: Bytes,
    },
    /// A mapping completed and its DSS checksum failed: a
    /// content-modifying middlebox touched the payload (§3.3.6).
    ChecksumFail {
        /// DSN of the corrupted mapping.
        dsn: u64,
        /// The (modified) bytes, needed if we fall back to TCP.
        data: Bytes,
    },
    /// Bytes with no covering mapping (option lost in the network).
    Unmapped {
        /// The raw bytes, needed for fallback delivery.
        data: Bytes,
    },
}

/// Per-subflow mapping state.
pub struct MappingTracker {
    /// Mappings keyed by 0-based subflow stream offset.
    maps: BTreeMap<u64, MapEntry>,
    /// Verify checksums.
    pub verify_checksums: bool,
    /// Total unmapped bytes seen (fallback heuristics).
    pub unmapped_total: u64,
    /// Checksum failures seen.
    pub checksum_failures: u64,
    /// Mappings received (including duplicates).
    pub mappings_received: u64,
}

impl MappingTracker {
    /// New tracker.
    pub fn new(verify_checksums: bool) -> MappingTracker {
        MappingTracker {
            maps: BTreeMap::new(),
            verify_checksums,
            unmapped_total: 0,
            checksum_failures: 0,
            mappings_received: 0,
        }
    }

    /// Record a mapping from a DSS option. Duplicates (TSO copies, §3.3.4)
    /// are ignored.
    pub fn add(&mut self, m: &DssMapping) {
        self.mappings_received += 1;
        if m.len == 0 {
            return; // DATA_FIN-only signal, no byte mapping
        }
        let start0 = u64::from(m.subflow_seq).saturating_sub(1);
        if let Some(existing) = self.maps.get(&start0) {
            if existing.dsn == m.dsn && existing.len == u32::from(m.len) {
                return; // duplicate
            }
        }
        self.maps.insert(
            start0,
            MapEntry {
                dsn: m.dsn,
                ssn1: start0 + 1,
                len: u32::from(m.len),
                checksum: m.checksum,
                consumed: 0,
                acc: 0,
                odd: None,
                held: Vec::new(),
            },
        );
    }

    /// Number of mappings awaiting data.
    pub fn pending(&self) -> usize {
        self.maps.len()
    }

    /// Consume in-order subflow bytes starting at 0-based `offset`,
    /// translating them to data-level pieces.
    pub fn consume(&mut self, mut offset: u64, data: Bytes) -> Vec<Consumed> {
        let mut out = Vec::new();
        let mut data = data;
        while !data.is_empty() {
            // Find the mapping covering `offset`.
            let covering = self
                .maps
                .range(..=offset)
                .next_back()
                .filter(|(&s, e)| offset < e.end0(s))
                .map(|(&s, _)| s);

            match covering {
                Some(start0) => {
                    let verifying = self.verify_checksums;
                    let entry = self.maps.get_mut(&start0).unwrap();
                    let end0 = start0 + u64::from(entry.len);
                    let take = (end0 - offset).min(data.len() as u64) as usize;
                    let piece = data.slice(..take);
                    data = data.slice(take..);
                    let piece_dsn = entry.dsn + (offset - start0);
                    let hold = verifying && entry.checksum.is_some();

                    // Incremental checksum over the mapping's payload.
                    if entry.checksum.is_some() {
                        accumulate(&mut entry.acc, &mut entry.odd, &piece);
                    }
                    entry.consumed += take as u32;
                    let complete = entry.consumed >= entry.len;

                    if hold {
                        // Hold back until the whole mapping verifies: a
                        // modified segment is rejected, never partially
                        // delivered.
                        entry.held.push(piece);
                        if complete {
                            let entry = self.maps.remove(&start0).unwrap();
                            let mut merged = Vec::with_capacity(entry.len as usize);
                            for h in &entry.held {
                                merged.extend_from_slice(h);
                            }
                            let merged = Bytes::from(merged);
                            let got = finalize(
                                entry.acc,
                                entry.odd,
                                entry.dsn,
                                entry.ssn1 as u32,
                                entry.len as u16,
                            );
                            if entry.checksum == Some(got) {
                                out.push(Consumed::Mapped {
                                    dsn: entry.dsn,
                                    data: merged,
                                });
                            } else {
                                self.checksum_failures += 1;
                                out.push(Consumed::ChecksumFail {
                                    dsn: entry.dsn,
                                    data: merged,
                                });
                            }
                        }
                        offset += take as u64;
                        continue;
                    }

                    if complete {
                        self.maps.remove(&start0);
                    }
                    out.push(Consumed::Mapped {
                        dsn: piece_dsn,
                        data: piece,
                    });
                    offset += take as u64;
                }
                None => {
                    // No covering mapping: unmapped until the next mapping
                    // starts (or the end of this data).
                    let next_start = self
                        .maps
                        .range(offset..)
                        .next()
                        .map(|(&s, _)| s)
                        .unwrap_or(u64::MAX);
                    let take = (next_start - offset).min(data.len() as u64) as usize;
                    let piece = data.slice(..take);
                    data = data.slice(take..);
                    self.unmapped_total += take as u64;
                    out.push(Consumed::Unmapped { data: piece });
                    offset += take as u64;
                }
            }
        }
        out
    }
}

fn accumulate(acc: &mut u32, odd: &mut Option<u8>, piece: &[u8]) {
    let mut buf;
    let bytes: &[u8] = match odd.take() {
        Some(carry) => {
            buf = Vec::with_capacity(piece.len() + 1);
            buf.push(carry);
            buf.extend_from_slice(piece);
            &buf
        }
        None => piece,
    };
    let pairs = bytes.len() / 2 * 2;
    *acc = checksum::ones_complement_add(*acc, &bytes[..pairs]);
    if bytes.len() % 2 == 1 {
        *odd = Some(bytes[bytes.len() - 1]);
    }
}

fn finalize(mut acc: u32, odd: Option<u8>, dsn: u64, ssn1: u32, len: u16) -> u16 {
    if let Some(b) = odd {
        acc = checksum::ones_complement_add(acc, &[b]);
    }
    acc = checksum::add_u64(acc, dsn);
    acc = checksum::add_u32(acc, ssn1);
    acc = checksum::add_u16(acc, len);
    checksum::fold(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp_packet::checksum::dss_checksum;

    fn mapping(dsn: u64, ssn1: u32, payload: &[u8], with_cksum: bool) -> DssMapping {
        DssMapping {
            dsn,
            subflow_seq: ssn1,
            len: payload.len() as u16,
            checksum: with_cksum.then(|| dss_checksum(dsn, ssn1, payload.len() as u16, payload)),
        }
    }

    #[test]
    fn single_mapping_consumed_whole() {
        let mut t = MappingTracker::new(true);
        let payload = b"hello multipath";
        t.add(&mapping(1000, 1, payload, true));
        let out = t.consume(0, Bytes::from_static(payload));
        assert_eq!(out.len(), 1);
        match &out[0] {
            Consumed::Mapped { dsn, data } => {
                assert_eq!(*dsn, 1000);
                assert_eq!(&data[..], payload);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.pending(), 0);
    }

    #[test]
    fn mapping_consumed_in_pieces_checksum_ok() {
        // TSO split the segment: bytes arrive in three odd-sized pieces,
        // the checksum must still verify.
        let mut t = MappingTracker::new(true);
        let payload = b"abcdefghijk"; // 11 bytes
        t.add(&mapping(500, 1, payload, true));
        // A checksummed mapping is held until complete (a modified
        // segment must be rejected whole, S3.3.6), then delivered once.
        let mut delivered = Vec::new();
        for (off, chunk) in [
            (0u64, &payload[..3]),
            (3, &payload[3..8]),
            (8, &payload[8..]),
        ] {
            let out = t.consume(off, Bytes::copy_from_slice(chunk));
            if off + (chunk.len() as u64) < payload.len() as u64 {
                assert!(out.is_empty(), "held until the checksum verdict");
            }
            for c in out {
                match c {
                    Consumed::Mapped { dsn, data } => {
                        assert_eq!(dsn, 500);
                        delivered.extend_from_slice(&data);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(&delivered, payload);
    }

    #[test]
    fn checksum_failure_detected() {
        let mut t = MappingTracker::new(true);
        let original = b"PORT 10.0.0.1";
        let modified = b"PORT 99.9.9.9"; // same length, different bytes
        t.add(&mapping(0, 1, original, true));
        let out = t.consume(0, Bytes::from_static(modified));
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Consumed::ChecksumFail { dsn: 0, .. }));
        assert_eq!(t.checksum_failures, 1);
    }

    #[test]
    fn checksum_skipped_when_disabled() {
        let mut t = MappingTracker::new(false);
        let original = b"data";
        t.add(&mapping(0, 1, original, true));
        let out = t.consume(0, Bytes::from_static(b"XXXX"));
        assert!(matches!(out[0], Consumed::Mapped { .. }));
        assert_eq!(t.checksum_failures, 0);
    }

    #[test]
    fn unmapped_bytes_surface() {
        // A coalescer dropped the second chunk's mapping: its bytes arrive
        // with no covering mapping.
        let mut t = MappingTracker::new(false);
        t.add(&mapping(100, 1, b"aaaa", false));
        let out = t.consume(0, Bytes::from_static(b"aaaabbbb"));
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], Consumed::Mapped { dsn: 100, .. }));
        match &out[1] {
            Consumed::Unmapped { data } => assert_eq!(&data[..], b"bbbb"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.unmapped_total, 4);
    }

    #[test]
    fn unmapped_gap_before_mapping() {
        let mut t = MappingTracker::new(false);
        // Mapping covers offsets 4..8 only (ssn1 = 5).
        t.add(&mapping(100, 5, b"bbbb", false));
        let out = t.consume(0, Bytes::from_static(b"aaaabbbb"));
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], Consumed::Unmapped { .. }));
        assert!(matches!(&out[1], Consumed::Mapped { dsn: 100, .. }));
    }

    #[test]
    fn duplicate_mappings_ignored() {
        let mut t = MappingTracker::new(false);
        let m = mapping(1, 1, b"xyz", false);
        t.add(&m);
        t.add(&m);
        t.add(&m);
        assert_eq!(t.pending(), 1);
        assert_eq!(t.mappings_received, 3);
    }

    #[test]
    fn two_mappings_interleave_with_stream() {
        let mut t = MappingTracker::new(true);
        // Data sequence space has the two chunks swapped relative to the
        // subflow stream (batching from different connection positions).
        t.add(&mapping(2000, 1, b"late", true));
        t.add(&mapping(1000, 5, b"early", true));
        let out = t.consume(0, Bytes::from_static(b"lateearly"));
        assert_eq!(out.len(), 2);
        match (&out[0], &out[1]) {
            (Consumed::Mapped { dsn: a, .. }, Consumed::Mapped { dsn: b, .. }) => {
                assert_eq!((*a, *b), (2000, 1000));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_length_mapping_is_signal_only() {
        let mut t = MappingTracker::new(true);
        t.add(&DssMapping {
            dsn: 999,
            subflow_seq: 0,
            len: 0,
            checksum: None,
        });
        assert_eq!(t.pending(), 0);
    }
}
