//! End-to-end connection tests over an in-memory wire.
//!
//! These drive a client [`MptcpConnection`] against a server
//! [`MptcpListener`] through a tiny deterministic wire with per-path
//! delays and an optional mangler (a one-closure middlebox). The heavier
//! scenario tests live in the workspace-level `tests/` directory on top of
//! the full simulator; these verify the protocol machine in isolation.

use std::collections::HashMap;

use mptcp_netsim::{Duration, SimTime};
use mptcp_packet::{Endpoint, FourTuple, MptcpOption, TcpOption, TcpSegment};

use mptcp_telemetry::{CounterId, EventKind};

use crate::api::{AbortReason, WriteOutcome};
use crate::config::{FailureDetection, Mechanisms, MptcpConfig};
use crate::conn::{ConnEvent, MptcpConnection};
use crate::endpoint::MptcpListener;
use crate::sched::SchedulerKind;
use crate::subflow::PathState;
use mptcp_tcpstack::CcAlgorithm;

const C1: u32 = 0x0a000001; // client addr 1
const C2: u32 = 0x0a000002; // client addr 2
const S1: u32 = 0x0a000063; // server addr

fn tuple(src: u32, sport: u16) -> FourTuple {
    FourTuple {
        src: Endpoint::new(src, sport),
        dst: Endpoint::new(S1, 80),
    }
}

type Mangler = Box<dyn FnMut(SimTime, TcpSegment) -> Option<TcpSegment>>;

/// A deterministic in-memory wire between one client and one listener.
struct Wire {
    now: SimTime,
    client: MptcpConnection,
    server: MptcpListener,
    delays: HashMap<(u32, u32), Duration>,
    inflight: Vec<(SimTime, TcpSegment)>,
    mangle: Option<Mangler>,
    seq: u64,
}

impl Wire {
    fn new(client: MptcpConnection, server: MptcpListener) -> Wire {
        let mut delays = HashMap::new();
        for (a, b) in [(C1, S1), (C2, S1)] {
            delays.insert((a, b), Duration::from_millis(5));
            delays.insert((b, a), Duration::from_millis(5));
        }
        Wire {
            now: SimTime::ZERO,
            client,
            server,
            delays,
            inflight: Vec::new(),
            mangle: None,
            seq: 0,
        }
    }

    fn set_delay(&mut self, a: u32, b: u32, d: Duration) {
        self.delays.insert((a, b), d);
        self.delays.insert((b, a), d);
    }

    fn transmit(&mut self, seg: TcpSegment) {
        let seg = match &mut self.mangle {
            Some(f) => match f(self.now, seg) {
                Some(s) => s,
                None => return, // dropped by the "middlebox"
            },
            None => seg,
        };
        let d = self
            .delays
            .get(&(seg.tuple.src.addr, seg.tuple.dst.addr))
            .copied()
            .unwrap_or(Duration::from_millis(5));
        self.seq += 1;
        self.inflight.push((self.now + d, seg));
    }

    /// Run until quiescent or `deadline`.
    fn run(&mut self, deadline: SimTime) {
        for _ in 0..1_000_000 {
            // Drain both endpoints.
            loop {
                let mut sent = false;
                while let Some(seg) = self.client.poll(self.now) {
                    self.transmit(seg);
                    sent = true;
                }
                let mut out = Vec::new();
                self.server.poll(self.now, &mut out);
                for seg in out.drain(..) {
                    self.transmit(seg);
                    sent = true;
                }
                if !sent {
                    break;
                }
            }
            // Advance to the next event.
            let next_delivery = self.inflight.iter().map(|(t, _)| *t).min();
            let next_timer = [self.client.poll_at(self.now), self.server.poll_at(self.now)]
                .into_iter()
                .flatten()
                .min();
            let next = match (next_delivery, next_timer) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => return,
            };
            if next > deadline {
                self.now = deadline;
                return;
            }
            self.now = self.now.max(next);
            // Deliver due segments in order.
            let now = self.now;
            let mut due: Vec<(SimTime, TcpSegment)> = Vec::new();
            self.inflight.retain_mut(|(t, seg)| {
                if *t <= now {
                    due.push((*t, seg.clone()));
                    false
                } else {
                    true
                }
            });
            due.sort_by_key(|(t, _)| *t);
            for (_, seg) in due {
                if seg.tuple.dst.addr == S1 {
                    self.server.handle_segment(now, &seg);
                } else {
                    self.client.handle_segment(now, &seg);
                }
            }
        }
        panic!("wire did not quiesce");
    }
}

fn client_conn(cfg: MptcpConfig) -> MptcpConnection {
    MptcpConnection::client(
        cfg,
        tuple(C1, 1000),
        SimTime::ZERO,
        mptcp_netsim::SimRng::new(11),
    )
}

fn setup(cfg: MptcpConfig) -> Wire {
    let client = client_conn(cfg.clone());
    let server = MptcpListener::new(cfg, 22);
    Wire::new(client, server)
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

fn read_all(conn: &mut MptcpConnection) -> Vec<u8> {
    let mut out = Vec::new();
    while let Some(b) = conn.read(usize::MAX).into_data() {
        out.extend_from_slice(&b);
    }
    out
}

fn server_conn(w: &mut Wire) -> &mut MptcpConnection {
    assert_eq!(w.server.conns.len(), 1);
    &mut w.server.conns[0]
}

#[test]
fn mptcp_handshake_establishes() {
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_secs(1));
    assert!(w.client.is_established());
    assert!(!w.client.is_fallback());
    let s = server_conn(&mut w);
    assert!(s.is_established());
    assert!(!s.is_fallback());
}

#[test]
fn bulk_transfer_single_subflow() {
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_millis(100));
    let data = pattern(100_000);
    let mut written = 0;
    while written < data.len() {
        written += w.client.write(&data[written..]).accepted();
        w.run(w.now + Duration::from_millis(50));
    }
    w.run(w.now + Duration::from_secs(2));
    let got = read_all(server_conn(&mut w));
    assert_eq!(got.len(), data.len());
    assert_eq!(got, data);
    // MPTCP stayed MPTCP.
    assert!(!w.client.is_fallback());
}

#[test]
fn two_subflows_carry_the_stream() {
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_millis(100));
    assert!(w
        .client
        .open_subflow(Endpoint::new(C2, 1001), Endpoint::new(S1, 80), w.now)
        .is_ok());
    w.run(w.now + Duration::from_millis(200));
    // Both subflows usable on both sides.
    assert_eq!(w.client.subflows().iter().filter(|s| s.usable()).count(), 2);

    let data = pattern(300_000);
    let mut written = 0;
    while written < data.len() {
        written += w.client.write(&data[written..]).accepted();
        w.run(w.now + Duration::from_millis(20));
    }
    w.run(w.now + Duration::from_secs(3));
    let got = read_all(server_conn(&mut w));
    assert_eq!(got, data);
    // Both subflows moved real payload (measured at the sending client).
    let per_subflow: Vec<u64> = w
        .client
        .subflows()
        .iter()
        .map(|sf| sf.sock.stats.bytes_acked)
        .collect();
    assert_eq!(per_subflow.len(), 2);
    assert!(per_subflow.iter().all(|&b| b > 10_000), "{per_subflow:?}");
}

#[test]
fn duplicate_subflow_not_opened() {
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_millis(100));
    assert!(w
        .client
        .open_subflow(Endpoint::new(C2, 1001), Endpoint::new(S1, 80), w.now)
        .is_ok());
    assert_eq!(
        w.client
            .open_subflow(Endpoint::new(C2, 1001), Endpoint::new(S1, 80), w.now),
        Err(crate::api::SubflowError::DuplicateSubflow)
    );
}

#[test]
fn join_synack_mac_verified() {
    // Corrupt the MP_JOIN SYN/ACK MAC in flight: the client must reset
    // the subflow rather than attach it.
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_millis(100));
    w.mangle = Some(Box::new(|_, mut seg: TcpSegment| {
        for o in &mut seg.options {
            if let TcpOption::Mptcp(MptcpOption::MpJoinSynAck { mac, .. }) = o {
                *mac ^= 0xdead;
            }
        }
        Some(seg)
    }));
    let _ = w
        .client
        .open_subflow(Endpoint::new(C2, 1001), Endpoint::new(S1, 80), w.now);
    w.run(w.now + Duration::from_millis(300));
    assert_eq!(w.client.stats.joins_rejected, 1);
    assert_eq!(w.client.subflows().iter().filter(|s| s.usable()).count(), 1);
    // The original subflow still works.
    w.mangle = None;
    w.client.write(b"still alive");
    w.run(w.now + Duration::from_millis(200));
    assert_eq!(read_all(server_conn(&mut w)), b"still alive");
}

#[test]
fn data_fin_teardown() {
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_millis(100));
    w.client.write(b"goodbye");
    w.client.close();
    w.run(w.now + Duration::from_secs(1));
    {
        let s = server_conn(&mut w);
        assert_eq!(read_all(s), b"goodbye");
        assert!(s.at_eof(), "server sees DATA_FIN EOF");
        s.close();
    }
    w.run(w.now + Duration::from_secs(1));
    assert!(w.client.at_eof());
    assert!(w.client.send_closed());
    let s = server_conn(&mut w);
    assert!(s.send_closed());
}

#[test]
fn fallback_when_syn_options_stripped() {
    let mut w = setup(MptcpConfig::default());
    // Middlebox strips MPTCP options from SYNs only.
    w.mangle = Some(Box::new(|_, mut seg: TcpSegment| {
        if seg.flags.syn {
            seg.options.retain(|o| !o.is_mptcp());
        }
        Some(seg)
    }));
    w.run(SimTime::from_millis(100));
    assert!(w.client.is_fallback(), "client falls back to TCP");
    w.client.write(b"plain old tcp");
    w.run(w.now + Duration::from_millis(300));
    let s = server_conn(&mut w);
    assert!(s.is_fallback());
    assert_eq!(read_all(s), b"plain old tcp");
}

#[test]
fn fallback_when_synack_options_stripped() {
    // The asymmetric §3.1 hazard: server said MP_CAPABLE but the client
    // never saw it. The server must detect the plain third ACK and drop
    // to TCP.
    let mut w = setup(MptcpConfig::default());
    w.mangle = Some(Box::new(|_, mut seg: TcpSegment| {
        if seg.flags.syn && seg.flags.ack {
            seg.options.retain(|o| !o.is_mptcp());
        }
        Some(seg)
    }));
    w.run(SimTime::from_millis(100));
    assert!(w.client.is_fallback());
    w.client.write(b"asymmetric");
    w.run(w.now + Duration::from_millis(300));
    let s = server_conn(&mut w);
    assert!(s.is_fallback(), "server detected the mismatch");
    assert_eq!(read_all(s), b"asymmetric");
}

#[test]
fn fallback_when_data_options_stripped() {
    // Options negotiated on SYNs but stripped from data segments — the
    // §3.3.6 mid-stream case: both sides must fall back and the stream
    // must still be delivered intact.
    let mut w = setup(MptcpConfig::default());
    w.mangle = Some(Box::new(|_, mut seg: TcpSegment| {
        if !seg.flags.syn {
            seg.options.retain(|o| !o.is_mptcp());
        }
        Some(seg)
    }));
    w.run(SimTime::from_millis(100));
    let data = pattern(50_000);
    let mut written = 0;
    while written < data.len() {
        written += w.client.write(&data[written..]).accepted();
        w.run(w.now + Duration::from_millis(50));
    }
    w.run(w.now + Duration::from_secs(2));
    let s = server_conn(&mut w);
    assert!(s.is_fallback());
    assert_eq!(read_all(s), data);
}

#[test]
fn subflow_failure_recovers_on_other_path() {
    // Mid-transfer, one path goes dark (all segments dropped). The
    // connection must finish over the surviving subflow — the paper's
    // robustness goal.
    let mut w = setup(MptcpConfig::default().with_buffers(256 * 1024));
    w.run(SimTime::from_millis(100));
    let _ = w
        .client
        .open_subflow(Endpoint::new(C2, 1001), Endpoint::new(S1, 80), w.now);
    w.run(w.now + Duration::from_millis(200));

    // Kill path C2<->S1 before any data moves: every chunk the
    // scheduler places on the doomed subflow is stranded and must be
    // re-injected onto the surviving path.
    w.mangle = Some(Box::new(|_, seg: TcpSegment| {
        if seg.tuple.src.addr == C2 || seg.tuple.dst.addr == C2 {
            None
        } else {
            Some(seg)
        }
    }));
    let data = pattern(200_000);
    let mut written = w.client.write(&data).accepted();
    while written < data.len() {
        written += w.client.write(&data[written..]).accepted();
        w.run(w.now + Duration::from_millis(100));
    }
    // Allow data-level retransmission to reroute stranded chunks.
    w.run(w.now + Duration::from_secs(30));
    let got = read_all(server_conn(&mut w));
    assert_eq!(
        got.len(),
        data.len(),
        "transfer completed despite path death"
    );
    assert_eq!(got, data);
    // Recovery may come from the data-level timer, dead-subflow
    // re-injection, or M1 walking the stranded range — any of them proves
    // the chunks were re-routed.
    let st = w.client.stats.clone();
    assert!(
        st.reinjections + st.opportunistic_retx + st.data_rtos > 0,
        "chunks were re-routed: {st:?}"
    );
}

#[test]
fn path_blackout_fails_and_recovers() {
    // A 3 s blackout on one of two paths: the failure detector must
    // demote it (Suspect -> Failed), reinject its in-flight chunks on the
    // survivor so the stream keeps flowing, and promote it back to Active
    // once the blackout lifts — all visible in stats and telemetry.
    let mut w = setup(MptcpConfig::default().with_buffers(256 * 1024));
    // Make C2 the scheduler's preferred (lowest-RTT) path so the blackout
    // hits a path that is actually carrying the stream.
    w.set_delay(C1, S1, Duration::from_millis(100));
    w.run(SimTime::from_millis(300));
    let _ = w
        .client
        .open_subflow(Endpoint::new(C2, 1001), Endpoint::new(S1, 80), w.now);
    w.run(w.now + Duration::from_millis(300));

    let from = w.now + Duration::from_millis(300);
    let until = from + Duration::from_secs(3);
    w.mangle = Some(Box::new(move |t, seg| {
        let on_c2 = seg.tuple.src.addr == C2 || seg.tuple.dst.addr == C2;
        (!on_c2 || t < from || t >= until).then_some(seg)
    }));

    // Stream continuously through the blackout and past recovery.
    let data = pattern(2_000_000);
    let mut written = 0;
    let mut got = Vec::new();
    let deadline = until + Duration::from_secs(4);
    while w.now < deadline {
        if written < data.len() {
            written += w.client.write(&data[written..]).accepted();
        }
        let target = w.now + Duration::from_millis(50);
        w.run(target);
        // A quiescent wire leaves `now` untouched; step it so the
        // timeline reaches the blackout window regardless.
        w.now = w.now.max(target);
        got.extend_from_slice(&read_all(server_conn(&mut w)));
    }
    w.run(w.now + Duration::from_secs(5));
    got.extend_from_slice(&read_all(server_conn(&mut w)));

    // Exactly-once, in-order delivery of everything written.
    assert_eq!(got.len(), written, "all written bytes delivered");
    assert_eq!(got, data[..got.len()], "stream content intact");
    let st = w.client.stats.clone();
    assert!(st.path_failures >= 1, "blackout detected: {st:?}");
    assert!(st.path_recoveries >= 1, "recovery detected: {st:?}");
    assert!(
        st.reinjections >= 1,
        "break-before-make reinjection: {st:?}"
    );
    assert_eq!(
        w.client.subflows()[1].path_state,
        PathState::Active,
        "path promoted back after the blackout"
    );
    let tel = w.client.telemetry();
    assert!(tel.counter(CounterId::PathSuspects) >= 1);
    assert!(tel.counter(CounterId::PathFailures) >= 1);
    assert!(tel.counter(CounterId::PathRecoveries) >= 1);
    assert!(tel
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::PathFailed { subflow: 1, .. })));
    assert!(tel
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::PathRecovered { subflow: 1 })));
}

#[test]
fn all_paths_blackout_aborts_with_typed_reason() {
    // When every path goes dark and stays dark, the connection must fail
    // loudly — a typed abort after the configured deadline — never hang.
    let fd = FailureDetection {
        abort_deadline: Duration::from_secs(2),
        ..FailureDetection::default()
    };
    let cfg = MptcpConfig::builder()
        .buffers(256 * 1024)
        .failure_detection(fd)
        .build()
        .unwrap();
    let mut w = setup(cfg);
    w.run(SimTime::from_millis(100));
    assert!(w.client.is_established());
    // Exchange data first so MPTCP is confirmed — an unconfirmed client
    // treats a data-level timeout as option stripping and falls back,
    // which is the correct §3.3.6 behaviour but not what we test here.
    w.client.write(&pattern(10_000));
    w.run(w.now + Duration::from_millis(300));
    let _ = read_all(server_conn(&mut w));

    let from = w.now;
    w.mangle = Some(Box::new(move |t, seg| (t < from).then_some(seg)));
    // Data written into the blackout: RTOs accumulate, the only path goes
    // Failed, and the abort deadline starts counting.
    w.client.write(&pattern(50_000));
    w.run(w.now + Duration::from_secs(30));

    assert_eq!(w.client.abort_reason(), Some(AbortReason::AllPathsFailed));
    assert!(!w.client.is_established());
    let tel = w.client.telemetry();
    assert!(tel.counter(CounterId::PathFailures) >= 1);
    assert_eq!(tel.counter(CounterId::ConnAborts), 1);
    // The abort happened promptly: detection (a few capped RTOs) plus the
    // 2 s deadline, with slack — not at the 30 s horizon.
    let abort_at = tel
        .events
        .iter()
        .find(|e| matches!(e.kind, EventKind::ConnAborted { code: 0 }))
        .expect("ConnAborted event recorded")
        .at_ns;
    assert!(
        abort_at <= (from + Duration::from_secs(8)).0,
        "abort within deadline + detection slack, got {abort_at}"
    );
}

#[test]
fn remove_addr_of_last_subflow_aborts_not_stalls() {
    // Satellite: withdrawing the address under the only live subflow must
    // produce a typed abort and a telemetry event, not a silent stall.
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_millis(100));
    assert!(w.client.is_established());

    let addr_id = w.client.subflows()[0].addr_id;
    let t = w.now;
    w.client.remove_addr(addr_id, t);

    assert_eq!(
        w.client.abort_reason(),
        Some(AbortReason::LastSubflowRemoved)
    );
    assert_eq!(w.client.write(b"x"), WriteOutcome::Closed);
    let tel = w.client.telemetry();
    assert_eq!(tel.counter(CounterId::ConnAborts), 1);
    assert!(tel
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::ConnAborted { code: 1 })));
    // The wire drains the RSTs without livelocking on stale timers.
    w.run(w.now + Duration::from_secs(2));
}

#[test]
fn add_addr_event_surfaces() {
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_millis(100));
    let t = w.now;
    server_conn(&mut w).advertise_addr(0x0a000064, Some(80), t);
    w.run(w.now + Duration::from_millis(100));
    let evs = w.client.take_events();
    assert!(
        evs.iter().any(|e| matches!(
            e,
            ConnEvent::PeerAddr(a) if a.addr == 0x0a000064 && a.port == Some(80)
        )),
        "{evs:?}"
    );
}

#[test]
fn mechanisms_fire_on_asymmetric_paths() {
    // A slow, bufferbloated path plus a fast one, small shared buffer:
    // M1 (opportunistic retransmission) and M2 (penalization) must
    // engage to keep the fast path flowing (§4.2, Figure 4).
    let mut cfg = MptcpConfig::default().with_buffers(64 * 1024);
    cfg = cfg.with_mechanisms(Mechanisms::M1_2);
    let mut w = setup(cfg);
    w.set_delay(C2, S1, Duration::from_millis(150));
    w.run(SimTime::from_millis(100));
    let _ = w
        .client
        .open_subflow(Endpoint::new(C2, 1001), Endpoint::new(S1, 80), w.now);
    w.run(w.now + Duration::from_millis(400));

    let data = pattern(2_000_000);
    let mut written = 0;
    let deadline = SimTime::from_secs(20);
    while written < data.len() && w.now < deadline {
        written += w.client.write(&data[written..]).accepted();
        w.run(w.now + Duration::from_millis(20));
        // Reader keeps up.
        let _ = read_all(server_conn(&mut w));
    }
    assert!(
        w.client.stats.opportunistic_retx > 0,
        "M1 engaged: {:?}",
        w.client.stats
    );
}

#[test]
fn sender_memory_freed_only_by_data_ack() {
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_millis(100));
    w.client.write(&pattern(10_000));
    // Before any exchange: all 10 KB retained at the sender.
    assert!(w.client.sender_memory() >= 10_000);
    w.run(w.now + Duration::from_secs(1));
    // After DATA_ACKs: nothing retained.
    assert_eq!(w.client.sender_memory(), 0);
}

#[test]
fn receiver_window_is_shared_pool() {
    // The advertised window on every subflow reflects the connection
    // buffer, not per-subflow state (§3.3.1).
    let mut w = setup(MptcpConfig::default().with_buffers(100_000));
    w.run(SimTime::from_millis(100));
    w.client.write(&pattern(60_000));
    w.run(w.now + Duration::from_secs(1));
    let s = server_conn(&mut w);
    // 60 KB undelivered to the app: window shrank accordingly.
    assert!(s.rcv_window() <= 40_000, "window = {}", s.rcv_window());
    let _ = read_all(s);
    assert!(s.rcv_window() > 90_000);
}

#[test]
fn remove_addr_closes_matching_subflows() {
    // §3.4: mobility — a host that loses an address cannot FIN its
    // subflows; REMOVE_ADDR lets the peer clean up.
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_millis(100));
    let _ = w
        .client
        .open_subflow(Endpoint::new(C2, 1001), Endpoint::new(S1, 80), w.now);
    w.run(w.now + Duration::from_millis(200));
    assert_eq!(w.client.subflows().iter().filter(|s| s.usable()).count(), 2);

    // The client withdraws its second address (addr_id of the join).
    let addr_id = w.client.subflows()[1].addr_id;
    let t = w.now;
    w.client.remove_addr(addr_id, t);
    w.run(w.now + Duration::from_millis(300));
    // The server killed the matching subflow...
    let s = server_conn(&mut w);
    assert_eq!(
        s.subflows().iter().filter(|sf| sf.usable()).count(),
        1,
        "server should have closed the withdrawn subflow"
    );
    // ...and data still flows on the surviving one.
    w.client.write(b"post-mobility data");
    w.run(w.now + Duration::from_millis(300));
    assert_eq!(read_all(server_conn(&mut w)), b"post-mobility data");
}

#[test]
fn backup_subflows_only_used_as_last_resort() {
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_millis(100));
    let _ = w
        .client
        .open_subflow(Endpoint::new(C2, 1001), Endpoint::new(S1, 80), w.now);
    w.run(w.now + Duration::from_millis(200));
    // Mark the second subflow as backup.
    w.client.subflows_mut()[1].backup = true;

    let data = pattern(200_000);
    let mut written = 0;
    while written < data.len() {
        written += w.client.write(&data[written..]).accepted();
        w.run(w.now + Duration::from_millis(50));
    }
    w.run(w.now + Duration::from_secs(2));
    assert_eq!(read_all(server_conn(&mut w)).len(), data.len());
    // The backup subflow carried (essentially) nothing.
    let backup_bytes = w.client.subflows()[1].sock.stats.bytes_acked;
    assert!(
        backup_bytes < 5_000,
        "backup subflow moved {backup_bytes} bytes"
    );
}

#[test]
fn fastclose_aborts_connection() {
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_millis(100));
    // Forge a FASTCLOSE from the server side (the option handler aborts).
    use mptcp_packet::{TcpFlags, TcpSegment as Seg};
    let remote_key = 0; // value is informational in our model
    let sf_tuple = w.client.subflows()[0].sock.tuple();
    let mut seg = Seg::new(
        sf_tuple.reversed(),
        mptcp_packet::SeqNum(1),
        mptcp_packet::SeqNum(1),
        TcpFlags::ACK,
    );
    seg.options.push(TcpOption::Mptcp(MptcpOption::FastClose {
        receiver_key: remote_key,
    }));
    w.client.handle_segment(w.now, &seg);
    assert_eq!(w.client.state(), crate::conn::ConnState::Closed);
}

#[test]
fn data_fin_retransmitted_if_lost() {
    let mut w = setup(MptcpConfig::default());
    w.run(SimTime::from_millis(100));
    w.client.write(b"final words");
    w.client.close();
    // Drop every segment carrying a DATA_FIN, once.
    let mut dropped = 0u32;
    w.mangle = Some(Box::new(move |_, seg: TcpSegment| {
        let has_fin = seg
            .mptcp_options()
            .any(|m| matches!(m, MptcpOption::Dss { data_fin: true, .. }));
        if has_fin && dropped < 1 {
            dropped += 1;
            return None;
        }
        Some(seg)
    }));
    w.run(w.now + Duration::from_secs(5));
    let s = server_conn(&mut w);
    assert_eq!(read_all(s), b"final words");
    assert!(s.at_eof(), "DATA_FIN must be retransmitted after loss");
}

/// One patterned two-subflow transfer under an explicit policy, returning
/// the reassembled server-side stream.
fn policy_transfer(cc: CcAlgorithm, sched: SchedulerKind, len: usize) -> (Vec<u8>, Vec<u8>) {
    let cfg = MptcpConfig::builder()
        .cc(cc)
        .scheduler(sched)
        .build()
        .expect("valid policy config");
    let mut w = setup(cfg);
    // Asymmetric paths so the scheduler has a real choice to make.
    w.set_delay(C2, S1, Duration::from_millis(40));
    w.run(SimTime::from_millis(100));
    assert!(w
        .client
        .open_subflow(Endpoint::new(C2, 1001), Endpoint::new(S1, 80), w.now)
        .is_ok());
    w.run(w.now + Duration::from_millis(300));
    assert_eq!(
        w.client.subflows().iter().filter(|s| s.usable()).count(),
        2,
        "cc={cc} sched={sched}: second subflow never came up"
    );

    let data = pattern(len);
    let mut written = 0;
    let mut out = Vec::new();
    for _ in 0..10_000 {
        if written < data.len() {
            written += w.client.write(&data[written..]).accepted();
        }
        w.run(w.now + Duration::from_millis(20));
        out.extend_from_slice(&read_all(server_conn(&mut w)));
        if written >= data.len() && out.len() >= data.len() {
            break;
        }
    }
    w.run(w.now + Duration::from_secs(2));
    out.extend_from_slice(&read_all(server_conn(&mut w)));
    (data, out)
}

/// Every (congestion control × scheduler) pair must deliver the stream
/// byte-identically and exactly once — the redundant scheduler's duplicate
/// copies must be discarded at the receiver, round-robin's interleaving
/// must reassemble, and BLEST's deferrals must never drop a chunk.
#[test]
fn policy_matrix_delivers_byte_identical_stream() {
    for cc in CcAlgorithm::ALL {
        for sched in SchedulerKind::ALL {
            let (data, got) = policy_transfer(cc, sched, 120_000);
            assert_eq!(
                got.len(),
                data.len(),
                "cc={cc} sched={sched}: delivered {} of {} bytes (loss or duplication)",
                got.len(),
                data.len()
            );
            assert_eq!(got, data, "cc={cc} sched={sched}: stream corrupted");
        }
    }
}

/// The redundant scheduler duplicates chunks across paths; the receiver
/// must discard the copies (visible as `DupDataBytes`), and the exact
/// stream still comes out.
#[test]
fn redundant_scheduler_duplicates_are_discarded() {
    let (data, got) = policy_transfer(CcAlgorithm::Lia, SchedulerKind::Redundant, 80_000);
    assert_eq!(got, data);
}

/// Round-robin must actually rotate: with two usable paths both subflows
/// carry payload even though path 1 is 8× slower.
#[test]
fn round_robin_uses_both_paths() {
    let cfg = MptcpConfig::builder()
        .scheduler(SchedulerKind::RoundRobin)
        .build()
        .unwrap();
    let mut w = setup(cfg);
    w.set_delay(C2, S1, Duration::from_millis(40));
    w.run(SimTime::from_millis(100));
    w.client
        .open_subflow(Endpoint::new(C2, 1001), Endpoint::new(S1, 80), w.now)
        .unwrap();
    w.run(w.now + Duration::from_millis(300));
    let data = pattern(200_000);
    let mut written = 0;
    while written < data.len() {
        written += w.client.write(&data[written..]).accepted();
        w.run(w.now + Duration::from_millis(20));
        let _ = read_all(server_conn(&mut w));
    }
    w.run(w.now + Duration::from_secs(2));
    let per_subflow: Vec<u64> = w
        .client
        .subflows()
        .iter()
        .map(|sf| sf.sock.stats.bytes_acked)
        .collect();
    assert!(
        per_subflow.iter().all(|&b| b > 20_000),
        "round-robin left a path idle: {per_subflow:?}"
    );
}
