//! MPTCP connection configuration: mechanisms, policies, reorder algorithm.
//!
//! [`MptcpConfig::builder`] is the single supported construction path:
//! it validates every knob combination and is where the two policy axes —
//! [`CcAlgorithm`] and [`SchedulerKind`] — plug in. Raw fields are crate
//! private; read accessors cover everything external code needs, and
//! [`MptcpConfig::into_builder`] re-opens an existing config for edits.

use std::fmt;

use mptcp_netsim::Duration;
use mptcp_tcpstack::{CcAlgorithm, TcpConfig};
use mptcp_telemetry::{TraceConfig, DEFAULT_EVENT_CAPACITY};

use crate::pm::PathManagerCfg;
use crate::sched::SchedulerKind;

/// The receive-path out-of-order queue algorithms of §4.3 / Figure 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReorderAlgo {
    /// Linear scan of the out-of-order queue (stock TCP behaviour).
    Regular,
    /// Balanced-tree lookup.
    Tree,
    /// Per-subflow expected-position pointers with linear-scan fallback.
    Shortcuts,
    /// Shortcuts plus batch-grouped fallback iteration.
    AllShortcuts,
}

/// The sender-side receive-buffer mechanisms of §4.2.
#[derive(Clone, Copy, Debug)]
pub struct Mechanisms {
    /// M1: opportunistic retransmission of the segment holding up the
    /// trailing edge of the receive window.
    pub opportunistic_retx: bool,
    /// M2: penalize (halve cwnd of) the subflow holding up the window,
    /// at most once per subflow RTT.
    pub penalize: bool,
    /// M3: send/receive buffer autotuning toward `2·Σxᵢ·RTTmax`.
    pub autotune: bool,
    /// M4: cap subflow cwnd when smoothed RTT exceeds 2× base RTT.
    pub cap_cwnd: bool,
}

impl Mechanisms {
    /// "Regular MPTCP" in the paper's figures: no mechanisms.
    pub const NONE: Mechanisms = Mechanisms {
        opportunistic_retx: false,
        penalize: false,
        autotune: false,
        cap_cwnd: false,
    };
    /// MPTCP+M1.
    pub const M1: Mechanisms = Mechanisms {
        opportunistic_retx: true,
        ..Mechanisms::NONE
    };
    /// MPTCP+M1,2 — the configuration the paper recommends.
    pub const M1_2: Mechanisms = Mechanisms {
        opportunistic_retx: true,
        penalize: true,
        ..Mechanisms::NONE
    };
    /// MPTCP+M1,2,3 (autotuning on).
    pub const M1_2_3: Mechanisms = Mechanisms {
        opportunistic_retx: true,
        penalize: true,
        autotune: true,
        cap_cwnd: false,
    };
    /// MPTCP+M1,2,3,4 (autotuning + cwnd capping).
    pub const ALL: Mechanisms = Mechanisms {
        opportunistic_retx: true,
        penalize: true,
        autotune: true,
        cap_cwnd: true,
    };
}

/// Path-failure detection and break-before-make recovery thresholds.
///
/// A subflow is demoted `Active -> Suspect` when its socket accumulates
/// `suspect_after_rtos` consecutive RTOs (or its DATA_ACK progress stalls
/// for `progress_timeout` with data outstanding), and `Suspect -> Failed`
/// at `fail_after_rtos`, at which point its in-flight DSNs are reinjected
/// on surviving subflows immediately. Non-Active subflows are re-probed
/// every `probe_interval` (doubling per unanswered probe, capped at 8x);
/// a probe answered returns the path to Active. When every live subflow
/// is Failed for `abort_deadline`, the connection aborts with
/// [`crate::AbortReason::AllPathsFailed`] instead of hanging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailureDetection {
    /// Consecutive subflow RTOs before demotion to Suspect.
    pub suspect_after_rtos: u32,
    /// Consecutive subflow RTOs before the path is declared Failed.
    pub fail_after_rtos: u32,
    /// Demote a subflow whose delivered-byte count has not moved for this
    /// long while data was outstanding on it.
    pub progress_timeout: Duration,
    /// Base interval between reachability probes of a demoted subflow.
    pub probe_interval: Duration,
    /// How long every path must stay Failed before the connection aborts.
    pub abort_deadline: Duration,
}

impl Default for FailureDetection {
    fn default() -> FailureDetection {
        FailureDetection {
            suspect_after_rtos: 2,
            fail_after_rtos: 3,
            progress_timeout: Duration::from_secs(4),
            probe_interval: Duration::from_millis(500),
            abort_deadline: Duration::from_secs(10),
        }
    }
}

/// Configuration for an MPTCP connection.
///
/// Construct via [`MptcpConfig::builder`] (validated) or start from
/// [`MptcpConfig::default`] and the `with_*` conveniences; fields are
/// crate-private so every external mutation goes through the builder.
#[derive(Clone, Debug)]
pub struct MptcpConfig {
    /// Per-subflow TCP parameters.
    pub(crate) tcp: TcpConfig,
    /// Require and verify DSS checksums (§3.3.6; off for datacenters).
    pub(crate) checksum: bool,
    /// Receive-buffer mechanisms.
    pub(crate) mech: Mechanisms,
    /// Out-of-order queue algorithm.
    pub(crate) reorder: ReorderAlgo,
    /// Congestion-control algorithm installed on every subflow.
    pub(crate) cc: CcAlgorithm,
    /// Packet scheduler deciding which subflow carries each chunk.
    pub(crate) scheduler: SchedulerKind,
    /// Connection-level send buffer cap in bytes.
    pub(crate) send_buf: usize,
    /// Connection-level receive buffer cap in bytes.
    pub(crate) recv_buf: usize,
    /// Automatically open subflows toward addresses learned via ADD_ADDR
    /// or configured locally.
    pub(crate) auto_join: bool,
    /// Maximum live subflows per connection; `open_subflow` and
    /// `accept_join` refuse beyond this.
    pub(crate) max_subflows: usize,
    /// Capacity of the telemetry event ring (discrete events retained in a
    /// [`mptcp_telemetry::TelemetrySnapshot`]).
    pub(crate) event_capacity: usize,
    /// Time-series tracing of connection and subflow internals. Disabled
    /// by default; when set enabled it is also propagated to each
    /// subflow's `tcp.trace` so per-subflow cwnd/RTT series record too.
    pub(crate) trace: TraceConfig,
    /// Path-failure detection thresholds and the all-paths abort deadline.
    pub(crate) failure: FailureDetection,
    /// Path-manager policy, endpoint registry and limits.
    pub(crate) pm: PathManagerCfg,
}

impl Default for MptcpConfig {
    fn default() -> Self {
        // Subflow buffers are not the limiting resource: the connection
        // enforces its own shared pool (§3.3.1) and overrides the window.
        let tcp = TcpConfig {
            send_buf: usize::MAX / 2,
            recv_buf: usize::MAX / 2,
            autotune: false,
            ..TcpConfig::default()
        };
        MptcpConfig {
            tcp,
            checksum: true,
            mech: Mechanisms::M1_2,
            reorder: ReorderAlgo::AllShortcuts,
            cc: CcAlgorithm::Lia,
            scheduler: SchedulerKind::MinRtt,
            send_buf: 2 * 1024 * 1024,
            recv_buf: 2 * 1024 * 1024,
            auto_join: true,
            max_subflows: 8,
            event_capacity: DEFAULT_EVENT_CAPACITY,
            trace: TraceConfig::disabled(),
            failure: FailureDetection::default(),
            pm: PathManagerCfg::default(),
        }
    }
}

impl MptcpConfig {
    /// Set both connection-level buffers — the sweep knob of Figs 4–6, 9.
    pub fn with_buffers(mut self, bytes: usize) -> MptcpConfig {
        self.send_buf = bytes;
        self.recv_buf = bytes;
        self
    }

    /// Select the mechanism set.
    pub fn with_mechanisms(mut self, mech: Mechanisms) -> MptcpConfig {
        self.mech = mech;
        // M4 is implemented inside the subflow TCP (like FreeBSD's
        // inflight limiter), so propagate it.
        self.tcp.cap_cwnd_on_bufferbloat = mech.cap_cwnd;
        self
    }

    /// Enable or replace time-series tracing. The same config is pushed
    /// down to the per-subflow TCP so subflow sockets trace too.
    pub fn with_trace(mut self, trace: TraceConfig) -> MptcpConfig {
        self.trace = trace;
        self.tcp.trace = trace;
        self
    }

    /// Start a validated configuration build.
    pub fn builder() -> MptcpConfigBuilder {
        MptcpConfigBuilder {
            cfg: MptcpConfig::default(),
        }
    }

    /// Re-open this configuration for further (validated) edits.
    pub fn into_builder(self) -> MptcpConfigBuilder {
        MptcpConfigBuilder { cfg: self }
    }

    /// Per-subflow TCP parameters.
    pub fn tcp(&self) -> &TcpConfig {
        &self.tcp
    }

    /// Are DSS checksums required and verified?
    pub fn checksum(&self) -> bool {
        self.checksum
    }

    /// The active receive-buffer mechanism set (M1–M4).
    pub fn mechanisms(&self) -> Mechanisms {
        self.mech
    }

    /// The out-of-order queue algorithm.
    pub fn reorder(&self) -> ReorderAlgo {
        self.reorder
    }

    /// The congestion-control algorithm installed on subflows.
    pub fn cc(&self) -> CcAlgorithm {
        self.cc
    }

    /// The packet scheduler placing chunks onto subflows.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Connection-level send buffer cap (bytes).
    pub fn send_buf(&self) -> usize {
        self.send_buf
    }

    /// Connection-level receive buffer cap (bytes).
    pub fn recv_buf(&self) -> usize {
        self.recv_buf
    }

    /// Are advertised addresses joined automatically?
    pub fn auto_join(&self) -> bool {
        self.auto_join
    }

    /// Maximum live subflows per connection.
    pub fn max_subflows(&self) -> usize {
        self.max_subflows
    }

    /// Telemetry event-ring capacity.
    pub fn event_capacity(&self) -> usize {
        self.event_capacity
    }

    /// Time-series trace configuration.
    pub fn trace(&self) -> TraceConfig {
        self.trace
    }

    /// Path-failure detection thresholds.
    pub fn failure_detection(&self) -> FailureDetection {
        self.failure
    }

    /// Path-manager policy, endpoint registry and limits.
    pub fn path_manager(&self) -> &PathManagerCfg {
        &self.pm
    }

    /// Replace the path-manager configuration on an already-built config,
    /// re-running validation. Harness plumbing: one scenario config fans
    /// out into distinct client (subflow endpoints) and server (signal
    /// endpoints) variants without rebuilding from scratch.
    pub fn with_path_manager(mut self, pm: PathManagerCfg) -> Result<MptcpConfig, ConfigError> {
        self.pm = pm;
        self.validate()?;
        Ok(self)
    }

    /// Check invariants a hand-assembled configuration may violate.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.send_buf == 0 {
            return Err(ConfigError::ZeroSendBuffer);
        }
        if self.recv_buf == 0 {
            return Err(ConfigError::ZeroRecvBuffer);
        }
        if self.max_subflows == 0 {
            return Err(ConfigError::ZeroMaxSubflows);
        }
        if self.event_capacity == 0 {
            return Err(ConfigError::ZeroEventCapacity);
        }
        // A zero-capacity trace ring would silently drop every sample; the
        // way to turn tracing off is `enabled: false`, not capacity 0.
        if self.trace.enabled && self.trace.capacity == 0 {
            return Err(ConfigError::ZeroTraceCapacity);
        }
        if self.tcp.trace.enabled && self.tcp.trace.capacity == 0 {
            return Err(ConfigError::ZeroTraceCapacity);
        }
        // M3 starts the autotuned buffers at 64 KiB and grows them toward
        // the configured caps; caps below the start would "autotune"
        // downward, which is a contradiction the builder rejects.
        if self.mech.autotune && (self.send_buf < AUTOTUNE_START || self.recv_buf < AUTOTUNE_START)
        {
            return Err(ConfigError::AutotuneCapBelowStart {
                cap: self.send_buf.min(self.recv_buf),
                start: AUTOTUNE_START,
            });
        }
        // The linear-scan queue is O(n) per insert; with many subflows the
        // out-of-order queue grows with the subflow count and Figure 8's
        // pathology bites. Force an O(log n)/shortcut algorithm instead.
        if self.reorder == ReorderAlgo::Regular && self.max_subflows > REGULAR_REORDER_MAX_SUBFLOWS
        {
            return Err(ConfigError::RegularReorderTooManySubflows {
                max_subflows: self.max_subflows,
                limit: REGULAR_REORDER_MAX_SUBFLOWS,
            });
        }
        // Detection must escalate: zero thresholds would demote a healthy
        // path, and a fail threshold below the suspect threshold would skip
        // the Suspect state the scheduler relies on.
        if self.failure.suspect_after_rtos == 0
            || self.failure.fail_after_rtos < self.failure.suspect_after_rtos
        {
            return Err(ConfigError::FailureThresholdOrder {
                suspect: self.failure.suspect_after_rtos,
                fail: self.failure.fail_after_rtos,
            });
        }
        if self.failure.progress_timeout.is_zero()
            || self.failure.probe_interval.is_zero()
            || self.failure.abort_deadline.is_zero()
        {
            return Err(ConfigError::ZeroFailureTimer);
        }
        // ADD_ADDR reliability needs a real interval; disable the path
        // manager's advertising by registering no signal endpoints, not by
        // a zero timer.
        if self.pm.limits.add_addr_rtx.is_zero() {
            return Err(ConfigError::ZeroPmTimer);
        }
        // Two registry entries for one address would double-advertise and
        // double-join it.
        for (i, a) in self.pm.endpoints.iter().enumerate() {
            if self.pm.endpoints[..i].iter().any(|b| b.addr == a.addr) {
                return Err(ConfigError::DuplicatePmEndpoint { addr: a.addr });
            }
        }
        Ok(())
    }
}

/// M3's initial autotuned buffer size (64 KiB, mirroring `conn::common`).
pub const AUTOTUNE_START: usize = 64 * 1024;

/// Largest `max_subflows` the builder accepts with [`ReorderAlgo::Regular`].
pub const REGULAR_REORDER_MAX_SUBFLOWS: usize = 4;

/// Why [`MptcpConfigBuilder::build`] refused a configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `send_buf` is zero: no data could ever be written.
    ZeroSendBuffer,
    /// `recv_buf` is zero: the advertised window would be stuck at zero.
    ZeroRecvBuffer,
    /// `max_subflows` is zero: even the initial subflow is forbidden.
    ZeroMaxSubflows,
    /// `event_capacity` is zero: the telemetry ring could hold nothing.
    ZeroEventCapacity,
    /// Tracing enabled with a zero-record ring; disable tracing instead.
    ZeroTraceCapacity,
    /// M3 autotuning enabled with a buffer cap below its starting size.
    AutotuneCapBelowStart {
        /// The offending (smaller) cap.
        cap: usize,
        /// The autotune starting size the cap must at least reach.
        start: usize,
    },
    /// The linear-scan reorder queue combined with a subflow count it
    /// cannot keep up with (§4.3 / Figure 8).
    RegularReorderTooManySubflows {
        /// The requested subflow limit.
        max_subflows: usize,
        /// The largest supported with `ReorderAlgo::Regular`.
        limit: usize,
    },
    /// Path-failure thresholds out of order: suspect must be nonzero and
    /// no larger than fail.
    FailureThresholdOrder {
        /// The suspect threshold.
        suspect: u32,
        /// The fail threshold.
        fail: u32,
    },
    /// A failure-detection timer (progress, probe, or abort deadline) is
    /// zero; disable detection by raising thresholds, not by zero timers.
    ZeroFailureTimer,
    /// The path manager's ADD_ADDR retransmit interval is zero.
    ZeroPmTimer,
    /// Two path-manager endpoints registered the same local address.
    DuplicatePmEndpoint {
        /// The duplicated address.
        addr: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroSendBuffer => f.write_str("send_buf must be nonzero"),
            ConfigError::ZeroRecvBuffer => f.write_str("recv_buf must be nonzero"),
            ConfigError::ZeroMaxSubflows => f.write_str("max_subflows must be nonzero"),
            ConfigError::ZeroEventCapacity => f.write_str("event_capacity must be nonzero"),
            ConfigError::ZeroTraceCapacity => {
                f.write_str("enabled tracing needs a nonzero ring capacity")
            }
            ConfigError::AutotuneCapBelowStart { cap, start } => write!(
                f,
                "autotune (M3) requires buffer caps >= its {start}-byte starting size, got {cap}"
            ),
            ConfigError::RegularReorderTooManySubflows { max_subflows, limit } => write!(
                f,
                "ReorderAlgo::Regular supports at most {limit} subflows, got max_subflows={max_subflows}"
            ),
            ConfigError::FailureThresholdOrder { suspect, fail } => write!(
                f,
                "failure thresholds must satisfy 1 <= suspect <= fail, got suspect={suspect} fail={fail}"
            ),
            ConfigError::ZeroFailureTimer => {
                f.write_str("failure-detection timers must be nonzero")
            }
            ConfigError::ZeroPmTimer => {
                f.write_str("path-manager add_addr_rtx interval must be nonzero")
            }
            ConfigError::DuplicatePmEndpoint { addr } => {
                write!(f, "path-manager endpoint address {addr:#010x} registered twice")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder returning a validated [`MptcpConfig`].
#[derive(Clone, Debug)]
pub struct MptcpConfigBuilder {
    cfg: MptcpConfig,
}

impl MptcpConfigBuilder {
    /// Set both connection-level buffer caps.
    pub fn buffers(mut self, bytes: usize) -> Self {
        self.cfg.send_buf = bytes;
        self.cfg.recv_buf = bytes;
        self
    }

    /// Set the connection-level send buffer cap.
    pub fn send_buf(mut self, bytes: usize) -> Self {
        self.cfg.send_buf = bytes;
        self
    }

    /// Set the connection-level receive buffer cap.
    pub fn recv_buf(mut self, bytes: usize) -> Self {
        self.cfg.recv_buf = bytes;
        self
    }

    /// Select the mechanism set (propagates M4 to the subflow TCP).
    pub fn mechanisms(mut self, mech: Mechanisms) -> Self {
        self.cfg = self.cfg.with_mechanisms(mech);
        self
    }

    /// Enable or disable DSS checksums.
    pub fn checksum(mut self, on: bool) -> Self {
        self.cfg.checksum = on;
        self
    }

    /// Select the out-of-order queue algorithm.
    pub fn reorder(mut self, algo: ReorderAlgo) -> Self {
        self.cfg.reorder = algo;
        self
    }

    /// Select the congestion-control algorithm installed on subflows.
    pub fn cc(mut self, algo: CcAlgorithm) -> Self {
        self.cfg.cc = algo;
        self
    }

    /// Select the packet scheduler.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.cfg.scheduler = kind;
        self
    }

    /// Couple congestion control across subflows (LIA) or not (Reno).
    #[deprecated(note = "use `cc(CcAlgorithm::Lia)` / `cc(CcAlgorithm::Reno)`")]
    pub fn coupled_cc(self, on: bool) -> Self {
        self.cc(if on {
            CcAlgorithm::Lia
        } else {
            CcAlgorithm::Reno
        })
    }

    /// Automatically join advertised addresses.
    pub fn auto_join(mut self, on: bool) -> Self {
        self.cfg.auto_join = on;
        self
    }

    /// Limit the number of live subflows.
    pub fn max_subflows(mut self, n: usize) -> Self {
        self.cfg.max_subflows = n;
        self
    }

    /// Replace the per-subflow TCP parameters.
    pub fn tcp(mut self, tcp: TcpConfig) -> Self {
        self.cfg.tcp = tcp;
        self
    }

    /// Size the telemetry event ring (discrete events kept per snapshot).
    pub fn event_capacity(mut self, records: usize) -> Self {
        self.cfg.event_capacity = records;
        self
    }

    /// Enable or replace time-series tracing (pushed down to subflows).
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.cfg = self.cfg.with_trace(trace);
        self
    }

    /// Replace the path-failure detection thresholds.
    pub fn failure_detection(mut self, failure: FailureDetection) -> Self {
        self.cfg.failure = failure;
        self
    }

    /// Replace the path-manager policy, endpoint registry and limits.
    pub fn path_manager(mut self, pm: PathManagerCfg) -> Self {
        self.cfg.pm = pm;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<MptcpConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // presets are consts by design
    fn mechanism_presets() {
        assert!(!Mechanisms::NONE.opportunistic_retx);
        assert!(Mechanisms::M1.opportunistic_retx && !Mechanisms::M1.penalize);
        assert!(Mechanisms::M1_2.penalize && !Mechanisms::M1_2.autotune);
        assert!(Mechanisms::ALL.cap_cwnd && Mechanisms::ALL.autotune);
    }

    #[test]
    fn mech_propagates_capping_to_tcp() {
        let cfg = MptcpConfig::default().with_mechanisms(Mechanisms::ALL);
        assert!(cfg.tcp.cap_cwnd_on_bufferbloat);
        let cfg = MptcpConfig::default().with_mechanisms(Mechanisms::M1_2);
        assert!(!cfg.tcp.cap_cwnd_on_bufferbloat);
    }

    #[test]
    fn buffer_setter() {
        let cfg = MptcpConfig::default().with_buffers(123_456);
        assert_eq!(cfg.send_buf, 123_456);
        assert_eq!(cfg.recv_buf, 123_456);
    }

    #[test]
    fn builder_accepts_defaults() {
        let cfg = MptcpConfig::builder().build().expect("defaults are valid");
        assert_eq!(cfg.max_subflows, 8);
    }

    #[test]
    fn builder_rejects_zero_buffers() {
        assert_eq!(
            MptcpConfig::builder().send_buf(0).build().unwrap_err(),
            ConfigError::ZeroSendBuffer
        );
        assert_eq!(
            MptcpConfig::builder().recv_buf(0).build().unwrap_err(),
            ConfigError::ZeroRecvBuffer
        );
        assert_eq!(
            MptcpConfig::builder().max_subflows(0).build().unwrap_err(),
            ConfigError::ZeroMaxSubflows
        );
    }

    #[test]
    fn builder_rejects_zero_event_capacity() {
        assert_eq!(
            MptcpConfig::builder()
                .event_capacity(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroEventCapacity
        );
        let cfg = MptcpConfig::builder()
            .event_capacity(1024)
            .build()
            .expect("nonzero capacity is valid");
        assert_eq!(cfg.event_capacity, 1024);
    }

    #[test]
    fn builder_rejects_zero_capacity_trace() {
        let bad = TraceConfig {
            enabled: true,
            capacity: 0,
            ..TraceConfig::enabled()
        };
        assert_eq!(
            MptcpConfig::builder().trace(bad).build().unwrap_err(),
            ConfigError::ZeroTraceCapacity
        );
        // Disabled tracing with zero capacity is the normal default.
        MptcpConfig::builder()
            .trace(TraceConfig::disabled())
            .build()
            .expect("disabled trace is always valid");
    }

    #[test]
    fn trace_propagates_to_subflow_tcp() {
        let cfg = MptcpConfig::default().with_trace(TraceConfig::enabled());
        assert!(cfg.trace.enabled);
        assert!(cfg.tcp.trace.enabled);
        assert_eq!(cfg.tcp.trace.capacity, cfg.trace.capacity);
    }

    #[test]
    fn builder_rejects_autotune_below_start() {
        let err = MptcpConfig::builder()
            .mechanisms(Mechanisms::M1_2_3)
            .buffers(32 * 1024)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::AutotuneCapBelowStart { .. }));
        // At or above the starting size it passes.
        MptcpConfig::builder()
            .mechanisms(Mechanisms::M1_2_3)
            .buffers(AUTOTUNE_START)
            .build()
            .expect("64 KiB cap is the minimum");
    }

    #[test]
    fn builder_rejects_bad_failure_detection() {
        let err = MptcpConfig::builder()
            .failure_detection(FailureDetection {
                suspect_after_rtos: 4,
                fail_after_rtos: 2,
                ..FailureDetection::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::FailureThresholdOrder {
                suspect: 4,
                fail: 2
            }
        );
        let err = MptcpConfig::builder()
            .failure_detection(FailureDetection {
                probe_interval: Duration::ZERO,
                ..FailureDetection::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroFailureTimer);
        MptcpConfig::builder()
            .failure_detection(FailureDetection::default())
            .build()
            .expect("defaults are valid");
    }

    #[test]
    fn builder_rejects_bad_path_manager() {
        use crate::pm::{EndpointFlags, PmEndpoint, PmLimits, PmPolicy};
        let err = MptcpConfig::builder()
            .path_manager(PathManagerCfg::default().limits(PmLimits {
                add_addr_rtx: Duration::ZERO,
                ..PmLimits::default()
            }))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroPmTimer);
        let err = MptcpConfig::builder()
            .path_manager(
                PathManagerCfg::new(PmPolicy::Fullmesh)
                    .endpoint(PmEndpoint::new(7, EndpointFlags::SUBFLOW))
                    .endpoint(PmEndpoint::new(7, EndpointFlags::SIGNAL))
                    .limits(PmLimits {
                        max_subflows: 4,
                        ..PmLimits::default()
                    }),
            )
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::DuplicatePmEndpoint { addr: 7 });
        let cfg = MptcpConfig::builder()
            .path_manager(
                PathManagerCfg::new(PmPolicy::Fullmesh)
                    .endpoint(PmEndpoint::new(7, EndpointFlags::SUBFLOW)),
            )
            .build()
            .expect("a clean registry validates");
        assert_eq!(cfg.path_manager().policy, PmPolicy::Fullmesh);
    }

    #[test]
    fn builder_rejects_linear_reorder_with_many_subflows() {
        let err = MptcpConfig::builder()
            .reorder(ReorderAlgo::Regular)
            .max_subflows(16)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::RegularReorderTooManySubflows { .. }
        ));
        MptcpConfig::builder()
            .reorder(ReorderAlgo::Regular)
            .max_subflows(2)
            .build()
            .expect("few subflows are fine on the linear queue");
    }
}
