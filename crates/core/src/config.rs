//! MPTCP connection configuration: mechanisms, scheduler, reorder algorithm.

use mptcp_tcpstack::TcpConfig;

/// The receive-path out-of-order queue algorithms of §4.3 / Figure 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReorderAlgo {
    /// Linear scan of the out-of-order queue (stock TCP behaviour).
    Regular,
    /// Balanced-tree lookup.
    Tree,
    /// Per-subflow expected-position pointers with linear-scan fallback.
    Shortcuts,
    /// Shortcuts plus batch-grouped fallback iteration.
    AllShortcuts,
}

/// The sender-side receive-buffer mechanisms of §4.2.
#[derive(Clone, Copy, Debug)]
pub struct Mechanisms {
    /// M1: opportunistic retransmission of the segment holding up the
    /// trailing edge of the receive window.
    pub opportunistic_retx: bool,
    /// M2: penalize (halve cwnd of) the subflow holding up the window,
    /// at most once per subflow RTT.
    pub penalize: bool,
    /// M3: send/receive buffer autotuning toward `2·Σxᵢ·RTTmax`.
    pub autotune: bool,
    /// M4: cap subflow cwnd when smoothed RTT exceeds 2× base RTT.
    pub cap_cwnd: bool,
}

impl Mechanisms {
    /// "Regular MPTCP" in the paper's figures: no mechanisms.
    pub const NONE: Mechanisms = Mechanisms {
        opportunistic_retx: false,
        penalize: false,
        autotune: false,
        cap_cwnd: false,
    };
    /// MPTCP+M1.
    pub const M1: Mechanisms = Mechanisms {
        opportunistic_retx: true,
        ..Mechanisms::NONE
    };
    /// MPTCP+M1,2 — the configuration the paper recommends.
    pub const M1_2: Mechanisms = Mechanisms {
        opportunistic_retx: true,
        penalize: true,
        ..Mechanisms::NONE
    };
    /// MPTCP+M1,2,3 (autotuning on).
    pub const M1_2_3: Mechanisms = Mechanisms {
        opportunistic_retx: true,
        penalize: true,
        autotune: true,
        cap_cwnd: false,
    };
    /// MPTCP+M1,2,3,4 (autotuning + cwnd capping).
    pub const ALL: Mechanisms = Mechanisms {
        opportunistic_retx: true,
        penalize: true,
        autotune: true,
        cap_cwnd: true,
    };
}

/// Configuration for an MPTCP connection.
#[derive(Clone, Debug)]
pub struct MptcpConfig {
    /// Per-subflow TCP parameters.
    pub tcp: TcpConfig,
    /// Require and verify DSS checksums (§3.3.6; off for datacenters).
    pub checksum: bool,
    /// Receive-buffer mechanisms.
    pub mech: Mechanisms,
    /// Out-of-order queue algorithm.
    pub reorder: ReorderAlgo,
    /// Use coupled (LIA) congestion control across subflows; plain Reno
    /// per subflow when false.
    pub coupled_cc: bool,
    /// Connection-level send buffer cap in bytes.
    pub send_buf: usize,
    /// Connection-level receive buffer cap in bytes.
    pub recv_buf: usize,
    /// Automatically open subflows toward addresses learned via ADD_ADDR
    /// or configured locally.
    pub auto_join: bool,
}

impl Default for MptcpConfig {
    fn default() -> Self {
        let mut tcp = TcpConfig::default();
        // Subflow buffers are not the limiting resource: the connection
        // enforces its own shared pool (§3.3.1) and overrides the window.
        tcp.send_buf = usize::MAX / 2;
        tcp.recv_buf = usize::MAX / 2;
        tcp.autotune = false;
        MptcpConfig {
            tcp,
            checksum: true,
            mech: Mechanisms::M1_2,
            reorder: ReorderAlgo::Shortcuts,
            coupled_cc: true,
            send_buf: 2 * 1024 * 1024,
            recv_buf: 2 * 1024 * 1024,
            auto_join: true,
        }
    }
}

impl MptcpConfig {
    /// Set both connection-level buffers — the sweep knob of Figs 4–6, 9.
    pub fn with_buffers(mut self, bytes: usize) -> MptcpConfig {
        self.send_buf = bytes;
        self.recv_buf = bytes;
        self
    }

    /// Select the mechanism set.
    pub fn with_mechanisms(mut self, mech: Mechanisms) -> MptcpConfig {
        self.mech = mech;
        // M4 is implemented inside the subflow TCP (like FreeBSD's
        // inflight limiter), so propagate it.
        self.tcp.cap_cwnd_on_bufferbloat = mech.cap_cwnd;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_presets() {
        assert!(!Mechanisms::NONE.opportunistic_retx);
        assert!(Mechanisms::M1.opportunistic_retx && !Mechanisms::M1.penalize);
        assert!(Mechanisms::M1_2.penalize && !Mechanisms::M1_2.autotune);
        assert!(Mechanisms::ALL.cap_cwnd && Mechanisms::ALL.autotune);
    }

    #[test]
    fn mech_propagates_capping_to_tcp() {
        let cfg = MptcpConfig::default().with_mechanisms(Mechanisms::ALL);
        assert!(cfg.tcp.cap_cwnd_on_bufferbloat);
        let cfg = MptcpConfig::default().with_mechanisms(Mechanisms::M1_2);
        assert!(!cfg.tcp.cap_cwnd_on_bufferbloat);
    }

    #[test]
    fn buffer_setter() {
        let cfg = MptcpConfig::default().with_buffers(123_456);
        assert_eq!(cfg.send_buf, 123_456);
        assert_eq!(cfg.recv_buf, 123_456);
    }
}
