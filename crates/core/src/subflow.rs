//! One MPTCP subflow: a TCP socket plus MPTCP-specific state.

use mptcp_netsim::{Duration, SimTime};
use mptcp_tcpstack::TcpSocket;

use crate::mapping::MappingTracker;

/// MP_JOIN handshake progress for an additional subflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinState {
    /// The connection's initial subflow (MP_CAPABLE, not MP_JOIN).
    Initial,
    /// Client-side: SYN+MP_JOIN sent, awaiting SYN/ACK MAC.
    ClientSyn,
    /// Client-side: MAC verified; carrying the MP_JOIN ACK until the
    /// server demonstrably has it.
    ClientEstablished,
    /// Server-side: SYN/ACK+MAC sent, awaiting the client's full HMAC.
    ServerWait,
    /// Fully authenticated; data may flow.
    Active,
}

/// Scheduler-visible health of a subflow's path.
///
/// Transitions are driven by [`crate::MptcpConnection::tick`]: consecutive
/// subflow RTOs (or a stalled DATA_ACK progress timer) demote
/// `Active -> Suspect -> Failed`; an answered reachability probe promotes
/// straight back to `Active`. Thresholds live in
/// [`crate::FailureDetection`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathState {
    /// Healthy; preferred by the scheduler.
    Active,
    /// Failure suspected; scheduled only when no Active subflow has room.
    Suspect,
    /// Declared dead: never scheduled, its in-flight DSNs were reinjected
    /// on survivors (break-before-make); probed for recovery.
    Failed,
}

/// A subflow of an MPTCP connection.
pub struct Subflow {
    /// The underlying TCP state machine.
    pub sock: TcpSocket,
    /// Receive-side mapping state.
    pub tracker: MappingTracker,
    /// Join-handshake progress.
    pub join: JoinState,
    /// Address identifier used in MP_JOIN/ADD_ADDR.
    pub addr_id: u8,
    /// Our nonce for this subflow's MP_JOIN exchange.
    pub nonce_local: u32,
    /// The peer's nonce.
    pub nonce_remote: u32,
    /// Marked when the socket errored or was reset; excluded from
    /// scheduling and demux.
    pub dead: bool,
    /// Backup-priority subflow (only used when no regular subflow works).
    pub backup: bool,
    /// Last time mechanism 2 penalized this subflow (at most once per RTT).
    pub last_penalty: Option<SimTime>,
    /// Times mechanism 2 has penalized this subflow.
    pub penalties: u64,
    /// Path health as seen by the scheduler.
    pub path_state: PathState,
    /// `sock.stats().bytes_acked` when progress was last observed.
    pub(crate) progress_bytes: u64,
    /// When `progress_bytes` last advanced (or data first went
    /// outstanding); the no-progress detector measures from here.
    pub(crate) progress_at: Option<SimTime>,
    /// Next reachability probe due, while demoted.
    pub(crate) probe_at: Option<SimTime>,
    /// Consecutive unanswered probes; exponent for probe backoff.
    pub(crate) probes_unanswered: u32,
}

impl Subflow {
    /// Wrap a socket as a subflow.
    pub fn new(sock: TcpSocket, tracker: MappingTracker, join: JoinState, addr_id: u8) -> Subflow {
        Subflow {
            sock,
            tracker,
            join,
            addr_id,
            nonce_local: 0,
            nonce_remote: 0,
            dead: false,
            backup: false,
            last_penalty: None,
            penalties: 0,
            path_state: PathState::Active,
            progress_bytes: 0,
            progress_at: None,
            probe_at: None,
            probes_unanswered: 0,
        }
    }

    /// May the scheduler place data on this subflow?
    pub fn usable(&self) -> bool {
        !self.dead
            && self.sock.is_established()
            && matches!(
                self.join,
                JoinState::Initial | JoinState::ClientEstablished | JoinState::Active
            )
    }

    /// Congestion-window headroom: bytes the scheduler may still enqueue.
    ///
    /// The subflow's send queue is kept no deeper than its congestion
    /// window, so scheduling decisions stay at the connection level
    /// ("MPTCP will send a new packet on the lowest delay link that has
    /// space in its congestion window", §4.2).
    pub fn tx_headroom(&self) -> usize {
        (self.sock.cwnd() as usize).saturating_sub(self.sock.bytes_queued())
    }

    /// Smoothed RTT, or a large default for unsampled subflows.
    pub fn srtt_or_default(&self) -> Duration {
        self.sock.srtt().unwrap_or(Duration::from_millis(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp_netsim::SimTime;
    use mptcp_packet::{Endpoint, FourTuple, SeqNum};
    use mptcp_tcpstack::TcpConfig;

    fn sock() -> TcpSocket {
        TcpSocket::client(
            TcpConfig::default(),
            FourTuple {
                src: Endpoint::new(1, 1),
                dst: Endpoint::new(2, 2),
            },
            SeqNum(100),
            SimTime::ZERO,
            vec![],
        )
    }

    #[test]
    fn unestablished_subflow_not_usable() {
        let sf = Subflow::new(sock(), MappingTracker::new(true), JoinState::Initial, 0);
        assert!(!sf.usable()); // still SynSent
    }

    #[test]
    fn server_wait_not_usable() {
        let mut sf = Subflow::new(sock(), MappingTracker::new(true), JoinState::ServerWait, 1);
        sf.dead = false;
        assert!(!sf.usable());
        sf.join = JoinState::Active;
        // Still not usable: socket not established.
        assert!(!sf.usable());
    }

    #[test]
    fn headroom_tracks_queue_depth() {
        let mut sf = Subflow::new(sock(), MappingTracker::new(true), JoinState::Initial, 0);
        let before = sf.tx_headroom();
        assert!(before > 0);
        sf.sock
            .send_chunk(bytes::Bytes::from_static(&[0; 1000]), vec![]);
        assert_eq!(sf.tx_headroom(), before - 1000);
    }
}
