//! Pluggable packet schedulers: which subflow carries the next chunk.
//!
//! The paper bakes a single lowest-RTT scheduler into §4.2; this module
//! extracts that decision behind the [`Scheduler`] trait so path-selection
//! policy becomes a sweep axis (`MptcpConfig::builder().scheduler(..)`,
//! `repro <exp> --sched <name>`). The connection remains responsible for
//! everything around the decision — path-state tiering (Active → backup →
//! Suspect, never Failed), the reinjection queue, M1/M2 mechanisms, chunk
//! cutting and DSS mapping, and stall/pick telemetry. A scheduler sees
//! only an eligibility-filtered snapshot of the paths ([`SchedCtx`]) and
//! answers with a [`SchedDecision`].
//!
//! # Contract
//!
//! * `pick` is called once per chunk placement attempt; `ctx.paths` holds
//!   only eligible (usable, tier-selected) paths in subflow-index order
//!   and is never empty.
//! * Decisions name subflows by [`PathSnapshot::id`].
//!   [`SchedDecision::Pick`] must name a path with
//!   [`PathSnapshot::has_room`]; so must [`SchedDecision::PickAll`]'s
//!   first element, the *primary* (it owns retransmit accounting for the
//!   chunk and gates how much new data is cut). The remaining `PickAll`
//!   entries are redundant copies and need only send-buffer space
//!   (`send_space > 0`): the subflow queues the copy and paces it out by
//!   its own cwnd, which is what makes duplication possible at all when
//!   every congestion window is full. The connection skips a copy whose
//!   buffer cannot actually take the cut chunk.
//! * [`SchedDecision::Stall`] means no path can take data right now; the
//!   connection records stall telemetry and waits for ACKs.
//! * [`SchedDecision::Defer`] means a path *could* take data but the
//!   scheduler prefers to wait for a better one (BLEST); the connection
//!   records a defer (not a stall) and retries on the next poll.
//! * Schedulers may keep state across calls (e.g. the round-robin
//!   cursor) but must not assume every `pick` results in a placement:
//!   the connection may discard a decision when the reinjection queue
//!   entry it was made for turns out to be stale.

use core::fmt;
use core::str::FromStr;

use mptcp_netsim::Duration;

/// One eligible subflow's state, snapshotted for a scheduling decision.
#[derive(Clone, Copy, Debug)]
pub struct PathSnapshot {
    /// Subflow index in the connection (stable across the connection's
    /// lifetime; decisions name this).
    pub id: usize,
    /// Smoothed RTT (a 1 ms floor stands in until the first sample).
    pub srtt: Duration,
    /// Congestion window (bytes).
    pub cwnd: u32,
    /// Maximum segment size (bytes).
    pub mss: usize,
    /// Congestion-window headroom: bytes the subflow could queue now.
    pub headroom: usize,
    /// Free space in the subflow's send buffer.
    pub send_space: usize,
    /// Bytes currently in flight on this subflow.
    pub in_flight: u32,
    /// Peer advertised this path as backup (MP_JOIN B-flag).
    pub backup: bool,
    /// Path is in the Suspect failure-detection tier.
    pub suspect: bool,
}

impl PathSnapshot {
    /// Can this path accept a chunk right now?
    pub fn has_room(&self) -> bool {
        self.headroom > 0 && self.send_space > 0
    }
}

/// Everything a scheduler may consult for one decision.
#[derive(Clone, Copy, Debug)]
pub struct SchedCtx<'a> {
    /// Eligible paths (tier-filtered by the connection), subflow-index
    /// order. Never empty.
    pub paths: &'a [PathSnapshot],
    /// Connection-level send window room (bytes beyond `snd_nxt`).
    pub send_window_free: u64,
    /// Application bytes waiting to be scheduled.
    pub pending_bytes: usize,
    /// This decision places a reinjected chunk (fixed DSN) rather than
    /// new data.
    pub is_reinject: bool,
    /// Subflow to avoid if possible (the path a reinjected chunk is
    /// already stuck on).
    pub avoid: Option<usize>,
}

/// A scheduler's answer for one chunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedDecision {
    /// Place the chunk on this subflow.
    Pick(usize),
    /// Place a copy of the chunk on every listed subflow (redundant
    /// scheduling); the first entry is the primary owner.
    PickAll(Vec<usize>),
    /// A path has room, but wait for a better one instead (BLEST).
    Defer,
    /// No eligible path can take data.
    Stall,
}

/// Which subflow should carry the next chunk of data?
pub trait Scheduler: Send {
    /// Decide where the next chunk goes. See the module docs for the
    /// full contract.
    fn pick(&mut self, ctx: &SchedCtx<'_>) -> SchedDecision;

    /// Scheduler name for reports.
    fn name(&self) -> &'static str;
}

/// The registry of built-in schedulers.
///
/// Parses from and prints as the canonical lowercase names used by the
/// CLI (`repro <exp> --sched <name>`), the config builder and JSON
/// reports: `"minrtt"`, `"rr"`, `"redundant"`, `"blest"`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Lowest-RTT-first (the paper's §4.2 scheduler; the default).
    #[default]
    MinRtt,
    /// Cycle through eligible paths regardless of RTT.
    RoundRobin,
    /// Duplicate every chunk on every eligible path (latency armor; the
    /// receiver's dup-discard makes the copies harmless).
    Redundant,
    /// BLEST-style blocking estimation: skip a slow path when using it
    /// would block the connection-level send window.
    Blest,
}

impl SchedulerKind {
    /// All schedulers, in sweep order.
    pub const ALL: [SchedulerKind; 4] = [
        SchedulerKind::MinRtt,
        SchedulerKind::RoundRobin,
        SchedulerKind::Redundant,
        SchedulerKind::Blest,
    ];

    /// Canonical lowercase name (CLI flag value and report key).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::MinRtt => "minrtt",
            SchedulerKind::RoundRobin => "rr",
            SchedulerKind::Redundant => "redundant",
            SchedulerKind::Blest => "blest",
        }
    }

    /// Instantiate the scheduler.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::MinRtt => Box::new(MinRtt),
            SchedulerKind::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerKind::Redundant => Box::new(Redundant),
            SchedulerKind::Blest => Box::new(Blest::new()),
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "minrtt" | "min-rtt" | "lowest-rtt" => Ok(SchedulerKind::MinRtt),
            "rr" | "round-robin" | "roundrobin" => Ok(SchedulerKind::RoundRobin),
            "redundant" | "dup" => Ok(SchedulerKind::Redundant),
            "blest" => Ok(SchedulerKind::Blest),
            other => Err(format!(
                "unknown scheduler `{other}` \
                 (expected one of: minrtt, rr, redundant, blest)"
            )),
        }
    }
}

/// Stable lowest-RTT-first ordering of the snapshot (index order breaks
/// ties, matching the paper's original inlined loop).
fn by_srtt(paths: &[PathSnapshot]) -> Vec<&PathSnapshot> {
    let mut order: Vec<&PathSnapshot> = paths.iter().collect();
    order.sort_by_key(|p| p.srtt);
    order
}

/// First path with room in `order`, preferring one that isn't `avoid`.
fn first_with_room<'a>(
    order: &[&'a PathSnapshot],
    avoid: Option<usize>,
) -> Option<&'a PathSnapshot> {
    if let Some(avoid) = avoid {
        if let Some(p) = order.iter().find(|p| p.has_room() && p.id != avoid) {
            return Some(p);
        }
    }
    order.iter().find(|p| p.has_room()).copied()
}

/// Lowest-RTT-first: the paper's §4.2 scheduler, byte-identical to the
/// loop this trait was extracted from.
pub struct MinRtt;

impl Scheduler for MinRtt {
    fn pick(&mut self, ctx: &SchedCtx<'_>) -> SchedDecision {
        match first_with_room(&by_srtt(ctx.paths), ctx.avoid) {
            Some(p) => SchedDecision::Pick(p.id),
            None => SchedDecision::Stall,
        }
    }

    fn name(&self) -> &'static str {
        "minrtt"
    }
}

/// Cycle through eligible paths, skipping ones without room.
///
/// The cursor tracks the last-picked subflow id, so the rotation is
/// stable even as the eligible set changes between decisions.
pub struct RoundRobin {
    /// Id of the last subflow picked (rotation resumes after it).
    last: Option<usize>,
}

impl RoundRobin {
    /// Fresh round-robin state.
    pub fn new() -> RoundRobin {
        RoundRobin { last: None }
    }
}

impl Default for RoundRobin {
    fn default() -> Self {
        RoundRobin::new()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, ctx: &SchedCtx<'_>) -> SchedDecision {
        let n = ctx.paths.len();
        // Rotate to just past the last pick (paths are in id order).
        let start = match self.last {
            Some(last) => ctx.paths.iter().position(|p| p.id > last).unwrap_or(0),
            None => 0,
        };
        let rotated = |k: usize| &ctx.paths[(start + k) % n];
        let mut found = None;
        for k in 0..n {
            let p = rotated(k);
            if !p.has_room() {
                continue;
            }
            if ctx.avoid == Some(p.id) {
                // Usable, but keep looking for a non-stuck path first.
                found.get_or_insert(p);
                continue;
            }
            found = Some(p);
            break;
        }
        match found {
            Some(p) => {
                self.last = Some(p.id);
                SchedDecision::Pick(p.id)
            }
            None => SchedDecision::Stall,
        }
    }

    fn name(&self) -> &'static str {
        "rr"
    }
}

/// Duplicate every chunk on every eligible path.
///
/// The copies carry the same DSN, so the connection-level receiver
/// delivers the first to arrive and discards the rest (`DupDataBytes`
/// telemetry) — trading goodput efficiency for latency and loss armor.
///
/// The *primary* (lowest-RTT path with cwnd headroom) gates admission:
/// no new chunk is cut unless some path can transmit right now. The
/// copies deliberately ignore cwnd headroom and only require send-buffer
/// space — in the saturated steady state at most one congestion window
/// has headroom at any instant, so a headroom-gated duplicate would
/// never happen and the scheduler would silently degrade to
/// first-with-room. Queued copies are paced out by each subflow's own
/// cwnd; a path whose buffer backs up (e.g. during a blackout) drops out
/// of duplication naturally once `send_space` hits zero.
pub struct Redundant;

impl Scheduler for Redundant {
    fn pick(&mut self, ctx: &SchedCtx<'_>) -> SchedDecision {
        let order = by_srtt(ctx.paths);
        let Some(primary) = first_with_room(&order, ctx.avoid) else {
            return SchedDecision::Stall;
        };
        let mut targets = vec![primary.id];
        // Re-duplicating onto `avoid` (the path a reinjected chunk is
        // already stuck on) helps nobody: a copy is already there.
        targets.extend(
            order
                .iter()
                .filter(|p| p.id != primary.id && p.send_space > 0 && ctx.avoid != Some(p.id))
                .map(|p| p.id),
        );
        if targets.len() == 1 {
            SchedDecision::Pick(targets[0])
        } else {
            SchedDecision::PickAll(targets)
        }
    }

    fn name(&self) -> &'static str {
        "redundant"
    }
}

/// BLEST-style blocking estimation (Ferlin et al., IFIP Networking 2016).
///
/// Lowest-RTT-first, but before spilling onto a slower path while the
/// fast path is cwnd-limited, estimate how many bytes the fast path will
/// push during one slow-path RTT ([`blest_blocking_estimate`]). If the
/// connection-level send window cannot hold that estimate *plus* the
/// chunk, sending on the slow path would block the window behind a slow
/// delivery (head-of-line risk) — defer instead and let the fast path
/// drain. Reinjections never defer: they are loss recovery.
pub struct Blest {
    /// Safety multiplier on the estimate (the paper's lambda, adapted
    /// upward on observed blocking; we keep it fixed).
    lambda: f64,
}

impl Blest {
    /// BLEST with the default lambda of 1.
    pub fn new() -> Blest {
        Blest { lambda: 1.0 }
    }
}

impl Default for Blest {
    fn default() -> Self {
        Blest::new()
    }
}

impl Scheduler for Blest {
    fn pick(&mut self, ctx: &SchedCtx<'_>) -> SchedDecision {
        let order = by_srtt(ctx.paths);
        let Some(candidate) = first_with_room(&order, ctx.avoid) else {
            return SchedDecision::Stall;
        };
        let fastest = order[0];
        if candidate.id == fastest.id || ctx.is_reinject {
            return SchedDecision::Pick(candidate.id);
        }
        // The fast path is full; how much will it send while one chunk
        // crosses the slow path once?
        let est = blest_blocking_estimate(fastest.cwnd, fastest.mss, fastest.srtt, candidate.srtt);
        let chunk = candidate.mss.min(ctx.pending_bytes.max(1)) as f64;
        if (ctx.send_window_free as f64) >= est * self.lambda + chunk {
            SchedDecision::Pick(candidate.id)
        } else {
            SchedDecision::Defer
        }
    }

    fn name(&self) -> &'static str {
        "blest"
    }
}

/// Bytes the fast path is expected to send during one slow-path RTT.
///
/// With `n = rtt_slow / rtt_fast` (floored at 1), the fast path drains
/// its window `n` times and grows by roughly half an MSS per RTT in
/// congestion avoidance:
///
/// ```text
/// estimate = (cwnd_fast + mss_fast * (n - 1) / 2) * n
/// ```
///
/// This is BLEST's `X * lambda` term with windows in bytes.
pub fn blest_blocking_estimate(
    fast_cwnd: u32,
    fast_mss: usize,
    rtt_fast: Duration,
    rtt_slow: Duration,
) -> f64 {
    let f = rtt_fast.as_secs_f64().max(1e-6);
    let s = rtt_slow.as_secs_f64().max(1e-6);
    let n = (s / f).max(1.0);
    (f64::from(fast_cwnd) + fast_mss as f64 * (n - 1.0) / 2.0) * n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(id: usize, srtt_ms: u64, headroom: usize) -> PathSnapshot {
        PathSnapshot {
            id,
            srtt: Duration::from_millis(srtt_ms),
            cwnd: 10_000,
            mss: 1000,
            headroom,
            send_space: if headroom > 0 { 10_000 } else { 0 },
            in_flight: 0,
            backup: false,
            suspect: false,
        }
    }

    fn ctx<'a>(paths: &'a [PathSnapshot]) -> SchedCtx<'a> {
        SchedCtx {
            paths,
            send_window_free: 1 << 20,
            pending_bytes: 100_000,
            is_reinject: false,
            avoid: None,
        }
    }

    #[test]
    fn minrtt_prefers_lowest_rtt_with_room() {
        let paths = [path(0, 100, 5000), path(1, 10, 5000)];
        assert_eq!(MinRtt.pick(&ctx(&paths)), SchedDecision::Pick(1));
        // Fast path full: falls through to the slow one.
        let paths = [path(0, 100, 5000), path(1, 10, 0)];
        assert_eq!(MinRtt.pick(&ctx(&paths)), SchedDecision::Pick(0));
    }

    #[test]
    fn minrtt_stalls_when_everything_full() {
        let paths = [path(0, 100, 0), path(1, 10, 0)];
        assert_eq!(MinRtt.pick(&ctx(&paths)), SchedDecision::Stall);
    }

    #[test]
    fn minrtt_avoids_stuck_path_for_reinjects() {
        let paths = [path(0, 10, 5000), path(1, 100, 5000)];
        let mut c = ctx(&paths);
        c.is_reinject = true;
        c.avoid = Some(0);
        assert_eq!(MinRtt.pick(&c), SchedDecision::Pick(1));
        // ...but falls back to the stuck path when it's the only option.
        let paths = [path(0, 10, 5000), path(1, 100, 0)];
        let mut c = ctx(&paths);
        c.avoid = Some(0);
        assert_eq!(MinRtt.pick(&c), SchedDecision::Pick(0));
    }

    #[test]
    fn round_robin_cycles() {
        let paths = [path(0, 10, 5000), path(1, 100, 5000), path(2, 50, 5000)];
        let mut rr = RoundRobin::new();
        let picks: Vec<_> = (0..6).map(|_| rr.pick(&ctx(&paths))).collect();
        assert_eq!(
            picks,
            vec![
                SchedDecision::Pick(0),
                SchedDecision::Pick(1),
                SchedDecision::Pick(2),
                SchedDecision::Pick(0),
                SchedDecision::Pick(1),
                SchedDecision::Pick(2),
            ]
        );
    }

    #[test]
    fn round_robin_skips_full_paths_and_survives_set_changes() {
        let a = [path(0, 10, 5000), path(1, 100, 0), path(2, 50, 5000)];
        let mut rr = RoundRobin::new();
        assert_eq!(rr.pick(&ctx(&a)), SchedDecision::Pick(0));
        assert_eq!(rr.pick(&ctx(&a)), SchedDecision::Pick(2));
        // Path 1 regains room; rotation resumes after id 2 -> wraps to 0.
        let b = [path(0, 10, 5000), path(1, 100, 5000), path(2, 50, 5000)];
        assert_eq!(rr.pick(&ctx(&b)), SchedDecision::Pick(0));
        assert_eq!(rr.pick(&ctx(&b)), SchedDecision::Pick(1));
        // Eligible set shrinks: cursor id 1 -> next is 2.
        let c = [path(0, 10, 0), path(2, 50, 5000)];
        assert_eq!(rr.pick(&ctx(&c)), SchedDecision::Pick(2));
    }

    #[test]
    fn redundant_duplicates_on_all_queueable_paths() {
        let paths = [path(0, 100, 5000), path(1, 10, 5000), path(2, 50, 0)];
        // Primary (first) is the lowest-RTT path with cwnd headroom; a
        // path with neither headroom nor buffer space gets no copy.
        assert_eq!(
            Redundant.pick(&ctx(&paths)),
            SchedDecision::PickAll(vec![1, 0])
        );
        // cwnd-saturated paths still take copies as long as the send
        // buffer can queue them — otherwise steady-state duplication
        // would never happen (at most one cwnd has headroom at a time).
        let mut saturated = path(1, 10, 0);
        saturated.send_space = 8_000;
        let paths = [path(0, 100, 5000), saturated];
        assert_eq!(
            Redundant.pick(&ctx(&paths)),
            SchedDecision::PickAll(vec![0, 1])
        );
        // No buffer space anywhere else: plain pick.
        let paths = [path(0, 100, 5000), path(1, 10, 0)];
        assert_eq!(Redundant.pick(&ctx(&paths)), SchedDecision::Pick(0));
        // Admission is still headroom-gated: no primary, no chunk.
        let mut full = path(0, 100, 0);
        full.send_space = 8_000;
        let paths = [full, path(1, 10, 0)];
        assert_eq!(Redundant.pick(&ctx(&paths)), SchedDecision::Stall);
    }

    #[test]
    fn redundant_reinject_skips_stuck_path() {
        let paths = [path(0, 10, 5000), path(1, 100, 5000)];
        let mut c = ctx(&paths);
        c.is_reinject = true;
        c.avoid = Some(0);
        assert_eq!(Redundant.pick(&c), SchedDecision::Pick(1));
    }

    #[test]
    fn blest_estimate_hand_computed() {
        // n = 30ms/10ms = 3: (10_000 + 1000 * (3-1)/2) * 3 = 33_000.
        let est = blest_blocking_estimate(
            10_000,
            1000,
            Duration::from_millis(10),
            Duration::from_millis(30),
        );
        assert!((est - 33_000.0).abs() < 1e-6, "est = {est}");
        // Equal RTTs: n = 1, estimate is exactly one fast window.
        let est = blest_blocking_estimate(
            10_000,
            1000,
            Duration::from_millis(20),
            Duration::from_millis(20),
        );
        assert!((est - 10_000.0).abs() < 1e-6, "est = {est}");
    }

    #[test]
    fn blest_uses_fast_path_unconditionally() {
        let paths = [path(0, 10, 5000), path(1, 100, 5000)];
        let mut c = ctx(&paths);
        c.send_window_free = 1; // tight window is irrelevant on the fast path
        assert_eq!(Blest::new().pick(&c), SchedDecision::Pick(0));
    }

    #[test]
    fn blest_defers_slow_path_when_window_tight() {
        // Fast path (10 ms) is full; slow path (100 ms) has room. The
        // fast path will push ~10 windows during one slow RTT; with a
        // small send window the slow chunk would block delivery.
        let paths = [path(0, 10, 0), path(1, 100, 5000)];
        let mut c = ctx(&paths);
        c.send_window_free = 20_000; // << estimate (~145_000)
        assert_eq!(Blest::new().pick(&c), SchedDecision::Defer);
        // A roomy window takes the slow path happily.
        c.send_window_free = 1 << 20;
        assert_eq!(Blest::new().pick(&c), SchedDecision::Pick(1));
    }

    #[test]
    fn blest_never_defers_reinjections() {
        let paths = [path(0, 10, 0), path(1, 100, 5000)];
        let mut c = ctx(&paths);
        c.send_window_free = 1;
        c.is_reinject = true;
        assert_eq!(Blest::new().pick(&c), SchedDecision::Pick(1));
    }

    #[test]
    fn scheduler_kind_names_round_trip() {
        for kind in SchedulerKind::ALL {
            let parsed: SchedulerKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(format!("{kind}"), kind.name());
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(
            "round-robin".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::RoundRobin
        );
        assert!("ecf".parse::<SchedulerKind>().is_err());
    }
}
