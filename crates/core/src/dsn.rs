//! 64-bit data sequence number helpers.
//!
//! DATA_ACKs travel as 32-bit truncations (the common RFC 6824 encoding —
//! it is what lets a full mapping, a DATA_ACK and timestamps share the
//! 40-byte option space). The receiver of a truncated DATA_ACK re-expands
//! it against its own send state, picking the 64-bit value closest to the
//! reference.

/// Expand a truncated 32-bit value to the full 64-bit sequence closest to
/// `reference`.
pub fn infer_full_dsn(reference: u64, low32: u64) -> u64 {
    let low32 = low32 & 0xffff_ffff;
    let base = reference & !0xffff_ffff;
    let candidates = [
        base.wrapping_sub(1 << 32) | low32,
        base | low32,
        base.wrapping_add(1 << 32) | low32,
    ];
    *candidates
        .iter()
        .min_by_key(|&&c| reference.abs_diff(c))
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        assert_eq!(infer_full_dsn(0x1_0000_1234, 0x0000_1234), 0x1_0000_1234);
    }

    #[test]
    fn slightly_behind_reference() {
        // Reference just crossed a 2^32 boundary; the ack is just before it.
        let r = 0x2_0000_0010;
        assert_eq!(infer_full_dsn(r, 0xffff_fff0), 0x1_ffff_fff0);
    }

    #[test]
    fn slightly_ahead_of_reference() {
        let r = 0x1_ffff_fff0;
        assert_eq!(infer_full_dsn(r, 0x0000_0010), 0x2_0000_0010);
    }

    #[test]
    fn small_values() {
        assert_eq!(infer_full_dsn(100, 90), 90);
        assert_eq!(infer_full_dsn(0, 0), 0);
    }

    #[test]
    fn roundtrip_over_wide_range() {
        // For any true value within 2^31 of the reference, truncation is
        // invertible.
        let cases = [
            (5_000_000_000u64, 5_000_000_100u64),
            (5_000_000_000, 4_999_999_900),
            (u64::from(u32::MAX), u64::from(u32::MAX) + 50),
            (1 << 40, (1 << 40) - 1000),
        ];
        for (reference, truth) in cases {
            let low = truth & 0xffff_ffff;
            assert_eq!(
                infer_full_dsn(reference, low),
                truth,
                "ref={reference} truth={truth}"
            );
        }
    }
}
