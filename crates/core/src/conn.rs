//! The MPTCP connection: subflow management, scheduling, flow control,
//! reliability at the data level, mechanisms M1–M4, and fallback.
//!
//! This is the paper's primary contribution assembled: a connection that
//! stripes one byte stream over several TCP subflows while surviving the
//! middlebox bestiary of §3 and performing well under the memory limits of
//! §4. The structure mirrors the paper:
//!
//! * §3.1 — MP_CAPABLE negotiation, fallback when options vanish, "carry
//!   the option until one has been acked".
//! * §3.2 — MP_JOIN with token demux and HMAC authentication; ADD_ADDR.
//! * §3.3 — per-subflow sequence spaces; relative DSS mappings; explicit
//!   DATA_ACK in options; shared receive pool window semantics; send
//!   buffer retained until DATA_ACK; DSS checksum + fallback.
//! * §3.4 — subflow FIN vs DATA_FIN; REMOVE_ADDR.
//! * §4.2 — opportunistic retransmission (M1), penalizing slow subflows
//!   (M2), buffer autotuning (M3), cwnd capping (M4, in the subflow TCP).
//! * §4.3 — pluggable connection-level out-of-order queues.

use std::collections::{BTreeMap, HashMap, VecDeque};

use bytes::Bytes;
use mptcp_netsim::{Duration, SimRng, SimTime};
use mptcp_packet::mptcp_opts::AdvertisedAddr;
use mptcp_packet::{
    checksum, crypto, DssMapping, Endpoint, FourTuple, MptcpOption, SeqNum, TcpOption, TcpSegment,
};
use mptcp_tcpstack::{CoupledState, FlowView, TcpSocket};
use mptcp_telemetry::{
    CounterId, EventKind, FallbackCause, GaugeId, Recorder, TelemetrySnapshot, TraceRecord,
    TraceSnapshot, Tracer, SPAN_CONN_LEVEL,
};

use crate::api::{AbortReason, JoinError, ReadOutcome, SubflowError, SubflowId, WriteOutcome};
use crate::config::MptcpConfig;
use crate::dsn::infer_full_dsn;
use crate::mapping::{Consumed, MappingTracker};
use crate::pm::{PathManager, PmAction, PmEvent};
use crate::reorder::{make_queue, OooQueue};
use crate::sched::{PathSnapshot, SchedCtx, SchedDecision, Scheduler};
use crate::subflow::{JoinState, PathState, Subflow};
use crate::token::{KeySet, TokenTable};

/// Connection lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Initial subflow handshake in progress.
    Handshake,
    /// Handshake done, MPTCP negotiated, but not yet confirmed by a
    /// non-SYN segment carrying an MPTCP option (§3.1's lost-third-ACK /
    /// stripped-SYN-ACK defence).
    AwaitingConfirm,
    /// MPTCP fully operational.
    Established,
    /// Operating as plain TCP on the initial subflow (§3.3.6 fallback, or
    /// MP_CAPABLE never negotiated).
    Fallback,
    /// Connection finished or failed.
    Closed,
}

/// Notifications surfaced to the owner (host / application glue).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConnEvent {
    /// The peer advertised an additional address (ADD_ADDR): the owner may
    /// open a subflow toward it.
    PeerAddr(AdvertisedAddr),
    /// A subflow completed its handshake.
    SubflowUp(usize),
    /// A subflow died (RST, timeout, or checksum-triggered reset).
    SubflowDown(usize),
    /// The connection fell back to regular TCP.
    FellBack,
}

/// Counters for the paper's measurements.
#[derive(Clone, Debug, Default)]
pub struct ConnStats {
    /// Application bytes accepted for sending.
    pub bytes_written: u64,
    /// Application bytes delivered in order (goodput numerator).
    pub bytes_delivered: u64,
    /// Payload bytes handed to subflows, including re-injections
    /// (throughput numerator).
    pub bytes_scheduled: u64,
    /// M1 opportunistic retransmissions performed.
    pub opportunistic_retx: u64,
    /// M2 penalizations applied.
    pub penalizations: u64,
    /// Connection-level retransmission timeouts.
    pub data_rtos: u64,
    /// Chunks re-injected on another subflow (any reason).
    pub reinjections: u64,
    /// DSS checksum failures observed.
    pub checksum_failures: u64,
    /// Subflows reset due to checksum failures / bad MACs.
    pub subflow_resets: u64,
    /// Duplicate data-level bytes discarded at the receiver.
    pub dup_bytes: u64,
    /// MP_JOIN attempts rejected (bad token or MAC).
    pub joins_rejected: u64,
    /// Paths the failure detector declared Failed.
    pub path_failures: u64,
    /// Failed or Suspect paths that recovered to Active.
    pub path_recoveries: u64,
    /// Per-mechanism telemetry (counters, gauges, event ring). Populated
    /// by [`MptcpConnection::conn_stats`]; the live `stats` field carries
    /// an empty snapshot.
    pub telemetry: TelemetrySnapshot,
}

/// A chunk handed to a subflow, retained until DATA_ACKed (§3.3.5: "even
/// if a segment is ACKed at the subflow level, its data is kept in memory
/// until we receive a DATA ACK").
struct SentChunk {
    data: Bytes,
    subflow: usize,
}

/// One end of a Multipath TCP connection.
pub struct MptcpConnection {
    cfg: MptcpConfig,
    is_client: bool,
    state: ConnState,
    rng: SimRng,

    local: KeySet,
    remote: Option<KeySet>,
    checksum_on: bool,

    subflows: Vec<Subflow>,
    next_addr_id: u8,

    /// The path-manager policy engine: decides which subflows to open,
    /// what to advertise and how to react to address churn; this
    /// connection executes its [`PmAction`]s.
    pm: PathManager,
    /// Peer-advertised addresses by addr_id (ADD_ADDR idempotency: a
    /// repeat with the same address is ignored; a different address
    /// replaces the mapping).
    peer_adverts: HashMap<u8, (u32, Option<u16>)>,
    /// Stable addr_id per locally-advertised address, so ADD_ADDR
    /// retransmits re-use the id instead of minting a new one.
    advertised_local: HashMap<u32, u8>,

    // --- Send side -----------------------------------------------------
    /// Next data sequence number to assign.
    snd_nxt: u64,
    /// Oldest un-DATA-ACKed data sequence number.
    snd_una: u64,
    /// Right edge of the peer's receive window in data sequence space
    /// (monotonic max of DATA_ACK + window, §3.3.2).
    snd_right_edge: u64,
    /// App data written but not yet mapped onto a subflow.
    pending: VecDeque<Bytes>,
    pending_bytes: usize,
    /// Chunks on subflows awaiting DATA_ACK, keyed by DSN.
    sent: BTreeMap<u64, SentChunk>,
    sent_bytes: usize,
    /// Chunks to re-send (subflow death, data RTO, M1), keyed by DSN.
    reinject: VecDeque<u64>,
    /// Connection-level send buffer capacity (M3-autotuned).
    snd_buf_cap: usize,
    data_fin_queued: bool,
    /// DSN assigned to the DATA_FIN once emitted.
    data_fin_dsn: Option<u64>,
    data_rto_deadline: Option<SimTime>,
    data_rto_backoff: u32,
    /// M1 duplicate-suppression: last opportunistically-retransmitted DSN
    /// and when.
    last_opp: Option<(u64, SimTime)>,

    // --- Receive side ---------------------------------------------------
    /// Next expected data sequence number.
    rcv_nxt: u64,
    /// The connection-level out-of-order queue (Figure 8 algorithms).
    pub ooo: Box<dyn OooQueue>,
    app_rx: VecDeque<Bytes>,
    app_rx_bytes: usize,
    /// Connection-level receive buffer capacity (M3-autotuned).
    rcv_buf_cap: usize,
    /// DSN of the peer's DATA_FIN, if announced.
    rcv_fin_dsn: Option<u64>,
    /// Peer's stream fully received and FIN consumed.
    rcv_eof: bool,

    // Fallback bookkeeping.
    confirmed: bool,
    /// Consecutive option-less non-SYN segments on the initial subflow
    /// while MPTCP is unconfirmed.
    plain_rx_streak: u32,

    /// Why the connection was aborted, if it was.
    abort_reason: Option<AbortReason>,
    /// Since when every live subflow has been Failed — start of the
    /// abort-deadline countdown.
    all_failed_since: Option<SimTime>,

    events: VecDeque<ConnEvent>,
    /// Measurement counters.
    pub stats: ConnStats,
    /// Fine-grained mechanism telemetry (merged with per-subflow and
    /// reorder-queue recorders by [`MptcpConnection::telemetry`]).
    telemetry: Recorder,
    /// Connection-level time-series tracer (ConnSamples and span events;
    /// per-subflow series live in each subflow socket's tracer).
    tracer: Tracer,
    /// The configured packet scheduler (policy only; tiering, reinjection
    /// and telemetry stay here in the connection).
    sched: Box<dyn Scheduler>,
    /// Cross-subflow congestion-control coupling state (owned here: only
    /// the connection sees every subflow).
    coupled: CoupledState,
    /// Last scheduler decision was a stall? Gates the transition-only
    /// stall span; any non-stall decision clears it.
    sched_stalled: bool,
    poll_cursor: usize,
    /// Scratch: consecutive in-mapping segments from one subflow drain,
    /// delivered as a run so the reorder queue pays one walk per run.
    /// Empty between calls; kept for its capacity.
    mapped_run: Vec<(u64, Bytes)>,
    /// Scratch for out-of-order items awaiting a batched `ooo` insert.
    /// Empty between calls; kept for its capacity.
    ooo_pending: Vec<(u64, Bytes, usize)>,
}

impl MptcpConnection {
    // ------------------------------------------------------------------
    // Construction.
    // ------------------------------------------------------------------

    /// Active-open an MPTCP connection: the first [`MptcpConnection::poll`]
    /// emits a SYN carrying MP_CAPABLE with our key.
    pub fn client(
        cfg: MptcpConfig,
        tuple: FourTuple,
        now: SimTime,
        mut rng: SimRng,
    ) -> MptcpConnection {
        let local = KeySet::from_key(rng.next_u64());
        let checksum_on = cfg.checksum;
        let syn_opts = vec![TcpOption::Mptcp(MptcpOption::MpCapable {
            version: 0,
            checksum_required: checksum_on,
            sender_key: local.key,
            receiver_key: None,
        })];
        let mut sock = TcpSocket::client(
            cfg.tcp.clone(),
            tuple,
            SeqNum(rng.next_u32()),
            now,
            syn_opts,
        );
        MptcpConnection::install_cc(&cfg, &mut sock);
        let mut conn = MptcpConnection::common(cfg, true, local, rng);
        conn.subflows.push(Subflow::new(
            sock,
            MappingTracker::new(checksum_on),
            JoinState::Initial,
            0,
        ));
        conn
    }

    /// Passive-open from a received SYN. If the SYN carries MP_CAPABLE the
    /// connection negotiates MPTCP (drawing a unique-token key from
    /// `tokens`); otherwise it starts in fallback (plain TCP).
    pub fn server_accept(
        cfg: MptcpConfig,
        syn: &TcpSegment,
        now: SimTime,
        mut rng: SimRng,
        tokens: &mut TokenTable,
    ) -> MptcpConnection {
        let peer_capable = syn.mptcp_options().find_map(|m| match m {
            MptcpOption::MpCapable {
                sender_key,
                checksum_required,
                ..
            } => Some((*sender_key, *checksum_required)),
            _ => None,
        });

        match peer_capable {
            Some((peer_key, peer_ck)) => {
                let local = tokens.generate(&mut rng);
                let mut cfg = cfg;
                cfg.checksum = cfg.checksum || peer_ck;
                let checksum_on = cfg.checksum;
                let syn_opts = vec![TcpOption::Mptcp(MptcpOption::MpCapable {
                    version: 0,
                    checksum_required: checksum_on,
                    sender_key: local.key,
                    receiver_key: None,
                })];
                let mut sock =
                    TcpSocket::accept(cfg.tcp.clone(), syn, SeqNum(rng.next_u32()), now, syn_opts);
                // The SYN's MP_CAPABLE was consumed here; don't let the
                // harvested copy masquerade as third-ACK confirmation.
                let _ = sock.take_rx_mptcp();
                MptcpConnection::install_cc(&cfg, &mut sock);
                let mut conn = MptcpConnection::common(cfg, false, local, rng);
                conn.set_remote_key(peer_key);
                conn.state = ConnState::Handshake;
                conn.subflows.push(Subflow::new(
                    sock,
                    MappingTracker::new(checksum_on),
                    JoinState::Initial,
                    0,
                ));
                conn
            }
            None => {
                // No MP_CAPABLE (stripped or plain peer): regular TCP.
                let local = KeySet::from_key(rng.next_u64());
                let sock =
                    TcpSocket::accept(cfg.tcp.clone(), syn, SeqNum(rng.next_u32()), now, vec![]);
                let mut conn = MptcpConnection::common(cfg, false, local, rng);
                conn.state = ConnState::Fallback;
                conn.subflows.push(Subflow::new(
                    sock,
                    MappingTracker::new(false),
                    JoinState::Initial,
                    0,
                ));
                conn
            }
        }
    }

    fn common(cfg: MptcpConfig, is_client: bool, local: KeySet, rng: SimRng) -> MptcpConnection {
        let snd_start = local.idsn.wrapping_add(1);
        let (snd_buf_cap, rcv_buf_cap) = if cfg.mech.autotune {
            ((64 * 1024).min(cfg.send_buf), (64 * 1024).min(cfg.recv_buf))
        } else {
            (cfg.send_buf, cfg.recv_buf)
        };
        let pm = PathManager::new(cfg.pm.clone());
        MptcpConnection {
            is_client,
            state: ConnState::Handshake,
            rng,
            local,
            remote: None,
            checksum_on: cfg.checksum,
            subflows: Vec::new(),
            next_addr_id: 1,
            pm,
            peer_adverts: HashMap::new(),
            advertised_local: HashMap::new(),
            snd_nxt: snd_start,
            snd_una: snd_start,
            snd_right_edge: snd_start,
            pending: VecDeque::new(),
            pending_bytes: 0,
            sent: BTreeMap::new(),
            sent_bytes: 0,
            reinject: VecDeque::new(),
            snd_buf_cap,
            data_fin_queued: false,
            data_fin_dsn: None,
            data_rto_deadline: None,
            data_rto_backoff: 1,
            last_opp: None,
            rcv_nxt: 0,
            ooo: make_queue(cfg.reorder),
            app_rx: VecDeque::new(),
            app_rx_bytes: 0,
            rcv_buf_cap,
            rcv_fin_dsn: None,
            rcv_eof: false,
            confirmed: false,
            plain_rx_streak: 0,
            abort_reason: None,
            all_failed_since: None,
            events: VecDeque::new(),
            stats: ConnStats::default(),
            telemetry: Recorder::with_event_capacity(cfg.event_capacity),
            tracer: Tracer::new(cfg.trace),
            sched: cfg.scheduler.build(),
            coupled: CoupledState::new(cfg.cc),
            sched_stalled: false,
            poll_cursor: 0,
            mapped_run: Vec::new(),
            ooo_pending: Vec::new(),
            cfg,
        }
    }

    /// Install the configured congestion controller on a subflow socket
    /// (coupled LIA by default; see [`mptcp_tcpstack::CcAlgorithm`]).
    fn install_cc(cfg: &MptcpConfig, sock: &mut TcpSocket) {
        sock.set_cc(cfg.cc.build(cfg.tcp.mss as u32, cfg.tcp.init_cwnd_segs));
    }

    fn set_remote_key(&mut self, key: u64) {
        let ks = KeySet::from_key(key);
        self.rcv_nxt = ks.idsn.wrapping_add(1);
        self.remote = Some(ks);
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// Connection state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Our token (what MP_JOIN SYNs toward us must carry).
    pub fn local_token(&self) -> u32 {
        self.local.token
    }

    /// Is the connection usable for data?
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            ConnState::Established | ConnState::AwaitingConfirm | ConnState::Fallback
        ) && self.subflows.iter().any(|s| s.usable())
    }

    /// Did we fall back to regular TCP?
    pub fn is_fallback(&self) -> bool {
        self.state == ConnState::Fallback
    }

    /// Why the connection aborted, if it did (`None` for a clean close or
    /// a still-live connection).
    pub fn abort_reason(&self) -> Option<AbortReason> {
        self.abort_reason
    }

    /// Stream EOF reached and drained?
    pub fn at_eof(&self) -> bool {
        let fin = if self.state == ConnState::Fallback {
            self.subflows.first().is_some_and(|s| s.sock.stream_fin())
        } else {
            self.rcv_eof
        };
        fin && self.app_rx.is_empty()
    }

    /// Has our DATA_FIN (or fallback FIN) been acknowledged?
    pub fn send_closed(&self) -> bool {
        match self.state {
            ConnState::Fallback => self.subflows.first().is_some_and(|s| s.sock.fin_acked()),
            _ => self.data_fin_dsn.is_some_and(|f| self.snd_una > f),
        }
    }

    /// All subflow sockets closed or dead: nothing further will happen.
    pub fn fully_closed(&self) -> bool {
        self.subflows
            .iter()
            .all(|s| s.dead || s.sock.state().is_closed())
    }

    /// Subflow views (testing / instrumentation).
    pub fn subflows(&self) -> &[Subflow] {
        &self.subflows
    }

    /// Mutable subflow access (test harness fault injection).
    pub fn subflows_mut(&mut self) -> &mut [Subflow] {
        &mut self.subflows
    }

    /// Bytes the sender holds: pending + retained-until-DATA_ACK chunks
    /// (Figure 5a's sender memory).
    pub fn sender_memory(&self) -> usize {
        self.pending_bytes + self.sent_bytes
    }

    /// Bytes the receiver holds: connection out-of-order queue + unread
    /// in-order data + transient subflow buffers (Figure 5b).
    pub fn receiver_memory(&self) -> usize {
        self.ooo.buffered_bytes()
            + self.app_rx_bytes
            + self
                .subflows
                .iter()
                .map(|s| s.sock.recv_buffered())
                .sum::<usize>()
    }

    /// Current connection-level advertised window.
    pub fn rcv_window(&self) -> u32 {
        self.rcv_buf_cap
            .saturating_sub(self.ooo.buffered_bytes() + self.app_rx_bytes) as u32
    }

    /// Current autotuned receive buffer capacity.
    pub fn rcv_buf_capacity(&self) -> usize {
        self.rcv_buf_cap
    }

    /// Snapshot the connection's telemetry: the connection-level recorder
    /// (M1–M4, fallback, data-level timers, joins) merged with the reorder
    /// queue's counters and every subflow socket's recorder (TCP RTOs,
    /// fast retransmits, M4 caps).
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut rec = self.telemetry.clone();
        rec.count_n(CounterId::ReorderInserts, self.ooo.inserts());
        rec.count_n(CounterId::ReorderOps, self.ooo.ops());
        rec.count_n(CounterId::ReorderShortcutHits, self.ooo.shortcut_hits());
        rec.gauge_set(GaugeId::SndBufCap, self.snd_buf_cap as u64);
        rec.gauge_set(GaugeId::RcvBufCap, self.rcv_buf_cap as u64);
        rec.gauge_set(GaugeId::Subflows, self.alive_subflows() as u64);
        rec.gauge_set(
            GaugeId::SendQueueBytes,
            (self.pending_bytes + self.sent_bytes) as u64,
        );
        for sf in &self.subflows {
            rec.absorb(&sf.sock.telemetry);
        }
        rec.snapshot()
    }

    /// Snapshot the time-series trace: the connection-level tracer
    /// (ConnSamples, span events) merged and time-sorted with every
    /// subflow socket's tracer (SubflowSamples, TCP-level spans). Empty
    /// when tracing is disabled.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        let mut snaps = vec![self.tracer.snapshot()];
        for sf in &self.subflows {
            snaps.push(sf.sock.tracer.snapshot());
        }
        TraceSnapshot::merge(snaps)
    }

    /// Record a discrete span event in the trace (no-op when disabled).
    /// `subflow` is an index, or [`SPAN_CONN_LEVEL`] for connection-level.
    fn trace_span(&mut self, now: SimTime, subflow: u32, kind: EventKind) {
        if self.tracer.is_enabled() {
            self.tracer.record(TraceRecord::Span {
                at_ns: now.0,
                subflow,
                kind,
            });
        }
    }

    /// Record one connection-level sample (no-op when disabled).
    fn trace_conn_sample(&mut self, now: SimTime) {
        if !self.tracer.is_enabled() {
            return;
        }
        let rec = TraceRecord::ConnSample {
            at_ns: now.0,
            rwnd: self.rcv_window(),
            data_snd_nxt: self.snd_nxt,
            data_snd_una: self.snd_una,
            data_rcv_nxt: self.rcv_nxt,
            reorder_segs: self.ooo.len() as u64,
            reorder_bytes: self.ooo.buffered_bytes() as u64,
            snd_buf_cap: self.snd_buf_cap as u64,
            rcv_buf_cap: self.rcv_buf_cap as u64,
        };
        self.tracer.record(rec);
    }

    /// Measurement counters with the telemetry snapshot embedded — the
    /// full observable state for reports.
    pub fn conn_stats(&self) -> ConnStats {
        let mut s = self.stats.clone();
        s.telemetry = self.telemetry();
        s
    }

    /// Drain pending events.
    pub fn take_events(&mut self) -> Vec<ConnEvent> {
        self.events.drain(..).collect()
    }

    /// Bytes not yet acknowledged at the data level.
    pub fn data_outstanding(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Room left before the peer's advertised data-level right edge.
    pub fn snd_window_room(&self) -> u64 {
        self.snd_right_edge.saturating_sub(self.snd_nxt)
    }

    // ------------------------------------------------------------------
    // Application API.
    // ------------------------------------------------------------------

    /// Write application data; the outcome says how many bytes were
    /// accepted and via which path (connection send buffer permitting).
    pub fn write(&mut self, data: &[u8]) -> WriteOutcome {
        if self.data_fin_queued || self.state == ConnState::Closed {
            return WriteOutcome::Closed;
        }
        if self.state == ConnState::Fallback {
            let n = self.subflows[0].sock.send(data);
            self.stats.bytes_written += n as u64;
            return WriteOutcome::FellBack(n);
        }
        let space = self
            .snd_buf_cap
            .saturating_sub(self.pending_bytes + self.sent_bytes);
        let take = data.len().min(space);
        if take > 0 {
            self.maybe_grow_sndbuf(take);
            self.pending
                .push_back(Bytes::copy_from_slice(&data[..take]));
            self.pending_bytes += take;
            self.stats.bytes_written += take as u64;
        } else if !data.is_empty() {
            return WriteOutcome::WouldBlock;
        }
        WriteOutcome::Accepted(take)
    }

    /// Read in-order application data.
    pub fn read(&mut self, max: usize) -> ReadOutcome {
        let Some(front) = self.app_rx.front_mut() else {
            return if self.at_eof() {
                ReadOutcome::Eof
            } else if self.state == ConnState::Closed {
                ReadOutcome::Closed
            } else {
                ReadOutcome::WouldBlock
            };
        };
        let out = if front.len() <= max {
            self.app_rx.pop_front().unwrap()
        } else {
            let head = front.slice(..max);
            *front = front.slice(max..);
            head
        };
        self.app_rx_bytes -= out.len();
        self.stats.bytes_delivered += out.len() as u64;
        ReadOutcome::Data(out)
    }

    /// Close the sending direction (DATA_FIN, §3.4).
    pub fn close(&mut self) {
        if self.state == ConnState::Fallback {
            self.subflows[0].sock.close();
        } else {
            self.data_fin_queued = true;
        }
    }

    /// Abort everything.
    pub fn abort(&mut self) {
        for sf in &mut self.subflows {
            if !sf.dead {
                sf.sock.abort();
            }
            // `tick` no longer runs once Closed; a timer left armed here
            // would report a forever-past deadline from `poll_at`.
            sf.probe_at = None;
            sf.progress_at = None;
        }
        self.data_rto_deadline = None;
        self.state = ConnState::Closed;
    }

    /// Abort with a recorded [`AbortReason`], surfaced via
    /// [`MptcpConnection::abort_reason`], telemetry, and the trace.
    pub fn abort_with(&mut self, reason: AbortReason, now: SimTime) {
        if self.state == ConnState::Closed {
            return;
        }
        self.abort_reason.get_or_insert(reason);
        self.all_failed_since = None; // the deadline fired; stop reporting it
        self.telemetry.count(CounterId::ConnAborts);
        let kind = EventKind::ConnAborted {
            code: reason.code(),
        };
        self.telemetry.event(now.0, kind);
        self.trace_span(now, SPAN_CONN_LEVEL, kind);
        self.abort();
    }

    // ------------------------------------------------------------------
    // Subflow management.
    // ------------------------------------------------------------------

    /// Open an additional subflow (MP_JOIN) from `local` to `remote`.
    /// Fails unless MPTCP is established, keys are known, the four-tuple
    /// is new, and the subflow limit has room.
    pub fn open_subflow(
        &mut self,
        local: Endpoint,
        remote: Endpoint,
        now: SimTime,
    ) -> Result<SubflowId, SubflowError> {
        self.open_subflow_with(local, remote, false, now)
    }

    /// [`open_subflow`](MptcpConnection::open_subflow) with an explicit
    /// backup priority: the MP_JOIN carries the B-flag and the subflow
    /// starts in the scheduler's backup tier.
    pub fn open_subflow_with(
        &mut self,
        local: Endpoint,
        remote: Endpoint,
        backup: bool,
        now: SimTime,
    ) -> Result<SubflowId, SubflowError> {
        if self.state != ConnState::Established && self.state != ConnState::AwaitingConfirm {
            return Err(SubflowError::WrongState);
        }
        let Some(rk) = self.remote else {
            return Err(SubflowError::NoRemoteKey);
        };
        // Don't open duplicates.
        let tuple = FourTuple {
            src: local,
            dst: remote,
        };
        if self
            .subflows
            .iter()
            .any(|s| !s.dead && s.sock.tuple() == tuple)
        {
            return Err(SubflowError::DuplicateSubflow);
        }
        if self.alive_subflows() >= self.cfg.max_subflows {
            return Err(SubflowError::SubflowLimit);
        }
        let nonce = self.rng.next_u32();
        let addr_id = self.next_addr_id;
        self.next_addr_id += 1;
        let syn_opts = vec![TcpOption::Mptcp(MptcpOption::MpJoinSyn {
            token: rk.token,
            nonce,
            addr_id,
            backup,
        })];
        let mut sock = TcpSocket::client(
            self.cfg.tcp.clone(),
            tuple,
            SeqNum(self.rng.next_u32()),
            now,
            syn_opts,
        );
        MptcpConnection::install_cc(&self.cfg, &mut sock);
        sock.set_telemetry_tag(self.subflows.len() as u32);
        let mut sf = Subflow::new(
            sock,
            MappingTracker::new(self.checksum_on),
            JoinState::ClientSyn,
            addr_id,
        );
        sf.nonce_local = nonce;
        sf.backup = backup;
        self.subflows.push(sf);
        let id = SubflowId(self.subflows.len() - 1);
        self.telemetry
            .gauge_set(GaugeId::Subflows, self.alive_subflows() as u64);
        Ok(id)
    }

    /// Accept an MP_JOIN SYN addressed to this connection (the endpoint
    /// demuxed it via the token). The error says why validation failed.
    pub fn accept_join(&mut self, syn: &TcpSegment, now: SimTime) -> Result<(), JoinError> {
        if matches!(self.state, ConnState::Fallback | ConnState::Closed) {
            self.reject_join(now, 0);
            return Err(JoinError::WrongState);
        }
        let Some(MptcpOption::MpJoinSyn {
            token,
            nonce,
            addr_id,
            backup,
        }) = syn
            .mptcp_options()
            .find(|m| matches!(m, MptcpOption::MpJoinSyn { .. }))
            .cloned()
        else {
            self.reject_join(now, 0);
            return Err(JoinError::NoJoinOption);
        };
        if token != self.local.token || self.remote.is_none() {
            self.reject_join(now, token);
            return Err(JoinError::UnknownToken);
        }
        if self.alive_subflows() >= self.cfg.max_subflows {
            self.reject_join(now, token);
            return Err(JoinError::SubflowLimit);
        }
        let rk = self.remote.unwrap();
        let nonce_local = self.rng.next_u32();
        let mac = crypto::join_synack_mac(self.local.key, rk.key, nonce, nonce_local);
        let syn_opts = vec![TcpOption::Mptcp(MptcpOption::MpJoinSynAck {
            mac,
            nonce: nonce_local,
            addr_id: 0,
            backup: false,
        })];
        let mut sock = TcpSocket::accept(
            self.cfg.tcp.clone(),
            syn,
            SeqNum(self.rng.next_u32()),
            now,
            syn_opts,
        );
        let _ = sock.take_rx_mptcp(); // MP_JOIN SYN consumed above
        MptcpConnection::install_cc(&self.cfg, &mut sock);
        sock.set_telemetry_tag(self.subflows.len() as u32);
        let mut sf = Subflow::new(
            sock,
            MappingTracker::new(self.checksum_on),
            JoinState::ServerWait,
            addr_id,
        );
        sf.nonce_local = nonce_local;
        sf.nonce_remote = nonce;
        sf.backup = backup;
        self.subflows.push(sf);
        // The peer joined toward this local address: if we had been
        // advertising it, the join is the echo — stop retransmitting.
        self.pm.mark_echoed(syn.tuple.dst.addr);
        self.telemetry
            .gauge_set(GaugeId::Subflows, self.alive_subflows() as u64);
        Ok(())
    }

    fn reject_join(&mut self, now: SimTime, token: u32) {
        self.stats.joins_rejected += 1;
        self.telemetry.count(CounterId::JoinsRejected);
        self.telemetry
            .event(now.0, EventKind::JoinRejected { token });
        self.trace_span(now, SPAN_CONN_LEVEL, EventKind::JoinRejected { token });
    }

    /// Advertise an additional local address to the peer (ADD_ADDR) —
    /// how a multi-homed server invites NATted clients to open subflows
    /// toward its other interfaces (§3.2).
    pub fn advertise_addr(&mut self, addr: u32, port: Option<u16>, now: SimTime) {
        let addr_id = self.next_addr_id;
        self.next_addr_id += 1;
        let opt = TcpOption::Mptcp(MptcpOption::AddAddr(AdvertisedAddr {
            addr_id,
            addr,
            port,
        }));
        if let Some(sf) = self.subflows.iter_mut().find(|s| s.usable()) {
            sf.sock.queue_oneshot_options(vec![opt]);
            self.telemetry.count(CounterId::AddAddrsSent);
            let kind = EventKind::AddAddr {
                addr,
                id: u32::from(addr_id),
                sent: 1,
            };
            self.telemetry.event(now.0, kind);
            self.trace_span(now, SPAN_CONN_LEVEL, kind);
        }
    }

    /// Withdraw an address: peers close subflows using it (§3.4 mobility).
    ///
    /// Local subflows riding the address are torn down too — the address
    /// is gone, they cannot continue. If that was the last live subflow
    /// the connection aborts with [`AbortReason::LastSubflowRemoved`]
    /// instead of stalling silently.
    pub fn remove_addr(&mut self, addr_id: u8, now: SimTime) {
        let opt = TcpOption::Mptcp(MptcpOption::RemoveAddr {
            addr_ids: vec![addr_id],
        });
        // Announce on a subflow that survives the withdrawal when one
        // exists; on the last subflow the RST conveys the teardown anyway.
        let carrier = self
            .subflows
            .iter()
            .position(|s| s.usable() && s.addr_id != addr_id)
            .or_else(|| self.subflows.iter().position(|s| s.usable()));
        if let Some(i) = carrier {
            self.subflows[i].sock.queue_oneshot_options(vec![opt]);
            self.telemetry.count(CounterId::RemoveAddrsSent);
            let kind = EventKind::RemoveAddr {
                id: u32::from(addr_id),
                sent: 1,
            };
            self.telemetry.event(now.0, kind);
            self.trace_span(now, SPAN_CONN_LEVEL, kind);
        }
        self.kill_subflows_by_addr_id(now, addr_id);
    }

    /// Does `tuple` (as seen in an incoming segment) belong to one of our
    /// subflows?
    pub fn owns_tuple(&self, incoming: FourTuple) -> bool {
        self.subflows
            .iter()
            .any(|s| s.sock.tuple() == incoming.reversed())
    }

    // ------------------------------------------------------------------
    // Input path.
    // ------------------------------------------------------------------

    /// Feed a segment belonging to this connection.
    pub fn handle_segment(&mut self, now: SimTime, seg: &TcpSegment) {
        let Some(idx) = self
            .subflows
            .iter()
            .position(|s| s.sock.tuple() == seg.tuple.reversed())
        else {
            return;
        };

        let had_mp = seg.options.iter().any(|o| o.is_mptcp());
        self.subflows[idx].sock.handle_segment(now, seg);

        // §3.3.2: the receive window is interpreted relative to the
        // explicit DATA_ACK it travelled with; track the monotonic right
        // edge. Segments without a DATA_ACK (handshake, pre-confirmation)
        // anchor the window at the current cumulative DATA_ACK instead —
        // safe because `snd_una` is always at or behind the peer's real
        // ack point.
        if self.state != ConnState::Fallback && seg.flags.ack {
            let dss_ack = seg.mptcp_options().find_map(|m| match m {
                MptcpOption::Dss {
                    data_ack: Some(a), ..
                } => Some(*a),
                _ => None,
            });
            let base = match dss_ack {
                Some(a) => Some(infer_full_dsn(self.snd_una, a)),
                // Before confirmation the handshake segments carry no DSS
                // yet their window must open the connection; afterwards a
                // DSS-less segment is either fallen-back TCP (no data-level
                // window) or a middlebox forgery (a pro-active acker's
                // 1 MB-window ACKs must not inflate the data-level edge).
                None if !self.confirmed => Some(self.snd_una),
                None => None,
            };
            if let Some(base) = base {
                let edge = base.wrapping_add(u64::from(seg.window));
                if edge > self.snd_right_edge {
                    self.snd_right_edge = edge;
                }
            }
        }

        self.after_input(now, idx);

        // Handshake confirmation / fallback decision (§3.1): "If the
        // first non-SYN packet received by the server does not contain an
        // MPTCP option, the server must assume the path is not
        // MPTCP-capable" — applied symmetrically on both sides, but
        // hardened to a short streak so a single proxy-forged option-less
        // ACK cannot trigger a spurious fallback (a real option-stripping
        // path strips *every* segment).
        // The active opener cannot use this rule: a pro-active-acking
        // proxy forges option-less ACKs that always arrive *before* the
        // peer's genuine option-bearing segments. The client instead falls
        // back on timer evidence (see `on_data_rto`): data repeatedly
        // unacknowledged at the data level with no MPTCP option ever seen.
        if !seg.flags.syn && idx == 0 && !self.confirmed && !self.is_client {
            if had_mp {
                self.plain_rx_streak = 0;
            } else if matches!(
                self.state,
                ConnState::AwaitingConfirm | ConnState::Established
            ) && self.subflows[0].sock.is_established()
            {
                self.plain_rx_streak += 1;
                if self.plain_rx_streak >= 3 {
                    self.enter_fallback(FallbackCause::OptionStripped, now);
                }
            }
        }
    }

    /// Feed a batch of segments that arrived together (one socket drain).
    ///
    /// On an established, confirmed connection this feeds every segment
    /// into its subflow socket first and runs the post-input pipeline
    /// (mapping translation, reorder, ack state) once per touched
    /// subflow, so N datagrams cost one stream drain instead of N.
    /// Outside steady state (handshake, fallback probation, single
    /// segment) it degrades to per-segment [`handle_segment`] calls,
    /// which keeps the fallback-streak and confirmation logic exact.
    pub fn handle_segments(&mut self, now: SimTime, segs: &[TcpSegment]) {
        let batch_ok = segs.len() > 1 && self.state == ConnState::Established && self.confirmed;
        if !batch_ok {
            for seg in segs {
                self.handle_segment(now, seg);
            }
            return;
        }
        let mut touched: Vec<usize> = Vec::with_capacity(4);
        for seg in segs {
            let Some(idx) = self
                .subflows
                .iter()
                .position(|s| s.sock.tuple() == seg.tuple.reversed())
            else {
                continue;
            };
            self.subflows[idx].sock.handle_segment(now, seg);
            // Same data-level right-edge tracking as `handle_segment`.
            // `snd_una` may be stale mid-batch (it advances in
            // `after_input`), but `infer_full_dsn` only mis-anchors on a
            // drift of ≥ 2^31 bytes — impossible within one drain.
            if seg.flags.ack {
                let dss_ack = seg.mptcp_options().find_map(|m| match m {
                    MptcpOption::Dss {
                        data_ack: Some(a), ..
                    } => Some(*a),
                    _ => None,
                });
                if let Some(a) = dss_ack {
                    let edge = infer_full_dsn(self.snd_una, a).wrapping_add(u64::from(seg.window));
                    if edge > self.snd_right_edge {
                        self.snd_right_edge = edge;
                    }
                }
            }
            if !touched.contains(&idx) {
                touched.push(idx);
            }
        }
        for idx in touched {
            self.after_input(now, idx);
        }
    }

    fn after_input(&mut self, now: SimTime, idx: usize) {
        self.process_handshake(now, idx);
        self.process_rx_options(now, idx);
        self.drain_subflow_stream(now, idx);
        self.reap_dead(now);
        self.update_ack_state(now);
    }

    /// Client-side establishment of the first subflow.
    fn process_handshake(&mut self, now: SimTime, idx: usize) {
        if self.state != ConnState::Handshake {
            return;
        }
        let sf = &mut self.subflows[idx];
        if !sf.sock.is_established() {
            if sf.sock.is_error() {
                self.state = ConnState::Closed;
            }
            return;
        }
        if self.is_client {
            // Look for the server's MP_CAPABLE in the harvested options.
            let opts = sf.sock.take_rx_mptcp();
            let mut server_key = None;
            for o in &opts {
                if let MptcpOption::MpCapable {
                    sender_key,
                    checksum_required,
                    ..
                } = o
                {
                    server_key = Some((*sender_key, *checksum_required));
                }
            }
            match server_key {
                Some((key, ck)) => {
                    self.set_remote_key(key);
                    self.checksum_on = self.checksum_on || ck;
                    self.state = ConnState::AwaitingConfirm;
                    // Third ACK (and every segment until confirmed)
                    // carries MP_CAPABLE with both keys (§3.1).
                    let carry = vec![TcpOption::Mptcp(MptcpOption::MpCapable {
                        version: 0,
                        checksum_required: self.checksum_on,
                        sender_key: self.local.key,
                        receiver_key: Some(key),
                    })];
                    self.subflows[idx].sock.set_carry_options(carry);
                    self.subflows[idx].sock.request_ack();
                    self.events.push_back(ConnEvent::SubflowUp(idx));
                }
                None => {
                    // SYN/ACK without MP_CAPABLE: fall back (§3.1).
                    self.enter_fallback(FallbackCause::OptionStripped, now);
                }
            }
        } else {
            // Server: established; stay unconfirmed until the first
            // non-SYN segment proves the client received our key.
            self.state = ConnState::AwaitingConfirm;
            self.events.push_back(ConnEvent::SubflowUp(idx));
        }
    }

    /// Process harvested MPTCP options on an established connection.
    fn process_rx_options(&mut self, now: SimTime, idx: usize) {
        if matches!(self.state, ConnState::Handshake | ConnState::Closed) {
            return;
        }
        let opts = self.subflows[idx].sock.take_rx_mptcp();
        if self.state == ConnState::Fallback {
            return; // ignore MPTCP signalling once fallen back
        }
        for o in opts {
            match o {
                MptcpOption::MpCapable { sender_key, .. } => {
                    // Server learning the client still speaks MPTCP
                    // (third-ACK echo); key already known from the SYN.
                    if self.remote.is_none() {
                        self.set_remote_key(sender_key);
                    }
                    self.confirm_established(now);
                }
                MptcpOption::Dss {
                    data_ack,
                    mapping,
                    data_fin,
                } => {
                    self.confirm_established(now);
                    // The server only speaks DSS on a join subflow after
                    // validating the client's HMAC: stop carrying it.
                    if self.subflows[idx].join == JoinState::ClientEstablished {
                        self.subflows[idx].join = JoinState::Active;
                    }
                    if let Some(m) = mapping {
                        if data_fin {
                            self.rcv_fin_dsn = Some(m.dsn + u64::from(m.len));
                        }
                        if m.len > 0 {
                            self.subflows[idx].tracker.add(&m);
                        }
                    } else if data_fin {
                        // DATA_FIN without mapping: FIN at current edge.
                        self.rcv_fin_dsn.get_or_insert(self.rcv_nxt);
                    }
                    if let Some(a) = data_ack {
                        let full = infer_full_dsn(self.snd_una.max(1), a);
                        self.on_data_ack(now, full);
                    }
                }
                MptcpOption::AddAddr(a) => {
                    // Idempotency: ADD_ADDR is advertised repeatedly for
                    // reliability, so a repeat of a known (id, address)
                    // pair must not re-count, re-fire the event, or
                    // trigger a duplicate join. A different address under
                    // a known id replaces the mapping.
                    if self.peer_adverts.get(&a.addr_id) == Some(&(a.addr, a.port)) {
                        continue;
                    }
                    self.peer_adverts.insert(a.addr_id, (a.addr, a.port));
                    self.telemetry.count(CounterId::AddAddrsReceived);
                    let kind = EventKind::AddAddr {
                        addr: a.addr,
                        id: u32::from(a.addr_id),
                        sent: 0,
                    };
                    self.telemetry.event(now.0, kind);
                    self.trace_span(now, SPAN_CONN_LEVEL, kind);
                    let actions = self.pm.on_event(
                        now,
                        PmEvent::AddrAdvertised {
                            addr_id: a.addr_id,
                            addr: a.addr,
                            port: a.port,
                        },
                    );
                    self.events.push_back(ConnEvent::PeerAddr(a));
                    self.pm_apply(now, actions);
                }
                MptcpOption::RemoveAddr { addr_ids } => {
                    for id in addr_ids {
                        // Reject withdrawals of ids we never learned —
                        // a stray or forged REMOVE_ADDR must not touch
                        // subflow state.
                        let advertised = self.peer_adverts.remove(&id);
                        let known = advertised.is_some()
                            || self.subflows.iter().any(|s| !s.dead && s.addr_id == id);
                        if !known {
                            self.telemetry.count(CounterId::RemoveAddrUnknown);
                            let kind = EventKind::RemoveAddrUnknown { id: u32::from(id) };
                            self.telemetry.event(now.0, kind);
                            self.trace_span(now, SPAN_CONN_LEVEL, kind);
                            continue;
                        }
                        self.telemetry.count(CounterId::RemoveAddrsReceived);
                        let kind = EventKind::RemoveAddr {
                            id: u32::from(id),
                            sent: 0,
                        };
                        self.telemetry.event(now.0, kind);
                        self.trace_span(now, SPAN_CONN_LEVEL, kind);
                        // Affected subflows: those the peer opened under
                        // this id, plus any we opened toward the
                        // withdrawn address.
                        let gone = advertised.map(|(addr, _)| addr);
                        let affected: Vec<usize> = self
                            .subflows
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| {
                                !s.dead
                                    && (s.addr_id == id || Some(s.sock.tuple().dst.addr) == gone)
                            })
                            .map(|(i, _)| i)
                            .collect();
                        let actions = self.pm.on_event(
                            now,
                            PmEvent::AddrWithdrawn {
                                addr_id: id,
                                affected,
                            },
                        );
                        self.pm_apply(now, actions);
                    }
                }
                MptcpOption::MpJoinSynAck { mac, nonce, .. } => {
                    self.handle_join_synack(now, idx, mac, nonce);
                }
                MptcpOption::MpJoinAck { mac } => {
                    self.handle_join_ack(now, idx, mac);
                }
                MptcpOption::MpJoinSyn { .. } => {
                    // Handled at accept_join; a duplicate SYN's option.
                }
                MptcpOption::MpFail { .. } => {
                    if self.alive_subflows() <= 1 {
                        self.enter_fallback(FallbackCause::MpFail, now);
                    }
                }
                MptcpOption::FastClose { .. } => {
                    self.abort_with(AbortReason::PeerFastClose, now);
                }
                MptcpOption::MpPrio { backup, .. } => {
                    self.subflows[idx].backup = backup;
                }
            }
        }
    }

    fn handle_join_synack(&mut self, now: SimTime, idx: usize, mac: u64, nonce_remote: u32) {
        let sf = &mut self.subflows[idx];
        if sf.join != JoinState::ClientSyn {
            return;
        }
        let Some(rk) = self.remote else { return };
        let expect = crypto::join_synack_mac(rk.key, self.local.key, sf.nonce_local, nonce_remote);
        if mac != expect {
            sf.sock.abort();
            sf.dead = true;
            self.stats.joins_rejected += 1;
            self.stats.subflow_resets += 1;
            self.telemetry.count(CounterId::JoinsRejected);
            self.telemetry.count(CounterId::SubflowResets);
            self.telemetry
                .event(now.0, EventKind::JoinRejected { token: rk.token });
            self.telemetry.event(
                now.0,
                EventKind::SubflowReset {
                    subflow: idx as u32,
                },
            );
            self.trace_span(
                now,
                idx as u32,
                EventKind::SubflowReset {
                    subflow: idx as u32,
                },
            );
            return;
        }
        let sf = &mut self.subflows[idx];
        sf.nonce_remote = nonce_remote;
        sf.join = JoinState::ClientEstablished;
        // Third ACK carries our full HMAC until the server confirms (by
        // sending any DSS on this subflow).
        let ack_mac = crypto::join_ack_mac(self.local.key, rk.key, sf.nonce_local, nonce_remote);
        sf.sock
            .set_carry_options(vec![TcpOption::Mptcp(MptcpOption::MpJoinAck {
                mac: ack_mac,
            })]);
        sf.sock.request_ack();
        self.events.push_back(ConnEvent::SubflowUp(idx));
        self.seed_new_subflow();
    }

    /// Under the redundant scheduler a subflow that joins mid-stream owes
    /// copies of everything still outstanding: chunks pushed while it was
    /// handshaking were duplicated only across the pre-existing paths.
    /// Queue them for reinjection — the scheduler places each copy away
    /// from the path already carrying it, so the newcomer catches up and
    /// the every-chunk-on-every-path invariant holds from its first RTT.
    fn seed_new_subflow(&mut self) {
        if self.cfg.scheduler != crate::sched::SchedulerKind::Redundant {
            return;
        }
        for &dsn in self.sent.keys() {
            if !self.reinject.contains(&dsn) {
                self.reinject.push_back(dsn);
            }
        }
    }

    fn handle_join_ack(&mut self, now: SimTime, idx: usize, mac: [u8; 20]) {
        let sf = &mut self.subflows[idx];
        if sf.join != JoinState::ServerWait {
            return;
        }
        let Some(rk) = self.remote else { return };
        let expect = crypto::join_ack_mac(rk.key, self.local.key, sf.nonce_remote, sf.nonce_local);
        if mac != expect {
            sf.sock.abort();
            sf.dead = true;
            self.stats.joins_rejected += 1;
            self.stats.subflow_resets += 1;
            self.telemetry.count(CounterId::JoinsRejected);
            self.telemetry.count(CounterId::SubflowResets);
            self.telemetry.event(
                now.0,
                EventKind::JoinRejected {
                    token: self.local.token,
                },
            );
            self.telemetry.event(
                now.0,
                EventKind::SubflowReset {
                    subflow: idx as u32,
                },
            );
            self.trace_span(
                now,
                idx as u32,
                EventKind::SubflowReset {
                    subflow: idx as u32,
                },
            );
            return;
        }
        let sf = &mut self.subflows[idx];
        sf.join = JoinState::Active;
        self.events.push_back(ConnEvent::SubflowUp(idx));
        self.seed_new_subflow();
    }

    fn kill_subflows_by_addr_id(&mut self, now: SimTime, addr_id: u8) {
        let mut any_killed = false;
        for i in 0..self.subflows.len() {
            if self.subflows[i].addr_id == addr_id && !self.subflows[i].dead {
                self.subflows[i].sock.abort();
                self.subflows[i].dead = true;
                any_killed = true;
                self.events.push_back(ConnEvent::SubflowDown(i));
            }
        }
        self.reinject_chunks_of_dead(now);
        // Address removal that took out the last live subflow: there is no
        // path left to recover on, so fail loudly rather than stall.
        if any_killed && self.alive_subflows() == 0 {
            self.abort_with(AbortReason::LastSubflowRemoved, now);
        }
    }

    // ------------------------------------------------------------------
    // Path-manager integration: the PM decides, the connection executes.
    // ------------------------------------------------------------------

    /// The path manager's live state (admin plane, tests).
    pub fn path_manager(&self) -> &PathManager {
        &self.pm
    }

    /// MPTCP confirmed on this connection; on the first confirmation the
    /// path manager learns the primary endpoints and starts advertising
    /// and pairing.
    fn confirm_established(&mut self, now: SimTime) {
        self.confirmed = true;
        if self.state == ConnState::AwaitingConfirm {
            self.state = ConnState::Established;
            let t = self.subflows[0].sock.tuple();
            let actions = self.pm.on_event(
                now,
                PmEvent::Established {
                    local: t.src,
                    remote: t.dst,
                },
            );
            self.pm_apply(now, actions);
        }
    }

    /// Execute a batch of path-manager decisions.
    fn pm_apply(&mut self, now: SimTime, actions: Vec<PmAction>) {
        for act in actions {
            match act {
                PmAction::OpenSubflow {
                    local,
                    remote,
                    backup,
                } => {
                    if !self.cfg.auto_join {
                        continue; // the owner opens subflows manually
                    }
                    let kind = EventKind::PmOpenSubflow {
                        local: local.addr,
                        remote: remote.addr,
                        backup: u32::from(backup),
                    };
                    self.telemetry.event(now.0, kind);
                    self.trace_span(now, SPAN_CONN_LEVEL, kind);
                    if self.open_subflow_with(local, remote, backup, now).is_ok() {
                        self.telemetry.count(CounterId::PmSubflowsOpened);
                    }
                }
                PmAction::Advertise { addr, port } => {
                    self.pm_send_advert(now, addr, port);
                }
                PmAction::CloseSubflow { subflow } => {
                    self.close_subflow(now, subflow);
                }
                PmAction::PromoteBackup { subflow } => {
                    self.promote_backup(now, subflow);
                }
            }
        }
    }

    /// Send (or retransmit) an ADD_ADDR for `addr` with a stable addr_id.
    fn pm_send_advert(&mut self, now: SimTime, addr: u32, port: Option<u16>) {
        let (addr_id, retx) = match self.advertised_local.get(&addr) {
            Some(&id) => (id, true),
            None => {
                let id = self.next_addr_id;
                self.next_addr_id += 1;
                self.advertised_local.insert(addr, id);
                (id, false)
            }
        };
        let opt = TcpOption::Mptcp(MptcpOption::AddAddr(AdvertisedAddr {
            addr_id,
            addr,
            port,
        }));
        if let Some(sf) = self.subflows.iter_mut().find(|s| s.usable()) {
            sf.sock.queue_oneshot_options(vec![opt]);
            if retx {
                self.telemetry.count(CounterId::AddAddrRetransmits);
            } else {
                self.telemetry.count(CounterId::AddAddrsSent);
            }
            let kind = EventKind::PmAdvertise {
                addr,
                id: u32::from(addr_id),
            };
            self.telemetry.event(now.0, kind);
            self.trace_span(now, SPAN_CONN_LEVEL, kind);
        }
    }

    /// Tear down one subflow on PM orders (address withdrawn under it),
    /// re-injecting its retained chunks; aborts the connection if it was
    /// the last one standing.
    fn close_subflow(&mut self, now: SimTime, idx: usize) {
        if idx >= self.subflows.len() || self.subflows[idx].dead {
            return;
        }
        self.subflows[idx].sock.abort();
        self.subflows[idx].dead = true;
        self.events.push_back(ConnEvent::SubflowDown(idx));
        self.reinject_chunks_of_dead(now);
        if self.alive_subflows() == 0 {
            self.abort_with(AbortReason::LastSubflowRemoved, now);
        }
    }

    /// Clear a subflow's backup priority and tell the peer via MP_PRIO —
    /// the handover moment: the pre-opened backup becomes the workhorse.
    fn promote_backup(&mut self, now: SimTime, idx: usize) {
        if idx >= self.subflows.len() || self.subflows[idx].dead || !self.subflows[idx].backup {
            return;
        }
        self.subflows[idx].backup = false;
        let addr_id = self.subflows[idx].addr_id;
        self.subflows[idx]
            .sock
            .queue_oneshot_options(vec![TcpOption::Mptcp(MptcpOption::MpPrio {
                backup: false,
                addr_id: Some(addr_id),
            })]);
        self.telemetry.count(CounterId::PmBackupPromotions);
        let kind = EventKind::PmBackupPromoted {
            subflow: idx as u32,
        };
        self.telemetry.event(now.0, kind);
        self.trace_span(now, idx as u32, kind);
    }

    /// Live backup-priority subflows other than `except`, in index order
    /// (the PM's promotion candidates).
    fn backup_candidates(&self, except: usize) -> Vec<usize> {
        self.subflows
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                *i != except && s.usable() && s.backup && s.path_state != PathState::Failed
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// A local address went away (interface down, §3.4 mobility): tell
    /// the peer via REMOVE_ADDR on a surviving subflow, tear down the
    /// subflows riding it, and let the path manager migrate (promote a
    /// pre-opened backup).
    pub fn local_addr_down(&mut self, addr: u32, now: SimTime) {
        if matches!(self.state, ConnState::Closed) {
            return;
        }
        let affected: Vec<usize> = self
            .subflows
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.dead && s.sock.tuple().src.addr == addr)
            .map(|(i, _)| i)
            .collect();
        if self.state != ConnState::Fallback && !affected.is_empty() {
            let mut ids: Vec<u8> = affected.iter().map(|&i| self.subflows[i].addr_id).collect();
            ids.sort_unstable();
            ids.dedup();
            let carrier = self
                .subflows
                .iter()
                .position(|s| s.usable() && s.sock.tuple().src.addr != addr);
            if let Some(c) = carrier {
                self.subflows[c]
                    .sock
                    .queue_oneshot_options(vec![TcpOption::Mptcp(MptcpOption::RemoveAddr {
                        addr_ids: ids.clone(),
                    })]);
                for id in ids {
                    self.telemetry.count(CounterId::RemoveAddrsSent);
                    let kind = EventKind::RemoveAddr {
                        id: u32::from(id),
                        sent: 1,
                    };
                    self.telemetry.event(now.0, kind);
                    self.trace_span(now, SPAN_CONN_LEVEL, kind);
                }
            }
        }
        let backups = match affected.first() {
            Some(_) => {
                let aff = affected.clone();
                self.subflows
                    .iter()
                    .enumerate()
                    .filter(|(i, s)| {
                        !aff.contains(i)
                            && s.usable()
                            && s.backup
                            && s.path_state != PathState::Failed
                    })
                    .map(|(i, _)| i)
                    .collect()
            }
            None => Vec::new(),
        };
        let actions = self.pm.on_event(
            now,
            PmEvent::LocalAddrDown {
                addr,
                affected,
                backups,
            },
        );
        self.pm_apply(now, actions);
    }

    /// A local address came (back) up: the path manager re-advertises it
    /// if it is a signal endpoint.
    pub fn local_addr_up(&mut self, addr: u32, now: SimTime) {
        if matches!(self.state, ConnState::Closed | ConnState::Fallback) {
            return;
        }
        let actions = self.pm.on_event(now, PmEvent::LocalAddrUp { addr });
        self.pm_apply(now, actions);
    }

    fn on_data_ack(&mut self, _now: SimTime, ack: u64) {
        if ack <= self.snd_una {
            return;
        }
        let ack = ack.min(self.snd_nxt);
        // Free retained chunks (§3.3.5). A chunk straddling the ack keeps
        // its unacknowledged tail — a mid-chunk DATA_ACK (content-length-
        // changing middleboxes cause these) must not discard bytes the
        // receiver never got.
        let keys: Vec<u64> = self.sent.range(..ack).map(|(&k, _)| k).collect();
        for k in keys {
            if let Some(c) = self.sent.remove(&k) {
                self.sent_bytes -= c.data.len();
                let end = k + c.data.len() as u64;
                if end > ack {
                    let cut = (ack - k) as usize;
                    let tail = c.data.slice(cut..);
                    self.sent_bytes += tail.len();
                    self.sent.insert(
                        ack,
                        SentChunk {
                            data: tail,
                            subflow: c.subflow,
                        },
                    );
                }
            }
        }
        self.snd_una = ack;
        self.data_rto_backoff = 1;
        self.data_rto_deadline = None; // re-armed on next poll if needed
        self.reinject.retain(|&d| d >= ack);
    }

    /// Pull in-order subflow bytes, translate through mappings, and place
    /// them in the connection-level receive path.
    ///
    /// Consecutive mapped pieces are accumulated into `mapped_run` and
    /// delivered together: a drain of N datagrams then costs one reorder
    /// walk (via [`OooQueue::insert_batch`]) instead of N.
    fn drain_subflow_stream(&mut self, now: SimTime, idx: usize) {
        loop {
            let piece = self.subflows[idx].sock.read_stream(64 * 1024);
            let Some((off0, bytes)) = piece else { break };
            if self.state == ConnState::Fallback {
                self.flush_mapped_run(now, idx);
                self.deliver_raw(bytes);
                continue;
            }
            let consumed = self.subflows[idx].tracker.consume(off0, bytes);
            for c in consumed {
                match c {
                    Consumed::Mapped { dsn, data } => self.mapped_run.push((dsn, data)),
                    Consumed::ChecksumFail { dsn, data } => {
                        self.flush_mapped_run(now, idx);
                        self.on_checksum_fail(now, idx, dsn, data);
                    }
                    Consumed::Unmapped { data } => {
                        self.flush_mapped_run(now, idx);
                        self.on_unmapped(now, idx, data);
                    }
                }
            }
        }
        self.flush_mapped_run(now, idx);
        self.check_data_fin();
    }

    /// Dispatch the accumulated mapped run. A single piece takes the
    /// scalar [`receive_data`] path (byte-identical behaviour, and the
    /// common case under the simulator's one-segment delivery).
    fn flush_mapped_run(&mut self, now: SimTime, idx: usize) {
        match self.mapped_run.len() {
            0 => {}
            1 => {
                let (dsn, data) = self.mapped_run.pop().expect("len checked");
                self.receive_data(now, dsn, data, idx);
            }
            _ => self.receive_mapped_run(now, idx),
        }
    }

    /// Run-oriented equivalent of calling [`receive_data`] per piece:
    /// duplicate trimming and in-order delivery are identical, but
    /// out-of-order pieces are staged in `ooo_pending` and inserted in
    /// one [`OooQueue::insert_batch`] walk. The staged batch is flushed
    /// before any in-order piece drains the queue, so `rcv_nxt`,
    /// `app_rx`, and duplicate accounting evolve exactly as they would
    /// under sequential calls.
    fn receive_mapped_run(&mut self, now: SimTime, idx: usize) {
        let mut run = std::mem::take(&mut self.mapped_run);
        for (dsn, data) in run.drain(..) {
            let end = dsn + data.len() as u64;
            if end <= self.rcv_nxt {
                self.stats.dup_bytes += data.len() as u64;
                self.telemetry
                    .count_n(CounterId::DupDataBytes, data.len() as u64);
                continue;
            }
            let (dsn, data) = if dsn < self.rcv_nxt {
                let cut = (self.rcv_nxt - dsn) as usize;
                self.stats.dup_bytes += cut as u64;
                self.telemetry.count_n(CounterId::DupDataBytes, cut as u64);
                (self.rcv_nxt, data.slice(cut..))
            } else {
                (dsn, data)
            };
            if dsn > self.rcv_nxt {
                self.ooo_pending.push((dsn, data, idx));
                continue;
            }
            // In-order: anything staged so far must land in the queue
            // first so the pop_ready drain below can see it.
            self.flush_ooo_pending(now);
            self.rcv_nxt = dsn + data.len() as u64;
            self.deliver_raw(data);
            let mut popped = false;
            while let Some((d, b)) = self.ooo.pop_ready(self.rcv_nxt) {
                debug_assert_eq!(d, self.rcv_nxt);
                self.rcv_nxt = d + b.len() as u64;
                self.deliver_raw(b);
                popped = true;
            }
            if popped {
                self.telemetry
                    .gauge_set(GaugeId::OfoQueueSegs, self.ooo.len() as u64);
                self.telemetry
                    .gauge_set(GaugeId::OfoQueueBytes, self.ooo.buffered_bytes() as u64);
            }
        }
        self.flush_ooo_pending(now);
        self.mapped_run = run; // keep the capacity for the next drain
    }

    /// Batched counterpart of the `dsn > rcv_nxt` arm of
    /// [`receive_data`]: one queue walk for the staged pieces, then the
    /// same high-water event and gauge updates against the post-insert
    /// queue state.
    fn flush_ooo_pending(&mut self, now: SimTime) {
        if self.ooo_pending.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.ooo_pending);
        self.ooo.insert_batch(&mut pending);
        self.ooo_pending = pending; // drained; keep the capacity
        let segs = self.ooo.len() as u64;
        let bytes = self.ooo.buffered_bytes() as u64;
        if segs > self.telemetry.gauge(GaugeId::OfoQueueSegs).max {
            self.telemetry
                .event(now.0, EventKind::ReorderHighWater { segs, bytes });
            self.trace_span(
                now,
                SPAN_CONN_LEVEL,
                EventKind::ReorderHighWater { segs, bytes },
            );
        }
        self.telemetry.gauge_set(GaugeId::OfoQueueSegs, segs);
        self.telemetry.gauge_set(GaugeId::OfoQueueBytes, bytes);
    }

    fn deliver_raw(&mut self, data: Bytes) {
        self.app_rx_bytes += data.len();
        self.app_rx.push_back(data);
    }

    fn receive_data(&mut self, now: SimTime, dsn: u64, data: Bytes, subflow: usize) {
        let end = dsn + data.len() as u64;
        if end <= self.rcv_nxt {
            self.stats.dup_bytes += data.len() as u64;
            self.telemetry
                .count_n(CounterId::DupDataBytes, data.len() as u64);
            return;
        }
        let (dsn, data) = if dsn < self.rcv_nxt {
            let cut = (self.rcv_nxt - dsn) as usize;
            self.stats.dup_bytes += cut as u64;
            self.telemetry.count_n(CounterId::DupDataBytes, cut as u64);
            (self.rcv_nxt, data.slice(cut..))
        } else {
            (dsn, data)
        };
        if dsn > self.rcv_nxt {
            self.ooo.insert(dsn, data, subflow);
            let segs = self.ooo.len() as u64;
            let bytes = self.ooo.buffered_bytes() as u64;
            if segs > self.telemetry.gauge(GaugeId::OfoQueueSegs).max {
                self.telemetry
                    .event(now.0, EventKind::ReorderHighWater { segs, bytes });
                self.trace_span(
                    now,
                    SPAN_CONN_LEVEL,
                    EventKind::ReorderHighWater { segs, bytes },
                );
            }
            self.telemetry.gauge_set(GaugeId::OfoQueueSegs, segs);
            self.telemetry.gauge_set(GaugeId::OfoQueueBytes, bytes);
            return;
        }
        // Fast path: in-order at the data level.
        self.rcv_nxt = dsn + data.len() as u64;
        self.deliver_raw(data);
        let mut popped = false;
        while let Some((d, b)) = self.ooo.pop_ready(self.rcv_nxt) {
            debug_assert_eq!(d, self.rcv_nxt);
            self.rcv_nxt = d + b.len() as u64;
            self.deliver_raw(b);
            popped = true;
        }
        if popped {
            self.telemetry
                .gauge_set(GaugeId::OfoQueueSegs, self.ooo.len() as u64);
            self.telemetry
                .gauge_set(GaugeId::OfoQueueBytes, self.ooo.buffered_bytes() as u64);
        }
    }

    fn check_data_fin(&mut self) {
        if !self.rcv_eof && self.rcv_fin_dsn == Some(self.rcv_nxt) {
            self.rcv_eof = true;
            self.rcv_nxt += 1; // the DATA_FIN occupies one sequence number
        }
    }

    fn on_checksum_fail(&mut self, now: SimTime, idx: usize, dsn: u64, data: Bytes) {
        self.stats.checksum_failures += 1;
        self.telemetry.count(CounterId::ChecksumFailures);
        self.telemetry.event(
            now.0,
            EventKind::ChecksumFail {
                subflow: idx as u32,
                dsn,
            },
        );
        self.trace_span(
            now,
            idx as u32,
            EventKind::ChecksumFail {
                subflow: idx as u32,
                dsn,
            },
        );
        if self.alive_subflows() > 1 {
            // §3.3.6: terminate the offending subflow; the transfer
            // continues on the others after re-injection.
            self.subflows[idx]
                .sock
                .queue_oneshot_options(vec![TcpOption::Mptcp(MptcpOption::MpFail {
                    dsn: self.rcv_nxt,
                })]);
            self.subflows[idx].sock.abort();
            self.subflows[idx].dead = true;
            self.stats.subflow_resets += 1;
            self.telemetry.count(CounterId::SubflowResets);
            self.telemetry.event(
                now.0,
                EventKind::SubflowReset {
                    subflow: idx as u32,
                },
            );
            self.trace_span(
                now,
                idx as u32,
                EventKind::SubflowReset {
                    subflow: idx as u32,
                },
            );
            self.events.push_back(ConnEvent::SubflowDown(idx));
            self.reinject_chunks_of_dead(now);
        } else {
            // Only subflow: fall back to regular TCP, letting the
            // middlebox rewrite as it wishes; the modified bytes continue
            // the stream.
            self.enter_fallback(FallbackCause::ChecksumFail, now);
            self.deliver_raw(data);
        }
    }

    fn on_unmapped(&mut self, now: SimTime, idx: usize, data: Bytes) {
        if self.state == ConnState::Fallback {
            self.deliver_raw(data);
            return;
        }
        if self.alive_subflows() == 1 && self.subflows[idx].tracker.mappings_received == 0 {
            // Mid-stream option stripping on the only subflow: infinite
            // mapping / fallback (§3.3.6, §4.1).
            self.enter_fallback(FallbackCause::OptionStripped, now);
            self.deliver_raw(data);
        }
        // Otherwise: drop; the subflow has acked these bytes but they are
        // not DATA_ACKed, so the sender re-injects them (§3.3.5).
    }

    fn enter_fallback(&mut self, cause: FallbackCause, now: SimTime) {
        if self.state == ConnState::Fallback {
            return;
        }
        self.state = ConnState::Fallback;
        self.telemetry.count(CounterId::Fallbacks);
        self.telemetry.event(now.0, EventKind::Fallback { cause });
        self.trace_span(now, SPAN_CONN_LEVEL, EventKind::Fallback { cause });
        self.events.push_back(ConnEvent::FellBack);
        // Stop MPTCP signalling; plain TCP from here. The failure detector
        // stops with it — clear its timers so they cannot pin `poll_at`.
        for sf in &mut self.subflows {
            sf.sock.set_carry_options(Vec::new());
            sf.sock.set_window_override(None);
            sf.path_state = PathState::Active;
            sf.probe_at = None;
            sf.progress_at = None;
        }
        self.all_failed_since = None;
        // Data already handed to subflow 0 is delivered by subflow
        // reliability; connection-level retransmission state is void.
        self.sent.clear();
        self.sent_bytes = 0;
        self.reinject.clear();
        self.data_rto_deadline = None;
        // Unsent pending data continues as plain writes.
        let pending: Vec<Bytes> = self.pending.drain(..).collect();
        self.pending_bytes = 0;
        for p in pending {
            self.subflows[0].sock.send_chunk(p, Vec::new());
        }
        if self.data_fin_queued {
            self.subflows[0].sock.close();
        }
    }

    fn alive_subflows(&self) -> usize {
        self.subflows.iter().filter(|s| !s.dead).count()
    }

    fn reap_dead(&mut self, now: SimTime) {
        let mut any_died = false;
        for i in 0..self.subflows.len() {
            if !self.subflows[i].dead && self.subflows[i].sock.is_error() {
                self.subflows[i].dead = true;
                any_died = true;
                self.events.push_back(ConnEvent::SubflowDown(i));
            }
        }
        if any_died {
            self.reinject_chunks_of_dead(now);
            if self.alive_subflows() == 0 {
                self.state = ConnState::Closed;
            }
        }
    }

    /// Queue chunks that were riding dead subflows for re-injection on
    /// live ones — the robustness goal: "if a subflow fails, the
    /// connection must continue as long as another subflow has
    /// connectivity".
    fn reinject_chunks_of_dead(&mut self, _now: SimTime) {
        if self.state == ConnState::Fallback {
            return;
        }
        let dead: Vec<usize> = self
            .subflows
            .iter()
            .enumerate()
            .filter(|(_, s)| s.dead)
            .map(|(i, _)| i)
            .collect();
        for (&dsn, chunk) in &self.sent {
            if dead.contains(&chunk.subflow) && !self.reinject.contains(&dsn) {
                self.reinject.push_back(dsn);
            }
        }
        let mut q: Vec<u64> = self.reinject.drain(..).collect();
        q.sort_unstable();
        q.dedup();
        self.reinject = q.into();
        self.stats.reinjections += self.reinject.len() as u64;
    }

    // ------------------------------------------------------------------
    // Path-failure detection and break-before-make recovery.
    // ------------------------------------------------------------------

    /// Queue every retained chunk riding subflow `idx` for re-injection on
    /// other subflows (break-before-make: the data moves *before* the
    /// subflow is torn down, so a blackout costs one detection delay, not
    /// a full TCP death). Returns how many chunks were newly queued.
    fn reinject_chunks_of(&mut self, idx: usize) -> u64 {
        let mut added = 0u64;
        for (&dsn, c) in &self.sent {
            if c.subflow == idx && !self.reinject.contains(&dsn) {
                self.reinject.push_back(dsn);
                added += 1;
            }
        }
        let mut q: Vec<u64> = self.reinject.drain(..).collect();
        q.sort_unstable();
        q.dedup();
        self.reinject = q.into();
        self.stats.reinjections += added;
        added
    }

    /// The failure detector: runs from `tick` on every live connection.
    ///
    /// Two signals demote a path — the subflow socket's consecutive-RTO
    /// count, and a no-DATA_ACK-progress timer (subflow-level bytes_acked
    /// frozen with data outstanding; catches paths whose ACKs a middlebox
    /// forges). `Active -> Suspect` at `suspect_after_rtos`,
    /// `Suspect -> Failed` at `fail_after_rtos` (or a doubly-expired
    /// progress timer), recovery back to `Active` the moment the socket
    /// sees a fresh ACK. Demoted paths are probed on a backoff schedule;
    /// when every live path is Failed past `abort_deadline`, the
    /// connection aborts with a typed reason instead of hanging.
    fn detect_path_failures(&mut self, now: SimTime) {
        let fd = self.cfg.failure;
        for i in 0..self.subflows.len() {
            let (rtos, stalled_for) = {
                let sf = &mut self.subflows[i];
                if sf.dead || !sf.sock.is_established() {
                    sf.probe_at = None;
                    continue;
                }
                // Progress bookkeeping: an advancing subflow ack counter
                // (or an empty pipe) is proof of life.
                let acked = sf.sock.stats.bytes_acked;
                let in_flight = sf.sock.bytes_in_flight() > 0;
                if !in_flight {
                    sf.progress_bytes = acked;
                    sf.progress_at = None;
                } else if acked != sf.progress_bytes || sf.progress_at.is_none() {
                    sf.progress_bytes = acked;
                    sf.progress_at = Some(now);
                }
                let stalled_for = sf.progress_at.map_or(Duration::ZERO, |t| now.since(t));
                (sf.sock.consecutive_rtos(), stalled_for)
            };
            let stalled = stalled_for >= fd.progress_timeout;
            let hard_stalled = stalled_for >= fd.progress_timeout * 2;
            let healthy = rtos == 0 && !stalled;
            match self.subflows[i].path_state {
                PathState::Active => {
                    if rtos >= fd.fail_after_rtos || hard_stalled {
                        self.fail_path(now, i);
                    } else if rtos >= fd.suspect_after_rtos || stalled {
                        self.suspect_path(now, i, rtos);
                    }
                }
                PathState::Suspect => {
                    if healthy {
                        self.recover_path(now, i);
                    } else if rtos >= fd.fail_after_rtos || hard_stalled {
                        self.fail_path(now, i);
                    }
                }
                PathState::Failed => {
                    if healthy {
                        self.recover_path(now, i);
                    }
                }
            }
            // Re-probe demoted paths: force a retransmit / bare ACK so a
            // healed path has traffic to answer, with exponential backoff
            // while it stays silent.
            let sf = &mut self.subflows[i];
            if sf.path_state != PathState::Active {
                if let Some(at) = sf.probe_at {
                    if at <= now {
                        sf.sock.probe_path(now);
                        sf.probes_unanswered += 1;
                        let backoff = 1u32 << sf.probes_unanswered.min(3);
                        sf.probe_at = Some(now + fd.probe_interval * backoff);
                    }
                }
            }
        }

        // All-paths-failed accounting: the abort deadline runs while every
        // live, established subflow sits in Failed.
        let mut any_live = false;
        let mut all_failed = true;
        for sf in &self.subflows {
            if sf.dead || !sf.sock.is_established() {
                continue;
            }
            any_live = true;
            if sf.path_state != PathState::Failed {
                all_failed = false;
            }
        }
        if any_live && all_failed {
            let since = *self.all_failed_since.get_or_insert(now);
            if now.since(since) >= fd.abort_deadline {
                self.abort_with(AbortReason::AllPathsFailed, now);
            }
        } else {
            self.all_failed_since = None;
        }
    }

    fn suspect_path(&mut self, now: SimTime, idx: usize, rtos: u32) {
        let sf = &mut self.subflows[idx];
        sf.path_state = PathState::Suspect;
        sf.probes_unanswered = 0;
        sf.probe_at = Some(now + self.cfg.failure.probe_interval);
        self.telemetry.count(CounterId::PathSuspects);
        let kind = EventKind::PathSuspect {
            subflow: idx as u32,
            rtos,
        };
        self.telemetry.event(now.0, kind);
        self.trace_span(now, idx as u32, kind);
    }

    fn fail_path(&mut self, now: SimTime, idx: usize) {
        let reinjected = self.reinject_chunks_of(idx);
        let sf = &mut self.subflows[idx];
        sf.path_state = PathState::Failed;
        if sf.probe_at.is_none() {
            sf.probes_unanswered = 0;
            sf.probe_at = Some(now + self.cfg.failure.probe_interval);
        }
        self.stats.path_failures += 1;
        self.telemetry.count(CounterId::PathFailures);
        let kind = EventKind::PathFailed {
            subflow: idx as u32,
            reinjected,
        };
        self.telemetry.event(now.0, kind);
        self.trace_span(now, idx as u32, kind);
        // Failure feeds the path manager: it may promote a pre-opened
        // backup so the scheduler's first tier is never empty.
        let backups = self.backup_candidates(idx);
        let actions = self.pm.on_event(
            now,
            PmEvent::SubflowFailed {
                subflow: idx,
                backups,
            },
        );
        self.pm_apply(now, actions);
    }

    fn recover_path(&mut self, now: SimTime, idx: usize) {
        let sf = &mut self.subflows[idx];
        sf.path_state = PathState::Active;
        sf.probe_at = None;
        sf.probes_unanswered = 0;
        self.stats.path_recoveries += 1;
        self.telemetry.count(CounterId::PathRecoveries);
        let kind = EventKind::PathRecovered {
            subflow: idx as u32,
        };
        self.telemetry.event(now.0, kind);
        self.trace_span(now, idx as u32, kind);
        let actions = self
            .pm
            .on_event(now, PmEvent::SubflowRecovered { subflow: idx });
        self.pm_apply(now, actions);
    }

    // ------------------------------------------------------------------
    // Output path.
    // ------------------------------------------------------------------

    /// Emit at most one segment; call until `None`.
    ///
    /// Each call ticks the connection at `now` first, which is where
    /// timers fire. Ticks are idempotent at a fixed `now`: a timer that
    /// fires re-arms strictly after `now`, so draining `poll` in a loop
    /// never double-fires anything. See [`MptcpConnection::poll_at`] for
    /// the full contract an event loop may rely on.
    pub fn poll(&mut self, now: SimTime) -> Option<TcpSegment> {
        self.tick(now);
        let n = self.subflows.len();
        for k in 0..n {
            let i = (self.poll_cursor + k) % n;
            // Dead subflows are still polled: an aborted socket must get
            // to emit its RST so the peer tears down and re-injects.
            if let Some(seg) = self.subflows[i].sock.poll(now) {
                self.poll_cursor = i;
                return Some(seg);
            }
        }
        None
    }

    /// Earliest deadline across subflows, the data-level timer, and the
    /// failure detector (probes, progress timers, the all-paths abort
    /// deadline — the guarantees of "abort, never hang" depend on these
    /// being visible here).
    ///
    /// # The event-loop contract (wall-clock jitter)
    ///
    /// A real event loop sleeps until the returned deadline and wakes
    /// *late*. The machine promises, and `tests/poll_contract.rs`
    /// enforces:
    ///
    /// * **Late ticks are safe.** A tick at `deadline + jitter` fires
    ///   each elapsed timer exactly once — never once per nominal
    ///   interval the jitter covered — and re-arms it relative to the
    ///   tick's `now`, not the missed deadline.
    /// * **No stale deadlines.** Immediately after a tick at `now`,
    ///   every deadline returned here is strictly greater than `now`
    ///   (a past deadline would pin the loop in a busy spin).
    /// * **No stalls.** While a retransmission or detector transition is
    ///   pending, this returns `Some`; a loop that always sleeps until
    ///   `poll_at` cannot hang a connection that still has work.
    pub fn poll_at(&self, now: SimTime) -> Option<SimTime> {
        fn earliest(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            }
        }
        let mut t = self.data_rto_deadline;
        if let Some(since) = self.all_failed_since {
            t = earliest(t, Some(since + self.cfg.failure.abort_deadline));
        }
        // ADD_ADDR retransmits are serviced by `tick` only while MPTCP is
        // operational; don't let a stale deadline pin the loop otherwise.
        if matches!(
            self.state,
            ConnState::Established | ConnState::AwaitingConfirm
        ) {
            t = earliest(t, self.pm.poll_at());
        }
        for sf in &self.subflows {
            if sf.dead {
                continue;
            }
            t = earliest(t, sf.sock.poll_at(now));
            t = earliest(t, sf.probe_at);
            if let Some(p) = sf.progress_at {
                // Only the two pending detector transitions (demote at one
                // timeout, hard-fail at two) warrant a wakeup; a deadline
                // already behind `now` fired on a previous tick and must
                // not pin the event loop to the past.
                let demote = p + self.cfg.failure.progress_timeout;
                let hard_fail = p + self.cfg.failure.progress_timeout * 2;
                let next = [demote, hard_fail].into_iter().find(|&d| d > now);
                t = earliest(t, next);
            }
        }
        t
    }

    /// Periodic work: timers, scheduling, window/ack refresh.
    fn tick(&mut self, now: SimTime) {
        if matches!(self.state, ConnState::Closed) {
            return;
        }
        self.reap_dead(now);
        // Interval-driven trace sampling (congestion events add their own
        // samples; this keeps the timeline dense even on quiet paths).
        if self.tracer.sample_due(now.0) {
            self.trace_conn_sample(now);
            for sf in &mut self.subflows {
                if !sf.dead {
                    sf.sock.trace_sample(now);
                }
            }
        }
        if self.state == ConnState::Fallback {
            return;
        }

        // Data-level retransmission timer (§3.3.5: "If a DATA ACK does
        // not arrive, a timer fires and the sender retransmits that
        // data").
        if let Some(t) = self.data_rto_deadline {
            if t <= now {
                self.on_data_rto(now);
                if self.state == ConnState::Fallback {
                    // The timeout itself triggered fallback; the data-level
                    // machinery (including this timer) is now void.
                    return;
                }
            }
        }

        if self.state == ConnState::Established || self.state == ConnState::AwaitingConfirm {
            self.detect_path_failures(now);
            if self.state == ConnState::Closed {
                return; // abort deadline expired with every path Failed
            }
            // Service the path manager's ADD_ADDR retransmit schedule.
            let pm_actions = self.pm.tick(now);
            self.pm_apply(now, pm_actions);
            self.refresh_coupling();
            self.push_data(now);
            self.maybe_send_data_fin(now);
        }

        self.update_ack_state(now);

        // Arm/disarm the data-level timer.
        if self.snd_una < self.snd_nxt && self.data_rto_deadline.is_none() {
            self.data_rto_deadline = Some(now + self.data_rto_interval());
        } else if self.snd_una >= self.snd_nxt {
            self.data_rto_deadline = None;
        }
    }

    fn data_rto_interval(&self) -> Duration {
        // Anchor on the healthiest subflow: a path stuck in exponential
        // RTO backoff must not delay data-level recovery onto live paths.
        let min_rto = self
            .subflows
            .iter()
            .filter(|s| s.usable())
            .map(|s| s.sock.rto())
            .min()
            .unwrap_or(Duration::from_secs(1));
        (min_rto * 2) * self.data_rto_backoff
    }

    fn on_data_rto(&mut self, now: SimTime) {
        self.stats.data_rtos += 1;
        self.telemetry.count(CounterId::DataRtos);
        self.telemetry
            .event(now.0, EventKind::DataRto { dsn: self.snd_una });
        self.telemetry.count(CounterId::DataAckStalls);
        self.telemetry.event(
            now.0,
            EventKind::DataAckStall {
                dsn: self.snd_una,
                stalled_ns: self.data_rto_interval().as_nanos() as u64,
            },
        );
        self.trace_span(
            now,
            SPAN_CONN_LEVEL,
            EventKind::DataRto { dsn: self.snd_una },
        );
        self.trace_conn_sample(now);
        // Client-side fallback detection (§3.3.6): our DSS options are
        // being stripped somewhere — subflow delivery succeeds but nothing
        // is ever DATA_ACKed and no MPTCP option has arrived since the
        // handshake. Continue as plain TCP on the lone subflow.
        // Deciding on the first timer expiry also prevents re-injecting
        // onto the lone subflow, which would duplicate bytes in the raw
        // stream a fallen-back peer is reading.
        if self.is_client && !self.confirmed && self.alive_subflows() == 1 {
            self.enter_fallback(FallbackCause::DataRtoUnconfirmed, now);
            return;
        }
        self.data_rto_backoff = (self.data_rto_backoff * 2).min(64);
        self.data_rto_deadline = Some(now + self.data_rto_interval());
        // Re-inject the chunk holding up the data-level window, plus every
        // retained chunk whose subflow believes it was delivered (nothing
        // left in flight there). Those bytes were acknowledged at the
        // subflow level but never DATA_ACKed — the signature of a
        // pro-active-ACKing proxy whose segments then died downstream, or
        // of a coalescer that ate the mapping (§3.3.5). One-at-a-time
        // recovery would crawl under the exponential timer backoff.
        let mut added = 0;
        for (&dsn, c) in &self.sent {
            if added >= 128 {
                break;
            }
            let sf_idle = self.subflows[c.subflow].dead
                || self.subflows[c.subflow].sock.bytes_in_flight() == 0;
            if (dsn == self.snd_una || sf_idle) && !self.reinject.contains(&dsn) {
                self.reinject.push_back(dsn);
                self.stats.reinjections += 1;
                added += 1;
            }
        }
        // Retransmit a lost DATA_FIN signal.
        if let Some(f) = self.data_fin_dsn {
            if self.snd_una >= f {
                self.send_data_fin_signal();
            }
        }
    }

    /// Recompute cross-subflow coupling and push per-flow signals down.
    ///
    /// The connection owns the [`CoupledState`]; subflow controllers only
    /// ever see their own [`mptcp_tcpstack::CoupledSignal`].
    fn refresh_coupling(&mut self) {
        if !self.coupled.is_coupled() {
            return;
        }
        // Only subflows with an RTT sample shape the computation (matching
        // the original LIA alpha computation).
        let members: Vec<usize> = (0..self.subflows.len())
            .filter(|&i| self.subflows[i].usable() && self.subflows[i].sock.srtt().is_some())
            .collect();
        if members.is_empty() {
            return;
        }
        let flows: Vec<FlowView> = members
            .iter()
            .map(|&i| FlowView {
                cwnd: self.subflows[i].sock.cwnd(),
                srtt: self.subflows[i].sock.srtt().expect("filtered above"),
            })
            .collect();
        let signals = self.coupled.recompute(&flows).to_vec();
        for (&i, &sig) in members.iter().zip(&signals) {
            self.subflows[i].sock.cc_mut().set_coupled(sig);
        }
        // Usable subflows still waiting for a first RTT sample see the
        // aggregate (alpha/total) view too, as the inlined computation
        // did — with a neutral per-path term for per-path algorithms.
        let shared = mptcp_tcpstack::CoupledSignal {
            alpha: if self.coupled.algo() == mptcp_tcpstack::CcAlgorithm::Olia {
                0.0
            } else {
                signals[0].alpha
            },
            ..signals[0]
        };
        for i in 0..self.subflows.len() {
            if self.subflows[i].usable() && !members.contains(&i) {
                self.subflows[i].sock.cc_mut().set_coupled(shared);
            }
        }
    }

    /// Chunk placement. The connection builds the eligibility-tiered
    /// path snapshot (Active -> backup -> Suspect, never Failed), asks
    /// the configured [`Scheduler`] where each chunk goes, and keeps the
    /// reinjection queue, M1/M2 mechanisms, chunk cutting and stall/pick
    /// telemetry here — so every scheduler policy inherits them.
    fn push_data(&mut self, now: SimTime) {
        loop {
            // The failure detector's verdict gates eligibility: Active
            // paths first, backups next, Suspect paths only when nothing
            // else is left, Failed paths never (their in-flight chunks
            // were already reinjected).
            let eligible = |sf: &Subflow, state: PathState, backup_ok: bool| {
                sf.usable() && sf.path_state == state && (backup_ok || !sf.backup)
            };
            let mut tier: Vec<usize> = (0..self.subflows.len())
                .filter(|&i| eligible(&self.subflows[i], PathState::Active, false))
                .collect();
            if tier.is_empty() {
                // Backup subflows only as a last resort.
                tier = (0..self.subflows.len())
                    .filter(|&i| eligible(&self.subflows[i], PathState::Active, true))
                    .collect();
            }
            if tier.is_empty() {
                tier = (0..self.subflows.len())
                    .filter(|&i| eligible(&self.subflows[i], PathState::Suspect, true))
                    .collect();
            }

            // Re-injections are next in line (fixed DSNs); prefer a
            // subflow other than the one the chunk is already stuck on.
            let reinject_head = self.reinject.front().copied();
            let avoid = reinject_head
                .filter(|&dsn| dsn >= self.snd_una)
                .and_then(|dsn| self.sent.get(&dsn))
                .map(|c| c.subflow);

            let paths: Vec<PathSnapshot> = tier
                .iter()
                .map(|&i| {
                    let sf = &self.subflows[i];
                    PathSnapshot {
                        id: i,
                        srtt: sf.srtt_or_default(),
                        cwnd: sf.sock.cwnd(),
                        mss: sf.sock.mss(),
                        headroom: sf.tx_headroom(),
                        send_space: sf.sock.send_space(),
                        in_flight: sf.sock.bytes_in_flight(),
                        backup: sf.backup,
                        suspect: sf.path_state == PathState::Suspect,
                    }
                })
                .collect();
            let work_pending = !self.pending.is_empty() || !self.reinject.is_empty();
            let decision = if paths.is_empty() {
                SchedDecision::Stall
            } else {
                self.sched.pick(&SchedCtx {
                    paths: &paths,
                    send_window_free: self.snd_right_edge.saturating_sub(self.snd_nxt),
                    pending_bytes: self.pending_bytes,
                    is_reinject: reinject_head.is_some(),
                    avoid,
                })
            };

            let picks: Vec<usize> = match decision {
                SchedDecision::Pick(id) => vec![id],
                SchedDecision::PickAll(ids) => ids,
                SchedDecision::Defer => {
                    // A deliberate wait for a better path (BLEST): not a
                    // stall — the fast path's ACK clock re-polls us.
                    self.sched_stalled = false;
                    if work_pending {
                        self.telemetry.count(CounterId::SchedulerDefers);
                    }
                    return;
                }
                SchedDecision::Stall => {
                    // Work is waiting but no subflow can take it. Stall
                    // accounting is per scheduler decision: a redundant
                    // or round-robin placement with only *some* paths
                    // blocked never lands here.
                    if work_pending {
                        self.telemetry.count(CounterId::SchedulerStalls);
                        if !self.sched_stalled {
                            self.sched_stalled = true;
                            self.trace_span(
                                now,
                                SPAN_CONN_LEVEL,
                                EventKind::SchedulerStall {
                                    pending_bytes: self.pending_bytes as u64,
                                    reinject_queued: self.reinject.len() as u64,
                                },
                            );
                        }
                    }
                    return;
                }
            };
            self.sched_stalled = false;
            debug_assert!(!picks.is_empty(), "scheduler returned an empty pick set");
            let primary = picks[0];

            // Re-injections first (fixed DSNs).
            if let Some(dsn) = reinject_head {
                if dsn < self.snd_una || !self.sent.contains_key(&dsn) {
                    self.reinject.pop_front();
                    continue;
                }
                let chunk_data = self.sent.get(&dsn).unwrap().data.clone();
                for &id in &picks {
                    // Redundant copies (non-primary picks) are only
                    // buffer-gated; skip one the buffer can't take.
                    if id != primary && self.subflows[id].sock.send_space() < chunk_data.len() {
                        continue;
                    }
                    self.place_chunk(id, dsn, chunk_data.clone(), now);
                }
                self.sent.insert(
                    dsn,
                    SentChunk {
                        data: chunk_data,
                        subflow: primary,
                    },
                );
                self.reinject.pop_front();
                continue;
            }

            // Receive-window limited? That's where M1/M2 earn their keep
            // (§4.2): a subflow has spare cwnd but the shared window is
            // exhausted by data stuck on a slower path.
            let rwnd_limited = self.snd_nxt >= self.snd_right_edge && self.snd_una < self.snd_nxt;
            if rwnd_limited {
                self.maybe_mechanisms(now, primary);
                return;
            }
            if self.pending.is_empty() {
                return; // application-limited: nothing to do
            }
            // Connection-level flow control (§3.3.1/§3.3.2): never send
            // beyond DATA_ACK + window.
            let window_room = self.snd_right_edge.saturating_sub(self.snd_nxt);
            if window_room == 0 {
                self.maybe_mechanisms(now, primary);
                return;
            }

            // Cut a chunk (≤ MSS, ≤ window) from pending data. Chunks are
            // the mapping granularity: retransmissions re-use identical
            // boundaries so middleboxes never see inconsistent content.
            let mss = self.subflows[primary].sock.mss();
            let take = mss.min(window_room as usize).min(self.pending_bytes);
            let mut chunk = Vec::with_capacity(take);
            while chunk.len() < take {
                let mut front = self.pending.pop_front().unwrap();
                let need = take - chunk.len();
                if front.len() <= need {
                    chunk.extend_from_slice(&front);
                } else {
                    chunk.extend_from_slice(&front[..need]);
                    front = front.slice(need..);
                    self.pending.push_front(front);
                }
            }
            self.pending_bytes -= take;
            let data = Bytes::from(chunk);
            let dsn = self.snd_nxt;
            self.snd_nxt += take as u64;
            for &id in &picks {
                // Redundant copies (non-primary picks) are only
                // buffer-gated; skip one the buffer can't take.
                if id != primary && self.subflows[id].sock.send_space() < take {
                    continue;
                }
                self.place_chunk(id, dsn, data.clone(), now);
            }
            self.sent.insert(
                dsn,
                SentChunk {
                    data,
                    subflow: primary,
                },
            );
            self.sent_bytes += take;
        }
    }

    /// Hand one chunk with its DSS mapping to a subflow.
    fn place_chunk(&mut self, idx: usize, dsn: u64, data: Bytes, _now: SimTime) {
        let sf = &mut self.subflows[idx];
        let ssn = sf.sock.next_tx_offset() as u32;
        let ck = self
            .checksum_on
            .then(|| checksum::dss_checksum(dsn, ssn, data.len() as u16, &data));
        let dss = TcpOption::Mptcp(MptcpOption::Dss {
            data_ack: None,
            mapping: Some(DssMapping {
                dsn,
                subflow_seq: ssn,
                len: data.len() as u16,
                checksum: ck,
            }),
            data_fin: false,
        });
        let ok = sf.sock.send_chunk(data.clone(), vec![dss]);
        debug_assert!(ok, "subflow send buffer unexpectedly full");
        self.stats.bytes_scheduled += data.len() as u64;
        self.telemetry.count(CounterId::SchedulerPicks);
    }

    /// M1 (opportunistic retransmission) and M2 (penalization), §4.2.
    fn maybe_mechanisms(&mut self, now: SimTime, fast: usize) {
        if self.snd_una >= self.snd_nxt {
            return; // nothing outstanding
        }
        let Some(chunk) = self.sent.get(&self.snd_una) else {
            return;
        };
        let culprit = chunk.subflow;
        if culprit == fast {
            return; // the trailing chunk is already on the fast path
        }
        // Both mechanisms exist for *asymmetric* paths (a slow 3G holding
        // up a fast WiFi). When subflow RTTs are comparable — symmetric
        // links, Fig 6(c) — duplicating traffic and halving windows only
        // does damage, so require the culprit to be meaningfully slower.
        let fast_srtt = self.subflows[fast].srtt_or_default();
        let culprit_srtt = self.subflows[culprit].srtt_or_default();
        if culprit_srtt.as_secs_f64() < 1.5 * fast_srtt.as_secs_f64() {
            return;
        }

        if self.cfg.mech.opportunistic_retx {
            let recently = self.last_opp.is_some_and(|(d, t)| {
                d == self.snd_una && now.since(t) < self.subflows[fast].srtt_or_default()
            });
            if !recently {
                // Resend only the first unacknowledged segment (§4.2 M1).
                let data = chunk.data.clone();
                self.place_chunk(fast, self.snd_una, data.clone(), now);
                self.sent.insert(
                    self.snd_una,
                    SentChunk {
                        data,
                        subflow: fast,
                    },
                );
                self.last_opp = Some((self.snd_una, now));
                self.stats.opportunistic_retx += 1;
                self.telemetry.count(CounterId::M1Reinjections);
                self.telemetry.event(
                    now.0,
                    EventKind::M1Reinject {
                        dsn: self.snd_una,
                        from: culprit as u32,
                        to: fast as u32,
                    },
                );
                self.trace_span(
                    now,
                    culprit as u32,
                    EventKind::M1Reinject {
                        dsn: self.snd_una,
                        from: culprit as u32,
                        to: fast as u32,
                    },
                );
            }
        }

        if self.cfg.mech.penalize {
            let sf = &mut self.subflows[culprit];
            // A subflow in loss recovery has already halved its own window.
            if !sf.dead && !sf.sock.in_loss_recovery() {
                let srtt = sf.srtt_or_default();
                let recently = sf.last_penalty.is_some_and(|t| now.since(t) < srtt);
                if !recently {
                    // Halve cwnd and set ssthresh to the reduced window.
                    let before = sf.sock.cwnd();
                    let half = before / 2;
                    sf.sock.cc_mut().set_ssthresh(half);
                    sf.sock.cc_mut().set_cwnd(half);
                    sf.last_penalty = Some(now);
                    sf.penalties += 1;
                    let after = sf.sock.cwnd();
                    self.stats.penalizations += 1;
                    self.telemetry.count(CounterId::M2Penalizations);
                    self.telemetry.event(
                        now.0,
                        EventKind::M2Penalize {
                            subflow: culprit as u32,
                            before,
                            after,
                        },
                    );
                    self.trace_span(
                        now,
                        culprit as u32,
                        EventKind::M2Penalize {
                            subflow: culprit as u32,
                            before,
                            after,
                        },
                    );
                    // The penalty is exactly the cwnd discontinuity Fig. 4
                    // visualizes; pin a subflow sample at the instant.
                    self.subflows[culprit].sock.trace_sample(now);
                }
            }
        }
    }

    fn maybe_send_data_fin(&mut self, _now: SimTime) {
        if !self.data_fin_queued || self.data_fin_dsn.is_some() {
            // Once the DATA_FIN is acked, close the subflows (§3.4: wait
            // for the DATA_ACK of the DATA_FIN before sending subflow
            // FINs).
            if let Some(f) = self.data_fin_dsn {
                if self.snd_una > f {
                    for sf in &mut self.subflows {
                        if !sf.dead {
                            sf.sock.close();
                        }
                    }
                }
            }
            return;
        }
        if !self.pending.is_empty() || self.snd_una < self.snd_nxt {
            return; // data still unacknowledged: FIN comes after
        }
        let fin_dsn = self.snd_nxt;
        self.snd_nxt += 1;
        self.data_fin_dsn = Some(fin_dsn);
        self.send_data_fin_signal();
    }

    fn send_data_fin_signal(&mut self) {
        let Some(fin_dsn) = self.data_fin_dsn else {
            return;
        };
        let opt = TcpOption::Mptcp(MptcpOption::Dss {
            data_ack: Some(self.effective_rcv_ack()),
            mapping: Some(DssMapping {
                dsn: fin_dsn,
                subflow_seq: 0,
                len: 0,
                checksum: None,
            }),
            data_fin: true,
        });
        for sf in &mut self.subflows {
            if sf.usable() {
                sf.sock.queue_oneshot_options(vec![opt.clone()]);
            }
        }
    }

    fn effective_rcv_ack(&self) -> u64 {
        self.rcv_nxt
    }

    /// Refresh window overrides and DATA_ACK carry options on every
    /// subflow (§3.3.1: one shared pool; §3.3.2: explicit DATA_ACK).
    fn update_ack_state(&mut self, now: SimTime) {
        if self.state == ConnState::Fallback || self.state == ConnState::Closed {
            return;
        }
        self.maybe_grow_rcvbuf(now);
        let window = self.rcv_window();
        let da = self.effective_rcv_ack();
        for sf in &mut self.subflows {
            if sf.dead {
                continue;
            }
            sf.sock.set_window_override(Some(window));
            if self.state == ConnState::Established
                || (self.state == ConnState::AwaitingConfirm && !self.is_client)
            {
                let mut carry = vec![TcpOption::Mptcp(MptcpOption::Dss {
                    data_ack: Some(da),
                    mapping: None,
                    data_fin: false,
                })];
                // Client still proving MP_JOIN on this subflow: keep the
                // join ACK in front.
                if sf.join == JoinState::ClientEstablished {
                    if let Some(rk) = self.remote {
                        let mac = crypto::join_ack_mac(
                            self.local.key,
                            rk.key,
                            sf.nonce_local,
                            sf.nonce_remote,
                        );
                        carry.insert(0, TcpOption::Mptcp(MptcpOption::MpJoinAck { mac }));
                    }
                }
                sf.sock.set_carry_options(carry);
            }
        }
    }

    /// M3: grow buffers toward `2·Σxᵢ·RTTmax` (§4.2).
    fn maybe_grow_rcvbuf(&mut self, now: SimTime) {
        if !self.cfg.mech.autotune {
            return;
        }
        let mut rate_sum = 0.0f64; // bytes/sec
        let mut rtt_max = Duration::ZERO;
        for sf in self.subflows.iter().filter(|s| s.usable()) {
            if let Some(srtt) = sf.sock.srtt() {
                rate_sum += f64::from(sf.sock.cwnd()) / srtt.as_secs_f64().max(1e-6);
                rtt_max = rtt_max.max(srtt);
            }
        }
        if rate_sum <= 0.0 {
            return;
        }
        let wanted = (2.0 * rate_sum * rtt_max.as_secs_f64()) as usize;
        let new_rcv = self.rcv_buf_cap.max(wanted.min(self.cfg.recv_buf));
        let new_snd = self.snd_buf_cap.max(wanted.min(self.cfg.send_buf));
        let grew = new_rcv > self.rcv_buf_cap || new_snd > self.snd_buf_cap;
        self.rcv_buf_cap = new_rcv;
        self.snd_buf_cap = new_snd;
        if grew {
            self.telemetry.count(CounterId::M3BufferGrowths);
            self.telemetry.event(
                now.0,
                EventKind::M3Grow {
                    snd_cap: self.snd_buf_cap as u64,
                    rcv_cap: self.rcv_buf_cap as u64,
                },
            );
            self.trace_span(
                now,
                SPAN_CONN_LEVEL,
                EventKind::M3Grow {
                    snd_cap: self.snd_buf_cap as u64,
                    rcv_cap: self.rcv_buf_cap as u64,
                },
            );
            self.trace_conn_sample(now);
            self.telemetry
                .gauge_set(GaugeId::SndBufCap, self.snd_buf_cap as u64);
            self.telemetry
                .gauge_set(GaugeId::RcvBufCap, self.rcv_buf_cap as u64);
        }
    }

    fn maybe_grow_sndbuf(&mut self, _incoming: usize) {
        // Growth is driven by the same M3 formula in maybe_grow_rcvbuf;
        // without autotuning the cap is static.
    }
}
