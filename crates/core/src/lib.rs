//! Multipath TCP — a full reproduction of the protocol and OS mechanisms
//! from *"How Hard Can It Be? Designing and Implementing a Deployable
//! Multipath TCP"* (Raiciu et al., NSDI 2012).
//!
//! An [`MptcpConnection`] presents a single reliable byte stream (the
//! TCP service model) while striping data across multiple TCP subflows:
//!
//! ```text
//!            write()/read()            one byte stream
//!          ┌────────────────┐
//!          │ MptcpConnection│  DSS mappings, DATA_ACK flow control,
//!          │  scheduler     │  reorder queue, M1–M4, fallback
//!          └───┬────────┬───┘
//!         ┌────┴──┐ ┌───┴───┐
//!         │subflow│ │subflow│   per-subflow seq spaces, Reno/LIA,
//!         │ TCP   │ │ TCP   │   RTO, fast retransmit  (mptcp-tcpstack)
//!         └───────┘ └───────┘
//! ```
//!
//! Highlights, with their paper sections:
//! * MP_CAPABLE keys/tokens and MP_JOIN HMAC authentication (§3.1–3.2,
//!   [`token`], [`MptcpListener`]).
//! * Relative, length-delimited, checksummed data sequence mappings that
//!   survive sequence rewriting, TSO resegmentation and coalescing
//!   (§3.3.4–3.3.6, [`mapping`]).
//! * Explicit DATA_ACK in TCP options — never the payload (§3.3.2–3.3.3).
//! * Shared receive pool window semantics (§3.3.1).
//! * Fallback to regular TCP when middleboxes interfere (§3.1, §3.3.6).
//! * Receive-buffer mechanisms M1–M4 (§4.2, [`config::Mechanisms`]).
//! * Four connection-level reorder algorithms (§4.3, [`reorder`]).
//! * DATA_FIN vs subflow FIN teardown and REMOVE_ADDR mobility (§3.4).

pub mod api;
pub mod config;
pub mod conn;
pub mod dsn;
pub mod endpoint;
pub mod mapping;
pub mod pm;
pub mod reorder;
pub mod sched;
pub mod subflow;
pub mod token;

pub use api::{AbortReason, JoinError, ReadOutcome, SubflowError, SubflowId, WriteOutcome};
pub use config::{
    ConfigError, FailureDetection, Mechanisms, MptcpConfig, MptcpConfigBuilder, ReorderAlgo,
};
pub use conn::{ConnEvent, ConnState, ConnStats, MptcpConnection};
pub use endpoint::MptcpListener;
pub use mptcp_tcpstack::{CcAlgorithm, CoupledSignal, CoupledState, FlowView, TcpConfig};
pub use mptcp_telemetry as telemetry;
pub use pm::{
    EndpointFlags, PathManager, PathManagerCfg, PmAction, PmEndpoint, PmEvent, PmLimits, PmPolicy,
};
pub use sched::{PathSnapshot, SchedCtx, SchedDecision, Scheduler, SchedulerKind};
pub use subflow::PathState;
pub use token::{KeyPool, KeySet, TokenTable};

#[cfg(test)]
mod conn_tests;
