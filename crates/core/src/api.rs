//! Typed results for the public connection API.
//!
//! The connection's fallible operations return these instead of bare
//! `bool`/`usize` sentinels: callers can distinguish "would block" from
//! "closed", and a rejected MP_JOIN says *why* it was rejected.

use std::fmt;

use bytes::Bytes;

/// Index of a subflow within [`crate::MptcpConnection::subflows`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SubflowId(pub usize);

impl fmt::Display for SubflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "subflow#{}", self.0)
    }
}

/// Result of [`crate::MptcpConnection::write`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// `n` bytes entered the connection-level send buffer.
    Accepted(usize),
    /// The connection is operating as plain TCP (§3.3.6 fallback); `n`
    /// bytes entered the initial subflow's socket directly.
    FellBack(usize),
    /// No buffer space; retry after DATA_ACKs free memory.
    WouldBlock,
    /// The sending direction is closed (DATA_FIN queued or connection
    /// done); the data was not accepted.
    Closed,
}

impl WriteOutcome {
    /// Bytes accepted, regardless of path taken (0 for the non-accepting
    /// outcomes) — the drop-in replacement for the old `usize` return.
    pub fn accepted(&self) -> usize {
        match self {
            WriteOutcome::Accepted(n) | WriteOutcome::FellBack(n) => *n,
            WriteOutcome::WouldBlock | WriteOutcome::Closed => 0,
        }
    }
}

/// Result of [`crate::MptcpConnection::read`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// In-order stream bytes.
    Data(Bytes),
    /// Nothing buffered right now; more may arrive.
    WouldBlock,
    /// The peer's stream ended (DATA_FIN, or subflow FIN in fallback) and
    /// everything before it has been read.
    Eof,
    /// The connection is closed; no further data will arrive.
    Closed,
}

impl ReadOutcome {
    /// The payload, if this outcome carried one — the drop-in replacement
    /// for the old `Option<Bytes>` return.
    pub fn into_data(self) -> Option<Bytes> {
        match self {
            ReadOutcome::Data(b) => Some(b),
            _ => None,
        }
    }
}

/// Why [`crate::MptcpConnection::open_subflow`] refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubflowError {
    /// The connection is not in a state that can add subflows (still in
    /// the initial handshake, fallen back, or closed).
    WrongState,
    /// The peer's key is unknown — MP_CAPABLE never completed, so an
    /// MP_JOIN token cannot be computed.
    NoRemoteKey,
    /// A live subflow with the same four-tuple already exists.
    DuplicateSubflow,
    /// The configured `max_subflows` limit is reached.
    SubflowLimit,
}

impl fmt::Display for SubflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            SubflowError::WrongState => "connection state does not allow new subflows",
            SubflowError::NoRemoteKey => "peer key unknown (MP_CAPABLE incomplete)",
            SubflowError::DuplicateSubflow => "a live subflow already uses this four-tuple",
            SubflowError::SubflowLimit => "max_subflows limit reached",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for SubflowError {}

/// Why a connection was aborted rather than closed cleanly.
///
/// Surfaced by [`crate::MptcpConnection::abort_reason`] and mirrored in
/// telemetry as `ConnAborted { code }` with the codes documented here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// Every subflow stayed Failed past the configured abort deadline with
    /// work still outstanding (code 0).
    AllPathsFailed,
    /// REMOVE_ADDR (or local address removal) killed the last live subflow
    /// (code 1).
    LastSubflowRemoved,
    /// The peer sent MP_FASTCLOSE (code 2).
    PeerFastClose,
}

impl AbortReason {
    /// Stable numeric code carried by the `ConnAborted` telemetry event.
    pub fn code(&self) -> u32 {
        match self {
            AbortReason::AllPathsFailed => 0,
            AbortReason::LastSubflowRemoved => 1,
            AbortReason::PeerFastClose => 2,
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            AbortReason::AllPathsFailed => "all paths failed past the abort deadline",
            AbortReason::LastSubflowRemoved => "address removal killed the last live subflow",
            AbortReason::PeerFastClose => "peer sent MP_FASTCLOSE",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for AbortReason {}

/// Why [`crate::MptcpConnection::accept_join`] rejected an MP_JOIN SYN.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinError {
    /// The SYN carried no MP_JOIN option.
    NoJoinOption,
    /// The token does not identify this connection (or our peer key is
    /// not yet known, so no join can be validated).
    UnknownToken,
    /// The HMAC in the join handshake did not verify. (The SYN itself
    /// carries no HMAC — this is reported by the later handshake steps and
    /// surfaces in telemetry as `JoinsRejected`.)
    BadHmac,
    /// The configured `max_subflows` limit is reached.
    SubflowLimit,
    /// The connection cannot accept joins (fallen back or closed).
    WrongState,
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            JoinError::NoJoinOption => "SYN carried no MP_JOIN option",
            JoinError::UnknownToken => "token does not match this connection",
            JoinError::BadHmac => "join HMAC failed verification",
            JoinError::SubflowLimit => "max_subflows limit reached",
            JoinError::WrongState => "connection state does not accept joins",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for JoinError {}
