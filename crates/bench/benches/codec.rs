//! Criterion: wire codec throughput — segment encode/decode with a full
//! MPTCP option load (per-packet cost floor of the whole stack).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mptcp_packet::{
    DssMapping, Endpoint, FourTuple, MptcpOption, SeqNum, TcpFlags, TcpOption, TcpSegment,
};

fn sample_segment() -> TcpSegment {
    let mut seg = TcpSegment::new(
        FourTuple {
            src: Endpoint::new(0x0a000001, 4242),
            dst: Endpoint::new(0x0a000002, 80),
        },
        SeqNum(123456),
        SeqNum(654321),
        TcpFlags::ACK,
    );
    seg.window = 1 << 20;
    seg.options = vec![
        TcpOption::Timestamps { val: 7, ecr: 9 },
        TcpOption::Mptcp(MptcpOption::Dss {
            data_ack: None,
            mapping: Some(DssMapping {
                dsn: 0xdeadbeef,
                subflow_seq: 99,
                len: 1460,
                checksum: Some(0x1234),
            }),
            data_fin: false,
        }),
        TcpOption::Mptcp(MptcpOption::Dss {
            data_ack: Some(0xcafef00d),
            mapping: None,
            data_fin: false,
        }),
    ];
    seg.payload = Bytes::from(vec![0x42u8; 1460]);
    seg
}

fn bench_codec(c: &mut Criterion) {
    let seg = sample_segment();
    let wire = seg.encode(7).unwrap();
    let mut g = c.benchmark_group("segment_codec");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| std::hint::black_box(seg.encode(7).unwrap()));
    });
    g.bench_function("decode", |b| {
        b.iter(|| {
            std::hint::black_box(TcpSegment::decode(&wire, 0x0a000001, 0x0a000002, 7).unwrap())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
