//! Criterion: the four out-of-order queue algorithms under a multipath
//! arrival pattern (real-time counterpart of Figure 8).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mptcp::reorder::make_queue;
use mptcp::ReorderAlgo;

/// Interleaved batched arrivals from `nsub` subflows, like a live MPTCP
/// receiver sees: each subflow delivers contiguous runs from its own
/// region of the data sequence space.
fn workload(nsub: usize, per_subflow: usize) -> Vec<(u64, usize)> {
    let mut w = Vec::with_capacity(nsub * per_subflow);
    for k in 0..per_subflow {
        for sf in 0..nsub {
            let base = (sf as u64) * 100_000_000;
            w.push((base + (k as u64) * 1460, sf));
        }
    }
    w
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("reorder_insert");
    for algo in [
        ReorderAlgo::Regular,
        ReorderAlgo::Tree,
        ReorderAlgo::Shortcuts,
        ReorderAlgo::AllShortcuts,
    ] {
        for nsub in [2usize, 8] {
            let w = workload(nsub, 2048 / nsub);
            g.bench_with_input(BenchmarkId::new(format!("{algo:?}"), nsub), &w, |b, w| {
                b.iter(|| {
                    let mut q = make_queue(algo);
                    for &(dsn, sf) in w {
                        q.insert(dsn, Bytes::from_static(&[0u8; 64]), sf);
                    }
                    std::hint::black_box(q.len())
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
