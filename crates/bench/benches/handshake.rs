//! Criterion: connection-setup cost (Figure 10's measurement as a bench):
//! token generation with growing tables, scan vs hash lookup, key pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mptcp::{KeyPool, TokenTable};
use mptcp_netsim::SimRng;

fn bench_token_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_generate");
    for existing in [0usize, 100, 1000] {
        for scan in [true, false] {
            let label = if scan { "scan" } else { "hash" };
            g.bench_with_input(
                BenchmarkId::new(label, existing),
                &existing,
                |b, &existing| {
                    let mut rng = SimRng::new(7);
                    let mut table = TokenTable::new();
                    table.scan_lookup = scan;
                    for _ in 0..existing {
                        table.generate(&mut rng);
                    }
                    b.iter(|| std::hint::black_box(table.generate(&mut rng)));
                },
            );
        }
    }
    g.finish();
}

fn bench_key_pool(c: &mut Criterion) {
    c.bench_function("key_pool_take", |b| {
        let mut rng = SimRng::new(9);
        let mut pool = KeyPool::new(1 << 16);
        pool.refill(&mut rng);
        let mut table = TokenTable::new();
        b.iter(|| {
            if pool.is_empty() {
                pool.refill(&mut rng);
            }
            std::hint::black_box(pool.take(&mut table, &mut rng))
        });
    });
}

criterion_group!(benches, bench_token_generate, bench_key_pool);
criterion_main!(benches);
