//! Criterion: DSS checksum and SHA-1 costs (feeds the Figure 3 model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mptcp_packet::{checksum, crypto};

fn bench_dss_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("dss_checksum");
    for size in [1460usize, 4096, 9000, 65536] {
        let payload = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &payload, |b, p| {
            b.iter(|| checksum::dss_checksum(std::hint::black_box(1000), 1, p.len() as u16, p));
        });
    }
    g.finish();
}

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1_key_ops");
    g.bench_function("token_from_key", |b| {
        b.iter(|| crypto::token_from_key(std::hint::black_box(0xfeedface)));
    });
    g.bench_function("join_synack_mac", |b| {
        b.iter(|| crypto::join_synack_mac(1, 2, std::hint::black_box(3), 4));
    });
    g.finish();
}

criterion_group!(benches, bench_dss_checksum, bench_sha1);
criterion_main!(benches);
