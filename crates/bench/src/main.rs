//! `repro` — regenerate every table and figure of the NSDI 2012 MPTCP
//! paper from the simulated reproduction.
//!
//! ```text
//! repro <experiment> [--quick]
//!
//! experiments:
//!   fig3    goodput vs MSS, DSM checksum on/off (10 Gbps model)
//!   fig4    throughput vs receive buffer, WiFi+3G, mechanisms M1/M2
//!   fig5    memory use vs configured buffer (autotuning, capping)
//!   fig6a   WiFi + weak 3G buffer sweep
//!   fig6b   1 Gbps + 100 Mbps buffer sweep
//!   fig6c   three 1 Gbps links buffer sweep
//!   fig7    application-delay PDF (8 KB blocks, 200 KB buffers)
//!   fig8    receiver CPU load of the reorder algorithms
//!   fig9    "real" 2 Mbps WiFi + 2 Mbps 3G buffer sweep
//!   fig10   connection-setup latency PDF (wall-clock measurement)
//!   fig11   HTTP requests/sec vs file size (TCP / bonding / MPTCP)
//!   mbox    the §3 middlebox × design survival matrix
//!   telemetry  one rwnd-limited MPTCP run: counter table + JSON report
//!   trace   one traced run: time-series JSONL/CSV, MPTCP-aware packet
//!           capture, gnuplot timeline (scenarios: fig4, fig9, fallback)
//!   chaos   fault injection: single-path blackout survival + recovery,
//!           all-paths abort with a typed reason, randomized seed sweep
//!   handover  WiFi -> cellular migration over a pre-opened backup
//!           subflow; the PM reacts to the interface withdrawal in zero
//!           time, so the app-visible stall stays under one minimum RTO
//!   all     run everything
//!
//! real-network (UDP-encapsulated MPTCP, crates/runtime):
//!   serve       serve fetch requests on N UDP ports (one per path);
//!               `--admin H:P` opens the introspection socket
//!   fetch       connect over every listed path, transfer, verify bytes
//!   wire-bench  loopback runtime throughput, writes BENCH_wire.json
//!               (including per-phase event-loop timings)
//!
//! live introspection (clients of `serve --admin`):
//!   stat        one admin command, one response: `repro stat H:P conns`
//!               is `ss -M` for this stack; `--validate` checks a
//!               `metrics` scrape against the Prometheus text format
//!   top         live health/loop-phase/connection view, refreshed every
//!               `--interval-ms` (or one frame with `--once`)
//!
//! performance memory:
//!   perf        hot-path microbenchmarks (codec, checksum, reorder) plus
//!               one loopback wire transfer; writes BENCH_perf.json, or
//!               with `--check BASELINE` fails on regression (the CI
//!               perf gate; tolerance via REPRO_PERF_TOLERANCE)
//! ```
//!
//! `--quick` shrinks sweeps for a fast smoke run.
//!
//! Every experiment accepts `--cc <reno|lia|olia|cubic>`,
//! `--sched <minrtt|rr|redundant|blest>` and
//! `--pm <default|fullmesh|backup|signal>` to pick the
//! congestion-control algorithm, packet scheduler and path-manager
//! policy (defaults: `lia`, `minrtt`, `default` — the paper's
//! deployable configuration), e.g.
//! `repro fig9 --cc olia --sched redundant --pm fullmesh`.
//!
//! `trace` takes a scenario plus `--out DIR` (default `trace_out/`) and
//! `--fail-on-drops` (exit nonzero if any bounded ring overwrote records —
//! the CI guard), e.g. `repro trace fig9 --out trace_out/`.
//!
//! `chaos` takes `--out DIR` (default `chaos_out/`), `--seed-sweep N`
//! (randomized fault schedules to run, default 4) and
//! `--fail-on-invariant` (exit nonzero when any invariant — every byte
//! delivered exactly once, no deadlock, abort only typed and only when
//! all paths stay down — is violated), e.g.
//! `repro chaos --seed-sweep 8 --fail-on-invariant`.
//!
//! `handover` takes `--out DIR` (default `handover_out/`) and
//! `--fail-on-stall` (exit nonzero when any migration invariant — backup
//! pre-opened, REMOVE_ADDR sent, MP_PRIO promotion, app stall within one
//! minimum RTO, no timer fires on the surviving path — is violated),
//! e.g. `repro handover --fail-on-stall`.

mod admin_cli;
mod alloc_meter;
mod perf_cli;
mod runtime_cli;

use mptcp_harness::experiments::common::Policy;
use mptcp_harness::experiments::*;
use mptcp_netsim::Duration;

const SEED: u64 = 20120425; // NSDI'12 presentation date

/// Remove `name <value>` from `args`, returning the value.
fn take_value_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        eprintln!("{name} needs a value");
        std::process::exit(2);
    }
    args.remove(i);
    Some(args.remove(i))
}

/// Parse the global `--cc` / `--sched` / `--pm` flags into a [`Policy`].
fn parse_policy(args: &mut Vec<String>) -> Policy {
    let mut policy = Policy::default();
    if let Some(cc) = take_value_flag(args, "--cc") {
        policy.cc = cc.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    if let Some(sched) = take_value_flag(args, "--sched") {
        policy.sched = sched.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    if let Some(pm) = take_value_flag(args, "--pm") {
        policy.pm = pm.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    policy
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let policy = parse_policy(&mut args);
    let quick = args.iter().any(|a| a == "--quick");
    let which = args.first().map(String::as_str).unwrap_or("all");

    match which {
        "fig3" => fig3(),
        "fig4" => fig4(quick, policy),
        "fig5" => fig5(quick, policy),
        "fig6a" => fig6(fig6_scenarios::Panel::WeakCellular, quick, policy),
        "fig6b" => fig6(fig6_scenarios::Panel::Asymmetric, quick, policy),
        "fig6c" => fig6(fig6_scenarios::Panel::Symmetric3, quick, policy),
        "fig7" => fig7(quick, policy),
        "fig8" => fig8(policy),
        "fig9" => fig9(quick, policy),
        "fig10" => fig10(quick),
        "fig11" => fig11(quick, policy),
        "mbox" => mbox_matrix(policy),
        "telemetry" => telemetry_report(quick, policy),
        "trace" => trace_run(&args, policy),
        "chaos" => chaos_run(&args, policy),
        "handover" => handover_run(&args, policy),
        "serve" => runtime_cli::serve(&args),
        "fetch" => runtime_cli::fetch(&args),
        "wire-bench" => runtime_cli::wire_bench(&args),
        "stat" => admin_cli::stat(&args),
        "top" => admin_cli::top(&args),
        "perf" => perf_cli::perf(&args),
        "all" => {
            mbox_matrix(policy);
            telemetry_report(quick, policy);
            fig3();
            fig4(quick, policy);
            fig5(quick, policy);
            fig6(fig6_scenarios::Panel::WeakCellular, quick, policy);
            fig6(fig6_scenarios::Panel::Asymmetric, quick, policy);
            fig6(fig6_scenarios::Panel::Symmetric3, quick, policy);
            fig7(quick, policy);
            fig8(policy);
            fig9(quick, policy);
            fig10(quick);
            fig11(quick, policy);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Note a non-default policy under the header so sweeps are self-labelling.
fn print_policy(policy: Policy) {
    if policy != Policy::default() {
        println!(
            "(policy: cc={}, scheduler={}, pm={})",
            policy.cc, policy.sched, policy.pm
        );
    }
}

fn fig3() {
    header("Figure 3: goodput vs MSS, DSM checksum on/off (10 Gbps)");
    let measured = fig3_checksum::calibrate();
    println!(
        "this machine: per-packet {:.0} ns, checksum {:.3} ns/byte — modern CPUs\n         checksum at >10 GB/s, so the 2012 bottleneck vanishes here. Both views:",
        measured.t_pkt * 1e9,
        measured.t_byte * 1e9
    );
    for (label, cal) in [
        (
            "paper-era Xeon calibration",
            fig3_checksum::Calibration::PAPER_ERA,
        ),
        ("this machine (measured)", measured),
    ] {
        println!("\n[{label}]");
        println!(
            "{:>6}  {:>14}  {:>14}  {:>7}",
            "MSS", "no-cksum Gbps", "cksum Gbps", "loss%"
        );
        for r in fig3_checksum::run(cal, &fig3_checksum::default_msss()) {
            let loss = 100.0 * (1.0 - r.checksum_gbps / r.no_checksum_gbps.max(1e-9));
            println!(
                "{:>6}  {:>14.2}  {:>14.2}  {:>6.1}%",
                r.mss, r.no_checksum_gbps, r.checksum_gbps, loss
            );
        }
    }
}

fn fig4(quick: bool, policy: Policy) {
    header("Figure 4: throughput vs receive buffer (WiFi 8M/20ms + 3G 2M/150ms)");
    print_policy(policy);
    let bufs = if quick {
        vec![100_000, 200_000, 400_000, 1_000_000]
    } else {
        fig4_rcvbuf::default_bufs()
    };
    let rows = fig4_rcvbuf::sweep_with(&bufs, SEED, policy);
    print!("{:>9}", "buf KB");
    for v in fig4_rcvbuf::variants() {
        print!("  {:>16}", v.label());
    }
    println!("  {:>13}", "M1 thruput");
    for row in &rows {
        print!("{:>9}", row.buf / 1000);
        let mut m1_thru = 0.0;
        for (v, r) in &row.results {
            print!("  {:>13.2} Mb", r.goodput_mbps);
            if *v == common::Variant::MptcpM1 {
                m1_thru = r.throughput_mbps;
            }
        }
        println!("  {:>10.2} Mb", m1_thru);
    }
    let tcp3g = fig4_rcvbuf::run_tcp_3g(500_000, SEED);
    println!("(TCP over 3G at 500 KB: {:.2} Mbps)", tcp3g.goodput_mbps);
    // The tightest buffer is where M1/M2 earn their keep; show the counters.
    if let Some(row) = rows.first() {
        if let Some((_, r)) = row
            .results
            .iter()
            .find(|(v, _)| *v == common::Variant::MptcpM12)
        {
            println!();
            println!("MPTCP+M1,2 telemetry at {} KB:", row.buf / 1000);
            print!("{}", r.telemetry.render_table());
        }
    }
}

fn fig5(quick: bool, policy: Policy) {
    header("Figure 5: memory used vs configured receive buffer (autotuning)");
    print_policy(policy);
    let bufs = if quick {
        vec![200_000, 600_000, 1_000_000]
    } else {
        fig5_memory::default_bufs()
    };
    let rows = fig5_memory::sweep_with(&bufs, SEED, policy);
    if let Some(first) = rows.first() {
        print!("{:>9}", "buf KB");
        for (label, _, _) in &first.results {
            print!("  {:>22}", label);
        }
        println!();
    }
    for row in &rows {
        print!("{:>9}", row.buf / 1000);
        for (_, smem, rmem) in &row.results {
            print!("  {:>9.0}/{:>9.0} B", smem, rmem);
        }
        println!();
    }
    println!("(cells are mean sender/receiver memory)");
}

fn fig6(panel: fig6_scenarios::Panel, quick: bool, policy: Policy) {
    header(&format!("Figure 6 {:?}: goodput vs buffer size", panel));
    print_policy(policy);
    let mut bufs = panel.default_bufs();
    if quick {
        bufs.truncate(3);
    }
    let rows = fig6_scenarios::sweep_with(panel, &bufs, SEED, policy);
    if let Some(first) = rows.first() {
        print!("{:>9}", "buf KB");
        for (label, _) in &first.results {
            print!("  {:>20}", label);
        }
        println!();
    }
    for row in &rows {
        print!("{:>9}", row.buf / 1000);
        for (_, g) in &row.results {
            print!("  {:>17.2} Mb", g);
        }
        println!();
    }
}

fn fig7(quick: bool, policy: Policy) {
    header("Figure 7: application-delay PDF (8 KB blocks, 200 KB buffers)");
    print_policy(policy);
    let dur = if quick {
        Duration::from_secs(10)
    } else {
        Duration::from_secs(30)
    };
    let curves = fig7_appdelay::run_with(200_000, dur, SEED, policy);
    println!(
        "{:>16}  {:>8}  {:>8}  {:>8}  {:>8}",
        "curve", "mean ms", "p50 ms", "p95 ms", "p99 ms"
    );
    for c in &curves {
        println!(
            "{:>16}  {:>8.1}  {:>8.1}  {:>8.1}  {:>8.1}",
            c.label,
            c.stats.mean().as_secs_f64() * 1e3,
            c.stats.quantile(0.5).as_secs_f64() * 1e3,
            c.stats.quantile(0.95).as_secs_f64() * 1e3,
            c.stats.quantile(0.99).as_secs_f64() * 1e3,
        );
    }
    println!();
    println!("PDF (50 ms bins, % of blocks):");
    print!("{:>16}", "bin");
    for ms in (0..450).step_by(50) {
        print!("  {:>5}", ms);
    }
    println!();
    for c in &curves {
        print!("{:>16}", c.label);
        for (_, p) in c
            .stats
            .pdf(Duration::from_millis(50), Duration::from_millis(400))
        {
            print!("  {:>5.1}", p);
        }
        println!();
    }
}

fn fig8(policy: Policy) {
    header("Figure 8: receiver CPU load by reorder algorithm (2 x 1 Gbps)");
    print_policy(policy);
    println!(
        "{:>14}  {:>9}  {:>8}  {:>11}  {:>9}  {:>12}",
        "algorithm", "subflows", "CPU %", "ops/packet", "hit rate", "goodput Mbps"
    );
    for r in fig8_reorder::run_with(SEED, policy) {
        println!(
            "{:>14}  {:>9}  {:>8.1}  {:>11.2}  {:>8.0}%  {:>12.0}",
            r.algo,
            r.subflows,
            r.cpu_util,
            r.ops_per_pkt,
            r.hit_rate * 100.0,
            r.goodput_mbps
        );
    }
}

fn fig9(quick: bool, policy: Policy) {
    header("Figure 9: MPTCP over real-like 3G and capped WiFi (both 2 Mbps)");
    print_policy(policy);
    let bufs = if quick {
        vec![100_000, 500_000]
    } else {
        fig9_wifi3g::default_bufs()
    };
    let rows = fig9_wifi3g::sweep_with(&bufs, SEED, policy);
    if let Some(first) = rows.first() {
        print!("{:>9}", "buf KB");
        for (label, _) in &first.results {
            print!("  {:>16}", label);
        }
        println!();
    }
    for row in &rows {
        print!("{:>9}", row.buf / 1000);
        for (_, g) in &row.results {
            print!("  {:>13.2} Mb", g);
        }
        println!();
    }
}

fn fig10(quick: bool) {
    header("Figure 10: SYN->SYN/ACK latency (wall clock, this machine)");
    let trials = if quick { 2_000 } else { 20_000 };
    let rows = fig10_handshake::run(trials, SEED);
    println!("{:>28}  {:>10}", "configuration", "median us");
    for r in &rows {
        println!("{:>28}  {:>10.2}", r.label, r.median_us());
    }
}

fn fig11(quick: bool, policy: Policy) {
    header("Figure 11: HTTP requests/sec vs transfer size (closed loop)");
    print_policy(policy);
    let mut cfg = fig11_http::Config::default();
    let mut sizes = fig11_http::default_sizes();
    if quick {
        cfg.clients = 4;
        cfg.duration = Duration::from_secs(2);
        sizes = vec![4_096, 30_000, 100_000, 300_000];
    }
    println!(
        "({} clients, 2 x {} Mbps links, {}s per point)",
        cfg.clients,
        cfg.link_mbps,
        cfg.duration.as_secs()
    );
    let rows = fig11_http::sweep_with(cfg, &sizes, SEED, policy);
    if let Some(first) = rows.first() {
        print!("{:>9}", "size KB");
        for (label, _) in &first.results {
            print!("  {:>13}", label);
        }
        println!();
    }
    for row in &rows {
        print!("{:>9}", row.file_size / 1000);
        for (_, rps) in &row.results {
            print!("  {:>8.0} req/s", rps);
        }
        println!();
    }
}

fn telemetry_report(quick: bool, policy: Policy) {
    header("Telemetry: MPTCP+M1,2, WiFi+3G, 200 KB receive buffer");
    print_policy(policy);
    let measure = if quick {
        Duration::from_secs(5)
    } else {
        common::MEASURE
    };
    let r = common::run_bulk_with(
        common::Variant::MptcpM12,
        200_000,
        common::wifi_3g_paths(),
        common::WARMUP,
        measure,
        SEED,
        policy,
    );
    println!(
        "goodput {:.2} Mbps, throughput {:.2} Mbps",
        r.goodput_mbps, r.throughput_mbps
    );
    print!("{}", r.telemetry.render_table());
    let report =
        mptcp_harness::RunReport::new("telemetry", common::Variant::MptcpM12.label(), r.telemetry)
            .policy(policy.cc.name(), policy.sched.name(), policy.pm.name())
            .metric("goodput_mbps", r.goodput_mbps)
            .metric("throughput_mbps", r.throughput_mbps)
            .metric("sender_mem", r.sender_mem)
            .metric("receiver_mem", r.receiver_mem);
    println!();
    println!("JSON report:");
    println!("{}", mptcp_harness::to_json_lines(&[report]));
}

fn trace_run(args: &[String], policy: Policy) {
    use mptcp_harness::experiments::trace as tr;
    use mptcp_telemetry::TraceWriter;

    let mut scenario = tr::TraceScenario::Fig9;
    let mut out_dir = std::path::PathBuf::from("trace_out");
    let mut fail_on_drops = false;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_dir = it
                    .next()
                    .map(Into::into)
                    .unwrap_or_else(|| usage_trace("--out needs a directory"))
            }
            "--fail-on-drops" => fail_on_drops = true,
            "--quick" => {}
            s => {
                scenario =
                    tr::TraceScenario::parse(s).unwrap_or_else(|| usage_trace("unknown scenario"))
            }
        }
    }

    header(&format!(
        "Trace: {} — {}",
        scenario.name(),
        scenario.describe()
    ));
    print_policy(policy);
    let art = tr::run_with(scenario, SEED, policy);
    let r = &art.run;
    println!(
        "goodput {:.2} Mbps, throughput {:.2} Mbps{}",
        r.bulk.goodput_mbps,
        r.bulk.throughput_mbps,
        if r.bulk.fell_back { " (fell back)" } else { "" }
    );
    println!(
        "trace: {} records retained of {} ({} dropped), {} spans, subflows {:?}",
        r.trace.records.len(),
        r.trace.total,
        r.trace.dropped_samples,
        r.trace.spans().count(),
        r.trace.subflow_ids()
    );
    let mut span_counts = std::collections::BTreeMap::new();
    for (_, _, kind) in r.trace.spans() {
        *span_counts.entry(kind.name()).or_insert(0u64) += 1;
    }
    for (kind, n) in &span_counts {
        println!("  span {kind}: {n}");
    }
    println!(
        "capture: {} packets retained of {} ({} dropped)",
        r.capture.records.len(),
        r.capture.total,
        r.capture.dropped_records
    );

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let stem = scenario.name();
    let files = [
        (
            format!("{stem}_trace.jsonl"),
            TraceWriter::to_jsonl(&r.trace),
        ),
        (format!("{stem}_trace.csv"), TraceWriter::to_csv(&r.trace)),
        (format!("{stem}_pcap.jsonl"), r.capture.to_jsonl()),
        (format!("{stem}_timeline.dat"), tr::timeline_dat(&r.trace)),
        (
            format!("{stem}_report.json"),
            mptcp_harness::to_json_lines(std::slice::from_ref(&art.report)),
        ),
    ];
    for (name, contents) in &files {
        let path = out_dir.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }

    let dropped = r.trace.dropped_samples + r.capture.dropped_records;
    if fail_on_drops && dropped > 0 {
        eprintln!(
            "FAIL: {dropped} records dropped by bounded rings \
             (trace {}, capture {}) — raise capacities",
            r.trace.dropped_samples, r.capture.dropped_records
        );
        std::process::exit(1);
    }
}

fn chaos_run(args: &[String], policy: Policy) {
    use mptcp_harness::experiments::{chaos, trace as tr};
    use mptcp_telemetry::TraceWriter;

    let mut out_dir = std::path::PathBuf::from("chaos_out");
    let mut sweep_n: u64 = 4;
    let mut fail_on_invariant = false;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_dir = it
                    .next()
                    .map(Into::into)
                    .unwrap_or_else(|| usage_chaos("--out needs a directory"))
            }
            "--seed-sweep" => {
                sweep_n = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage_chaos("--seed-sweep needs a count"))
            }
            "--fail-on-invariant" => fail_on_invariant = true,
            "--quick" => sweep_n = sweep_n.min(2),
            other => usage_chaos(&format!("unknown argument: {other}")),
        }
    }

    header("Chaos: fault injection, path failure and break-before-make recovery");
    print_policy(policy);
    let art = chaos::run_with(SEED, sweep_n, policy);

    let b = &art.blackout;
    println!("[blackout] WiFi path dark for 3 s at t=1 s, continuous bulk over WiFi+3G");
    println!(
        "  delivered: {} KB before, {} KB during (on 3G), {} KB after restore",
        b.delivered_before / 1000,
        b.delivered_during / 1000,
        b.delivered_after / 1000
    );
    println!(
        "  path failures {}, recoveries {}, reinjected chunks {}, final state {:?}",
        b.path_failures, b.path_recoveries, b.reinjections, b.final_state
    );
    for ev in &b.telemetry.events {
        match ev.kind {
            mptcp_telemetry::EventKind::PathSuspect { .. }
            | mptcp_telemetry::EventKind::PathFailed { .. }
            | mptcp_telemetry::EventKind::PathRecovered { .. } => {
                println!("  {:>9.3} s  {:?}", ev.at_ns as f64 / 1e9, ev.kind)
            }
            _ => {}
        }
    }
    for f in &b.faults {
        println!(
            "  {:>9.3} s  fault {} on path {}",
            f.at.0 as f64 / 1e9,
            f.name,
            f.path
        );
    }

    let ap = &art.all_paths;
    println!();
    println!(
        "[all-paths] every path dark at t=1 s, abort deadline {} s",
        ap.abort_deadline.as_secs()
    );
    match (ap.abort, ap.aborted_at_s) {
        (Some(r), Some(t)) => println!("  aborted at {t:.3} s: {r}"),
        (r, t) => println!("  abort {r:?} at {t:?}"),
    }

    println!();
    println!(
        "[sweep] {sweep_n} randomized fault schedules, {} MB each",
        6
    );
    println!(
        "{:>12}  {:>12}  {:>7}  {:>9}  {:>8}",
        "seed", "delivered", "faults", "elapsed", "verdict"
    );
    for run in &art.sweep {
        println!(
            "{:>12}  {:>9} KB  {:>7}  {:>7.1} s  {:>8}",
            run.seed,
            run.delivered / 1000,
            run.faults.len(),
            run.elapsed_s,
            if run.violations.is_empty() {
                "ok"
            } else {
                "VIOLATED"
            }
        );
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let report =
        mptcp_harness::RunReport::new("chaos", "blackout 3s, WiFi+3G", b.telemetry.clone())
            .policy(policy.cc.name(), policy.sched.name(), policy.pm.name())
            .metric("delivered_during_blackout", b.delivered_during as f64)
            .metric("path_failures", b.path_failures as f64)
            .metric("path_recoveries", b.path_recoveries as f64)
            .metric("reinjections", b.reinjections as f64)
            .trace(&b.trace);
    let files = [
        (
            "chaos_trace.jsonl".to_string(),
            TraceWriter::to_jsonl(&b.trace),
        ),
        ("chaos_timeline.dat".to_string(), tr::timeline_dat(&b.trace)),
        (
            "chaos_report.json".to_string(),
            mptcp_harness::to_json_lines(std::slice::from_ref(&report)),
        ),
    ];
    for (name, contents) in &files {
        let path = out_dir.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }

    let violations = art.violations();
    if !violations.is_empty() {
        println!();
        for v in &violations {
            eprintln!("INVARIANT VIOLATED: {v}");
        }
        if fail_on_invariant {
            std::process::exit(1);
        }
    }
}

fn usage_chaos(err: &str) -> ! {
    eprintln!("{err}\nusage: repro chaos [--out DIR] [--seed-sweep N] [--fail-on-invariant]");
    std::process::exit(2);
}

fn handover_run(args: &[String], policy: Policy) {
    use mptcp_harness::experiments::{handover, trace as tr};
    use mptcp_telemetry::TraceWriter;

    let mut out_dir = std::path::PathBuf::from("handover_out");
    let mut fail_on_stall = false;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_dir = it
                    .next()
                    .map(Into::into)
                    .unwrap_or_else(|| usage_handover("--out needs a directory"))
            }
            "--fail-on-stall" => fail_on_stall = true,
            "--quick" => {}
            other => usage_handover(&format!("unknown argument: {other}")),
        }
    }

    header("Handover: WiFi withdrawn mid-stream, migrate onto pre-opened backup");
    print_policy(policy);
    let out = handover::run_with(SEED, policy);

    println!(
        "WiFi address withdrawn at t={:.1} s; backup subflow {} before the switch \
         ({} bytes on it — the scheduler's last-resort tier)",
        out.switch_at_s,
        if out.backup_preopened {
            "established"
        } else {
            "MISSING"
        },
        out.backup_bytes_before
    );
    println!(
        "  delivered: {} KB before, {} KB after (cellular only)",
        out.delivered_before / 1000,
        out.delivered_after / 1000
    );
    println!(
        "  longest app-visible gap {:.0} ms (budget {:.0} ms = one min RTO)",
        out.max_gap_ms, out.stall_budget_ms
    );
    println!(
        "  REMOVE_ADDR sent {}, MP_PRIO promotions {}",
        out.remove_addrs_sent, out.promotions
    );
    // The migration as the PM saw it: every decision is a trace span.
    for (at, _, kind) in out.trace.spans() {
        match kind {
            mptcp_telemetry::EventKind::PmOpenSubflow { .. }
            | mptcp_telemetry::EventKind::PmBackupPromoted { .. }
            | mptcp_telemetry::EventKind::RemoveAddr { .. } => {
                println!("  {:>9.3} s  {:?}", at as f64 / 1e9, kind)
            }
            _ => {}
        }
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let report = mptcp_harness::RunReport::new(
        "handover",
        "wifi withdrawn at 3s, pre-opened backup",
        out.telemetry.clone(),
    )
    .policy(policy.cc.name(), policy.sched.name(), policy.pm.name())
    .metric("max_gap_ms", out.max_gap_ms)
    .metric("stall_budget_ms", out.stall_budget_ms)
    .metric("delivered_before", out.delivered_before as f64)
    .metric("delivered_after", out.delivered_after as f64)
    .metric("backup_bytes_before_switch", out.backup_bytes_before as f64)
    .metric("promotions", out.promotions as f64)
    .trace(&out.trace);
    let files = [
        (
            "handover_trace.jsonl".to_string(),
            TraceWriter::to_jsonl(&out.trace),
        ),
        (
            "handover_timeline.dat".to_string(),
            tr::timeline_dat(&out.trace),
        ),
        (
            "handover_report.json".to_string(),
            mptcp_harness::to_json_lines(std::slice::from_ref(&report)),
        ),
    ];
    for (name, contents) in &files {
        let path = out_dir.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }

    if !out.violations.is_empty() {
        println!();
        for v in &out.violations {
            eprintln!("HANDOVER VIOLATED: {v}");
        }
        if fail_on_stall {
            std::process::exit(1);
        }
    }
}

fn usage_handover(err: &str) -> ! {
    eprintln!("{err}\nusage: repro handover [--out DIR] [--fail-on-stall]");
    std::process::exit(2);
}

fn usage_trace(err: &str) -> ! {
    eprintln!("{err}\nusage: repro trace [fig4|fig9|fallback] [--out DIR] [--fail-on-drops]");
    std::process::exit(2);
}

fn mbox_matrix(policy: Policy) {
    header("S3/S4.1: middlebox x design survival matrix (200 KB transfer)");
    print_policy(policy);
    println!(
        "{:>20}  {:>22}  {:>22}  {:>22}",
        "middlebox", "MPTCP", "strawman (striped)", "TCP"
    );
    let cells = mbox::matrix_with(SEED, policy);
    for chunk in cells.chunks(3) {
        print!("{:>20}", chunk[0].mbox.label());
        for cell in chunk {
            let txt = match cell.outcome {
                mbox::Outcome::Ok => format!("ok {:.1} Mbps", cell.goodput_mbps),
                mbox::Outcome::FellBack => format!("fell back {:.1} Mbps", cell.goodput_mbps),
                mbox::Outcome::Stalled(p) => format!("STALLED {p:.0}%"),
            };
            print!("  {:>22}", txt);
        }
        println!();
    }
}
