//! Optional process-wide allocation meter.
//!
//! With the `alloc-count` feature the binary's global allocator is
//! replaced by a counting wrapper around the system allocator, and
//! [`bytes_allocated`] reports cumulative allocated bytes (allocations
//! plus realloc growth; frees are not subtracted — the meter measures
//! allocator traffic, not live heap). Without the feature the meter
//! reports `None` and costs nothing.
//!
//! `repro wire-bench` uses the delta across a transfer to publish
//! `alloc_bytes_per_mib` in `BENCH_wire.json`:
//!
//! ```text
//! cargo run --release --features alloc-count --bin repro -- wire-bench --quick
//! ```

#[cfg(feature = "alloc-count")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static BYTES: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: Counting = Counting;

    pub fn bytes_allocated() -> Option<u64> {
        Some(BYTES.load(Ordering::Relaxed))
    }
}

#[cfg(not(feature = "alloc-count"))]
mod imp {
    pub fn bytes_allocated() -> Option<u64> {
        None
    }
}

pub use imp::bytes_allocated;
