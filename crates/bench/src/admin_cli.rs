//! `repro stat` / `repro top`: operator-side clients for the runtime's
//! admin socket (see `mptcp_runtime::admin`).
//!
//! `stat` is the one-shot tool: send a single stat-protocol command and
//! print the `.`-terminated response — `repro stat 127.0.0.1:9090 conns`
//! is the moral equivalent of `ss -M`. With `--validate` the response is
//! run through the Prometheus exposition validator and the exit code
//! reports conformance, which is how CI checks a live scrape.
//!
//! `top` keeps one connection open and redraws health, loop-phase
//! timings, and the connection table every interval, like `top(1)` for
//! the event loop.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use mptcp_runtime::validate_exposition;

fn usage(cmd: &str, err: &str) -> ! {
    eprintln!("{err}");
    match cmd {
        "stat" => eprintln!("usage: repro stat <host:port> <command...> [--validate]"),
        _ => eprintln!("usage: repro top <host:port> [--interval-ms N] [--once]"),
    }
    std::process::exit(2);
}

fn parse_addr(cmd: &str, s: &str) -> SocketAddr {
    s.parse()
        .unwrap_or_else(|_| usage(cmd, &format!("bad address: {s}")))
}

fn connect(cmd: &str, addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("{cmd}: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    stream
}

/// Issue one stat-protocol command on an open connection and return the
/// response body (terminator stripped). `None` means the server closed.
fn request(stream: &mut TcpStream, cmd: &str) -> std::io::Result<Option<String>> {
    stream.write_all(cmd.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut resp = Vec::new();
    let mut tmp = [0u8; 65536];
    loop {
        match stream.read(&mut tmp) {
            Ok(0) => {
                if resp.is_empty() {
                    return Ok(None);
                }
                break;
            }
            Ok(n) => {
                resp.extend_from_slice(&tmp[..n]);
                if resp.ends_with(b"\n.\n") || resp == b".\n" {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    format!("no response to `{cmd}` within 10s"),
                ));
            }
            Err(e) => return Err(e),
        }
    }
    let text = String::from_utf8_lossy(&resp).into_owned();
    Ok(Some(text.strip_suffix(".\n").unwrap_or(&text).to_string()))
}

/// `repro stat`: one command, one response, exit.
pub fn stat(args: &[String]) {
    let mut addr: Option<SocketAddr> = None;
    let mut words: Vec<String> = Vec::new();
    let mut validate = false;
    for a in args.iter().skip(1) {
        match a.as_str() {
            "--validate" => validate = true,
            "--quick" => {}
            other if addr.is_none() => addr = Some(parse_addr("stat", other)),
            other => words.push(other.to_string()),
        }
    }
    let addr = addr.unwrap_or_else(|| usage("stat", "missing <host:port>"));
    if words.is_empty() {
        usage(
            "stat",
            "missing command (try: metrics, conns, health, profile)",
        );
    }
    let cmd = words.join(" ");

    let mut stream = connect("stat", addr);
    let body = match request(&mut stream, &cmd) {
        Ok(Some(body)) => body,
        Ok(None) => {
            eprintln!("stat: server closed the connection without responding");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("stat: {e}");
            std::process::exit(1);
        }
    };
    print!("{body}");
    if !body.ends_with('\n') {
        println!();
    }
    if validate {
        match validate_exposition(&body) {
            Ok(exp) => eprintln!(
                "stat: exposition valid — {} series, {} families",
                exp.series.len(),
                exp.types.len()
            ),
            Err(e) => {
                eprintln!("stat: INVALID exposition: {e}");
                std::process::exit(1);
            }
        }
    }
    if body.starts_with("ERR") {
        std::process::exit(1);
    }
}

/// `repro top`: redraw health + loop phases + connections every interval.
pub fn top(args: &[String]) {
    let mut addr: Option<SocketAddr> = None;
    let mut interval_ms: u64 = 1000;
    let mut once = false;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval-ms" => {
                interval_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("top", "--interval-ms needs a number"))
            }
            "--once" => once = true,
            "--quick" => once = true,
            other if addr.is_none() => addr = Some(parse_addr("top", other)),
            other => usage("top", &format!("unknown argument: {other}")),
        }
    }
    let addr = addr.unwrap_or_else(|| usage("top", "missing <host:port>"));

    let mut stream = connect("top", addr);
    loop {
        let mut frame = String::new();
        for cmd in ["health", "profile", "conns"] {
            match request(&mut stream, cmd) {
                Ok(Some(body)) => {
                    frame.push_str(&format!("── {cmd} ──\n"));
                    frame.push_str(&body);
                    frame.push('\n');
                }
                Ok(None) => {
                    eprintln!("top: server closed the connection");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("top: {e}");
                    std::process::exit(1);
                }
            }
        }
        if once {
            print!("{frame}");
            return;
        }
        // Clear screen + home, then the fresh frame: flicker-free enough
        // for a line-oriented protocol without pulling in a TUI library.
        print!("\x1b[2J\x1b[H{} — refresh {}ms\n{frame}", addr, interval_ms);
        std::io::stdout().flush().ok();
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}
