//! `repro serve` / `repro fetch` / `repro wire-bench`: the real-network
//! subcommands, built on `mptcp-runtime`.
//!
//! `serve` and `fetch` are two halves of a real two-process demo: the
//! server multiplexes MPTCP-over-UDP connections on N fixed ports, the
//! client opens one subflow per path and verifies every received byte
//! against the deterministic keystream. `wire-bench` runs both ends
//! in-process (server on a thread, client on the main thread, kernel
//! loopback between them) and writes `BENCH_wire.json` with goodput and
//! event-loop latency numbers.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use mptcp::MptcpConfig;
use mptcp_runtime::{ClientRuntime, FetchClient, FetchServer, LoopConfig, ServerRuntime};

const DEFAULT_SIZE: u64 = 8 * 1024 * 1024;
const DEFAULT_SEED: u64 = 7;

fn usage(cmd: &str, err: &str) -> ! {
    eprintln!("{err}");
    match cmd {
        "serve" => eprintln!(
            "usage: repro serve [--host H] [--port P] [--paths N] [--once] [--timeout-secs S] \
             [--admin H:P]"
        ),
        "fetch" => eprintln!(
            "usage: repro fetch --connect H:P[,H:P...] [--size BYTES] [--seed S] \
             [--out FILE] [--timeout-secs S]"
        ),
        _ => eprintln!("usage: repro wire-bench [--size BYTES] [--paths N] [--out FILE] [--quick]"),
    }
    std::process::exit(2);
}

fn next_val<'a>(cmd: &str, flag: &str, it: &mut impl Iterator<Item = &'a String>) -> &'a str {
    match it.next() {
        Some(v) => v.as_str(),
        None => usage(cmd, &format!("{flag} needs a value")),
    }
}

/// `repro serve`: bind `--paths` consecutive UDP ports starting at
/// `--port` and serve fetch requests until killed (or after one
/// connection with `--once`). `--admin H:P` opens the introspection
/// socket and turns on the loop-phase profiler, so `repro top`,
/// `repro stat`, and any Prometheus scraper can watch the loop live.
pub fn serve(args: &[String]) {
    let mut host = "127.0.0.1".to_string();
    let mut port: u16 = 19000;
    let mut n_paths: usize = 2;
    let mut once = false;
    let mut timeout_secs: u64 = 0;
    let mut admin: Option<SocketAddr> = None;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--host" => host = next_val("serve", "--host", &mut it).to_string(),
            "--admin" => {
                admin = Some(
                    next_val("serve", "--admin", &mut it)
                        .parse()
                        .unwrap_or_else(|_| usage("serve", "--admin needs host:port")),
                )
            }
            "--port" => {
                port = next_val("serve", "--port", &mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("serve", "--port needs a number"))
            }
            "--paths" => {
                n_paths = next_val("serve", "--paths", &mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("serve", "--paths needs a number"))
            }
            "--once" => once = true,
            "--timeout-secs" => {
                timeout_secs = next_val("serve", "--timeout-secs", &mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("serve", "--timeout-secs needs a number"))
            }
            "--quick" => {}
            other => usage("serve", &format!("unknown argument: {other}")),
        }
    }
    if n_paths == 0 || (port != 0 && usize::from(u16::MAX - port) < n_paths - 1) {
        usage("serve", "--paths/--port out of range");
    }

    let binds: Vec<SocketAddr> = (0..n_paths)
        .map(|i| {
            let p = if port == 0 { 0 } else { port + i as u16 };
            format!("{host}:{p}")
                .parse()
                .unwrap_or_else(|_| usage("serve", "bad --host"))
        })
        .collect();
    let mut server = ServerRuntime::bind(
        MptcpConfig::default(),
        crate::SEED,
        &binds,
        Box::new(|| Box::new(FetchServer::new())),
        LoopConfig {
            profile: admin.is_some(),
            ..LoopConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot bind: {e}");
        std::process::exit(1);
    });
    for i in 0..n_paths {
        println!("serve: path {} on {}", i, server.local_addr(i).unwrap());
    }
    if let Some(addr) = admin {
        let bound = server.enable_admin(addr).unwrap_or_else(|e| {
            eprintln!("cannot bind admin socket {addr}: {e}");
            std::process::exit(1);
        });
        println!("serve: admin on {bound}");
    }

    let start = Instant::now();
    loop {
        if !server.step() {
            server.idle_wait();
        }
        if once && server.served() >= 1 {
            break;
        }
        if timeout_secs > 0 && start.elapsed() > Duration::from_secs(timeout_secs) {
            eprintln!(
                "serve: timed out after {timeout_secs}s ({} served)",
                server.served()
            );
            std::process::exit(1);
        }
    }
    println!(
        "serve: done — {} accepted, {} served, {{{}}}",
        server.accepted(),
        server.served(),
        server.stats().json_fields()
    );
}

/// `repro fetch`: connect over every listed path, transfer, verify.
pub fn fetch(args: &[String]) {
    let mut connect: Vec<SocketAddr> = Vec::new();
    let mut size = DEFAULT_SIZE;
    let mut seed = DEFAULT_SEED;
    let mut out: Option<std::path::PathBuf> = None;
    let mut timeout_secs: u64 = 120;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => {
                connect = next_val("fetch", "--connect", &mut it)
                    .split(',')
                    .map(|s| {
                        s.parse()
                            .unwrap_or_else(|_| usage("fetch", "--connect: bad address"))
                    })
                    .collect()
            }
            "--size" => {
                size = next_val("fetch", "--size", &mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("fetch", "--size needs a number"))
            }
            "--seed" => {
                seed = next_val("fetch", "--seed", &mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("fetch", "--seed needs a number"))
            }
            "--out" => out = Some(next_val("fetch", "--out", &mut it).into()),
            "--timeout-secs" => {
                timeout_secs = next_val("fetch", "--timeout-secs", &mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("fetch", "--timeout-secs needs a number"))
            }
            "--quick" => {}
            other => usage("fetch", &format!("unknown argument: {other}")),
        }
    }
    if connect.is_empty() {
        usage("fetch", "--connect is required");
    }

    let binds: Vec<SocketAddr> = connect
        .iter()
        .map(|a| {
            if a.ip().is_loopback() {
                "127.0.0.1:0".parse().unwrap()
            } else {
                "0.0.0.0:0".parse().unwrap()
            }
        })
        .collect();
    let start = Instant::now();
    let mut client = ClientRuntime::connect(
        MptcpConfig::default(),
        crate::SEED,
        &binds,
        &connect,
        FetchClient::new(size, seed),
        LoopConfig::default(),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot bind: {e}");
        std::process::exit(1);
    });
    let result = client.run(Duration::from_secs(timeout_secs));
    let elapsed = start.elapsed().as_secs_f64();

    let app = client.app();
    let goodput_mbps = (app.received() as f64 * 8.0) / elapsed / 1e6;
    let iters = client
        .stats()
        .rec
        .counter(mptcp_telemetry::CounterId::RtLoopIterations) as f64;
    let json = format!(
        "{{\"bench\":\"fetch\",\"size_bytes\":{},\"received\":{},\"ok\":{},\
         \"checksum\":\"{:#018x}\",\"elapsed_s\":{:.3},\"goodput_mbps\":{:.2},\
         \"subflows\":{},\"loop_iters_per_sec\":{:.0},{}}}",
        size,
        app.received(),
        app.ok(),
        app.checksum(),
        elapsed,
        goodput_mbps,
        client.conn().subflows().len(),
        iters / elapsed,
        client.stats().json_fields()
    );
    println!("{json}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    match result {
        Ok(()) if client.app().ok() => {}
        Ok(()) => {
            eprintln!(
                "fetch: VERIFY FAILED — received {} of {size}, mismatch at {:?}",
                client.app().received(),
                client.app().mismatch_at()
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("fetch: {e}");
            std::process::exit(1);
        }
    }
}

/// Result of one in-process loopback transfer (see [`run_wire`]).
pub struct WireRun {
    pub goodput_mbps: f64,
    /// Full `BENCH_wire.json` document for this run.
    pub json: String,
}

/// Run both runtime ends in-process over kernel loopback: server on a
/// thread, client on the caller's thread. Used by `repro wire-bench` and
/// as the `wire_goodput_mbps` entry of `repro perf`.
pub fn run_wire(size: u64, n_paths: usize) -> WireRun {
    // Wire-realistic segments, big buffers: the benchmark measures the
    // runtime's datagram pipeline, so don't throttle it with small
    // windows (the stack's ACK clocking makes the standard MSS fastest).
    let cfg = MptcpConfig::builder()
        .buffers(4 * 1024 * 1024)
        .build()
        .expect("wire-bench config is valid");
    // Tight loop: on loopback the idle-sleep cap *is* the RTT, so shrink
    // it and raise the batch limits to measure the pipeline, not the nap.
    let loop_cfg = LoopConfig {
        egress_cap: 512,
        recv_batch: 256,
        idle_sleep: Duration::from_micros(50),
        // Phase timings ride along in BENCH_wire.json: ~one clock read
        // per phase per iteration, noise against 10k+ ns iterations.
        profile: true,
    };

    let loopback: Vec<SocketAddr> = (0..n_paths)
        .map(|_| "127.0.0.1:0".parse().unwrap())
        .collect();
    let mut server = ServerRuntime::bind(
        cfg.clone(),
        crate::SEED + 1,
        &loopback,
        Box::new(|| Box::new(FetchServer::new())),
        loop_cfg,
    )
    .expect("bind server");
    let addrs: Vec<SocketAddr> = (0..n_paths)
        .map(|i| server.local_addr(i).unwrap())
        .collect();
    let alloc_before = crate::alloc_meter::bytes_allocated();
    let server_thread = std::thread::spawn(move || {
        let ok = server.run_until_served(1, Duration::from_secs(300)).is_ok();
        (ok, format!("{{{}}}", server.stats().json_fields()))
    });

    let start = Instant::now();
    let mut client = ClientRuntime::connect(
        cfg,
        crate::SEED,
        &loopback,
        &addrs,
        FetchClient::new(size, DEFAULT_SEED),
        loop_cfg,
    )
    .expect("bind client");
    client
        .run(Duration::from_secs(300))
        .unwrap_or_else(|e| panic!("wire-bench transfer failed: {e}"));
    let elapsed = start.elapsed().as_secs_f64();
    assert!(client.app().ok(), "wire-bench payload failed verification");

    let (server_ok, server_stats) = server_thread.join().expect("server thread");
    assert!(server_ok, "server did not complete");

    // Whole-process allocation per MiB transferred (both ends), measured
    // only when the `alloc-count` feature installs the counting
    // allocator; `null` otherwise.
    let alloc_bytes_per_mib = match (alloc_before, crate::alloc_meter::bytes_allocated()) {
        (Some(a), Some(b)) => format!("{:.0}", (b - a) as f64 / (size as f64 / (1 << 20) as f64)),
        _ => "null".to_string(),
    };

    let iters = client
        .stats()
        .rec
        .counter(mptcp_telemetry::CounterId::RtLoopIterations) as f64;
    let goodput_mbps = (size as f64 * 8.0) / elapsed / 1e6;
    let json = format!(
        "{{\"bench\":\"wire\",\"size_bytes\":{},\"paths\":{},\"elapsed_s\":{:.3},\
         \"goodput_mbps\":{:.2},\"loop_iters_per_sec\":{:.0},\
         \"alloc_bytes_per_mib\":{},\"loop_phases\":{},\
         \"client\":{{{}}},\"server\":{}}}",
        size,
        n_paths,
        elapsed,
        goodput_mbps,
        iters / elapsed,
        alloc_bytes_per_mib,
        client.profiler().json_object(),
        client.stats().json_fields(),
        server_stats,
    );
    WireRun { goodput_mbps, json }
}

/// `repro wire-bench`: loopback throughput of the full runtime stack,
/// written to `BENCH_wire.json`.
pub fn wire_bench(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let mut size: u64 = if quick {
        8 * 1024 * 1024
    } else {
        32 * 1024 * 1024
    };
    let mut n_paths: usize = 2;
    let mut out = std::path::PathBuf::from("BENCH_wire.json");
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--size" => {
                size = next_val("wire-bench", "--size", &mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("wire-bench", "--size needs a number"))
            }
            "--paths" => {
                n_paths = next_val("wire-bench", "--paths", &mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("wire-bench", "--paths needs a number"))
            }
            "--out" => out = next_val("wire-bench", "--out", &mut it).into(),
            "--quick" => {}
            other => usage("wire-bench", &format!("unknown argument: {other}")),
        }
    }

    let run = run_wire(size, n_paths);
    println!("{}", run.json);
    if let Err(e) = std::fs::write(&out, &run.json) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("wrote {}", out.display());
}
