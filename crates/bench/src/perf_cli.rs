//! `repro perf` — the committed performance memory.
//!
//! Runs a fixed microbenchmark suite over the hot paths this codebase
//! optimizes (segment codec, DSS checksum, reorder queue) plus one real
//! loopback wire transfer, and writes the results to `BENCH_perf.json`.
//! That file is committed: it is the performance the repository claims,
//! and CI holds every change to it.
//!
//! ```text
//! repro perf [--quick] [--skip-wire] [--out FILE]      # measure + write
//! repro perf --check BASELINE [--quick] [--skip-wire]  # regression gate
//! ```
//!
//! Every entry is a rate (higher is better). In `--check` mode a run
//! fails when any entry lands below `baseline * (1 - tolerance)`; the
//! measured numbers are then written to `BENCH_perf.candidate.json` so a
//! genuine improvement (or an accepted trade-off) can be promoted to the
//! new baseline by copying the candidate over it (see README).
//!
//! The default tolerance is 10%, overridable with the
//! `REPRO_PERF_TOLERANCE` environment variable (e.g. `0.25` on noisy
//! shared hardware). The wire-transfer entry always checks at a floor of
//! 35%: loopback goodput on shared CI runners swings far more than the
//! CPU-bound microbenchmarks do.

use std::time::{Duration, Instant};

use bytes::Bytes;
use mptcp::reorder::make_queue;
use mptcp::ReorderAlgo;
use mptcp_packet::{
    checksum, DssMapping, Endpoint, FourTuple, MptcpOption, SeqNum, TcpFlags, TcpOption, TcpSegment,
};

/// Default baseline / output file.
const DEFAULT_OUT: &str = "BENCH_perf.json";
/// Where `--check` leaves the measured numbers on failure.
const CANDIDATE_OUT: &str = "BENCH_perf.candidate.json";
/// Default regression tolerance (fraction below baseline that fails).
const DEFAULT_TOLERANCE: f64 = 0.10;
/// Tolerance floor for the wire-transfer entry (loopback goodput is
/// scheduling-noise-bound, not CPU-bound).
const WIRE_TOLERANCE_FLOOR: f64 = 0.35;

struct Entry {
    name: &'static str,
    value: f64,
    /// Extra slack multiplier floor for noisy entries (0 = default).
    tolerance_floor: f64,
}

/// Best-of-rounds throughput: run `f` until each round spans at least
/// `min_time`, and report the fastest round's rate in `units/sec`.
fn rate(units_per_iter: f64, rounds: usize, min_time: Duration, mut f: impl FnMut()) -> f64 {
    let mut best = 0.0f64;
    let mut iters = 1u64;
    for _ in 0..rounds {
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let dt = t0.elapsed();
            if dt >= min_time {
                best = best.max(units_per_iter * iters as f64 / dt.as_secs_f64());
                break;
            }
            iters = iters.saturating_mul(2);
        }
    }
    best
}

/// The pre-optimization DSS checksum inner loop (16-bit big-endian
/// chunks), kept verbatim as the speedup yardstick for
/// `checksum_speedup_1500`.
fn byte_pair_sum(sum: u32, data: &[u8]) -> u32 {
    let mut s = sum;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        s = s.wrapping_add(u32::from(u16::from_be_bytes([c[0], c[1]])));
    }
    if let [b] = chunks.remainder() {
        s = s.wrapping_add(u32::from(u16::from_be_bytes([*b, 0])));
    }
    s
}

/// A wire-realistic bulk-data segment: DSS with mapping + checksum,
/// timestamps, 1400-byte payload.
fn bulk_segment() -> TcpSegment {
    let mut seg = TcpSegment::new(
        FourTuple {
            src: Endpoint::new(0x0a000001, 4242),
            dst: Endpoint::new(0x0a000002, 80),
        },
        SeqNum(1_000_000),
        SeqNum(500),
        TcpFlags::ACK,
    );
    seg.window = 1 << 20;
    seg.options.push(TcpOption::Mptcp(MptcpOption::Dss {
        data_ack: Some(9_000_000),
        mapping: Some(DssMapping {
            dsn: 1_000_000,
            subflow_seq: 1_000_000,
            len: 1400,
            checksum: Some(0xbeef),
        }),
        data_fin: false,
    }));
    seg.options.push(TcpOption::Timestamps { val: 77, ecr: 1 });
    seg.payload = Bytes::from(vec![0xa5u8; 1400]);
    seg
}

fn measure(quick: bool, skip_wire: bool) -> Vec<Entry> {
    let (rounds, min_time) = if quick {
        (2, Duration::from_millis(40))
    } else {
        (3, Duration::from_millis(200))
    };
    let mut entries = Vec::new();
    let mbs = |bytes_per_iter: usize, f: &mut dyn FnMut()| {
        rate(bytes_per_iter as f64 / 1e6, rounds, min_time, f)
    };

    // --- Codec: encode into a reused buffer, verified view-decode into a
    // reused segment (the runtime's steady-state pipeline). -------------
    let seg = bulk_segment();
    let mut out: Vec<u8> = Vec::with_capacity(2048);
    seg.encode_into(10, &mut out).expect("options fit");
    let frame_len = out.len();
    entries.push(Entry {
        name: "codec_encode_mbps",
        value: mbs(frame_len, &mut || {
            out.clear();
            seg.encode_into(10, &mut out).expect("options fit");
            std::hint::black_box(out.len());
        }),
        tolerance_floor: 0.0,
    });
    let wire = Bytes::from(seg.encode(10).expect("options fit"));
    let mut dec = TcpSegment::new(seg.tuple, SeqNum(0), SeqNum(0), TcpFlags::ACK);
    entries.push(Entry {
        name: "codec_decode_mbps",
        value: mbs(frame_len, &mut || {
            TcpSegment::decode_verified_view_into(&wire, 0x0a000001, 0x0a000002, 10, &mut dec)
                .expect("roundtrip verifies");
            std::hint::black_box(dec.payload.len());
        }),
        tolerance_floor: 0.0,
    });

    // --- Checksum: wide-word ones-complement at MTU and bulk sizes, plus
    // the speedup over the byte-pair loop it replaced. -------------------
    let buf_1500 = vec![0xa5u8; 1500];
    let buf_64k = vec![0x5au8; 65536];
    let wide_1500 = mbs(1500, &mut || {
        std::hint::black_box(checksum::ones_complement_add(0, &buf_1500));
    });
    entries.push(Entry {
        name: "checksum_1500_mbps",
        value: wide_1500,
        tolerance_floor: 0.0,
    });
    entries.push(Entry {
        name: "checksum_64k_mbps",
        value: mbs(65536, &mut || {
            std::hint::black_box(checksum::ones_complement_add(0, &buf_64k));
        }),
        tolerance_floor: 0.0,
    });
    let ref_1500 = mbs(1500, &mut || {
        std::hint::black_box(byte_pair_sum(0, &buf_1500));
    });
    entries.push(Entry {
        name: "checksum_speedup_1500",
        value: wide_1500 / ref_1500,
        tolerance_floor: 0.0,
    });

    // --- Reorder queue (the default AllShortcuts algorithm). ------------
    // In-order: batched contiguous runs, drained as they complete — the
    // common case after a multi-datagram socket drain.
    let chunk = Bytes::from(vec![0u8; 1460]);
    const RUN: u64 = 64;
    {
        let mut q = make_queue(ReorderAlgo::AllShortcuts);
        let mut rcv = 0u64;
        let mut batch: Vec<(u64, Bytes, usize)> = Vec::with_capacity(RUN as usize);
        entries.push(Entry {
            name: "reorder_inorder_msegs",
            value: rate(RUN as f64 / 1e6, rounds, min_time, || {
                for i in 0..RUN {
                    batch.push((rcv + i * 1460, chunk.clone(), 0));
                }
                q.insert_batch(&mut batch);
                while let Some((d, b)) = q.pop_ready(rcv) {
                    rcv = d + b.len() as u64;
                }
                std::hint::black_box(rcv);
            }),
            tolerance_floor: 0.0,
        });
    }
    // Adversarial: two subflows, the second's half arriving first so
    // every insert lands out of order, then the gap fills.
    {
        let mut q = make_queue(ReorderAlgo::AllShortcuts);
        let mut base = 0u64;
        entries.push(Entry {
            name: "reorder_adversarial_msegs",
            value: rate(RUN as f64 / 1e6, rounds, min_time, || {
                for k in 0..RUN / 2 {
                    q.insert(base + (RUN / 2 + k) * 1460, chunk.clone(), 1);
                }
                for k in (0..RUN / 2).rev() {
                    q.insert(base + k * 1460, chunk.clone(), 0);
                }
                let mut rcv = base;
                while let Some((d, b)) = q.pop_ready(rcv) {
                    rcv = d + b.len() as u64;
                }
                base = rcv;
                std::hint::black_box(base);
            }),
            tolerance_floor: 0.0,
        });
    }

    // --- Wire: one real loopback transfer through the full runtime. -----
    if !skip_wire {
        let size: u64 = if quick { 4 << 20 } else { 8 << 20 };
        let run = crate::runtime_cli::run_wire(size, 2);
        entries.push(Entry {
            name: "wire_goodput_mbps",
            value: run.goodput_mbps,
            tolerance_floor: WIRE_TOLERANCE_FLOOR,
        });
    }
    entries
}

fn to_json(entries: &[Entry]) -> String {
    let fields: Vec<String> = entries
        .iter()
        .map(|e| format!("\"{}\":{:.3}", e.name, e.value))
        .collect();
    format!(
        "{{\"bench\":\"perf\",\"tolerance_default\":{DEFAULT_TOLERANCE},\"entries\":{{{}}}}}\n",
        fields.join(",")
    )
}

/// Extract a bare JSON number following `"key":` (the baseline file is
/// machine-written flat JSON, so positional scanning is sufficient).
fn json_f64(s: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = s.find(&pat)? + pat.len();
    let rest = &s[i..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn tolerance() -> f64 {
    match std::env::var("REPRO_PERF_TOLERANCE") {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("REPRO_PERF_TOLERANCE must be a number (e.g. 0.25), got {v:?}");
            std::process::exit(2);
        }),
        Err(_) => DEFAULT_TOLERANCE,
    }
}

pub fn perf(args: &[String]) {
    let mut check: Option<std::path::PathBuf> = None;
    let mut out: Option<std::path::PathBuf> = None;
    let mut quick = false;
    let mut skip_wire = false;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => {
                check = Some(
                    it.next()
                        .unwrap_or_else(|| {
                            eprintln!("--check needs a baseline file");
                            std::process::exit(2);
                        })
                        .into(),
                )
            }
            "--out" => {
                out = Some(
                    it.next()
                        .unwrap_or_else(|| {
                            eprintln!("--out needs a file");
                            std::process::exit(2);
                        })
                        .into(),
                )
            }
            "--quick" => quick = true,
            "--skip-wire" => skip_wire = true,
            other => {
                eprintln!(
                    "unknown argument: {other}\n\
                     usage: repro perf [--quick] [--skip-wire] [--out FILE] [--check BASELINE]"
                );
                std::process::exit(2);
            }
        }
    }

    let entries = measure(quick, skip_wire);
    println!("perf: measured");
    for e in &entries {
        println!("  {:<28} {:>12.3}", e.name, e.value);
    }
    let json = to_json(&entries);

    let Some(baseline_path) = check else {
        let out = out.unwrap_or_else(|| DEFAULT_OUT.into());
        std::fs::write(&out, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", out.display());
            std::process::exit(1);
        });
        println!("wrote {}", out.display());
        return;
    };

    let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {}: {e}", baseline_path.display());
        std::process::exit(2);
    });
    let tol = tolerance();
    let mut failed = false;
    for e in &entries {
        let Some(b) = json_f64(&baseline, e.name) else {
            println!("  {:<28} (no baseline entry — skipped)", e.name);
            continue;
        };
        let entry_tol = tol.max(e.tolerance_floor);
        let floor = b * (1.0 - entry_tol);
        let verdict = if e.value < floor {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "  {:<28} {:>12.3}  baseline {:>12.3}  (-{:.0}% floor {:.3})  {}",
            e.name,
            e.value,
            b,
            entry_tol * 100.0,
            floor,
            verdict
        );
    }
    if failed {
        std::fs::write(CANDIDATE_OUT, &json).ok();
        eprintln!(
            "perf: REGRESSION against {} (tolerance {:.0}%; override with \
             REPRO_PERF_TOLERANCE). Measured numbers written to {CANDIDATE_OUT}; \
             if the change is intended, promote them to the baseline \
             (see README \"Refreshing the perf baseline\").",
            baseline_path.display(),
            tol * 100.0
        );
        std::process::exit(1);
    }
    println!("perf: no regression against {}", baseline_path.display());
}
