//! Scratch diagnostics (not part of the reproduction).

use mptcp::{CcAlgorithm, Mechanisms, MptcpConfig, SchedulerKind};
use mptcp_harness::hosts::{ClientApp, ServerApp};
use mptcp_harness::scenario::{Scenario, TransportKind};
use mptcp_netsim::{Duration, LinkCfg, Path};

fn main() {
    let buf: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500_000);
    let cc: CcAlgorithm = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("known cc algorithm"))
        .unwrap_or_default();
    let sched: SchedulerKind = std::env::args()
        .nth(3)
        .map(|a| a.parse().expect("known scheduler"))
        .unwrap_or_default();
    let cfg = MptcpConfig::builder()
        .buffers(buf)
        .mechanisms(Mechanisms::M1_2)
        .checksum(false)
        .cc(cc)
        .scheduler(sched)
        .build()
        .expect("valid config");
    let paths = vec![
        Path::symmetric(LinkCfg::wifi()),
        Path::symmetric(LinkCfg::threeg()),
    ];
    let mut sc = Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total: usize::MAX / 2,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        paths,
        20120425,
    );
    let print_links = |sc: &Scenario| {
        for (i, p) in sc.sim.paths.iter().enumerate() {
            println!(
                "  path{i}: fwd tx={} drops={} rand={} | rev tx={} drops={}",
                p.fwd.stats.tx_packets,
                p.fwd.stats.queue_drops,
                p.fwd.stats.random_drops,
                p.rev.stats.tx_packets,
                p.rev.stats.queue_drops
            );
        }
    };
    for step in 0..10 {
        sc.run_for(Duration::from_secs(2));
        let received = sc.server().app_bytes_received;
        let client = sc.client_mut();
        let conn = client.transport.as_mptcp().unwrap();
        println!(
            "t={}s received={}KB stats={:?}",
            (step + 1) * 2,
            received / 1000,
            conn.stats
        );
        for (i, sf) in conn.subflows().iter().enumerate() {
            println!(
                "  sf{i}: usable={} cwnd={} inflight={} srtt={:?} rtos={} fast={} acked={} penalties={}",
                sf.usable(),
                sf.sock.cwnd(),
                sf.sock.bytes_in_flight(),
                sf.sock.srtt(),
                sf.sock.stats.rtos,
                sf.sock.stats.fast_retransmits,
                sf.sock.stats.bytes_acked,
                sf.penalties,
            );
        }
        println!(
            "  outstanding={} window={} room={} fallback={}",
            conn.data_outstanding(),
            conn.rcv_window(),
            conn.snd_window_room(),
            conn.is_fallback()
        );
        print_links(&sc);
    }
}
