//! Bench crate: see the `repro` binary and Criterion benches.
