//! The fetch protocol: a minimal, verifiable bulk-transfer application.
//!
//! The client sends one ASCII request line — `MPFETCH <size> <seed>\n` —
//! and the server answers with exactly `size` bytes of a deterministic
//! keystream derived from `seed`, then closes. Because both sides can
//! regenerate the stream independently, the client verifies every byte as
//! it arrives (not just a final digest), so a corruption is pinned to an
//! exact offset, and no multi-MiB expected-buffer is held in memory.
//!
//! Applications plug into the event loop through [`ConnApp`]: the loop
//! calls `drive` whenever the connection made progress (ingress, timer, or
//! freed buffer space) and the app moves its own state machine using the
//! non-blocking `read`/`write`/`close` API.

use mptcp::{MptcpConnection, ReadOutcome, WriteOutcome};
use mptcp_netsim::SimTime;

/// Largest chunk generated or verified per drive step. Keeps single calls
/// bounded so one connection cannot monopolize the loop.
const CHUNK: usize = 64 * 1024;

/// An application state machine attached to one connection.
pub trait ConnApp {
    /// Make progress: read what is readable, write what fits.
    fn drive(&mut self, conn: &mut MptcpConnection, now: SimTime);
    /// True once the app needs no further progress (the loop may exit or
    /// reap the connection once it is also fully closed).
    fn finished(&self) -> bool;
}

// ---------------------------------------------------------------------------
// Deterministic payload.
// ---------------------------------------------------------------------------

/// xorshift64* keystream, 8 bytes per step. Fast, seedable, and with no
/// short cycles for nonzero seeds — ideal for generating test payloads that
/// both ends can reproduce.
pub struct Keystream {
    state: u64,
    buf: [u8; 8],
    pos: usize,
}

impl Keystream {
    /// Seed the stream; zero seeds are remapped (xorshift fixes zero).
    pub fn new(seed: u64) -> Keystream {
        Keystream {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
            buf: [0; 8],
            pos: 8,
        }
    }

    fn step(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Fill `out` with the next keystream bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for b in out.iter_mut() {
            if self.pos == 8 {
                self.buf = self.step().to_le_bytes();
                self.pos = 0;
            }
            *b = self.buf[self.pos];
            self.pos += 1;
        }
    }
}

/// Incremental FNV-1a (64-bit): the transfer checksum reported by both
/// sides for the smoke artifacts.
pub struct Fnv1a {
    hash: u64,
}

impl Fnv1a {
    pub fn new() -> Fnv1a {
        Fnv1a {
            hash: 0xcbf29ce484222325,
        }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x100000001b3);
        }
    }

    pub fn digest(&self) -> u64 {
        self.hash
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

// ---------------------------------------------------------------------------
// Client side.
// ---------------------------------------------------------------------------

enum FetchState {
    /// Request line bytes still to send.
    Sending(Vec<u8>),
    /// Receiving and verifying the body.
    Receiving,
    /// Stream ended (cleanly or not).
    Done,
}

/// Client app: request `size` bytes and verify them against the keystream.
pub struct FetchClient {
    size: u64,
    state: FetchState,
    expect: Keystream,
    scratch: Vec<u8>,
    checksum: Fnv1a,
    received: u64,
    /// First offset whose byte did not match, if any.
    mismatch_at: Option<u64>,
    eof_clean: bool,
}

impl FetchClient {
    /// Fetch `size` keystream bytes seeded with `seed`.
    pub fn new(size: u64, seed: u64) -> FetchClient {
        let req = format!("MPFETCH {size} {seed}\n").into_bytes();
        FetchClient {
            size,
            state: FetchState::Sending(req),
            expect: Keystream::new(seed),
            scratch: vec![0u8; CHUNK],
            checksum: Fnv1a::new(),
            received: 0,
            mismatch_at: None,
            eof_clean: false,
        }
    }

    /// Bytes received and verified so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// FNV-1a digest of the received body.
    pub fn checksum(&self) -> u64 {
        self.checksum.digest()
    }

    /// True when the full body arrived byte-identical and the stream ended
    /// cleanly.
    pub fn ok(&self) -> bool {
        self.eof_clean && self.received == self.size && self.mismatch_at.is_none()
    }

    /// First mismatching offset, if verification failed.
    pub fn mismatch_at(&self) -> Option<u64> {
        self.mismatch_at
    }

    fn verify(&mut self, data: &[u8]) {
        let mut off = 0;
        while off < data.len() {
            let n = (data.len() - off).min(self.scratch.len());
            self.expect.fill(&mut self.scratch[..n]);
            if self.mismatch_at.is_none() {
                if let Some(i) = (0..n).find(|&i| data[off + i] != self.scratch[i]) {
                    self.mismatch_at = Some(self.received + (off + i) as u64);
                }
            }
            off += n;
        }
        self.checksum.update(data);
        self.received += data.len() as u64;
    }
}

impl ConnApp for FetchClient {
    fn drive(&mut self, conn: &mut MptcpConnection, _now: SimTime) {
        loop {
            match &mut self.state {
                FetchState::Sending(rest) => {
                    match conn.write(rest) {
                        WriteOutcome::Accepted(n) | WriteOutcome::FellBack(n) => {
                            rest.drain(..n);
                            if rest.is_empty() {
                                self.state = FetchState::Receiving;
                                continue;
                            }
                        }
                        WriteOutcome::WouldBlock => {}
                        WriteOutcome::Closed => self.state = FetchState::Done,
                    }
                    return;
                }
                FetchState::Receiving => match conn.read(CHUNK) {
                    ReadOutcome::Data(data) => self.verify(&data),
                    ReadOutcome::WouldBlock => return,
                    ReadOutcome::Eof => {
                        self.eof_clean = true;
                        conn.close();
                        self.state = FetchState::Done;
                        return;
                    }
                    ReadOutcome::Closed => {
                        self.state = FetchState::Done;
                        return;
                    }
                },
                FetchState::Done => return,
            }
        }
    }

    fn finished(&self) -> bool {
        matches!(self.state, FetchState::Done)
    }
}

// ---------------------------------------------------------------------------
// Server side.
// ---------------------------------------------------------------------------

enum ServeState {
    /// Accumulating the request line.
    ReadingRequest(Vec<u8>),
    /// Streaming the body.
    Sending {
        remaining: u64,
        ks: Keystream,
        /// Generated but not yet accepted by the send buffer.
        pending: Vec<u8>,
    },
    /// Body fully written and close() issued.
    Done,
}

/// Server app: parse one request line, stream the keystream body, close.
pub struct FetchServer {
    state: ServeState,
    sent: u64,
}

impl FetchServer {
    pub fn new() -> FetchServer {
        FetchServer {
            state: ServeState::ReadingRequest(Vec::new()),
            sent: 0,
        }
    }

    /// Body bytes accepted by the connection so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn parse(line: &str) -> Option<(u64, u64)> {
        let mut parts = line.split_ascii_whitespace();
        if parts.next()? != "MPFETCH" {
            return None;
        }
        let size = parts.next()?.parse().ok()?;
        let seed = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some((size, seed))
    }
}

impl Default for FetchServer {
    fn default() -> Self {
        FetchServer::new()
    }
}

impl ConnApp for FetchServer {
    fn drive(&mut self, conn: &mut MptcpConnection, _now: SimTime) {
        loop {
            match &mut self.state {
                ServeState::ReadingRequest(buf) => {
                    match conn.read(256) {
                        ReadOutcome::Data(data) => buf.extend_from_slice(&data),
                        ReadOutcome::WouldBlock => return,
                        ReadOutcome::Eof | ReadOutcome::Closed => {
                            conn.close();
                            self.state = ServeState::Done;
                            return;
                        }
                    }
                    if buf.len() > 256 {
                        // A request line this long is garbage; hang up.
                        conn.close();
                        self.state = ServeState::Done;
                        return;
                    }
                    if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
                        let line = String::from_utf8_lossy(&buf[..nl]).into_owned();
                        match FetchServer::parse(&line) {
                            Some((size, seed)) => {
                                self.state = ServeState::Sending {
                                    remaining: size,
                                    ks: Keystream::new(seed),
                                    pending: Vec::new(),
                                };
                                continue;
                            }
                            None => {
                                conn.close();
                                self.state = ServeState::Done;
                                return;
                            }
                        }
                    }
                }
                ServeState::Sending {
                    remaining,
                    ks,
                    pending,
                } => loop {
                    if pending.is_empty() {
                        if *remaining == 0 {
                            conn.close();
                            self.state = ServeState::Done;
                            return;
                        }
                        let n = (*remaining).min(CHUNK as u64) as usize;
                        pending.resize(n, 0);
                        ks.fill(pending);
                        *remaining -= n as u64;
                    }
                    match conn.write(pending) {
                        WriteOutcome::Accepted(n) | WriteOutcome::FellBack(n) => {
                            pending.drain(..n);
                            self.sent += n as u64;
                        }
                        WriteOutcome::WouldBlock => return,
                        WriteOutcome::Closed => {
                            self.state = ServeState::Done;
                            return;
                        }
                    }
                },
                ServeState::Done => return,
            }
        }
    }

    fn finished(&self) -> bool {
        matches!(self.state, ServeState::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystream_is_deterministic() {
        let mut a = Keystream::new(7);
        let mut b = Keystream::new(7);
        let mut x = [0u8; 100];
        let mut y = [0u8; 100];
        a.fill(&mut x);
        // Different fill granularity must not change the stream.
        b.fill(&mut y[..33]);
        b.fill(&mut y[33..]);
        assert_eq!(x, y);
        let mut c = Keystream::new(8);
        let mut z = [0u8; 100];
        c.fill(&mut z);
        assert_ne!(x, z);
    }

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a 64 of "a" is 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::new();
        h.update(b"a");
        assert_eq!(h.digest(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn request_line_parses() {
        assert_eq!(FetchServer::parse("MPFETCH 1024 7"), Some((1024, 7)));
        assert_eq!(FetchServer::parse("MPFETCH 1024"), None);
        assert_eq!(FetchServer::parse("GET / HTTP/1.1"), None);
        assert_eq!(FetchServer::parse("MPFETCH x y"), None);
    }
}
